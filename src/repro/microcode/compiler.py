"""The microcode compiler.

Compiles the per-instruction semantics DSL (:mod:`repro.microcode.semantics`)
into optimized µop templates for a particular target microarchitecture.
This reproduces the paper's microcode compiler, which exists "to ease the
process of (i) porting new ISAs, (ii) generating new instructions and
(iii) porting to new microarchitectures with different microcode".

Pipeline:

1. **Parse** the DSL into primitive statements.
2. **Lower** primitives to µops using the target's instruction-selection
   table (per-operation latencies and unit assignment).
3. **Optimize**: address-generation folding into load/store µops (when
   the target's load/store unit has an address-generation port), dead
   flag-write elimination, and NOP removal.

Templates use placeholder register ids that :class:`~repro.microcode.table.
MicrocodeTable` substitutes per dynamic instruction.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.microcode.uop import (
    FPR_BASE,
    NO_REG,
    TEMP_BASE,
    NUM_TEMPS,
    UOP_ALU,
    UOP_BRANCH,
    UOP_FP,
    UOP_JUMP,
    UOP_LOAD,
    UOP_MULDIV,
    UOP_STORE,
    UOP_SYS,
    Uop,
)

# Placeholder ids substituted at crack time.
PH_RD = -2  # instruction's encoded destination GPR
PH_RS = -3  # instruction's encoded source GPR
PH_FD = -4  # destination FPR
PH_FS = -5  # source FPR
PLACEHOLDERS = (PH_RD, PH_RS, PH_FD, PH_FS)


class MicrocodeError(ValueError):
    """Raised on a malformed semantics specification."""


@dataclass(frozen=True)
class MicrocodeTarget:
    """Microarchitecture description the compiler specializes for.

    The default values match the Figure 3 target: single-cycle ALU,
    pipelined multiplier, iterative divider, an LSU with its own
    address-generation port (so agen µops fold into memory µops).
    """

    name: str = "default"
    fold_agen: bool = True
    alu_latency: int = 1
    mul_latency: int = 3
    div_latency: int = 12
    fp_add_latency: int = 3
    fp_mul_latency: int = 4
    fp_div_latency: int = 12
    fp_sqrt_latency: int = 15
    load_latency: int = 1  # beyond-cache latency is the cache model's job
    store_latency: int = 1
    branch_latency: int = 1
    sys_latency: int = 1
    num_temps: int = NUM_TEMPS

    def latency_of(self, op: str) -> int:
        if op == "mul":
            return self.mul_latency
        if op == "div":
            return self.div_latency
        if op in ("fadd", "fsub", "fcmp", "fmov", "fitof", "fftoi"):
            return self.fp_add_latency
        if op == "fmul":
            return self.fp_mul_latency
        if op == "fdiv":
            return self.fp_div_latency
        if op == "fsqrt":
            return self.fp_sqrt_latency
        return self.alu_latency


_INT_OPS = frozenset(
    "add sub and or xor mov not neg cmp test shl shr sar adc".split()
)
_MULDIV_OPS = frozenset(("mul", "div"))
_FP_OPS = frozenset(
    "fadd fsub fmul fdiv fsqrt fmov fitof fftoi fcmp".split()
)

_STMT_RE = re.compile(
    r"^(?:(?P<dst>[a-z][a-z0-9]*)\s*=\s*)?"
    r"(?P<op>[a-z]+)\((?P<args>[^)]*)\)\s*(?P<flags>[!?]*)$"
)


@dataclass
class _Prim:
    """One parsed primitive statement."""

    op: str
    dst: Optional[str]
    args: List[str]
    wflags: bool
    rflags: bool


@dataclass
class CompileResult:
    """Compiled template plus compiler diagnostics."""

    uops: Tuple[Uop, ...]
    folded_agens: int = 0
    dead_flag_writes: int = 0

    @property
    def uop_count(self) -> int:
        return len(self.uops)


class MicrocodeCompiler:
    """Compiles semantics DSL text into µop templates for one target."""

    def __init__(self, target: Optional[MicrocodeTarget] = None):
        self.target = target or MicrocodeTarget()

    # -- public API -----------------------------------------------------

    def compile(self, source: str) -> CompileResult:
        """Compile one instruction's semantics into a µop template."""
        prims = self._parse(source)
        uops = [self._lower(p) for p in prims]
        folded = 0
        if self.target.fold_agen:
            uops, folded = self._fold_agen(uops)
        uops, dead = self._kill_dead_flag_writes(uops)
        uops = [u for u in uops if u.kind != "nop"]
        return CompileResult(tuple(uops), folded_agens=folded, dead_flag_writes=dead)

    # -- parsing --------------------------------------------------------

    def _parse(self, source: str) -> List[_Prim]:
        prims = []
        for raw in source.strip().splitlines():
            line = raw.split(";", 1)[0].strip()
            if not line:
                continue
            match = _STMT_RE.match(line)
            if not match:
                raise MicrocodeError("bad semantics statement: %r" % line)
            args = [a.strip() for a in match.group("args").split(",") if a.strip()]
            flags = match.group("flags")
            prims.append(
                _Prim(
                    op=match.group("op"),
                    dst=match.group("dst"),
                    args=args,
                    wflags="!" in flags,
                    rflags="?" in flags,
                )
            )
        return prims

    # -- lowering -------------------------------------------------------

    def _reg(self, symbol: str) -> int:
        """Resolve an operand symbol to a (possibly placeholder) reg id."""
        if symbol == "rd":
            return PH_RD
        if symbol == "rs":
            return PH_RS
        if symbol == "fd":
            return PH_FD
        if symbol == "fs":
            return PH_FS
        if symbol == "sp":
            return 7
        if symbol in ("pc", "imm"):
            # Neither the sequential PC nor an immediate is a renamed
            # register: they contribute no dependency edges.
            return NO_REG
        if re.match(r"^r[0-7]$", symbol):
            return int(symbol[1:])
        if re.match(r"^f[0-7]$", symbol):
            return FPR_BASE + int(symbol[1:])
        if re.match(r"^t[0-9]$", symbol):
            index = int(symbol[1:])
            if index >= self.target.num_temps:
                raise MicrocodeError(
                    "temporary %s exceeds target's %d temps"
                    % (symbol, self.target.num_temps)
                )
            return TEMP_BASE + index
        if re.match(r"^-?[0-9]+$", symbol):
            return NO_REG  # literal: contributes no dependency
        raise MicrocodeError("unknown operand symbol %r" % symbol)

    def _lower(self, prim: _Prim) -> Uop:
        target = self.target
        op = prim.op
        dst = self._reg(prim.dst) if prim.dst else NO_REG

        def src(index: int) -> int:
            if index >= len(prim.args):
                return NO_REG
            return self._reg(prim.args[index])

        if op in _INT_OPS:
            rflags = prim.rflags or op == "adc"
            return Uop(
                UOP_ALU, op, dst, src(0), src(1), target.latency_of(op),
                prim.wflags, rflags,
            )
        if op in _MULDIV_OPS:
            return Uop(
                UOP_MULDIV, op, dst, src(0), src(1), target.latency_of(op), prim.wflags
            )
        if op in _FP_OPS:
            return Uop(UOP_FP, op, dst, src(0), src(1), target.latency_of(op))
        if op == "load":
            # load(base, off) -> dst
            return Uop(UOP_LOAD, "load", dst, src(0), NO_REG, target.load_latency)
        if op == "store":
            # store(base, off, value): src1 = base, src2 = data
            return Uop(UOP_STORE, "store", NO_REG, src(0), src(2), target.store_latency)
        if op == "branch":
            cond = prim.args[0] if prim.args else "z"
            return Uop(
                UOP_BRANCH, cond, NO_REG, NO_REG, NO_REG, target.branch_latency,
                rflags=True,
            )
        if op == "jump":
            target_reg = src(0) if prim.args else NO_REG
            return Uop(
                UOP_JUMP, "jump", NO_REG, target_reg, NO_REG, target.branch_latency
            )
        if op == "sys":
            name = prim.args[0] if prim.args else "sys"
            return Uop(UOP_SYS, name, dst, NO_REG, NO_REG, target.sys_latency)
        raise MicrocodeError("unknown primitive %r" % op)

    # -- optimization ---------------------------------------------------

    def _fold_agen(self, uops: List[Uop]) -> Tuple[List[Uop], int]:
        """Fold ``t = add(base, literal); mem(t, ...)`` into the memory µop.

        Only performed when the temporary produced by the add is consumed
        exactly once, by the very next memory µop, and never used again
        -- the common pattern emitted for LD/ST/PUSH-style semantics.
        """
        folded = 0
        out: List[Uop] = []
        i = 0
        while i < len(uops):
            cur = uops[i]
            nxt = uops[i + 1] if i + 1 < len(uops) else None
            if (
                nxt is not None
                and cur.kind == UOP_ALU
                and cur.op == "add"
                and cur.src2 == NO_REG  # second operand was a literal
                and not cur.wflags
                and cur.dst >= TEMP_BASE
                and nxt.is_mem
                and nxt.src1 == cur.dst
                and not self._used_later(uops, i + 2, cur.dst)
                and cur.dst != (nxt.src2 if nxt.kind == UOP_STORE else nxt.dst)
            ):
                merged = Uop(
                    nxt.kind,
                    nxt.op,
                    nxt.dst,
                    cur.src1,
                    nxt.src2,
                    nxt.lat,
                    nxt.wflags,
                    nxt.rflags,
                )
                out.append(merged)
                folded += 1
                i += 2
                continue
            out.append(cur)
            i += 1
        return out, folded

    @staticmethod
    def _used_later(uops: List[Uop], start: int, reg: int) -> bool:
        for uop in uops[start:]:
            if reg in tuple(uop.sources()):
                return True
            if reg in tuple(uop.destinations()):
                return False  # redefined before any use
        return False

    @staticmethod
    def _kill_dead_flag_writes(uops: List[Uop]) -> Tuple[List[Uop], int]:
        """Clear ``wflags`` on writes that are overwritten before any read.

        The final flag write of a template is always preserved: a later
        *instruction* may read the flags.
        """
        killed = 0
        out = list(uops)
        for i, uop in enumerate(out):
            if not uop.wflags:
                continue
            for later in out[i + 1 :]:
                if later.rflags:
                    break  # live
                if later.wflags:
                    out[i] = Uop(
                        uop.kind, uop.op, uop.dst, uop.src1, uop.src2,
                        uop.lat, False, uop.rflags,
                    )
                    killed += 1
                    break
        return out, killed
