"""Micro-op (µop) definitions.

Like virtually all modern x86 implementations, the simulated target
cracks each CISC instruction into RISC-like micro-ops (section 4.3 of
the paper).  A µop names its destination and source registers in a
*unified register namespace* so the rename stage can track dependencies
uniformly:

* 0-7    general-purpose registers R0-R7
* 8-15   floating point registers F0-F7
* 16     the flags register
* 17-20  microcode temporaries (architecturally invisible)
* -1     "no register"
"""

from __future__ import annotations

GPR_BASE = 0
FPR_BASE = 8
FLAGS_REG = 16
TEMP_BASE = 17
NUM_TEMPS = 4
NUM_UOP_REGS = TEMP_BASE + NUM_TEMPS
NO_REG = -1

# µop kinds.
UOP_ALU = "alu"
UOP_MULDIV = "muldiv"
UOP_FP = "fp"
UOP_LOAD = "load"
UOP_STORE = "store"
UOP_BRANCH = "branch"
UOP_JUMP = "jump"
UOP_SYS = "sys"
UOP_NOP = "nop"

# Functional units in the timing model.
UNIT_ALU = "alu"
UNIT_BRU = "bru"
UNIT_LSU = "lsu"
UNIT_FPU = "fpu"

KIND_TO_UNIT = {
    UOP_ALU: UNIT_ALU,
    UOP_MULDIV: UNIT_ALU,
    UOP_FP: UNIT_FPU,
    UOP_LOAD: UNIT_LSU,
    UOP_STORE: UNIT_LSU,
    UOP_BRANCH: UNIT_BRU,
    UOP_JUMP: UNIT_BRU,
    UOP_SYS: UNIT_ALU,
    UOP_NOP: UNIT_ALU,
}


class Uop:
    """One micro-op.

    ``__slots__`` keeps these small: the timing model allocates one per
    dynamic µop and the simulator executes millions of them.
    """

    # "meta" is a lazily-computed cache of dispatch/issue metadata used
    # by the compiled engine's fused tick (repro.timing.pipeline
    # .fastpath); it is derived from the other fields and excluded from
    # equality and hashing.
    _FIELDS = ("kind", "op", "dst", "src1", "src2", "lat", "wflags", "rflags")
    __slots__ = _FIELDS + ("meta",)

    def __init__(
        self,
        kind: str,
        op: str = "",
        dst: int = NO_REG,
        src1: int = NO_REG,
        src2: int = NO_REG,
        lat: int = 1,
        wflags: bool = False,
        rflags: bool = False,
    ):
        self.kind = kind
        self.op = op
        self.dst = dst
        self.src1 = src1
        self.src2 = src2
        self.lat = lat
        self.wflags = wflags
        self.rflags = rflags
        self.meta = None

    @property
    def unit(self) -> str:
        return KIND_TO_UNIT[self.kind]

    @property
    def is_mem(self) -> bool:
        return self.kind in (UOP_LOAD, UOP_STORE)

    def sources(self):
        """Yield source register ids (including flags when read)."""
        if self.src1 != NO_REG:
            yield self.src1
        if self.src2 != NO_REG:
            yield self.src2
        if self.rflags:
            yield FLAGS_REG

    def destinations(self):
        """Yield destination register ids (including flags when written)."""
        if self.dst != NO_REG:
            yield self.dst
        if self.wflags:
            yield FLAGS_REG

    def __repr__(self) -> str:
        return "Uop(%s/%s d=%d s1=%d s2=%d lat=%d%s%s)" % (
            self.kind,
            self.op,
            self.dst,
            self.src1,
            self.src2,
            self.lat,
            " WF" if self.wflags else "",
            " RF" if self.rflags else "",
        )

    def __eq__(self, other) -> bool:
        if not isinstance(other, Uop):
            return NotImplemented
        return all(
            getattr(self, field) == getattr(other, field) for field in self._FIELDS
        )

    def __hash__(self) -> int:
        return hash(tuple(getattr(self, field) for field in self._FIELDS))


def fpr(index: int) -> int:
    """Unified id of floating point register *index*."""
    return FPR_BASE + index


def temp(index: int) -> int:
    """Unified id of microcode temporary *index*."""
    if index >= NUM_TEMPS:
        raise ValueError("microcode temporary %d out of range" % index)
    return TEMP_BASE + index


NOP_UOP = Uop(UOP_NOP, "nop")
