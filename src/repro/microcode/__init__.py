"""Microcode: cracking CISC instructions into µops via a compiler.

Public surface:

* :class:`repro.microcode.uop.Uop` -- the micro-op record.
* :class:`repro.microcode.compiler.MicrocodeCompiler` and
  :class:`repro.microcode.compiler.MicrocodeTarget`.
* :class:`repro.microcode.table.MicrocodeTable` -- compiled table with
  crack-time substitution and Table 1 coverage counters.
"""

from repro.microcode.compiler import (
    CompileResult,
    MicrocodeCompiler,
    MicrocodeError,
    MicrocodeTarget,
)
from repro.microcode.table import CoverageCounters, MicrocodeTable
from repro.microcode.uop import (
    FLAGS_REG,
    FPR_BASE,
    NO_REG,
    NOP_UOP,
    NUM_UOP_REGS,
    TEMP_BASE,
    Uop,
)

__all__ = [
    "CompileResult",
    "CoverageCounters",
    "FLAGS_REG",
    "FPR_BASE",
    "MicrocodeCompiler",
    "MicrocodeError",
    "MicrocodeTable",
    "MicrocodeTarget",
    "NOP_UOP",
    "NO_REG",
    "NUM_UOP_REGS",
    "TEMP_BASE",
    "Uop",
]
