"""Per-instruction semantics specifications.

The paper's microcode compiler "takes C code that specifies the
functionality of each instruction ... and compiles it into fairly
optimized microcode" (section 4.3).  Our stand-in for those C specs is a
tiny three-address DSL.  Each ISA instruction maps to a list of
statements of the form::

    t0 = add(rs, imm)        ; ALU primitive into a temporary
    rd = load(t0, 0)         ; memory read
    store(t0, 0, rd)         ; memory write
    sp = sub(sp, 4) !        ; trailing "!" writes the flags
    branch(nz)               ; conditional control transfer (reads flags)
    jump(t0)                 ; unconditional control transfer
    sys(halt)                ; serialized system operation

Operand symbols: ``rd``/``rs`` are the instruction's encoded registers,
``fd``/``fs`` their floating-point counterparts, ``imm`` the immediate,
``sp`` is R7, ``pc`` the sequential return address, ``r0``-``r7`` and
``f0``-``f7`` name architectural registers directly, ``t0``-``t3`` are
microcode temporaries, and bare integers are literals.

Instructions with **no entry here are not automatically translated**;
the microcode table replaces them with a NOP (exactly the paper's
fallback) and coverage accounting reports them, reproducing Table 1.
The FP subset below is deliberately partial — the paper supports only
about 25 % of dynamic FP instructions.
"""

from __future__ import annotations

from typing import Dict, List, Optional

# Semantics for a REP-prefixed string instruction describe *one loop
# iteration*; the cracker repeats them per iteration at run time.
SEMANTICS: Dict[str, str] = {
    "NOP": "",
    "HALT": "sys(halt)",
    "SYSCALL": "sys(syscall)",
    "IRET": """
        sys(iret)
        jump()
    """,
    "CLI": "sys(cli)",
    "STI": "sys(sti)",
    "INT": "sys(int)",
    "RET": """
        t0 = load(sp, 0)
        sp = add(sp, 4)
        jump(t0)
    """,
    # Data movement.
    "MOV": "rd = mov(rs)",
    "MOVI": "rd = mov(imm)",
    "LD": """
        t0 = add(rs, imm)
        rd = load(t0, 0)
    """,
    "LDB": """
        t0 = add(rs, imm)
        rd = load(t0, 0)
    """,
    "ST": """
        t0 = add(rs, imm)
        store(t0, 0, rd)
    """,
    "STB": """
        t0 = add(rs, imm)
        store(t0, 0, rd)
    """,
    "PUSH": """
        sp = sub(sp, 4)
        store(sp, 0, rd)
    """,
    "POP": """
        rd = load(sp, 0)
        sp = add(sp, 4)
    """,
    "LEA": "rd = add(rs, imm)",
    # Integer ALU.
    "ADD": "rd = add(rd, rs) !",
    "SUB": "rd = sub(rd, rs) !",
    "AND": "rd = and(rd, rs) !",
    "OR": "rd = or(rd, rs) !",
    "XOR": "rd = xor(rd, rs) !",
    "CMP": "cmp(rd, rs) !",
    "TEST": "test(rd, rs) !",
    "NOT": "rd = not(rd) !",
    "NEG": "rd = neg(rd) !",
    "INC": "rd = add(rd, 1) !",
    "DEC": "rd = sub(rd, 1) !",
    "MUL": "rd = mul(rd, rs) !",
    "DIV": "rd = div(rd, rs) !",
    "ADC": "rd = adc(rd, rs) !?",
    "ADDI": "rd = add(rd, imm) !",
    "SUBI": "rd = sub(rd, imm) !",
    "ANDI": "rd = and(rd, imm) !",
    "ORI": "rd = or(rd, imm) !",
    "XORI": "rd = xor(rd, imm) !",
    "CMPI": "cmp(rd, imm) !",
    "SHL": "rd = shl(rd, imm) !",
    "SHR": "rd = shr(rd, imm) !",
    "SAR": "rd = sar(rd, imm) !",
    # Control.
    "JMP": "jump()",
    "JZ": "branch(z)",
    "JNZ": "branch(nz)",
    "JL": "branch(l)",
    "JGE": "branch(ge)",
    "JG": "branch(g)",
    "JLE": "branch(le)",
    "JC": "branch(c)",
    "JNC": "branch(nc)",
    "CALL": """
        sp = sub(sp, 4)
        store(sp, 0, pc)
        jump()
    """,
    "JR": "jump(rd)",
    "CALLR": """
        sp = sub(sp, 4)
        store(sp, 0, pc)
        jump(rd)
    """,
    "LOOP": """
        rd = sub(rd, 1) !
        branch(nz)
    """,
    # String operations (one iteration; REP repeats these).
    "MOVSB": """
        t0 = load(r0, 0)
        store(r1, 0, t0)
        r0 = add(r0, 1)
        r1 = add(r1, 1)
        r2 = sub(r2, 1) !
        branch(rep)
    """,
    "STOSB": """
        store(r1, 0, r3)
        r1 = add(r1, 1)
        r2 = sub(r2, 1) !
        branch(rep)
    """,
    "SCASB": """
        t0 = load(r0, 0)
        cmp(t0, r3) !
        r0 = add(r0, 1)
        r2 = sub(r2, 1) !
        branch(rep)
    """,
    # Floating point -- DELIBERATELY PARTIAL (paper section 4.3: only
    # ~25% of dynamic FP instructions have automatic translations).
    "FADD": "fd = fadd(fd, fs)",
    "FMOV": "fd = fmov(fs)",
    "FITOF": "fd = fitof(rs)",
    # FSUB, FMUL, FDIV, FSQRT, FCMP, FFTOI, FLD, FST: no automatic
    # translation; the table inserts NOPs unless hand-patched.
    # Privileged.
    "IN": "rd = sys(in)",
    "OUT": "sys(out)",
    "TLBWR": "sys(tlbwr)",
    "TLBFLUSH": "sys(tlbflush)",
    "MOVSR": "sys(movsr)",
    "MOVRS": "rd = sys(movrs)",
}

# The opcodes *expected* to lack automatic translation (the paper's
# deliberate FP gap).  FastLint (repro.analysis) reports these at INFO
# level against the Table 1 coverage story, but errors on any opcode
# missing microcode that is NOT declared here -- so silently losing an
# ALU translation can no longer masquerade as "known FP gap".
KNOWN_UNTRANSLATED = frozenset(
    {"FSUB", "FMUL", "FDIV", "FSQRT", "FCMP", "FFTOI", "FLD", "FST"}
)

# Hand-written patches the paper mentions ("inserted into the table by
# hand").  Users can extend this via MicrocodeTable.hand_patch().
HAND_PATCHES: Dict[str, str] = {}


def semantics_for(name: str) -> Optional[str]:
    """Return the DSL source for *name*, or ``None`` if untranslated."""
    return SEMANTICS.get(name)


def untranslated_opcodes() -> List[str]:
    """Opcode names with no automatic semantics (the NOP fallbacks)."""
    from repro.isa.opcodes import OPCODES

    return sorted(name for name in OPCODES if name not in SEMANTICS)
