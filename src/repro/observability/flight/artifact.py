"""RunArtifact: the persistent, content-addressed record of one run.

Every run worth analyzing later -- a bench timing, a
``run_fast_workload`` call, a fig/table experiment -- writes one
directory under ``results/runs/<id>/``::

    manifest.json   identity (experiment, workload, config), file hashes,
                    and the *volatile* host section (wall seconds,
                    cycles/sec) kept outside the content hash
    stats.json      final TimingStats / FunctionalStats / ProtocolStats
    windows.json    StatsFabric window series        (scoped runs only)
    trace.jsonl     seam event ring + summary footer (scoped runs only)
    profile.json    TickProfiler samples             (profiled runs only)
    pulse.jsonl     FastPulse live-telemetry sidecar (pulse-armed runs)
    output.txt      rendered experiment text         (experiments only)

Content addressing is the determinism contract made durable: the id is
a hash over the *target-deterministic* payload (stats, windows, trace,
output) plus the identity fields, so two same-seed runs produce
artifacts with the same content hash, and a hash mismatch between two
"identical" runs is itself a regression signal.  Host wall-time lives
only in the manifest's ``host`` section and never enters the hash.

``pulse.jsonl`` interleaves heartbeat timestamps with deterministic
progress samples, so -- like ``profile.json`` -- its bytes stay outside
the content hash; the *deterministic footer* of the stream (sample
count, rolling det hash, stall count) is folded into the hashed
identity as ``extra["pulse_footer"]`` instead, making live-telemetry
divergence between two same-seed runs a content-hash mismatch.

Nothing here reads a clock: artifacts carry no timestamps (content
addressing makes them unnecessary, and the determinism lint would
rightly object).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

SCHEMA_VERSION = 1
DEFAULT_ROOT = os.path.join("results", "runs")

MANIFEST_NAME = "manifest.json"
STATS_NAME = "stats.json"
WINDOWS_NAME = "windows.json"
TRACE_NAME = "trace.jsonl"
PROFILE_NAME = "profile.json"
PULSE_NAME = "pulse.jsonl"
OUTPUT_NAME = "output.txt"

# Payload files whose bytes enter the content hash.  profile.json and
# pulse.jsonl carry host-wall-time samples and are deliberately
# excluded, like the manifest's host section (pulse determinism enters
# the hash through extra["pulse_footer"] instead).
HASHED_FILES = (STATS_NAME, WINDOWS_NAME, TRACE_NAME, OUTPUT_NAME)

TRACE_FOOTER_KIND = "trace_summary"
PULSE_FOOTER_KIND = "pulse_footer"


def canonical_json(obj: Any) -> str:
    """Sorted-key, compact, newline-terminated JSON -- the byte-stable
    encoding every hashed artifact file uses."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":")) + "\n"


def _plain(obj: Any) -> Any:
    """Dataclasses (TimingStats & friends) to plain dicts, recursively."""
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return dataclasses.asdict(obj)
    return obj


def _slug(text: str) -> str:
    out = []
    for ch in text:
        out.append(ch if (ch.isalnum() or ch in "._-") else "-")
    return "".join(out) or "run"


class ArtifactError(ValueError):
    """A malformed, missing or ambiguous artifact reference."""


@dataclass
class RunArtifact:
    """One loaded ``results/runs/<id>/`` directory."""

    path: str
    manifest: Dict[str, Any]
    _stats: Optional[Dict[str, Any]] = field(default=None, repr=False)

    # -- identity --------------------------------------------------------

    @property
    def run_id(self) -> str:
        return str(self.manifest.get("run_id", os.path.basename(self.path)))

    @property
    def content_hash(self) -> str:
        return str(self.manifest.get("content_hash", ""))

    @property
    def experiment(self) -> str:
        return str(self.manifest.get("experiment", ""))

    @property
    def workload(self) -> Optional[str]:
        return self.manifest.get("workload")

    @property
    def config(self) -> Dict[str, Any]:
        return dict(self.manifest.get("config", {}))

    @property
    def host(self) -> Dict[str, Any]:
        return dict(self.manifest.get("host", {}))

    # -- payload readers -------------------------------------------------

    def _file(self, name: str) -> Optional[str]:
        path = os.path.join(self.path, name)
        return path if os.path.exists(path) else None

    def _read_json(self, name: str) -> Optional[Dict[str, Any]]:
        path = self._file(name)
        if path is None:
            return None
        with open(path) as fh:
            return json.load(fh)

    def stats(self) -> Dict[str, Any]:
        if self._stats is None:
            self._stats = self._read_json(STATS_NAME) or {}
        return self._stats

    def timing(self) -> Dict[str, Any]:
        """The final TimingStats snapshot as a plain dict."""
        return dict(self.stats().get("timing", {}))

    def windows(self) -> Optional[Dict[str, Any]]:
        return self._read_json(WINDOWS_NAME)

    def profile(self) -> Optional[Dict[str, Any]]:
        return self._read_json(PROFILE_NAME)

    def output(self) -> Optional[str]:
        path = self._file(OUTPUT_NAME)
        if path is None:
            return None
        with open(path) as fh:
            return fh.read()

    def events(self) -> List[Dict[str, Any]]:
        """Parsed seam-event records (the summary footer excluded)."""
        path = self._file(TRACE_NAME)
        if path is None:
            return []
        records = []
        with open(path) as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                record = json.loads(line)
                if record.get("kind") != TRACE_FOOTER_KIND:
                    records.append(record)
        return records

    def trace_summary(self) -> Optional[Dict[str, Any]]:
        """The whole-run trace footer (recorded/dropped/per-kind totals),
        if the artifact carries a trace."""
        path = self._file(TRACE_NAME)
        if path is None:
            return None
        last = None
        with open(path) as fh:
            for line in fh:
                if line.strip():
                    last = line
        if last is None:
            return None
        record = json.loads(last)
        return record if record.get("kind") == TRACE_FOOTER_KIND else None

    def has_trace(self) -> bool:
        return self._file(TRACE_NAME) is not None

    def has_pulse(self) -> bool:
        return self._file(PULSE_NAME) is not None

    def pulse_summary(self) -> Optional[Dict[str, Any]]:
        """The FastPulse footer record (``det`` + ``host`` sections)
        when the artifact adopted a live-telemetry sidecar; falls back
        to the hashed ``extra["pulse_footer"]`` identity copy."""
        path = self._file(PULSE_NAME)
        if path is not None:
            last = None
            with open(path) as fh:
                for line in fh:
                    if line.strip():
                        last = line
            if last is not None:
                try:
                    record = json.loads(last)
                except ValueError:
                    record = None
                if record and record.get("kind") == PULSE_FOOTER_KIND:
                    return record
        footer = self.manifest.get("extra", {}).get("pulse_footer")
        if footer:
            return {"kind": PULSE_FOOTER_KIND, "det": footer, "host": {}}
        return None


# -- hashing ---------------------------------------------------------------


def _sha256_text(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def _content_hash(identity: Dict[str, Any],
                  file_hashes: Dict[str, str]) -> str:
    body = dict(identity)
    body["files"] = dict(sorted(file_hashes.items()))
    return _sha256_text(canonical_json(body))


# -- emission --------------------------------------------------------------


def _pulse_footer_from_text(text: str) -> Optional[Dict[str, Any]]:
    """The deterministic footer section of a pulse sidecar's text, or
    None when the stream never finalized (crash mid-run)."""
    last = None
    for line in text.splitlines():
        if line.strip():
            last = line
    if last is None:
        return None
    try:
        record = json.loads(last)
    except ValueError:
        return None
    if record.get("kind") != PULSE_FOOTER_KIND:
        return None
    det = record.get("det")
    return det if isinstance(det, dict) else None


def emit_artifact(
    experiment: str,
    workload: Optional[str] = None,
    config: Optional[Dict[str, Any]] = None,
    result: Any = None,
    timing: Any = None,
    scope: Any = None,
    host: Optional[Dict[str, Any]] = None,
    output: Optional[str] = None,
    extra: Optional[Dict[str, Any]] = None,
    pulse: Any = None,
    root: str = DEFAULT_ROOT,
) -> RunArtifact:
    """Write one run artifact directory and return it loaded.

    *result* is a :class:`~repro.fast.simulator.SimulationResult` (or
    anything with ``timing``/``functional``/``protocol`` attributes);
    *timing* alone is accepted for stats-only artifacts.  *scope* is a
    :class:`~repro.observability.scope.FastScope`, contributing the
    window series, the seam trace (with summary footer) and, when the
    profiler ran, the tick profile.  *host* is the volatile section
    (wall seconds, cycles/sec) -- recorded, never hashed.

    *pulse* adopts a FastPulse sidecar: either a live
    :class:`~repro.observability.pulse.PulseEmitter` (finalized here) or
    a path to an existing ``pulse.jsonl``.  The sidecar bytes land
    unhashed (they interleave host timestamps); the deterministic footer
    is folded into ``extra["pulse_footer"]`` so it enters the content
    hash.
    """
    files: Dict[str, str] = {}  # name -> file text
    stats: Dict[str, Any] = {}
    if result is not None:
        stats["timing"] = _plain(result.timing)
        stats["functional"] = _plain(result.functional)
        stats["protocol"] = _plain(result.protocol)
        stats["microcode_coverage"] = result.microcode_coverage
        stats["uops_per_instruction"] = result.uops_per_instruction
    elif timing is not None:
        stats["timing"] = _plain(timing)
    if stats:
        files[STATS_NAME] = canonical_json(stats)
    if scope is not None:
        scope.finalize()
        files[WINDOWS_NAME] = canonical_json(scope.fabric.report())
        files[TRACE_NAME] = scope.tracer.to_jsonl(footer=True)
        if scope.profiler is not None:
            files[PROFILE_NAME] = canonical_json(scope.profiler.report())
    if output is not None:
        files[OUTPUT_NAME] = output if output.endswith("\n") else output + "\n"

    if pulse is None and scope is not None:
        pulse = getattr(scope, "pulse", None)
    pulse_footer: Optional[Dict[str, Any]] = None
    if pulse is not None:
        if isinstance(pulse, str):
            with open(pulse) as fh:
                pulse_text = fh.read()
        else:
            pulse.finalize()
            pulse_text = pulse.sidecar_text()
        files[PULSE_NAME] = pulse_text
        pulse_footer = _pulse_footer_from_text(pulse_text)

    identity: Dict[str, Any] = {
        "schema": SCHEMA_VERSION,
        "experiment": experiment,
        "workload": workload,
        "config": _plain(config) or {},
        "extra": _plain(extra) or {},
    }
    if pulse_footer is not None:
        identity["extra"] = dict(identity["extra"])
        identity["extra"]["pulse_footer"] = pulse_footer
    file_hashes = {
        name: _sha256_text(text)
        for name, text in files.items()
        if name in HASHED_FILES
    }
    content_hash = _content_hash(identity, file_hashes)

    base_id = "%s-%s" % (_slug(experiment), content_hash[:12])
    if workload:
        base_id = "%s-%s-%s" % (
            _slug(experiment), _slug(workload), content_hash[:12]
        )
    os.makedirs(root, exist_ok=True)
    run_id = base_id
    serial = 1
    while os.path.exists(os.path.join(root, run_id)):
        # Same-content re-runs are kept side by side (the "two same-seed
        # artifacts diff clean" workflow needs both on disk).
        serial += 1
        run_id = "%s.%d" % (base_id, serial)
    path = os.path.join(root, run_id)
    os.makedirs(path)

    manifest: Dict[str, Any] = dict(identity)
    manifest["run_id"] = run_id
    manifest["content_hash"] = content_hash
    manifest["files"] = {
        name: file_hashes.get(name, "") for name in sorted(files)
    }
    manifest["host"] = dict(host or {})

    for name, text in files.items():
        with open(os.path.join(path, name), "w") as fh:
            fh.write(text)
    with open(os.path.join(path, MANIFEST_NAME), "w") as fh:
        fh.write(json.dumps(manifest, sort_keys=True, indent=2) + "\n")
    return RunArtifact(path=path, manifest=manifest)


# -- loading ---------------------------------------------------------------


def list_artifacts(root: str = DEFAULT_ROOT) -> List[str]:
    """Run ids under *root*, sorted (name order; ids are content-based)."""
    if not os.path.isdir(root):
        return []
    return sorted(
        name
        for name in os.listdir(root)
        if os.path.exists(os.path.join(root, name, MANIFEST_NAME))
    )


def load_artifact(ref: str, root: str = DEFAULT_ROOT) -> RunArtifact:
    """Load an artifact by directory path, run id, or unique id prefix."""
    candidates = []
    if os.path.isdir(ref) and os.path.exists(os.path.join(ref, MANIFEST_NAME)):
        candidates = [ref]
    else:
        direct = os.path.join(root, ref)
        if os.path.exists(os.path.join(direct, MANIFEST_NAME)):
            candidates = [direct]
        else:
            matches = [
                run_id for run_id in list_artifacts(root)
                if run_id.startswith(ref)
            ]
            if len(matches) > 1:
                raise ArtifactError(
                    "ambiguous artifact %r: matches %s" % (ref, matches)
                )
            candidates = [os.path.join(root, m) for m in matches]
    if not candidates:
        raise ArtifactError(
            "no artifact %r under %s (try 'python -m repro report --list')"
            % (ref, root)
        )
    path = candidates[0]
    with open(os.path.join(path, MANIFEST_NAME)) as fh:
        manifest = json.load(fh)
    return RunArtifact(path=path, manifest=manifest)


def verify_artifact(artifact: RunArtifact) -> List[str]:
    """Re-hash the payload files against the manifest; returns a list of
    human-readable integrity problems (empty == intact)."""
    problems = []
    recorded = artifact.manifest.get("files", {})
    for name, want in sorted(recorded.items()):
        path = os.path.join(artifact.path, name)
        if not os.path.exists(path):
            problems.append("missing payload file %s" % name)
            continue
        if name not in HASHED_FILES or not want:
            continue
        with open(path) as fh:
            got = _sha256_text(fh.read())
        if got != want:
            problems.append(
                "hash mismatch on %s: manifest %s.., file %s.."
                % (name, want[:12], got[:12])
            )
    identity = {
        key: artifact.manifest.get(key)
        for key in ("schema", "experiment", "workload", "config", "extra")
    }
    hashes = {
        name: value
        for name, value in recorded.items()
        if name in HASHED_FILES and value
    }
    if _content_hash(identity, hashes) != artifact.content_hash:
        problems.append("content hash does not match manifest identity")
    return problems
