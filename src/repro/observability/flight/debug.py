"""``python -m repro debug``: the time-travel debugging CLI.

Capsules are captured (``debug capture``), listed, inspected
(``debug show``: window rows, seam events, the triggering violation),
diffed cycle-by-cycle with first-divergence search (``debug diff``) and
exported as collapsed flame stacks (``debug flame``).  Capture builds
on run determinism: a probe run with the invariant fabric armed finds
the violation cycle, then the window around it is re-executed on a
fresh simulator with maximum-detail capture
(:mod:`repro.functional.replay`).

``--inject {rob,credit,ckpt}`` deliberately fires one canonical
invariant by shrinking its armed (observation-only) bound -- the CI
smoke job uses this to prove the whole path end to end; ``--at-cycle``
and ``--watch-below`` capture around an explicit cycle or the first
firing of a trigger watchpoint instead.
"""

from __future__ import annotations

import argparse
import json
from typing import List, Optional

from repro.observability.flight.artifact import ArtifactError, DEFAULT_ROOT
from repro.observability.flight.capsule import (
    diff_capsules,
    list_capsules,
    load_capsule,
    verify_capsule,
)

DEFAULT_MAX_CYCLES = 2_000_000


def _parse_watch(spec: str):
    """``probe:threshold`` with probe in {rob, tb}."""
    probe_name, _, threshold = spec.partition(":")
    if probe_name not in ("rob", "tb") or not threshold:
        raise argparse.ArgumentTypeError(
            "expected PROBE:THRESHOLD with PROBE one of rob, tb"
        )
    return probe_name, float(threshold)


def _factory(args):
    """A zero-argument simulator factory for *args* -- the determinism
    anchor: every invocation rebuilds the identical coupled system."""
    from repro.experiments.harness import build_fast_simulator
    from repro.observability.cli import _build_workload
    from repro.timing.core import TimingConfig

    workload = _build_workload(args.workload, args.boot_sleep_ticks)

    def build():
        return build_fast_simulator(
            workload, timing_config=TimingConfig(engine=args.engine)
        )

    return build


def _watchpoint_cycle(factory, probe_name: str, threshold: float,
                      max_cycles: int) -> Optional[int]:
    """First cycle the armed trigger query fires, or None."""
    from repro.observability.triggers import (
        CompiledTriggerQuery,
        rob_occupancy,
        trace_buffer_occupancy,
    )

    sim = factory()
    probe = (
        rob_occupancy(sim.tm)
        if probe_name == "rob"
        else trace_buffer_occupancy(sim.feed)
    )
    query = CompiledTriggerQuery.below(
        sim.tm, "watchpoint", probe, threshold
    )
    sim.run(max_cycles=max_cycles)
    return query.first_fired


def _cmd_capture(args) -> int:
    from repro.observability.watch import capture_debug_capsule

    factory = _factory(args)
    center = args.at_cycle
    if center is None and args.watch_below is not None:
        probe_name, threshold = args.watch_below
        center = _watchpoint_cycle(
            factory, probe_name, threshold, args.max_cycles
        )
        if center is None:
            print("watchpoint never fired; nothing to capture")
            return 1
    capsule = capture_debug_capsule(
        factory,
        workload=args.workload,
        label=args.label,
        inject=args.inject,
        center=center,
        delta=args.delta,
        profile=not args.no_profile,
        max_cycles=args.max_cycles,
        root=args.root,
    )
    if capsule is None:
        print("no invariant fired; nothing to capture")
        return 1
    window = capsule.window
    print("capsule: %s" % capsule.capsule_id)
    print("  path:    %s" % capsule.path)
    print("  reason:  %s" % capsule.reason)
    print("  window:  cycles [%s, %s] around %s"
          % (window.get("start"), window.get("end"), window.get("center")))
    print("  content: %s" % capsule.content_hash)
    return 0


def _cmd_list(args) -> int:
    ids = list_capsules(args.root)
    if not ids:
        print("no capsules under %s" % args.root)
        return 0
    for capsule_id in ids:
        capsule = load_capsule(capsule_id, args.root)
        window = capsule.window
        print(
            "%-48s %-12s cycles [%s, %s]  %s"
            % (
                capsule_id,
                capsule.workload or "-",
                window.get("start"),
                window.get("end"),
                capsule.reason,
            )
        )
    return 0


def _cmd_show(args) -> int:
    capsule = load_capsule(args.ref, args.root)
    problems = verify_capsule(capsule)
    if args.json:
        print(json.dumps(
            {
                "manifest": capsule.manifest,
                "payload": capsule.payload(),
                "rows": capsule.rows(),
                "events": capsule.events(),
                "integrity_problems": problems,
            },
            indent=2, sort_keys=True,
        ))
        return 1 if problems else 0
    window = capsule.window
    print("capsule %s" % capsule.capsule_id)
    print("  workload: %s" % (capsule.workload or "-"))
    print("  reason:   %s" % capsule.reason)
    print("  engine:   %s" % capsule.host.get("engine", "?"))
    print("  window:   cycles [%s, %s] around %s (delta %s)"
          % (window.get("start"), window.get("end"),
             window.get("center"), window.get("delta")))
    if capsule.source_run:
        print("  source:   %s" % capsule.source_run)
    print("  content:  %s" % capsule.content_hash)
    if problems:
        for problem in problems:
            print("  INTEGRITY: %s" % problem)
    violation = capsule.violation
    if violation:
        print("  violation: %s/%s at cycle %s (observed %s)"
              % (violation.get("path"), violation.get("invariant"),
                 violation.get("cycle"), violation.get("value")))
        if violation.get("desc"):
            print("    %s" % violation["desc"])
    rows = capsule.rows()
    events = capsule.events()
    print("  %d rows, %d events" % (len(rows), len(events)))
    shown = rows if args.rows is None else rows[: args.rows]
    if shown:
        print()
        print("  %8s %10s %8s %4s %4s %4s %5s %6s %10s"
              % ("cycle", "pc", "in", "rob", "rs", "lsq", "tb",
                 "ckpts", "committed"))
        violation_cycle = capsule.violation_cycle
        for row in shown:
            marker = " <-- violation" if row["cycle"] == violation_cycle \
                else ""
            print("  %8d 0x%08x %8d %4d %4d %4d %5d %6d %10d%s"
                  % (row["cycle"], row["pc"], row["in_count"], row["rob"],
                     row["rs"], row["lsq"], row["tb"], row["checkpoints"],
                     row["committed"], marker))
    if args.events and events:
        print()
        for event in events[: args.events]:
            print("  %s" % json.dumps(event, sort_keys=True,
                                      separators=(",", ":")))
    return 1 if problems else 0


def _cmd_diff(args) -> int:
    a = load_capsule(args.a, args.root)
    b = load_capsule(args.b, args.root)
    report = diff_capsules(a, b, max_diffs=args.max_diffs)
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
        return 0 if report["identical"] else 1
    print("diff %s vs %s" % (a.capsule_id, b.capsule_id))
    if report["identical"]:
        print("  identical (content hash %s)" % a.content_hash)
        return 0
    if report["content_hash_match"]:
        print("  content hashes match")
    else:
        print("  content hashes DIFFER: %s vs %s"
              % (a.content_hash[:12], b.content_hash[:12]))
    first = report["first_divergence"]
    if first is not None:
        print("  first divergence: cycle %d field %r"
              % (first["cycle"], first["field"]))
        print("    a: %s" % (first["a"],))
        print("    b: %s" % (first["b"],))
    for diff in report["diffs"][1:]:
        print("  cycle %d %r: %s -> %s"
              % (diff["cycle"], diff["field"], diff["a"], diff["b"]))
    if report["diffs_truncated"]:
        print("  ... further diffs truncated (--max-diffs)")
    if report["cycles_only_a"]:
        print("  cycles only in a: %s" % report["cycles_only_a"])
    if report["cycles_only_b"]:
        print("  cycles only in b: %s" % report["cycles_only_b"])
    return 1


def _cmd_flame(args) -> int:
    from repro.observability.flight.analytics import write_flame

    capsule = load_capsule(args.ref, args.root)
    if capsule.profile() is None:
        print(
            "capsule %s carries no tick profile (captured on the legacy "
            "engine, or with --no-profile)" % capsule.capsule_id
        )
        return 1
    count = write_flame(capsule, args.out)
    print("wrote %s: %d collapsed stacks" % (args.out, count))
    return 0


def debug_main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro debug",
        description="capture, list, inspect and diff time-travel debug "
        "capsules",
    )
    parser.add_argument(
        "--root", default=DEFAULT_ROOT,
        help="artifact root directory (default %(default)s)",
    )
    # Accepted both before and after the subcommand; SUPPRESS keeps the
    # subparser from clobbering a value given up front.
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument("--root", default=argparse.SUPPRESS,
                        help="artifact root directory")
    sub = parser.add_subparsers(dest="command")

    cap = sub.add_parser(
        "capture",
        parents=[common],
        help="probe for an invariant violation (or use an explicit "
        "cycle/watchpoint) and capture the window around it",
    )
    cap.add_argument("--workload", default="linux-boot",
                     help="workload name (default %(default)s)")
    cap.add_argument("--engine", default="compiled",
                     choices=("compiled", "legacy"))
    cap.add_argument("--delta", type=int, default=64,
                     help="half-width of the capture window in cycles "
                     "(default %(default)s)")
    cap.add_argument("--inject", default=None,
                     choices=("rob", "credit", "ckpt"),
                     help="deliberately fire one canonical invariant by "
                     "shrinking its armed bound (observation-only)")
    cap.add_argument("--at-cycle", type=int, default=None,
                     help="skip the probe run and capture around this cycle")
    cap.add_argument("--watch-below", type=_parse_watch, default=None,
                     metavar="PROBE:THRESHOLD",
                     help="capture around the first cycle the probe (rob "
                     "or tb occupancy) drops below THRESHOLD")
    cap.add_argument("--max-cycles", type=int, default=DEFAULT_MAX_CYCLES)
    cap.add_argument("--boot-sleep-ticks", type=int, default=20)
    cap.add_argument("--label", default=None,
                     help="capsule label (default: the invariant name)")
    cap.add_argument("--no-profile", action="store_true",
                     help="skip TickProfiler rows in the capture")

    lst = sub.add_parser("list", parents=[common], help="list capsules")

    show = sub.add_parser("show", parents=[common],
                          help="inspect one capsule")
    show.add_argument("ref", help="capsule id, unique prefix, or path")
    show.add_argument("--rows", type=int, default=16,
                      help="window rows to print (default %(default)s)")
    show.add_argument("--events", type=int, default=0,
                      help="seam events to print (default %(default)s)")
    show.add_argument("--json", action="store_true",
                      help="dump manifest, payload, rows and events as JSON")

    diff = sub.add_parser(
        "diff", parents=[common],
        help="cycle-by-cycle field diff of two capsules",
    )
    diff.add_argument("a")
    diff.add_argument("b")
    diff.add_argument("--max-diffs", type=int, default=64)
    diff.add_argument("--json", action="store_true")

    flame = sub.add_parser(
        "flame", parents=[common],
        help="export a capsule's tick profile as collapsed stacks",
    )
    flame.add_argument("ref")
    flame.add_argument("--out", default="capsule-flame.txt", metavar="PATH")

    args = parser.parse_args(argv)
    del lst  # no extra arguments beyond --root
    try:
        if args.command == "capture":
            return _cmd_capture(args)
        if args.command == "list" or args.command is None:
            return _cmd_list(args)
        if args.command == "show":
            return _cmd_show(args)
        if args.command == "diff":
            return _cmd_diff(args)
        if args.command == "flame":
            return _cmd_flame(args)
    except ArtifactError as exc:
        print("error: %s" % exc)
        return 2
    parser.error("unknown command %r" % args.command)
    return 2
