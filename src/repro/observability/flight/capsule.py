"""Debug capsules: content-addressed time-travel captures.

A capsule is a new FastFlight artifact kind: the maximum-detail record
of one re-executed window ``[C-delta, C+delta]`` around a cycle of
interest -- an invariant violation, an armed watchpoint, or the first-
diverging event of a regression bisection.  It lives alongside run
artifacts under ``results/runs/<id>/`` so the existing listing and
upload machinery see it::

    manifest.json   identity, file hashes, volatile host section
                    (engine, wall seconds) kept outside the hash
    capsule.json    window summary, violation record, baseline stats
    window.jsonl    one per-tick capture row per line
    events.jsonl    the window's seam events (unbounded tracer)
    profile.json    TickProfiler rows        (compiled engine only)

Content addressing follows the run-artifact contract: the id hashes
the *target-deterministic* payload (capsule.json, window.jsonl,
events.jsonl) plus the identity fields.  The identity deliberately
excludes the tick engine and the profile -- both engines visit
bit-identical per-cycle state, so a same-seed capture under ``legacy``
and ``compiled`` produces byte-identical hashed payloads and therefore
the same content hash.  That property is pinned by tests and is what
makes a capsule a trustworthy record rather than a screenshot.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.observability.flight.artifact import (
    DEFAULT_ROOT,
    MANIFEST_NAME,
    PROFILE_NAME,
    ArtifactError,
    _content_hash,
    _sha256_text,
    _slug,
    canonical_json,
)

CAPSULE_SCHEMA_VERSION = 1
CAPSULE_KIND = "capsule"
CAPSULE_PREFIX = "capsule"

CAPSULE_NAME = "capsule.json"
WINDOW_NAME = "window.jsonl"
EVENTS_NAME = "events.jsonl"

# Payload files whose bytes enter the content hash.  profile.json is
# host wall-time and engine-specific; it rides along unhashed.
CAPSULE_HASHED_FILES = (CAPSULE_NAME, WINDOW_NAME, EVENTS_NAME)


def _jsonl(records: List[dict]) -> str:
    if not records:
        return ""
    return "\n".join(
        json.dumps(record, sort_keys=True, separators=(",", ":"))
        for record in records
    ) + "\n"


@dataclass
class CapsuleArtifact:
    """One loaded capsule directory."""

    path: str
    manifest: Dict[str, Any]

    @property
    def capsule_id(self) -> str:
        return str(self.manifest.get("run_id", os.path.basename(self.path)))

    @property
    def content_hash(self) -> str:
        return str(self.manifest.get("content_hash", ""))

    @property
    def label(self) -> str:
        return str(self.manifest.get("label", ""))

    @property
    def workload(self) -> Optional[str]:
        return self.manifest.get("workload")

    @property
    def reason(self) -> str:
        return str(self.manifest.get("reason", ""))

    @property
    def window(self) -> Dict[str, Any]:
        return dict(self.manifest.get("window", {}))

    @property
    def violation(self) -> Optional[Dict[str, Any]]:
        return self.manifest.get("violation")

    @property
    def violation_cycle(self) -> Optional[int]:
        violation = self.violation
        return None if violation is None else violation.get("cycle")

    @property
    def source_run(self) -> Optional[str]:
        return self.manifest.get("source_run")

    @property
    def host(self) -> Dict[str, Any]:
        return dict(self.manifest.get("host", {}))

    def contains_cycle(self, cycle: int) -> bool:
        window = self.window
        start, end = window.get("start"), window.get("end")
        if start is None or end is None:
            return False
        return start <= cycle <= end

    # -- payload readers -------------------------------------------------

    def _read(self, name: str) -> Optional[str]:
        path = os.path.join(self.path, name)
        if not os.path.exists(path):
            return None
        with open(path) as fh:
            return fh.read()

    def payload(self) -> Dict[str, Any]:
        text = self._read(CAPSULE_NAME)
        return json.loads(text) if text else {}

    def rows(self) -> List[Dict[str, Any]]:
        """The per-tick capture rows, in cycle order."""
        text = self._read(WINDOW_NAME)
        if not text:
            return []
        return [json.loads(line) for line in text.splitlines() if line]

    def events(self) -> List[Dict[str, Any]]:
        text = self._read(EVENTS_NAME)
        if not text:
            return []
        return [json.loads(line) for line in text.splitlines() if line]

    def profile(self) -> Optional[Dict[str, Any]]:
        text = self._read(PROFILE_NAME)
        return json.loads(text) if text else None


# -- emission --------------------------------------------------------------


def emit_capsule(
    capture,
    label: str,
    workload: Optional[str] = None,
    reason: str = "",
    violation: Optional[Dict[str, Any]] = None,
    source_run: Optional[str] = None,
    host: Optional[Dict[str, Any]] = None,
    root: str = DEFAULT_ROOT,
) -> CapsuleArtifact:
    """Write one debug capsule from a
    :class:`~repro.functional.replay.WindowCapture` and return it
    loaded.

    *violation* is the triggering :class:`Violation` as a dict (or None
    for watchpoint/explicit-cycle captures); *source_run* optionally
    links the run artifact whose cycle numbering the window used.
    """
    window = capture.summary()
    payload: Dict[str, Any] = {
        "schema": CAPSULE_SCHEMA_VERSION,
        "kind": CAPSULE_KIND,
        "label": label,
        "workload": workload,
        "reason": reason,
        "violation": violation,
        "window": window,
        "baseline": dict(sorted(capture.baseline.items())),
    }
    files: Dict[str, str] = {
        CAPSULE_NAME: canonical_json(payload),
        WINDOW_NAME: _jsonl(capture.rows),
        EVENTS_NAME: _jsonl(capture.events),
    }
    if capture.profile is not None:
        files[PROFILE_NAME] = canonical_json(capture.profile)

    identity: Dict[str, Any] = {
        "schema": CAPSULE_SCHEMA_VERSION,
        "kind": CAPSULE_KIND,
        "label": label,
        "workload": workload,
        "window": window,
        "violation": violation,
    }
    file_hashes = {
        name: _sha256_text(text)
        for name, text in files.items()
        if name in CAPSULE_HASHED_FILES
    }
    content_hash = _content_hash(identity, file_hashes)

    base_id = "%s-%s-%s" % (CAPSULE_PREFIX, _slug(label), content_hash[:12])
    os.makedirs(root, exist_ok=True)
    capsule_id = base_id
    serial = 1
    while os.path.exists(os.path.join(root, capsule_id)):
        # Same-content re-captures are kept side by side, like run
        # artifacts: the byte-identity tests diff two of them.
        serial += 1
        capsule_id = "%s.%d" % (base_id, serial)
    path = os.path.join(root, capsule_id)
    os.makedirs(path)

    manifest: Dict[str, Any] = dict(identity)
    manifest["run_id"] = capsule_id
    manifest["content_hash"] = content_hash
    manifest["reason"] = reason
    manifest["source_run"] = source_run
    manifest["files"] = {
        name: file_hashes.get(name, "") for name in sorted(files)
    }
    manifest["host"] = dict(host or {})
    manifest["host"]["engine"] = capture.engine

    for name, text in files.items():
        with open(os.path.join(path, name), "w") as fh:
            fh.write(text)
    with open(os.path.join(path, MANIFEST_NAME), "w") as fh:
        fh.write(json.dumps(manifest, sort_keys=True, indent=2) + "\n")
    return CapsuleArtifact(path=path, manifest=manifest)


# -- loading and query -----------------------------------------------------


def is_capsule_dir(path: str) -> bool:
    manifest = os.path.join(path, MANIFEST_NAME)
    if not os.path.exists(manifest):
        return False
    try:
        with open(manifest) as fh:
            return json.load(fh).get("kind") == CAPSULE_KIND
    except (OSError, ValueError):
        return False


def list_capsules(root: str = DEFAULT_ROOT) -> List[str]:
    """Capsule ids under *root*, sorted."""
    if not os.path.isdir(root):
        return []
    return sorted(
        name
        for name in os.listdir(root)
        if is_capsule_dir(os.path.join(root, name))
    )


def load_capsule(ref: str, root: str = DEFAULT_ROOT) -> CapsuleArtifact:
    """Load a capsule by directory path, id, or unique id prefix."""
    candidates: List[str] = []
    if os.path.isdir(ref) and is_capsule_dir(ref):
        candidates = [ref]
    else:
        direct = os.path.join(root, ref)
        if is_capsule_dir(direct):
            candidates = [direct]
        else:
            matches = [
                cid for cid in list_capsules(root) if cid.startswith(ref)
            ]
            if len(matches) > 1:
                raise ArtifactError(
                    "ambiguous capsule %r: matches %s" % (ref, matches)
                )
            candidates = [os.path.join(root, m) for m in matches]
    if not candidates:
        raise ArtifactError(
            "no capsule %r under %s (try 'python -m repro debug list')"
            % (ref, root)
        )
    path = candidates[0]
    with open(os.path.join(path, MANIFEST_NAME)) as fh:
        manifest = json.load(fh)
    return CapsuleArtifact(path=path, manifest=manifest)


def find_capsules(
    root: str = DEFAULT_ROOT,
    workload: Optional[str] = None,
    containing_cycle: Optional[int] = None,
    source_run: Optional[str] = None,
) -> List[CapsuleArtifact]:
    """Capsules matching every given filter (None filters match all)."""
    out = []
    for capsule_id in list_capsules(root):
        capsule = load_capsule(capsule_id, root)
        if workload is not None and capsule.workload != workload:
            continue
        if containing_cycle is not None and not capsule.contains_cycle(
            containing_cycle
        ):
            continue
        if source_run is not None and capsule.source_run != source_run:
            continue
        out.append(capsule)
    return out


def verify_capsule(capsule: CapsuleArtifact) -> List[str]:
    """Re-hash payload files against the manifest; returns problems
    (empty == intact)."""
    problems = []
    recorded = capsule.manifest.get("files", {})
    for name, want in sorted(recorded.items()):
        path = os.path.join(capsule.path, name)
        if not os.path.exists(path):
            problems.append("missing payload file %s" % name)
            continue
        if name not in CAPSULE_HASHED_FILES or not want:
            continue
        with open(path) as fh:
            got = _sha256_text(fh.read())
        if got != want:
            problems.append(
                "hash mismatch on %s: manifest %s.., file %s.."
                % (name, want[:12], got[:12])
            )
    identity = {
        key: capsule.manifest.get(key)
        for key in ("schema", "kind", "label", "workload", "window",
                    "violation")
    }
    hashes = {
        name: value
        for name, value in recorded.items()
        if name in CAPSULE_HASHED_FILES and value
    }
    if _content_hash(identity, hashes) != capsule.content_hash:
        problems.append("content hash does not match manifest identity")
    return problems


# -- capsule diffing -------------------------------------------------------

# Scalar per-tick row fields compared cycle-by-cycle, in report order.
ROW_FIELDS = (
    "pc", "in_count", "halted", "flags", "regs", "fregs_digest",
    "srs_digest", "rob", "rs", "lsq", "tb", "buffered", "committed",
    "checkpoints", "stats",
)


def diff_capsules(
    a: CapsuleArtifact,
    b: CapsuleArtifact,
    max_diffs: int = 64,
) -> Dict[str, Any]:
    """Cycle-by-cycle field diff of two capsules.

    Rows are aligned by target cycle; the first differing (cycle,
    field) pair is the first divergence.  Two capsules of the same
    same-seed run diff clean by construction -- anything else is the
    exact point two 'identical' histories stopped agreeing.
    """
    rows_a = {row["cycle"]: row for row in a.rows()}
    rows_b = {row["cycle"]: row for row in b.rows()}
    shared = sorted(set(rows_a) & set(rows_b))
    only_a = sorted(set(rows_a) - set(rows_b))
    only_b = sorted(set(rows_b) - set(rows_a))

    diffs: List[Dict[str, Any]] = []
    truncated = False
    for cycle in shared:
        row_a, row_b = rows_a[cycle], rows_b[cycle]
        for fld in ROW_FIELDS:
            va, vb = row_a.get(fld), row_b.get(fld)
            if va != vb:
                if len(diffs) < max_diffs:
                    diffs.append(
                        {"cycle": cycle, "field": fld, "a": va, "b": vb}
                    )
                else:
                    truncated = True
    first = diffs[0] if diffs else None
    identical = (
        not diffs and not only_a and not only_b
        and a.content_hash == b.content_hash
    )
    return {
        "identical": identical,
        "content_hash_match": a.content_hash == b.content_hash,
        "first_divergence": first,
        "diffs": diffs,
        "diffs_truncated": truncated,
        "cycles_only_a": only_a,
        "cycles_only_b": only_b,
    }
