"""A minimal columnar table for offline artifact analytics.

The offline query engine wants columnar access -- scan one field of a
hundred-thousand-event trace without materializing per-row dicts -- but
the repo takes no external dependencies, so this is the smallest
columnar store that serves :mod:`repro.observability.flight.analytics`:
named, equal-length columns with select/filter/group primitives.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence

MISSING = None


class ColumnTable:
    """Named, equal-length columns; rows exist only as views."""

    def __init__(self, columns: Optional[Dict[str, List[Any]]] = None):
        self._columns: Dict[str, List[Any]] = {}
        self._length = 0
        for name, values in (columns or {}).items():
            self.add_column(name, list(values))

    # -- construction ----------------------------------------------------

    @classmethod
    def from_records(
        cls,
        records: Iterable[Dict[str, Any]],
        columns: Optional[Sequence[str]] = None,
    ) -> "ColumnTable":
        """Pivot row dicts into columns; *columns* fixes the schema,
        otherwise it is the union of keys in first-seen order."""
        records = list(records)
        if columns is None:
            seen: Dict[str, None] = {}
            for record in records:
                for key in record:
                    seen.setdefault(key)
            columns = list(seen)
        data: Dict[str, List[Any]] = {name: [] for name in columns}
        for record in records:
            for name in columns:
                data[name].append(record.get(name, MISSING))
        table = cls()
        table._length = len(records)
        table._columns = data
        return table

    def add_column(self, name: str, values: List[Any]) -> "ColumnTable":
        if self._columns and len(values) != self._length:
            raise ValueError(
                "column %r has %d values, table has %d rows"
                % (name, len(values), self._length)
            )
        self._columns[name] = values
        self._length = len(values)
        return self

    # -- shape -----------------------------------------------------------

    def __len__(self) -> int:
        return self._length

    @property
    def columns(self) -> List[str]:
        return list(self._columns)

    def column(self, name: str) -> List[Any]:
        return self._columns[name]

    def row(self, index: int) -> Dict[str, Any]:
        return {name: values[index] for name, values in self._columns.items()}

    def records(self) -> List[Dict[str, Any]]:
        return [self.row(i) for i in range(self._length)]

    # -- relational primitives -------------------------------------------

    def select(self, *names: str) -> "ColumnTable":
        out = ColumnTable()
        for name in names:
            out.add_column(name, list(self._columns[name]))
        return out

    def _take(self, indexes: List[int]) -> "ColumnTable":
        out = ColumnTable()
        for name, values in self._columns.items():
            out.add_column(name, [values[i] for i in indexes])
        return out

    def where(self, **equals: Any) -> "ColumnTable":
        """Rows where every named column equals the given value."""
        cols = [(self._columns[name], value) for name, value in equals.items()]
        indexes = [
            i
            for i in range(self._length)
            if all(values[i] == value for values, value in cols)
        ]
        return self._take(indexes)

    def filter(self, predicate: Callable[[Dict[str, Any]], bool]) -> "ColumnTable":
        indexes = [
            i for i in range(self._length) if predicate(self.row(i))
        ]
        return self._take(indexes)

    def sort_by(self, name: str, reverse: bool = False) -> "ColumnTable":
        values = self._columns[name]
        indexes = sorted(
            range(self._length), key=lambda i: values[i], reverse=reverse
        )
        return self._take(indexes)

    # -- aggregation -----------------------------------------------------

    def sum(self, name: str) -> float:
        return sum(v for v in self._columns[name] if v is not MISSING)

    def group_count(self, key: str) -> Dict[Any, int]:
        out: Dict[Any, int] = {}
        for value in self._columns[key]:
            out[value] = out.get(value, 0) + 1
        return out

    def group_sum(self, key: str, value: str) -> Dict[Any, float]:
        out: Dict[Any, float] = {}
        keys = self._columns[key]
        values = self._columns[value]
        for i in range(self._length):
            if values[i] is MISSING:
                continue
            out[keys[i]] = out.get(keys[i], 0) + values[i]
        return out
