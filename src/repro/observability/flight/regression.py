"""Cross-run regression diagnosis over run artifacts.

Three questions, in escalating severity:

1. **Did performance regress?**  Host metrics (cycles/sec) are compared
   baseline-vs-candidate inside a noise band -- host wall time is the
   one legitimately nondeterministic quantity, so it gets a tolerance.
2. **Did the target diverge?**  ``TimingStats`` are target-deterministic
   by the repo's core invariant, so *any* field mismatch between runs of
   the same configuration is a correctness regression, not noise.
3. **Where did it diverge?**  When two supposedly deterministic runs
   disagree and both carry seam traces, the event streams are bisected
   (binary search over prefix hashes) to the *first* diverging event,
   named with its cycle, originating module and payload diff -- the
   debugging entry point, instead of two multi-megabyte JSONL files.

``compare_against_bench`` applies the same machinery against the
committed ``BENCH_*.json`` baselines, giving CI a regression gate.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.observability.flight.analytics import (
    module_for_kind,
    seam_attribution,
)
from repro.observability.flight.artifact import RunArtifact

DEFAULT_NOISE = 0.05

# Host metrics gated by the noise band: (manifest key, higher_is_better).
HOST_METRICS: Tuple[Tuple[str, bool], ...] = (
    ("cycles_per_sec", True),
    ("seconds", False),
)


# -- event-stream bisection -------------------------------------------------


@dataclass
class Divergence:
    """The first point at which two event streams disagree."""

    index: int
    kind: str
    module: str
    cycle_a: Optional[int]
    cycle_b: Optional[int]
    fields: List[str]
    a: Optional[Dict[str, Any]]
    b: Optional[Dict[str, Any]]
    missing_side: Optional[str] = None  # "a" or "b" ran out of events

    def describe(self) -> str:
        if self.missing_side is not None:
            other = "a" if self.missing_side == "b" else "b"
            present = self.a if self.missing_side == "b" else self.b
            return (
                "streams identical through record %d, then side %s ends; "
                "side %s continues with %s@cycle=%s (%s)"
                % (
                    self.index,
                    self.missing_side,
                    other,
                    self.kind,
                    (present or {}).get("cycle"),
                    self.module,
                )
            )
        parts = []
        for name in self.fields:
            parts.append(
                "%s: %r -> %r"
                % (name, (self.a or {}).get(name), (self.b or {}).get(name))
            )
        return (
            "first divergence at record %d (module %s, kind %s, "
            "cycle %s vs %s): %s"
            % (
                self.index,
                self.module,
                self.kind,
                self.cycle_a,
                self.cycle_b,
                "; ".join(parts) or "records differ",
            )
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "index": self.index,
            "kind": self.kind,
            "module": self.module,
            "cycle_a": self.cycle_a,
            "cycle_b": self.cycle_b,
            "fields": list(self.fields),
            "a": self.a,
            "b": self.b,
            "missing_side": self.missing_side,
        }


def _canonical_records(events: List[Dict[str, Any]]) -> List[str]:
    return [
        json.dumps(event, sort_keys=True, separators=(",", ":"))
        for event in events
    ]


def _prefix_hashes(records: List[str]) -> List[bytes]:
    """``hashes[i]`` = digest of records[:i]; O(n) precompute enabling
    O(log n) prefix-equality probes during the bisection."""
    digests = [b""]
    rolling = hashlib.sha256()
    for record in records:
        rolling.update(record.encode("utf-8"))
        rolling.update(b"\n")
        digests.append(rolling.digest())
    return digests


def _divergence_at(index: int, a: List[Dict[str, Any]],
                   b: List[Dict[str, Any]]) -> Divergence:
    rec_a = a[index] if index < len(a) else None
    rec_b = b[index] if index < len(b) else None
    if rec_a is None or rec_b is None:
        present = rec_b if rec_a is None else rec_a
        kind = str((present or {}).get("kind", ""))
        return Divergence(
            index=index,
            kind=kind,
            module=module_for_kind(kind),
            cycle_a=(rec_a or {}).get("cycle"),
            cycle_b=(rec_b or {}).get("cycle"),
            fields=[],
            a=rec_a,
            b=rec_b,
            missing_side="a" if rec_a is None else "b",
        )
    names = sorted(set(rec_a) | set(rec_b))
    fields = [
        name for name in names if rec_a.get(name) != rec_b.get(name)
    ]
    kind = str(rec_a.get("kind", rec_b.get("kind", "")))
    return Divergence(
        index=index,
        kind=kind,
        module=module_for_kind(kind),
        cycle_a=rec_a.get("cycle"),
        cycle_b=rec_b.get("cycle"),
        fields=fields,
        a=rec_a,
        b=rec_b,
    )


def bisect_divergence(
    events_a: List[Dict[str, Any]], events_b: List[Dict[str, Any]]
) -> Optional[Divergence]:
    """Binary-search two event streams for their first diverging record.

    Prefix hashes are computed once per stream (O(n)), then the longest
    common prefix is found with O(log n) equality probes -- the stream
    analogue of bisecting commits.  Returns ``None`` when the streams
    are identical, a :class:`Divergence` naming the cycle, module and
    payload delta otherwise.
    """
    rec_a = _canonical_records(events_a)
    rec_b = _canonical_records(events_b)
    common = min(len(rec_a), len(rec_b))
    hash_a = _prefix_hashes(rec_a)
    hash_b = _prefix_hashes(rec_b)
    if hash_a[common] == hash_b[common]:
        if len(rec_a) == len(rec_b):
            return None
        return _divergence_at(common, events_a, events_b)
    lo, hi = 0, common  # invariant: prefix[:lo] equal, prefix[:hi] not
    while hi - lo > 1:
        mid = (lo + hi) // 2
        if hash_a[mid] == hash_b[mid]:
            lo = mid
        else:
            hi = mid
    return _divergence_at(lo, events_a, events_b)


# -- cross-run comparison ---------------------------------------------------


@dataclass
class MetricDelta:
    metric: str
    baseline: float
    candidate: float
    ratio: float
    regressed: bool

    def to_dict(self) -> Dict[str, Any]:
        return {
            "metric": self.metric,
            "baseline": self.baseline,
            "candidate": self.candidate,
            "ratio": round(self.ratio, 4),
            "regressed": self.regressed,
        }


@dataclass
class StatMismatch:
    name: str
    baseline: Any
    candidate: Any

    def to_dict(self) -> Dict[str, Any]:
        return {
            "stat": self.name,
            "baseline": self.baseline,
            "candidate": self.candidate,
        }


@dataclass
class RegressionReport:
    baseline_id: str
    candidate_id: str
    noise: float
    metrics: List[MetricDelta] = field(default_factory=list)
    mismatches: List[StatMismatch] = field(default_factory=list)
    divergence: Optional[Divergence] = None
    trace_records: Optional[int] = None  # compared records when clean
    notes: List[str] = field(default_factory=list)

    @property
    def perf_regressed(self) -> bool:
        return any(m.regressed for m in self.metrics)

    @property
    def failed(self) -> bool:
        return self.perf_regressed or bool(self.mismatches)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "baseline": self.baseline_id,
            "candidate": self.candidate_id,
            "noise": self.noise,
            "metrics": [m.to_dict() for m in self.metrics],
            "stat_mismatches": [m.to_dict() for m in self.mismatches],
            "divergence": self.divergence.to_dict()
            if self.divergence is not None
            else None,
            "trace_records": self.trace_records,
            "notes": list(self.notes),
            "failed": self.failed,
        }


def _metric_delta(metric: str, baseline: float, candidate: float,
                  higher_is_better: bool, noise: float) -> MetricDelta:
    ratio = candidate / baseline if baseline else 0.0
    if higher_is_better:
        regressed = bool(baseline) and ratio < (1.0 - noise)
    else:
        regressed = bool(baseline) and ratio > (1.0 + noise)
    return MetricDelta(
        metric=metric,
        baseline=baseline,
        candidate=candidate,
        ratio=ratio,
        regressed=regressed,
    )


def _compare_timing(base: Dict[str, Any], cand: Dict[str, Any],
                    prefix: str = "timing.") -> List[StatMismatch]:
    out = []
    for name in sorted(set(base) | set(cand)):
        if base.get(name) != cand.get(name):
            out.append(
                StatMismatch(prefix + name, base.get(name), cand.get(name))
            )
    return out


def _compare_pulse(baseline: RunArtifact, candidate: RunArtifact,
                   report: "RegressionReport", noise: float) -> None:
    """When both artifacts adopted a FastPulse sidecar, gate the final
    telemetry rate inside the host-metric noise band and exact-compare
    the deterministic footer (only when the cadences match -- a
    different sampling interval legitimately changes the det stream)."""
    pulse_a = baseline.pulse_summary()
    pulse_b = candidate.pulse_summary()
    if pulse_a is None or pulse_b is None:
        return
    det_a = pulse_a.get("det", {})
    det_b = pulse_b.get("det", {})
    cps_a = pulse_a.get("host", {}).get("cps")
    cps_b = pulse_b.get("host", {}).get("cps")
    if cps_a and cps_b:
        report.metrics.append(
            _metric_delta("pulse.cps", float(cps_a), float(cps_b),
                          True, noise)
        )
    same_cadence = (
        det_a.get("interval_cycles") == det_b.get("interval_cycles")
        and det_a.get("horizon") == det_b.get("horizon")
    )
    if not same_cadence:
        report.notes.append(
            "pulse cadences differ; deterministic telemetry not compared"
        )
        return
    for field in ("samples", "stalls", "det_hash"):
        if det_a.get(field) != det_b.get(field):
            report.mismatches.append(
                StatMismatch("pulse." + field,
                             det_a.get(field), det_b.get(field))
            )


def compare_runs(
    baseline: RunArtifact,
    candidate: RunArtifact,
    noise: float = DEFAULT_NOISE,
) -> RegressionReport:
    """Diff two run artifacts: host metrics inside the noise band,
    TimingStats exactly, event streams bisected on mismatch."""
    report = RegressionReport(
        baseline_id=baseline.run_id,
        candidate_id=candidate.run_id,
        noise=noise,
    )
    if baseline.workload != candidate.workload:
        report.notes.append(
            "comparing different workloads (%s vs %s): stat mismatches "
            "are expected" % (baseline.workload, candidate.workload)
        )
    host_a, host_b = baseline.host, candidate.host
    for metric, higher_is_better in HOST_METRICS:
        if metric in host_a and metric in host_b:
            report.metrics.append(
                _metric_delta(
                    metric,
                    float(host_a[metric]),
                    float(host_b[metric]),
                    higher_is_better,
                    noise,
                )
            )
    if not report.metrics:
        report.notes.append("no shared host metrics; perf gate skipped")

    report.mismatches = _compare_timing(baseline.timing(), candidate.timing())
    _compare_pulse(baseline, candidate, report, noise)
    if baseline.content_hash and candidate.content_hash:
        if baseline.content_hash == candidate.content_hash:
            report.notes.append(
                "content hashes identical (%s)" % baseline.content_hash[:12]
            )

    if baseline.has_trace() and candidate.has_trace():
        events_a = baseline.events()
        events_b = candidate.events()
        report.divergence = bisect_divergence(events_a, events_b)
        if report.divergence is None:
            report.trace_records = len(events_a)
    elif report.mismatches:
        report.notes.append(
            "no seam traces on both sides; cannot bisect the divergence"
        )
    return report


# -- BENCH_*.json baseline gating -------------------------------------------


def _bench_baseline_row(bench: Dict[str, Any],
                        workload: Optional[str]) -> Optional[Dict[str, Any]]:
    workloads = bench.get("workloads", {})
    if workload is None:
        return None
    return workloads.get(workload)


def _bench_mode(row: Dict[str, Any], host: Dict[str, Any]) -> Optional[str]:
    """Which per-mode sub-row of the bench baseline to gate against:
    the candidate's recorded engine/mode when the row carries it,
    otherwise the first conventional mode present."""
    for key in (host.get("mode"), host.get("engine"),
                "compiled", "bare", "scoped", "legacy"):
        if key and isinstance(row.get(key), dict):
            return str(key)
    return None


def compare_against_bench(
    candidate: RunArtifact,
    bench: Dict[str, Any],
    noise: float = DEFAULT_NOISE,
    baseline_name: str = "BENCH",
) -> RegressionReport:
    """Gate one artifact against a committed ``BENCH_*.json`` baseline.

    Target cycles must match exactly (determinism); cycles/sec is gated
    inside the noise band.  A workload absent from the baseline is a
    note, not a failure -- new workloads must not break the gate.
    """
    report = RegressionReport(
        baseline_id=baseline_name,
        candidate_id=candidate.run_id,
        noise=noise,
    )
    row = _bench_baseline_row(bench, candidate.workload)
    if row is None:
        report.notes.append(
            "workload %r not in baseline; nothing to gate"
            % (candidate.workload,)
        )
        return report
    timing = candidate.timing()
    if "cycles" in row and timing:
        base_cycles = int(row["cycles"])
        cand_cycles = int(timing.get("cycles", -1))
        if base_cycles != cand_cycles:
            report.mismatches.append(
                StatMismatch("timing.cycles", base_cycles, cand_cycles)
            )
    mode = _bench_mode(row, candidate.host)
    if mode is not None and "cycles_per_sec" in candidate.host:
        base_cps = float(row[mode].get("cycles_per_sec", 0.0))
        report.metrics.append(
            _metric_delta(
                "cycles_per_sec[%s]" % mode,
                base_cps,
                float(candidate.host["cycles_per_sec"]),
                True,
                noise,
            )
        )
    else:
        report.notes.append("no comparable cycles/sec; perf gate skipped")
    return report


def render_report(report: RegressionReport,
                  attribution: Optional[RunArtifact] = None) -> str:
    """Human-readable regression report (the CLI's main output)."""
    lines = [
        "FastFlight regression report: %s (baseline) vs %s (candidate)"
        % (report.baseline_id, report.candidate_id),
        "noise band: +/-%.0f%% on host metrics; target stats exact"
        % (100 * report.noise),
        "",
    ]
    if report.metrics:
        lines.append(
            "%-24s %14s %14s %8s  %s"
            % ("host metric", "baseline", "candidate", "ratio", "verdict")
        )
        for m in report.metrics:
            lines.append(
                "%-24s %14.1f %14.1f %7.3fx  %s"
                % (
                    m.metric,
                    m.baseline,
                    m.candidate,
                    m.ratio,
                    "REGRESSED" if m.regressed else "ok",
                )
            )
    if report.mismatches:
        lines.append("")
        lines.append("TimingStats mismatches (%d):" % len(report.mismatches))
        for mm in report.mismatches:
            lines.append(
                "  %-28s baseline=%r candidate=%r"
                % (mm.name, mm.baseline, mm.candidate)
            )
    else:
        lines.append("")
        lines.append("TimingStats: identical")
    if report.divergence is not None:
        lines.append("")
        lines.append("event-stream bisection: " + report.divergence.describe())
    elif report.trace_records is not None:
        lines.append("")
        lines.append(
            "event streams identical (%d records compared)"
            % report.trace_records
        )
    if attribution is not None:
        from repro.observability.flight.analytics import render_attribution

        lines.append("")
        lines.append(
            render_attribution(
                seam_attribution(attribution),
                title="seam-cost attribution (candidate %s)"
                % attribution.run_id,
            )
        )
    for note in report.notes:
        lines.append("")
        lines.append("note: " + note)
    lines.append("")
    lines.append("RESULT: %s" % ("REGRESSION" if report.failed else "OK"))
    return "\n".join(lines)
