"""The offline query engine over run artifacts.

Answers the paper's post-run questions (section 6) from the files a
:class:`~repro.observability.flight.artifact.RunArtifact` persisted,
without re-running anything:

* :func:`seam_attribution` -- where did the cycles go?  Useful commit
  work vs pipe drains by cause (mispredict rollbacks, interrupts,
  exceptions, serialization) vs idle/HALT spans, each joined with the
  seam event counts that explain it (``fm_rollback``, ``tm_interrupt``,
  ``tb_highwater`` starvation warnings, ...);
* :func:`window_timeline` -- per-sampling-window IPC, busy/idle split
  and gauge occupancies, the offline rendering of Figure 6;
* :func:`flame_stacks` -- TickProfiler samples collapsed into the
  folded-stack format flame-graph tooling consumes (one
  ``frame;frame;frame value`` line per stack, values in microseconds),
  the same pipeline FireSim's TracerV feeds.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.observability.flight.artifact import RunArtifact
from repro.observability.flight.columns import ColumnTable

# Event kind -> the module of the simulator that raised it (the seam
# vocabulary established by repro.observability.events / PR 3).
KIND_MODULES: Dict[str, str] = {
    "fm_checkpoint": "functional-model",
    "fm_rollback": "functional-model",
    "tb_mispredict": "trace-buffer",
    "tb_resolve": "trace-buffer",
    "tb_interrupt": "trace-buffer",
    "tb_highwater": "trace-buffer",
    "tm_interrupt": "interrupt-coordinator",
    "idle_span": "compiled-schedule",
}

_PREFIX_MODULES = {
    "fm": "functional-model",
    "tb": "trace-buffer",
    "tm": "timing-model",
}


def module_for_kind(kind: str) -> str:
    """Best-effort module attribution for an event kind."""
    if kind in KIND_MODULES:
        return KIND_MODULES[kind]
    prefix = kind.split("_", 1)[0]
    return _PREFIX_MODULES.get(prefix, "unknown")


# -- columnar views ---------------------------------------------------------


def events_table(artifact: RunArtifact) -> ColumnTable:
    """The retained seam events as a columnar table: ``seq``, ``cycle``,
    ``kind``, ``module`` plus the union of payload fields."""
    records = []
    for event in artifact.events():
        record = dict(event)
        record["module"] = module_for_kind(str(event.get("kind", "")))
        records.append(record)
    head = ["seq", "cycle", "kind", "module"]
    seen: Dict[str, None] = {}
    for record in records:
        for key in record:
            if key not in head:
                seen.setdefault(key)
    return ColumnTable.from_records(records, columns=head + list(seen))


def _event_kind_counts(artifact: RunArtifact) -> Dict[str, int]:
    """Whole-run per-kind totals: prefer the trace footer (counts survive
    ring overflow), fall back to the retained records."""
    summary = artifact.trace_summary()
    if summary is not None and isinstance(summary.get("kinds"), dict):
        return {str(k): int(v) for k, v in summary["kinds"].items()}
    counts: Dict[str, int] = {}
    for event in artifact.events():
        kind = str(event.get("kind", ""))
        counts[kind] = counts.get(kind, 0) + 1
    return counts


# -- seam-cost attribution --------------------------------------------------


def seam_attribution(artifact: RunArtifact) -> List[Dict[str, Any]]:
    """Attribute the run's target cycles to commit work, drains by
    cause, and idle spans, with the seam event counts alongside.

    Cycle columns come from the (exactly counted) ``TimingStats`` drain
    counters; event columns come from the trace and *explain* the
    cycles: a drain:mispredict cycle exists because a ``tb_mispredict``
    round trip and an ``fm_rollback`` replay happened.  ``tb_highwater``
    has no drain counter -- the timing model does not stall, the
    functional model ran too far ahead -- so its row reports pressure
    events only.
    """
    timing = artifact.timing()
    kinds = _event_kind_counts(artifact)
    cycles = int(timing.get("cycles", 0))
    idle = int(timing.get("idle_cycles", 0))
    drains = {
        "mispredict": int(timing.get("drain_mispredict", 0)),
        "interrupt": int(timing.get("drain_interrupt", 0)),
        "exception": int(timing.get("drain_exception", 0)),
        "serialize": int(timing.get("drain_serialize", 0)),
    }
    drain_total = sum(drains.values())
    useful = max(0, cycles - idle - drain_total)

    replayed = 0
    highwater_runahead = 0
    for event in artifact.events():
        if event.get("kind") == "fm_rollback":
            replayed += int(event.get("replayed", 0))
        elif event.get("kind") == "tb_highwater":
            highwater_runahead = max(
                highwater_runahead, int(event.get("runahead", 0))
            )

    def share(n: int) -> float:
        return round(n / cycles, 4) if cycles else 0.0

    rows: List[Dict[str, Any]] = [
        {
            "category": "commit",
            "cycles": useful,
            "share": share(useful),
            "events": int(timing.get("instructions", 0)),
            "detail": "committed instructions",
        },
        {
            "category": "drain:mispredict",
            "cycles": drains["mispredict"],
            "share": share(drains["mispredict"]),
            "events": kinds.get("tb_mispredict", 0),
            "detail": "fm_rollback=%d replayed=%d (retained)"
            % (kinds.get("fm_rollback", 0), replayed),
        },
        {
            "category": "drain:interrupt",
            "cycles": drains["interrupt"],
            "share": share(drains["interrupt"]),
            "events": kinds.get("tm_interrupt", 0)
            + kinds.get("tb_interrupt", 0),
            "detail": "tm_interrupt=%d tb_interrupt=%d"
            % (kinds.get("tm_interrupt", 0), kinds.get("tb_interrupt", 0)),
        },
        {
            "category": "drain:exception",
            "cycles": drains["exception"],
            "share": share(drains["exception"]),
            "events": 0,
            "detail": "",
        },
        {
            "category": "drain:serialize",
            "cycles": drains["serialize"],
            "share": share(drains["serialize"]),
            "events": 0,
            "detail": "",
        },
        {
            "category": "idle:halt",
            "cycles": idle,
            "share": share(idle),
            "events": kinds.get("idle_span", 0),
            "detail": "fast-forwarded spans",
        },
        {
            "category": "tb:starvation",
            "cycles": 0,
            "share": 0.0,
            "events": kinds.get("tb_highwater", 0),
            "detail": "high-water warnings, max runahead %d"
            % highwater_runahead,
        },
    ]
    return rows


def render_attribution(rows: List[Dict[str, Any]],
                       title: str = "seam-cost attribution") -> str:
    lines = [
        title,
        "%-18s %12s %7s %10s  %s"
        % ("category", "cycles", "share", "events", "detail"),
    ]
    for row in rows:
        lines.append(
            "%-18s %12d %6.1f%% %10d  %s"
            % (
                row["category"],
                row["cycles"],
                100 * row["share"],
                row["events"],
                row["detail"],
            )
        )
    return "\n".join(lines)


# -- per-window timelines ---------------------------------------------------

_INSTR_SUFFIX = "/backend/instructions"


def window_timeline(artifact: RunArtifact) -> ColumnTable:
    """Per-window IPC and occupancy timeline from the fabric series.

    Columns: window index, start/end cycle, cycles, busy/idle split,
    elided window count, committed-instruction delta, IPC over busy
    cycles, plus one column per sampled gauge (e.g. the trace-buffer
    occupancy the starvation analysis reads).
    """
    report = artifact.windows()
    if report is None:
        return ColumnTable()
    records = []
    for window in report.get("windows", []):
        deltas = window.get("deltas", {})
        instructions = 0
        for key, value in deltas.items():
            if key.endswith(_INSTR_SUFFIX):
                instructions += int(value)
        busy = int(window.get("cycles", 0)) - int(window.get("idle_cycles", 0))
        record: Dict[str, Any] = {
            "index": window.get("index"),
            "start_cycle": window.get("start_cycle"),
            "end_cycle": window.get("end_cycle"),
            "cycles": window.get("cycles"),
            "busy_cycles": busy,
            "idle_cycles": window.get("idle_cycles"),
            "elided_windows": window.get("elided_windows"),
            "partial": window.get("partial"),
            "instructions": instructions,
            "ipc": round(instructions / busy, 4) if busy > 0 else 0.0,
        }
        for name, value in window.get("gauges", {}).items():
            record["gauge:" + name] = value
        records.append(record)
    return ColumnTable.from_records(records)


def render_timeline(artifact: RunArtifact, limit: int = 20) -> str:
    table = window_timeline(artifact)
    lines = [
        "per-window timeline (%d windows)" % len(table),
        "%6s %12s %12s %10s %10s %8s"
        % ("window", "start", "end", "busy", "idle", "ipc"),
    ]
    for record in table.records()[:limit]:
        lines.append(
            "%6s %12s %12s %10s %10s %8.3f"
            % (
                record["index"],
                record["start_cycle"],
                record["end_cycle"],
                record["busy_cycles"],
                record["idle_cycles"],
                record["ipc"],
            )
        )
    if len(table) > limit:
        lines.append("... %d more windows" % (len(table) - limit))
    return "\n".join(lines)


# -- flame-graph export -----------------------------------------------------


def flame_stacks(artifact: RunArtifact) -> List[str]:
    """TickProfiler samples as collapsed stacks (``a;b;c value`` lines,
    microsecond values), ready for any flamegraph renderer.

    Module rows become one stack per schedule path; the pipeline-stage
    brackets (``backend.commit`` ...) nest *inside* their owner's frame,
    so the owner's own line carries only its self time.
    """
    profile = artifact.profile()
    if profile is None:
        return []
    module_rows = profile.get("modules", [])
    stage_rows = profile.get("stages", [])

    # Stage seconds nested under the schedule path that ends with the
    # owning module's name (frontend/backend).
    stage_under: Dict[str, List[Dict[str, Any]]] = {}
    for stage in stage_rows:
        owner, _, _method = str(stage.get("stage", "")).partition(".")
        stage_under.setdefault(owner, []).append(stage)

    lines = []
    for row in module_rows:
        path = str(row.get("path", ""))
        frames = [frame for frame in path.split("/") if frame]
        if not frames:
            continue
        total_us = int(round(float(row.get("seconds", 0.0)) * 1e6))
        nested = stage_under.get(frames[-1], [])
        nested_us = 0
        for stage in nested:
            stage_us = int(round(float(stage.get("seconds", 0.0)) * 1e6))
            nested_us += stage_us
            _owner, _, method = str(stage.get("stage", "")).partition(".")
            lines.append("%s;%s %d" % (";".join(frames), method, stage_us))
        self_us = max(0, total_us - nested_us)
        lines.append("%s %d" % (";".join(frames), self_us))
    return sorted(lines)


def write_flame(artifact: RunArtifact, path: str) -> int:
    """Write the collapsed stacks to *path*; returns the line count."""
    stacks = flame_stacks(artifact)
    with open(path, "w") as fh:
        for line in stacks:
            fh.write(line + "\n")
    return len(stacks)
