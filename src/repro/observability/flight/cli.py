"""``python -m repro report``: offline artifact analytics & regression.

Modes::

    report --list                         list run artifacts
    report A                              analyze one artifact (seam-cost
                                          attribution, timeline, flame)
    report A B                            diff baseline A vs candidate B;
                                          exit 1 on regression
    report B --against BENCH_x.json       gate one artifact against a
                                          committed bench baseline
    report --against BENCH_x.json         gate every artifact whose
                                          workload the baseline knows

``--warn-only`` downgrades failures to warnings (exit 0) -- the CI
regression gate starts life warn-only, exactly like FireSim's
AutoCounter pipelines did, until the noise bands are trusted.
"""

from __future__ import annotations

import argparse
import json
import os
from typing import List, Optional

from repro.observability.flight.analytics import (
    flame_stacks,
    render_attribution,
    render_timeline,
    seam_attribution,
)
from repro.observability.flight.artifact import (
    DEFAULT_ROOT,
    ArtifactError,
    RunArtifact,
    list_artifacts,
    load_artifact,
    verify_artifact,
)
from repro.observability.flight.capsule import find_capsules, is_capsule_dir
from repro.observability.flight.regression import (
    DEFAULT_NOISE,
    compare_against_bench,
    compare_runs,
    render_report,
)


def _describe(artifact: RunArtifact) -> str:
    timing = artifact.timing()
    host = artifact.host
    bits = [
        "experiment=%s" % artifact.experiment,
        "workload=%s" % artifact.workload,
    ]
    if timing:
        bits.append("cycles=%s" % timing.get("cycles"))
    if "cycles_per_sec" in host:
        bits.append("cps=%.0f" % float(host["cycles_per_sec"]))
    if artifact.has_trace():
        bits.append("trace")
    if artifact.profile() is not None:
        bits.append("profile")
    pulse = artifact.pulse_summary()
    if pulse is not None:
        bits.append(_describe_pulse(pulse))
    return " ".join(bits)


def _describe_pulse(pulse: dict) -> str:
    """The per-run telemetry summary column: final sim rate, peak
    occupancies and stall count from the FastPulse footer."""
    det = pulse.get("det", {})
    host = pulse.get("host", {})
    parts = []
    cps = host.get("cps")
    if cps:
        parts.append("cps=%.0f" % float(cps))
    peak_tb = det.get("peak_tb")
    if peak_tb is not None:
        parts.append("peak_tb=%s" % peak_tb)
    peak_rob = det.get("peak_rob")
    if peak_rob is not None:
        parts.append("peak_rob=%s" % peak_rob)
    parts.append("stalls=%s" % det.get("stalls", 0))
    return "pulse[%s]" % " ".join(parts)


def _run_ids(root: str) -> List[str]:
    """Run-artifact ids under *root*; debug capsules share the store
    but are a different artifact kind (``repro debug list``)."""
    return [
        name for name in list_artifacts(root)
        if not is_capsule_dir(os.path.join(root, name))
    ]


def _list(root: str) -> int:
    run_ids = _run_ids(root)
    if not run_ids:
        print("no run artifacts under %s" % root)
    for run_id in run_ids:
        artifact = load_artifact(run_id, root=root)
        print("%-44s %s" % (run_id, _describe(artifact)))
    capsules = find_capsules(root)
    if capsules:
        print()
        print("debug capsules (inspect with `python -m repro debug`):")
        for capsule in capsules:
            window = capsule.window
            print("%-44s workload=%s cycles=[%s, %s]" % (
                capsule.capsule_id, capsule.workload or "-",
                window.get("start"), window.get("end")))
    return 0


def _analyze_one(artifact: RunArtifact, flame_out: Optional[str],
                 root: str = DEFAULT_ROOT) -> int:
    print("artifact %s (%s)" % (artifact.run_id, artifact.path))
    problems = verify_artifact(artifact)
    for problem in problems:
        print("INTEGRITY: %s" % problem)
    print()
    print(render_attribution(seam_attribution(artifact)))
    if artifact.windows() is not None:
        print()
        print(render_timeline(artifact))
    summary = artifact.trace_summary()
    if summary is not None:
        print()
        print(
            "trace: %d recorded, %d retained, %d dropped"
            % (summary.get("recorded", 0), summary.get("retained", 0),
               summary.get("dropped", 0))
        )
        if summary.get("dropped", 0):
            print(
                "  WARNING: ring overflowed; oldest events are missing "
                "from the stream (per-kind totals remain exact)"
            )
    pulse = artifact.pulse_summary()
    if pulse is not None:
        det = pulse.get("det", {})
        host = pulse.get("host", {})
        print()
        line = "pulse: %s samples, %s stalls" % (
            det.get("samples", 0), det.get("stalls", 0))
        if host.get("cps"):
            line += ", %.0f cyc/s" % float(host["cps"])
        if det.get("peak_tb") is not None:
            line += ", peak tb=%s" % det["peak_tb"]
        if det.get("peak_rob") is not None:
            line += ", peak rob=%s" % det["peak_rob"]
        if det.get("det_hash"):
            line += ", det %s" % str(det["det_hash"])[:12]
        print(line)
        if not det.get("finished", True):
            print("  WARNING: sidecar footer says the run never finished")
    capsules = find_capsules(root, source_run=artifact.run_id)
    if not capsules:
        capsules = find_capsules(root, workload=artifact.workload)
    if capsules:
        print()
        print("debug capsules for this run/workload:")
        for capsule in capsules:
            window = capsule.window
            print("  %-44s cycles=[%s, %s]  %s" % (
                capsule.capsule_id, window.get("start"),
                window.get("end"), capsule.reason))
        print("  (inspect with `python -m repro debug show <id>`)")
    if flame_out and artifact.profile() is not None:
        from repro.observability.flight.analytics import write_flame

        count = write_flame(artifact, flame_out)
        print()
        print("wrote %s (%d collapsed stacks)" % (flame_out, count))
    return 1 if problems else 0


def _link_divergence_capsules(report, candidate: RunArtifact,
                              root: str) -> None:
    """After event-stream bisection, point at any debug capsule whose
    re-executed window already covers the diverging cycle -- or say how
    to capture one."""
    divergence = report.divergence
    if divergence is None or divergence.cycle_a is None:
        return
    capsules = find_capsules(root, workload=candidate.workload,
                             containing_cycle=divergence.cycle_a)
    print()
    if capsules:
        print("debug capsules covering the diverging cycle %d:"
              % divergence.cycle_a)
        for capsule in capsules:
            window = capsule.window
            print("  %-44s cycles=[%s, %s]" % (
                capsule.capsule_id, window.get("start"),
                window.get("end")))
        print("  (diff with `python -m repro debug diff`)")
    else:
        print(
            "no capsule covers the diverging cycle %d; capture one with "
            "`python -m repro debug capture --workload %s --at-cycle %d`"
            % (divergence.cycle_a, candidate.workload, divergence.cycle_a)
        )


def report_main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro report",
        description="offline analytics and cross-run regression diagnosis "
        "over persistent run artifacts",
    )
    parser.add_argument(
        "runs", nargs="*", metavar="RUN",
        help="artifact directory, run id, or unique id prefix "
        "(baseline first when two are given)",
    )
    parser.add_argument(
        "--root", default=DEFAULT_ROOT,
        help="artifact store (default %(default)s)",
    )
    parser.add_argument(
        "--against", default=None, metavar="BENCH.json",
        help="gate against a committed bench baseline instead of a "
        "second artifact",
    )
    parser.add_argument(
        "--noise", type=float, default=DEFAULT_NOISE,
        help="host-metric noise band (default %(default)s)",
    )
    parser.add_argument(
        "--warn-only", action="store_true",
        help="report regressions but exit 0 (CI soft-launch mode)",
    )
    parser.add_argument(
        "--list", action="store_true", dest="list_runs",
        help="list run artifacts and exit",
    )
    parser.add_argument(
        "--json", default=None, metavar="PATH",
        help="also write the regression report(s) as JSON",
    )
    parser.add_argument(
        "--flame", default=None, metavar="PATH",
        help="with one RUN: write collapsed flame-graph stacks",
    )
    args = parser.parse_args(argv)

    if args.list_runs:
        return _list(args.root)

    try:
        return _dispatch(args)
    except ArtifactError as error:
        print("error: %s" % error)
        return 2


def _dispatch(args) -> int:
    reports = []
    exit_code = 0
    if args.against is not None:
        with open(args.against) as fh:
            bench = json.load(fh)
        baseline_name = os.path.basename(args.against)
        if args.runs:
            targets = [load_artifact(ref, root=args.root)
                       for ref in args.runs]
        else:
            targets = [
                load_artifact(run_id, root=args.root)
                for run_id in _run_ids(args.root)
            ]
            targets = [
                t for t in targets
                if t.workload in bench.get("workloads", {})
            ]
            if not targets:
                print(
                    "no artifacts under %s match baseline workloads in %s"
                    % (args.root, args.against)
                )
                return 0
        for candidate in targets:
            report = compare_against_bench(
                candidate, bench, noise=args.noise,
                baseline_name=baseline_name,
            )
            print(render_report(report, attribution=candidate))
            print()
            reports.append(report)
    elif len(args.runs) == 2:
        baseline = load_artifact(args.runs[0], root=args.root)
        candidate = load_artifact(args.runs[1], root=args.root)
        report = compare_runs(baseline, candidate, noise=args.noise)
        print(render_report(report, attribution=candidate))
        _link_divergence_capsules(report, candidate, args.root)
        reports.append(report)
    elif len(args.runs) == 1:
        return _analyze_one(
            load_artifact(args.runs[0], root=args.root), args.flame,
            root=args.root,
        )
    else:
        print(
            "error: give one RUN to analyze, two to diff, or --against/"
            "--list (see --help)"
        )
        return 2

    if args.json:
        body = [r.to_dict() for r in reports]
        with open(args.json, "w") as fh:
            json.dump(body[0] if len(body) == 1 else body, fh,
                      indent=2, sort_keys=True)
            fh.write("\n")
        print("wrote %s" % args.json)
    failed = any(r.failed for r in reports)
    if failed:
        if args.warn_only:
            print("WARN: regressions found (exit 0: --warn-only)")
            return 0
        exit_code = 1
    return exit_code
