"""FastFlight: persistent run artifacts and offline trace analytics.

FastScope (PR 3) made a running simulator observable; FastFlight makes
finished runs *durable and comparable*.  The paper's evaluation is
post-run analysis -- attributing lost cycles to rollbacks, interrupts
and trace-buffer starvation (section 6) -- and that analysis needs runs
that survive the process that produced them:

* :mod:`repro.observability.flight.artifact` -- content-addressed,
  self-describing ``results/runs/<id>/`` directories holding the run
  manifest, the final stats snapshot, the fabric window series, the
  seam event trace and (optionally) the tick-time profile;
* :mod:`repro.observability.flight.columns` -- a small columnar table
  the offline queries run over (no external dependencies);
* :mod:`repro.observability.flight.analytics` -- the offline query
  engine: seam-cost attribution, per-window IPC/occupancy timelines,
  collapsed-stack flame-graph export from TickProfiler samples;
* :mod:`repro.observability.flight.regression` -- cross-run diffing
  with noise bands, baseline gating against committed ``BENCH_*.json``
  files, and event-stream bisection to the first diverging event when
  two supposedly deterministic runs disagree;
* :mod:`repro.observability.flight.capsule` -- time-travel debug
  capsules: content-addressed captures of a re-executed window around
  an invariant violation or watchpoint (FastWatch), with cycle-by-cycle
  diffing and first-divergence search.

Exposed on the command line as ``python -m repro report`` and
``python -m repro debug``.
"""

from repro.observability.flight.analytics import (
    events_table,
    flame_stacks,
    seam_attribution,
    window_timeline,
)
from repro.observability.flight.artifact import (
    RunArtifact,
    emit_artifact,
    list_artifacts,
    load_artifact,
)
from repro.observability.flight.capsule import (
    CapsuleArtifact,
    diff_capsules,
    emit_capsule,
    find_capsules,
    list_capsules,
    load_capsule,
)
from repro.observability.flight.columns import ColumnTable
from repro.observability.flight.regression import (
    Divergence,
    RegressionReport,
    bisect_divergence,
    compare_against_bench,
    compare_runs,
)

__all__ = [
    "CapsuleArtifact",
    "ColumnTable",
    "Divergence",
    "RegressionReport",
    "RunArtifact",
    "bisect_divergence",
    "compare_against_bench",
    "compare_runs",
    "diff_capsules",
    "emit_artifact",
    "emit_capsule",
    "events_table",
    "find_capsules",
    "flame_stacks",
    "list_artifacts",
    "list_capsules",
    "load_artifact",
    "load_capsule",
    "seam_attribution",
    "window_timeline",
]
