"""FastScope: the facade wiring the whole observability layer.

One call instruments a :class:`~repro.fast.simulator.FastSimulator`
with the stats fabric, the seam event tracer, optional trigger queries
and the optional tick profiler::

    sim = FastSimulator.from_programs([...])
    scope = FastScope(sim)
    scope.watch_below("tb_low", trace_buffer_occupancy(sim.feed), 4)
    sim.run()
    report = scope.report()
    scope.write_trace("trace.jsonl")

Everything FastScope attaches is read-only with respect to the
simulation, so a scoped run produces bit-identical ``TimingStats`` to a
bare one -- the invariant the determinism tests pin.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.observability.events import (
    DEFAULT_CAPACITY,
    EventTracer,
    attach_tracer,
)
from repro.observability.fabric import DEFAULT_WINDOW_CYCLES, StatsFabric
from repro.observability.profiler import TickProfiler
from repro.observability.pulse import (
    DEFAULT_INTERVAL_CYCLES,
    LivenessWatchdog,
    PulseEmitter,
)
from repro.observability.triggers import CompiledTriggerQuery
from repro.observability.watch import InvariantMonitor


class FastScope:
    """Full observability over one FastSimulator instance.

    Construct *before* ``sim.run()`` -- the fabric baselines counters at
    attach time and the profiler must rewrite the schedule before the
    run loop hoists it.
    """

    def __init__(
        self,
        sim,
        window_cycles: int = DEFAULT_WINDOW_CYCLES,
        tracer_capacity: int = DEFAULT_CAPACITY,
        profile: bool = False,
        invariants: bool = True,
        pulse_path: Optional[str] = None,
        pulse_interval: int = DEFAULT_INTERVAL_CYCLES,
    ):
        self.sim = sim
        self.tracer: EventTracer = attach_tracer(sim, tracer_capacity)
        self.fabric = StatsFabric(
            sim.tm, window_cycles=window_cycles, extra_roots=(sim.feed,)
        )
        self.triggers: List[CompiledTriggerQuery] = []
        # The FastWatch invariant fabric is always-on by default: every
        # invariant declares an idle hint, so arming it keeps the
        # compiled engine's idle fast-forward and stays inside the
        # observability overhead budget the bench gates.
        self.monitor: Optional[InvariantMonitor] = None
        if invariants:
            self.monitor = InvariantMonitor(
                sim.tm, extra_roots=(sim.feed,)
            )
        # The FastPulse live telemetry plane: cadence-hinted like the
        # monitor, so arming it also keeps idle fast-forward (and rides
        # inside the same overhead budget the bench gates).
        self.pulse: Optional[PulseEmitter] = None
        if pulse_path is not None:
            self.pulse = PulseEmitter(
                sim.tm,
                feed=sim.feed,
                path=pulse_path,
                interval_cycles=pulse_interval,
                monitor=self.monitor,
                watchdog=LivenessWatchdog(),
            )
        self.profiler: Optional[TickProfiler] = None
        if profile:
            self.profiler = TickProfiler(sim.tm).install()

    # -- trigger queries -------------------------------------------------

    def watch(self, name: str, probe: Callable[[], float],
              condition: Callable[[float], bool],
              **kwargs) -> CompiledTriggerQuery:
        query = CompiledTriggerQuery(self.sim.tm, name, probe, condition,
                                     **kwargs)
        self.triggers.append(query)
        return query

    def watch_below(self, name: str, probe: Callable[[], float],
                    threshold: float, **kwargs) -> CompiledTriggerQuery:
        query = CompiledTriggerQuery.below(self.sim.tm, name, probe,
                                           threshold, **kwargs)
        self.triggers.append(query)
        return query

    # -- reporting -------------------------------------------------------

    def finalize(self) -> None:
        self.fabric.finalize()
        if self.pulse is not None:
            self.pulse.finalize()

    def report(self) -> Dict:
        """BENCH-style JSON for the whole scoped run."""
        self.finalize()
        flat, tree = self.fabric.statnet_reports()
        out: Dict = {
            "fabric": self.fabric.report(),
            "statnet": {
                scheme.scheme: {
                    "counters": scheme.counters,
                    "modules": scheme.modules,
                    "routing_units": round(scheme.routing_units, 1),
                    "aggregator_luts": scheme.aggregator_luts,
                    "congestion": round(scheme.congestion, 3),
                    "total_cost": round(scheme.total_cost, 1),
                }
                for scheme in (flat, tree)
            },
            "trace": self.tracer.summary(),
            "triggers": [query.report() for query in self.triggers],
        }
        if self.monitor is not None:
            out["invariants"] = self.monitor.report()
        if self.pulse is not None:
            out["pulse"] = self.pulse.summary()
        if self.profiler is not None:
            out["profile"] = self.profiler.report()
        return out

    def write_trace(self, path: str, footer: bool = False) -> int:
        """Dump the event ring as JSONL; returns the record count.
        With *footer*, append the ``trace_summary`` gap-detection
        record (whole-run drop accounting)."""
        return self.tracer.write_jsonl(path, footer=footer)
