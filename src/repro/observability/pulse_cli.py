"""``python -m repro top`` and ``python -m repro pulse``.

``top`` attaches to one or many live or finished runs by tailing their
``pulse.jsonl`` sidecars -- no coordination with the emitting process,
just line-oriented reads -- and renders a refreshing status table
(``--once`` for CI/scripts, ``--json`` for tooling).  ``pulse`` drives
the plane directly: ``pulse run`` executes a workload with the emitter
and liveness watchdog armed (the process ``top`` watches), and
``pulse export`` renders sidecars as OpenMetrics text for scrape-style
integration.

This file reads the host clock on purpose -- liveness *is* a host
property -- so the DT002 wall-clock rule is suppressed line by line.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import List, Optional

from repro.observability.pulse import (
    DEFAULT_HEARTBEAT_TIMEOUT,
    DEFAULT_INTERVAL_CYCLES,
    DEFAULT_PULSE_DIR,
    DEFAULT_STALL_CYCLES,
    LivenessWatchdog,
    PulseEmitter,
    find_sidecars,
    load_sidecar,
    render_openmetrics,
    snapshot,
)

_RUNS_ROOT = os.path.join("results", "runs")


def _default_paths() -> List[str]:
    """Where sidecars live by default: the live pulse directory plus
    every FastFlight run dir that adopted a ``pulse.jsonl`` payload."""
    paths = [DEFAULT_PULSE_DIR]
    if os.path.isdir(_RUNS_ROOT):
        for name in sorted(os.listdir(_RUNS_ROOT)):
            adopted = os.path.join(_RUNS_ROOT, name, "pulse.jsonl")
            if os.path.exists(adopted):
                paths.append(adopted)
    return paths


def _rows(paths: List[str], heartbeat_timeout: float) -> List[dict]:
    now = time.time()  # fastlint: ignore[DT002]
    return [
        snapshot(load_sidecar(path), now=now,
                 heartbeat_timeout=heartbeat_timeout)
        for path in find_sidecars(paths)
    ]


def _cell(value, pattern: str = "%s", suffix: str = "") -> str:
    if value is None:
        return "-"
    return (pattern % value) + suffix


def render_rows(rows: List[dict]) -> str:
    lines = [
        "%-18s %-12s %10s %10s %6s %9s %4s %4s %4s %4s %5s %7s %6s"
        % ("RUN", "STATUS", "CYCLE", "INSTR", "IPC", "CPS", "TB",
           "ROB", "INV", "STL", "PROG", "ETA", "AGE")
    ]
    for row in rows:
        progress = row.get("progress")
        lines.append(
            "%-18s %-12s %10d %10d %6.3f %9s %4s %4s %4s %4s %5s %7s %6s"
            % (
                row["run"][:18],
                row["status"],
                row["cycle"],
                row["instructions"],
                row["ipc"],
                _cell(row.get("cps"), "%.0f"),
                _cell(row.get("tb_occupancy")),
                _cell(row.get("rob_occupancy")),
                _cell(row.get("invariants")),
                _cell(row.get("stalls")),
                _cell(round(progress * 100) if progress is not None
                      else None, "%d", "%"),
                _cell(row.get("eta_s"), "%.0f", "s"),
                _cell(row.get("age_s"), "%.1f", "s"),
            )
        )
    return "\n".join(lines)


def top_main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro top",
        description="live status of running and finished simulations, "
        "tailed from their pulse.jsonl sidecars",
    )
    parser.add_argument(
        "paths", nargs="*",
        help="sidecar files or directories (default: %s plus adopted "
        "run-dir payloads)" % DEFAULT_PULSE_DIR,
    )
    parser.add_argument(
        "--once", action="store_true",
        help="render one snapshot and exit (CI/script mode)",
    )
    parser.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit the snapshot as JSON instead of a table",
    )
    parser.add_argument(
        "--interval", type=float, default=2.0, metavar="S",
        help="refresh period in seconds (default %(default)s)",
    )
    parser.add_argument(
        "--hb-timeout", type=float, default=DEFAULT_HEARTBEAT_TIMEOUT,
        metavar="S",
        help="no-heartbeat threshold in seconds (default %(default)s)",
    )
    args = parser.parse_args(argv)
    paths = args.paths or _default_paths()
    if args.once:
        rows = _rows(paths, args.hb_timeout)
        if args.as_json:
            print(json.dumps(rows, indent=2, sort_keys=True))
        elif not rows:
            print("no pulse sidecars under: %s" % ", ".join(paths))
            return 1
        else:
            print(render_rows(rows))
        return 0
    try:
        while True:
            rows = _rows(paths, args.hb_timeout)
            body = (
                json.dumps(rows, indent=2, sort_keys=True)
                if args.as_json
                else render_rows(rows)
            )
            # Clear + home, like any curses-free top.
            sys.stdout.write("\x1b[2J\x1b[H")
            print("repro top -- %d run(s); ctrl-c to exit" % len(rows))
            print(body)
            sys.stdout.flush()
            time.sleep(max(0.1, args.interval))
    except KeyboardInterrupt:
        return 0


def _run(args) -> int:
    from repro.experiments.harness import build_fast_simulator
    from repro.observability.cli import _build_workload
    from repro.observability.watch import InvariantMonitor
    from repro.timing.core import TimingConfig

    if args.workload != "linux-boot" and args.scale != 1:
        from repro.workloads import build

        workload = build(args.workload, scale=args.scale)
    else:
        workload = _build_workload(args.workload, args.boot_sleep_ticks)
    sim = build_fast_simulator(
        workload, timing_config=TimingConfig(engine=args.engine)
    )
    sidecar = args.sidecar or os.path.join(
        DEFAULT_PULSE_DIR, "%s.jsonl" % workload.name
    )
    monitor = InvariantMonitor(sim.tm, extra_roots=(sim.feed,))
    emitter = PulseEmitter(  # fastlint: ignore[ST004]
        sim.tm,
        feed=sim.feed,
        path=sidecar,
        workload=workload.name,
        interval_cycles=args.interval_cycles,
        horizon=args.max_cycles,
        min_wall_s=args.min_wall_s,
        monitor=monitor,
        watchdog=LivenessWatchdog(no_commit_cycles=args.stall_cycles),
        single_step=args.single_step,
    )
    result = sim.run(args.max_cycles)
    footer = emitter.finalize()
    det = footer["det"]
    print(
        "pulse: %s  cycles=%d instructions=%d samples=%d stalls=%d "
        "cps=%.0f" % (
            sidecar, det["cycle"], det["instructions"], det["samples"],
            det["stalls"], footer["host"]["cps"],
        )
    )
    if args.artifact:
        from repro.experiments.harness import flight_root
        from repro.observability.flight.artifact import emit_artifact

        artifact = emit_artifact(
            experiment="pulse",
            workload=workload.name,
            config={
                "engine": args.engine,
                "max_cycles": args.max_cycles,
                "interval_cycles": args.interval_cycles,
            },
            result=result,
            pulse=emitter,
            root=flight_root(),
        )
        print("artifact: %s" % artifact.path)
    return 0


def _export(args) -> int:
    paths = args.paths or _default_paths()
    sidecars = [load_sidecar(p) for p in find_sidecars(paths)]
    text = render_openmetrics(sidecars)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(text)
        print("wrote %s (%d run(s))" % (args.out, len(sidecars)))
    else:
        sys.stdout.write(text)
    return 0


def pulse_main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro pulse",
        description="drive the FastPulse live telemetry plane: run a "
        "workload with the emitter armed, or export sidecars as "
        "OpenMetrics text",
    )
    sub = parser.add_subparsers(dest="verb")

    run_p = sub.add_parser(
        "run", help="run one workload with pulse + liveness watchdog armed"
    )
    run_p.add_argument("--workload", default="linux-boot",
                       help="workload name (default %(default)s)")
    run_p.add_argument("--engine", default="compiled",
                       choices=("compiled", "legacy"),
                       help="tick engine (default %(default)s)")
    run_p.add_argument("--max-cycles", type=int, default=2_000_000,
                       help="cycle budget and ETA horizon "
                       "(default %(default)s)")
    run_p.add_argument("--interval-cycles", type=int,
                       default=DEFAULT_INTERVAL_CYCLES,
                       help="sampling cadence (default %(default)s)")
    run_p.add_argument("--stall-cycles", type=int,
                       default=DEFAULT_STALL_CYCLES,
                       help="watchdog no-progress threshold "
                       "(default %(default)s)")
    run_p.add_argument("--min-wall-s", type=float, default=0.0,
                       help="coalesce sample writes closer than this "
                       "(default: write every sample)")
    run_p.add_argument("--sidecar", default=None, metavar="PATH",
                       help="sidecar path (default %s/<workload>.jsonl)"
                       % DEFAULT_PULSE_DIR)
    run_p.add_argument("--boot-sleep-ticks", type=int, default=20,
                       help="sleep span of the default boot slice "
                       "(default %(default)s)")
    run_p.add_argument("--scale", type=int, default=1,
                       help="workload scale factor for suite workloads "
                       "(default %(default)s; ignored by linux-boot)")
    run_p.add_argument("--single-step", action="store_true",
                       help="register the emitter without an idle hint "
                       "(disables idle fast-forward; diagnostic only)")
    run_p.add_argument("--artifact", action="store_true",
                       help="adopt the sidecar into a FastFlight run "
                       "artifact under results/runs/")

    export_p = sub.add_parser(
        "export", help="render sidecars as OpenMetrics text"
    )
    export_p.add_argument("paths", nargs="*",
                          help="sidecar files or directories")
    export_p.add_argument("--out", default=None, metavar="PATH",
                          help="write to a file instead of stdout")

    args = parser.parse_args(argv)
    if args.verb == "run":
        return _run(args)
    if args.verb == "export":
        return _export(args)
    parser.print_help()
    return 2
