"""``python -m repro stats`` and ``python -m repro trace``.

Both commands run a workload under a fully FastScope-instrumented
simulator.  ``stats`` prints the fabric/trigger/profile report (and can
write it as BENCH-style JSON); ``trace`` writes the FM/TM seam event
ring as JSONL.  The default workload is the same fixed-seed Linux boot
slice the bench uses, so two invocations with the same arguments are
byte-reproducible -- the acceptance bar for the trace command.
"""

from __future__ import annotations

import argparse
import json
from typing import List, Optional

from repro.observability.scope import FastScope
from repro.observability.triggers import (
    rob_occupancy,
    trace_buffer_occupancy,
)

DEFAULT_WORKLOAD = "linux-boot"
DEFAULT_MAX_CYCLES = 2_000_000


def _build_workload(name: str, boot_sleep_ticks: int):
    if name == DEFAULT_WORKLOAD:
        from repro.experiments.bench import _linux_boot

        return _linux_boot(sleep_ticks=boot_sleep_ticks)
    from repro.workloads import build

    return build(name)


def _workload_names() -> List[str]:
    from repro.workloads import workload_names

    return [DEFAULT_WORKLOAD] + list(workload_names())


def _scoped_run(args, profile: bool):
    from repro.experiments.harness import build_fast_simulator
    from repro.timing.core import TimingConfig

    workload = _build_workload(args.workload, args.boot_sleep_ticks)
    sim = build_fast_simulator(
        workload, timing_config=TimingConfig(engine=args.engine)
    )
    scope = FastScope(
        sim,
        window_cycles=args.window,
        tracer_capacity=args.capacity,
        profile=profile,
    )
    scope.watch_below(
        "tb_occupancy_low", trace_buffer_occupancy(sim.feed), args.tb_low
    )
    scope.watch_below("rob_empty", rob_occupancy(sim.tm), 1)
    sim.run(args.max_cycles)
    scope.finalize()
    return sim, scope


def _common_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--workload",
        default=DEFAULT_WORKLOAD,
        help="workload name (default %(default)s; see --list)",
    )
    parser.add_argument(
        "--list", action="store_true", help="list workload names and exit"
    )
    parser.add_argument(
        "--engine",
        default="compiled",
        choices=("compiled", "legacy"),
        help="tick engine (default %(default)s)",
    )
    parser.add_argument(
        "--max-cycles",
        type=int,
        default=DEFAULT_MAX_CYCLES,
        help="target cycle budget (default %(default)s)",
    )
    parser.add_argument(
        "--window",
        type=int,
        default=65536,
        help="fabric sampling window in cycles (default %(default)s)",
    )
    parser.add_argument(
        "--capacity",
        type=int,
        default=65536,
        help="event tracer ring capacity (default %(default)s)",
    )
    parser.add_argument(
        "--tb-low",
        type=int,
        default=4,
        help="trigger threshold: trace-buffer occupancy below N "
        "(default %(default)s)",
    )
    parser.add_argument(
        "--boot-sleep-ticks",
        type=int,
        default=20,
        help="sleep span of the default boot slice (default %(default)s)",
    )
    parser.add_argument(
        "--artifact",
        action="store_true",
        help="persist the run as a FastFlight artifact under "
        "results/runs/ (stats, windows, trace, profile)",
    )


def _emit_artifact(args, sim, scope, profile: bool):
    from repro.observability.flight.artifact import emit_artifact

    artifact = emit_artifact(
        experiment=args.prog_name,
        workload=args.workload,
        config={
            "engine": args.engine,
            "max_cycles": args.max_cycles,
            "window": args.window,
            "capacity": args.capacity,
            "tb_low": args.tb_low,
            "boot_sleep_ticks": args.boot_sleep_ticks,
            "profile": profile,
        },
        result=sim._result,
        scope=scope,
    )
    print("artifact: %s" % artifact.path)
    return artifact


def stats_main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro stats",
        description="run one workload under full FastScope instrumentation "
        "and report the statistics fabric, triggers and (optionally) the "
        "tick-time profile",
    )
    _common_arguments(parser)
    parser.add_argument(
        "--profile",
        action="store_true",
        help="attribute host wall-time per module tick and pipeline stage",
    )
    parser.add_argument(
        "--out", default=None, metavar="PATH",
        help="also write the full report as JSON",
    )
    args = parser.parse_args(argv)
    args.prog_name = "stats"
    if args.list:
        print("\n".join(_workload_names()))
        return 0
    sim, scope = _scoped_run(args, profile=args.profile)
    report = scope.report()
    fabric = report["fabric"]
    print(
        "fabric: %d streams, %d windows (%d elided, %d partial) over %d "
        "cycles (%d idle)"
        % (
            fabric["registered_streams"],
            len(fabric["windows"]),
            fabric["elided_windows"],
            sum(1 for w in fabric["windows"] if w["partial"]),
            sim.tm.cycle,
            sim.tm.idle_cycles,
        )
    )
    totals = fabric["totals"]
    for name in sorted(totals):
        print("  %-32s %s" % (name, totals[name]))
    print("trace: %(recorded)d events (%(dropped)d dropped)"
          % report["trace"])
    if report["trace"]["dropped"]:
        print(
            "  WARNING: event ring overflowed; %d oldest events were "
            "dropped (per-kind totals below remain exact)"
            % report["trace"]["dropped"]
        )
    for kind, count in report["trace"]["kinds"].items():
        print("  %-32s %d" % (kind, count))
    for query in report["triggers"]:
        print(
            "trigger %-24s fired %d times (first: %s)"
            % (query["name"], query["fire_count"], query["first_fired"])
        )
    if scope.profiler is not None:
        print()
        print(scope.profiler.render())
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print("wrote %s" % args.out)
    if args.artifact:
        _emit_artifact(args, sim, scope, profile=args.profile)
    return 0


def trace_main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro trace",
        description="run one workload with the FM/TM seam event tracer and "
        "write the ring as deterministic JSONL",
    )
    _common_arguments(parser)
    parser.add_argument(
        "--out", default="trace.jsonl", metavar="PATH",
        help="JSONL output path (default %(default)s)",
    )
    args = parser.parse_args(argv)
    args.prog_name = "trace"
    if args.list:
        print("\n".join(_workload_names()))
        return 0
    sim, scope = _scoped_run(args, profile=False)
    # The footer makes drops visible to downstream consumers of the
    # JSONL itself, not just readers of this stdout summary.
    count = scope.write_trace(args.out, footer=True)
    summary = scope.tracer.summary()
    print(
        "wrote %s: %d records + summary footer (%d emitted, %d dropped)"
        % (args.out, count, summary["recorded"], summary["dropped"])
    )
    if summary["dropped"]:
        print(
            "  WARNING: event ring overflowed; %d oldest events are "
            "missing from the JSONL (the footer records the gap)"
            % summary["dropped"]
        )
    for kind, total in summary["kinds"].items():
        print("  %-32s %d" % (kind, total))
    if args.artifact:
        _emit_artifact(args, sim, scope, profile=False)
    return 0
