"""Structured, cycle-stamped event tracing for the FM/TM seam.

The interesting behaviour of a FAST simulator is concentrated at the
functional/timing boundary: mispredict ``set_pc`` round trips, wrong-
path resolution, rollback replays, interrupt deliveries, checkpoint
creation, trace-buffer high-water marks.  :class:`EventTracer` records
those as structured events in a bounded ring buffer and serializes them
as JSONL.

Determinism is a hard requirement (it is what makes traces diffable
across runs): records carry only target-deterministic fields -- the
timing model's cycle at emit time, a monotonic sequence number, the
event kind and its payload.  No wall-clock, no ids, no addresses of
host objects.  Serialization uses sorted keys and compact separators so
two same-seed runs produce *byte-identical* output.

Tracing is read-only with respect to the simulation: emitting an event
never touches FM or TM state, so ``TimingStats`` are bit-identical with
tracing enabled or disabled.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, Iterator, List, Optional

DEFAULT_CAPACITY = 65536


@dataclass(frozen=True)
class Event:
    """One cycle-stamped record from the FM/TM seam."""

    seq: int
    cycle: int
    kind: str
    fields: Dict[str, object]

    def to_dict(self) -> dict:
        out: Dict[str, object] = {"seq": self.seq, "cycle": self.cycle,
                                  "kind": self.kind}
        out.update(self.fields)
        return out

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))


class EventTracer:
    """A bounded ring buffer of :class:`Event` records.

    When the ring is full the oldest events are dropped (and counted in
    :attr:`dropped`) -- observability must never grow without bound
    inside a hundred-million-cycle run.  ``seq`` keeps climbing across
    drops, so consumers can detect the gap.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY,
                 cycle_source: Optional[Callable[[], int]] = None):
        if capacity < 1:
            raise ValueError("tracer capacity must be >= 1")
        self.capacity = capacity
        self.cycle_source = cycle_source
        self.seq = 0
        self.dropped = 0
        self._ring: Deque[Event] = deque(maxlen=capacity)
        # kind -> count, over the whole run (not just what the ring
        # still holds); cheap enough to keep always.
        self.kind_counts: Dict[str, int] = {}

    def emit(self, kind: str, **fields) -> Event:
        cycle = self.cycle_source() if self.cycle_source is not None else 0
        event = Event(seq=self.seq, cycle=cycle, kind=kind, fields=fields)
        self.seq += 1
        self.kind_counts[kind] = self.kind_counts.get(kind, 0) + 1
        if len(self._ring) == self.capacity:
            self.dropped += 1
        self._ring.append(event)
        return event

    def __len__(self) -> int:
        return len(self._ring)

    def __iter__(self) -> Iterator[Event]:
        return iter(self._ring)

    @property
    def events(self) -> List[Event]:
        return list(self._ring)

    def footer(self) -> dict:
        """The gap-detection summary record appended to JSONL output:
        whole-run recorded/dropped counts and exact per-kind totals,
        which survive ring overflow even when the events themselves
        were dropped.  Target-deterministic, like every record."""
        return {
            "kind": "trace_summary",
            "recorded": self.seq,
            "retained": len(self._ring),
            "dropped": self.dropped,
            "kinds": dict(sorted(self.kind_counts.items())),
        }

    def to_jsonl(self, footer: bool = False) -> str:
        """Byte-reproducible JSONL: one sorted-key compact record per
        line, trailing newline if nonempty.  With *footer*, a final
        ``trace_summary`` record carries the whole-run drop accounting
        so consumers can detect ring-overflow gaps."""
        lines = [event.to_json() for event in self._ring]
        if footer:
            lines.append(
                json.dumps(self.footer(), sort_keys=True,
                           separators=(",", ":"))
            )
        if not lines:
            return ""
        return "\n".join(lines) + "\n"

    def write_jsonl(self, path: str, footer: bool = False) -> int:
        """Write the ring to *path*; returns the number of records."""
        text = self.to_jsonl(footer=footer)
        with open(path, "w") as fh:
            fh.write(text)
        return len(self._ring)

    def summary(self) -> dict:
        return {
            "capacity": self.capacity,
            "recorded": self.seq,
            "retained": len(self._ring),
            "dropped": self.dropped,
            "kinds": dict(sorted(self.kind_counts.items())),
        }


class _FunctionalObserver:
    """Adapter giving the FunctionalModel a tracer-shaped observer.

    The FM has no notion of target cycles; events it raises (checkpoint
    creation, rollback replay) are stamped with the timing model's
    cycle at emit time, which is deterministic because every FM step is
    driven synchronously from inside a TM tick.
    """

    def __init__(self, tracer: EventTracer):
        self.tracer = tracer

    def on_checkpoint(self, in_no: int, live: int) -> None:
        self.tracer.emit("fm_checkpoint", in_no=in_no, live_checkpoints=live)

    def on_rollback(self, target_in: int, replayed: int) -> None:
        self.tracer.emit("fm_rollback", target_in=target_in,
                         replayed=replayed)


def attach_tracer(sim, capacity: int = DEFAULT_CAPACITY) -> EventTracer:
    """Wire one :class:`EventTracer` across a FastSimulator's seam.

    Hooks the trace buffer feed (mispredict/resolve/interrupt/high-
    water), the functional model (checkpoints, rollbacks) and the
    timing model's interrupt coordinator, all stamping with
    ``sim.tm.cycle``.  Call *before* ``sim.run()``.
    """
    tm = sim.tm
    tracer = EventTracer(capacity=capacity,
                         cycle_source=lambda: tm.cycle)
    sim.feed.tracer = tracer
    sim.fm.observer = _FunctionalObserver(tracer)
    tm.tracer = tracer
    return tracer
