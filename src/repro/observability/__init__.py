"""FastScope: the runtime observability layer of the reproduction.

The paper (§3, §4.7) argues FAST statistics should flow through a
tree-based statistics network routed along the Connectors, with
run-time queries evaluated continuously and traces gathered with little
to no performance degradation.  This package realizes that design in
the Python runtime:

* :class:`StatsFabric` -- the hierarchical statistics fabric: typed
  Counter/Gauge/Histogram stats registered per Module, aggregated
  hop-by-hop up the Module tree and snapshotted per sampling window,
  idle fast-forward spans accounted for explicitly;
* :class:`EventTracer` -- a structured, cycle-stamped event tracer
  (bounded ring buffer -> JSONL) for the FM/TM seam: mispredict and
  resolution round trips, rollbacks, interrupt deliveries,
  trace-buffer high-water marks, checkpoint creation;
* :class:`CompiledTriggerQuery` -- run-time trigger queries registered
  as compiled-schedule cycle listeners *with idle hints*, so a standing
  query does not pin the engine to single-stepping;
* :class:`TickProfiler` -- host wall-time attribution per module tick
  and per pipeline stage, over the compiled schedule;
* :class:`InvariantMonitor` -- the FastWatch invariant fabric: typed
  per-Module invariants compiled into one idle-hinted cycle listener,
  checked after every executed cycle on both engines, with violations
  feeding the time-travel debug-capsule capture
  (:mod:`repro.functional.replay` +
  :mod:`repro.observability.flight.capsule`);
* :class:`PulseEmitter` -- the FastPulse live telemetry plane: an
  idle-hinted cycle listener that snapshots progress every N cycles
  into an append-only ``pulse.jsonl`` sidecar (deterministic fields
  split from host-timing fields), with a :class:`LivenessWatchdog`
  classifying no-progress stalls while out-of-process readers
  (``python -m repro top``, the OpenMetrics exporter) tail the stream;
* :class:`FastScope` -- the facade wiring all of the above onto a
  :class:`~repro.fast.simulator.FastSimulator` (or bare TimingModel).

Exposed on the command line as ``python -m repro stats``,
``python -m repro trace``, ``python -m repro debug``,
``python -m repro top`` and ``python -m repro pulse``.
"""

from repro.observability.events import Event, EventTracer, attach_tracer
from repro.observability.fabric import StatWindow, StatsFabric
from repro.observability.profiler import TickProfiler
from repro.observability.pulse import (
    LivenessWatchdog,
    PulseEmitter,
    capture_stall_capsule,
    classify,
    load_sidecar,
    render_openmetrics,
)
from repro.observability.scope import FastScope
from repro.observability.triggers import (
    CompiledTriggerQuery,
    rob_occupancy,
    trace_buffer_occupancy,
)
from repro.observability.watch import (
    InvariantMonitor,
    Violation,
    capture_debug_capsule,
    find_first_violation,
    inject_violation,
)

__all__ = [
    "CompiledTriggerQuery",
    "Event",
    "EventTracer",
    "FastScope",
    "InvariantMonitor",
    "LivenessWatchdog",
    "PulseEmitter",
    "StatWindow",
    "StatsFabric",
    "TickProfiler",
    "Violation",
    "attach_tracer",
    "capture_debug_capsule",
    "capture_stall_capsule",
    "classify",
    "find_first_violation",
    "inject_violation",
    "load_sidecar",
    "render_openmetrics",
    "rob_occupancy",
    "trace_buffer_occupancy",
]
