"""FastWatch: the always-on invariant fabric.

FAST's correctness story rests on structural properties that must hold
on *every* cycle: the ROB never exceeds its entry count, Connectors
never carry more transactions than their credit allows, the trace
buffer never runs ahead of its depth, the checkpoint grid always covers
every uncommitted rollback target, and the TM never acknowledges
commits the FM has not produced.  Today a violated property only
surfaces later, as a stats divergence FastFuzz must shrink after the
fact; FastWatch checks the properties *at the cycle they break*.

Modules declare invariants at construction time with
:meth:`~repro.timing.module.Module.new_invariant`, exactly parallel to
their FastScope stats.  :class:`InvariantMonitor` walks the module
roots, compiles every registered invariant into one per-cycle probe and
subscribes it as a cycle listener on both tick engines -- with an idle
hint derived from the invariants' own declarations, so the compiled
engine's idle fast-forward (and with it the <= 1.10x observability
budget) survives arming.

When an invariant fires, the recorded :class:`Violation` carries the
exact target cycle; run determinism then lets the capture layer
(:mod:`repro.functional.replay` + the ``python -m repro debug`` CLI)
re-execute a window around that cycle with maximum-detail capture and
emit a content-addressed debug capsule.

Everything here is observation-only: an armed monitor never changes
``TimingStats``, traces or architectural state (the determinism tests
pin this), and invariant ``check`` closures must be side-effect free
(FastLint rule IV002).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from repro.timing.module import Invariant, Module

# Effectively-infinite idle hint: an idle span never exceeds the run's
# cycle budget.  (Same convention as fabric.py and triggers.py.)
IDLE_HINT_UNBOUNDED = 1 << 40

# The hint value Module.new_invariant documents for "cannot change
# during a quiescent span" -- the common case for structural bounds,
# since idle cycles advance no pipeline state.
IDLE_STABLE = "idle-stable"


@dataclass(frozen=True)
class Violation:
    """One invariant firing: the edge cycle where ``check`` first
    returned False, plus the observed probe value (if the invariant
    registered one)."""

    invariant: str
    path: str
    cycle: int
    value: Optional[float]
    desc: str

    def message(self) -> str:
        base = "invariant %s/%s violated at cycle %d" % (
            self.path, self.invariant, self.cycle)
        if self.value is not None:
            base += " (observed %g)" % self.value
        return base

    def to_dict(self) -> dict:
        return {
            "invariant": self.invariant,
            "path": self.path,
            "cycle": self.cycle,
            "value": self.value,
            "desc": self.desc,
        }


class _Watch:
    """One compiled invariant: hot-path state for the monitor loop."""

    __slots__ = ("path", "invariant", "check", "module", "active",
                 "firings")

    def __init__(self, path: str, invariant: Invariant, module: Module):
        self.path = path
        self.invariant = invariant
        self.check = invariant.check
        self.module = module
        self.active = False  # currently in violation (edge detection)
        self.firings = 0


def _resolve_hint(hint) -> Optional[int]:
    """An invariant hint as a static idle-span bound, or None for a
    hintless (single-step-pinning) invariant."""
    if hint is None:
        return None
    if hint == IDLE_STABLE:
        return IDLE_HINT_UNBOUNDED
    if callable(hint):
        return int(hint())
    return int(hint)


def _compile_fused(watches: List[_Watch]) -> Callable[[], bool]:
    """Fuse every watch into one ``lambda: (...) and (...) and ...``.

    The same move the compiled engine makes for module ticks
    (repro.timing.pipeline.fastpath): the always-on hot path becomes a
    single Python call.  An invariant that declared an ``expr`` is
    inlined -- its expression is re-rooted from the free name ``m``
    onto the owning module -- and one without falls back to calling its
    ``check`` closure inside the chain.
    """
    parts, namespace = _fused_parts(watches)
    if not parts:
        return lambda: True
    return eval("lambda: " + " and ".join(parts), namespace)


def _fused_parts(watches: List[_Watch]):
    """The per-watch source fragments and their namespace, shared by
    the standalone fused probe and the compiled cycle listener."""
    import ast

    namespace: dict = {}
    parts: List[str] = []
    for index, watch in enumerate(watches):
        expr = watch.invariant.expr
        if expr is not None:
            name = "m%d" % index

            class _Rename(ast.NodeTransformer):
                def visit_Name(self, node: ast.Name) -> ast.Name:
                    if node.id == "m":
                        return ast.copy_location(
                            ast.Name(id=name, ctx=node.ctx), node
                        )
                    return node

            tree = _Rename().visit(ast.parse(expr, mode="eval"))
            namespace[name] = watch.module
            parts.append("(%s)" % ast.unparse(tree))
        else:
            name = "c%d" % index
            namespace[name] = watch.check
            parts.append("%s()" % name)
    return parts, namespace


def _compile_listener(watches: List[_Watch], monitor) -> Callable[[int], None]:
    """Compile the monitor's whole cycle hook with the fused probe
    spliced in.

    One Python call per executed cycle on the healthy path -- the
    conjunction evaluates inline instead of through a separate
    ``self._fused()`` call, and the only attribute the fast path
    touches is the stale-edge flag.  Fall back to the bound method
    (``InvariantMonitor._on_cycle``) for selfcheck mode, which needs
    the authoritative check closures every cycle.
    """
    parts, namespace = _fused_parts(watches)
    if not parts:
        fused_src = "True"
    else:
        fused_src = " and ".join(parts)
    namespace["_mon"] = monitor
    source = (
        "def _listener(cycle):\n"
        "    if %s:\n"
        "        if _mon._any_active:\n"
        "            _mon._clear_active()\n"
        "        return\n"
        "    _mon._scan(cycle)\n" % fused_src
    )
    exec(source, namespace)
    return namespace["_listener"]


class InvariantMonitor:
    """Arm every registered invariant under the given module roots.

    Parallel to :class:`~repro.observability.fabric.StatsFabric`: walk
    ``(tm,) + extra_roots``, collect the typed invariants, compile them
    into one cycle listener and subscribe it with the combined idle
    hint.  Checks run after every executed target cycle, on both the
    legacy and compiled engines (both run the cycle-listener hook after
    their per-cycle steps).

    Firings are edge-triggered -- a persistently-false invariant records
    one :class:`Violation` at the first failing cycle, and re-arms only
    after the check holds again.  ``on_violation``, if given, is called
    with each fresh Violation (the debug-capture hook).
    """

    def __init__(
        self,
        tm,
        extra_roots: Tuple = (),
        max_violations: int = 256,
        max_firings_per_invariant: int = 64,
        on_violation: Optional[Callable[[Violation], None]] = None,
        selfcheck: bool = False,
    ):
        self.tm = tm
        self.max_violations = max_violations
        self.max_firings_per_invariant = max_firings_per_invariant
        self.on_violation = on_violation
        self.selfcheck = selfcheck
        self.violations: List[Violation] = []
        self.firings = 0
        self.hintless: List[str] = []

        watches: List[_Watch] = []
        min_hint: int = IDLE_HINT_UNBOUNDED
        pinned = False
        roots = (tm,) + tuple(
            root for root in extra_roots if isinstance(root, Module)
        )
        for root in roots:
            for path, module in root.walk_paths():
                for invariant in module._invariants.values():
                    watches.append(_Watch(path, invariant, module))
                    bound = _resolve_hint(invariant.hint)
                    if bound is None:
                        pinned = True
                        self.hintless.append(path + "/" + invariant.name)
                    elif bound < min_hint:
                        min_hint = bound
        self._watches = watches
        self._idle_bound = min_hint
        self._any_active = False
        self._fused = _compile_fused(watches)
        # The compiled listener needs re-compiling when the watch set
        # changes (storm limit); that swap goes through
        # tm.replace_cycle_listener, so a tm without the primitive
        # (test doubles) falls back to the dynamic bound method, as
        # does selfcheck mode.
        self._listener: Optional[Callable[[int], None]] = None
        if not selfcheck and hasattr(tm, "replace_cycle_listener"):
            self._listener = _compile_listener(watches, self)
        hook = self._listener if self._listener is not None else self._on_cycle
        if watches:
            if pinned:
                # A hintless invariant (FastLint rule IV003) pins the
                # engine to single-cycle stepping: register without a
                # hint, which disables idle fast-forward entirely.
                tm.add_cycle_listener(hook)  # fastlint: ignore[ST003]
            else:
                tm.add_cycle_listener(hook, idle_hint=self._idle_hint)

    # -- hot path --------------------------------------------------------

    def _idle_hint(self, cycle: int) -> int:
        # Sound because every armed invariant declared an idle bound:
        # within the span none of their checks can change value.
        return self._idle_bound

    def _on_cycle(self, cycle: int) -> None:
        if self.selfcheck and self._fused() != all(
            w.check() for w in self._watches
        ):
            raise AssertionError(
                "fused invariant probe disagrees with the check closures "
                "at cycle %d: some expr= drifted from its check=" % cycle
            )
        if self._fused():
            # Fast path: every invariant holds -- the common case on
            # every executed cycle of a healthy run.
            if self._any_active:
                self._clear_active()
            return
        self._scan(cycle)

    # -- firing (cold path) ----------------------------------------------

    def _clear_active(self) -> None:
        """Every invariant holds again: drop stale edge state so the
        next failure fires fresh."""
        for watch in self._watches:
            watch.active = False
        self._any_active = False

    def _scan(self, cycle: int) -> None:
        """Something failed: find which, edge-detect, fire."""
        for watch in self._watches:
            if watch.check():
                watch.active = False
            elif not watch.active:
                watch.active = True
                self._fire(watch, cycle)
        # _fire may have rebuilt the list (storm limit); a dropped
        # watch no longer holds the fast path hostage.
        self._any_active = any(w.active for w in self._watches)

    def _fire(self, watch: _Watch, cycle: int) -> None:
        watch.firings += 1
        self.firings += 1
        invariant = watch.invariant
        value: Optional[float] = None
        if invariant.probe is not None:
            value = float(invariant.probe())
        violation = Violation(
            invariant=invariant.name,
            path=watch.path,
            cycle=cycle,
            value=value,
            desc=invariant.desc,
        )
        if len(self.violations) < self.max_violations:
            self.violations.append(violation)
        if watch.firings >= self.max_firings_per_invariant:
            # A storming invariant stops being evaluated; the recorded
            # firing count keeps climbing nowhere.  The watch list and
            # the fused probe are rebuilt off the hot path, and the
            # compiled listener is swapped in place (same slot, same
            # idle hint) so a run already in flight sees the new set.
            self._watches = [w for w in self._watches if w is not watch]
            self._fused = _compile_fused(self._watches)
            if self._listener is not None:
                rebuilt = _compile_listener(self._watches, self)
                self.tm.replace_cycle_listener(self._listener, rebuilt)
                self._listener = rebuilt
        if self.on_violation is not None:
            self.on_violation(violation)

    # -- reporting -------------------------------------------------------

    @property
    def armed(self) -> int:
        """Invariants still being evaluated."""
        return len(self._watches)

    @property
    def fired(self) -> bool:
        return self.firings > 0

    @property
    def first_violation(self) -> Optional[Violation]:
        return self.violations[0] if self.violations else None

    def report(self) -> dict:
        return {
            "armed": len(self._watches),
            "hintless": list(self.hintless),
            "firings": self.firings,
            "violations": [v.to_dict() for v in self.violations],
        }


# -- violation injection (tests, CI, `repro debug capture --inject`) -----

# Each canonical invariant reads its bound from an observation-only
# attribute initialized to the real configured value.  Injection
# shrinks that *armed copy* -- never the simulation state -- so the run
# itself is bit-identical to an uninjected one and the window replay
# around the (now deterministic) firing cycle stays exact.
INJECTION_KINDS = ("rob", "credit", "ckpt")


def _first_connector(tm):
    from repro.timing.connector import Connector

    for module in tm.walk():
        if isinstance(module, Connector):
            return module
    return None


def inject_violation(sim, kind: str) -> None:
    """Force a deterministic firing of one canonical invariant on
    *sim* without perturbing the simulation itself."""
    if kind == "rob":
        # Forced ROB overflow: any occupied ROB entry now violates.
        sim.tm.backend._rob_limit = 0
    elif kind == "credit":
        # Forced credit leak on the first Connector in the TM tree: the
        # armed transaction bound drops below zero, so even an empty
        # queue reads as over-credit.
        connector = _first_connector(sim.tm)
        if connector is None:
            raise ValueError("no Connector in the timing-model tree")
        connector._transactions_limit = -1
    elif kind == "ckpt":
        # Rollback-past-checkpoint: the coverage window collapses, so
        # the oldest live checkpoint can never cover it.
        sim.feed._ckpt_window = -(1 << 40)
    else:
        raise ValueError(
            "unknown injection %r (expected one of %s)"
            % (kind, ", ".join(INJECTION_KINDS))
        )


def find_first_violation(
    factory: Callable[[], object],
    inject: Optional[str] = None,
    max_cycles: int = 100_000_000,
) -> Tuple[Optional[Violation], object]:
    """Probe run: build a simulator from the zero-argument *factory*,
    arm the invariant fabric (optionally with an injected violation)
    and run to completion.  Returns ``(first_violation, monitor)``;
    the violation is None if nothing fired.

    Because runs are deterministic and the monitor evaluates on every
    executed cycle of either engine, the returned cycle is stable
    across repeated runs and across ``{legacy, compiled}``.
    """
    sim = factory()
    if inject is not None:
        inject_violation(sim, inject)
    monitor = InvariantMonitor(sim.tm, extra_roots=(sim.feed,))
    sim.run(max_cycles=max_cycles)
    return monitor.first_violation, monitor


def capture_debug_capsule(
    factory: Callable[[], object],
    workload: str,
    label: Optional[str] = None,
    inject: Optional[str] = None,
    center: Optional[int] = None,
    delta: int = 64,
    profile: bool = True,
    max_cycles: int = 100_000_000,
    source_run: Optional[str] = None,
    host: Optional[dict] = None,
    root: Optional[str] = None,
):
    """End-to-end triggered time travel: probe for the first invariant
    violation (optionally injected), re-execute the window around it,
    and emit a content-addressed debug capsule.

    With an explicit *center* the probe run is skipped entirely and the
    window is captured around that cycle (the watchpoint form: the
    caller got the cycle from a CompiledTriggerQuery firing, a
    regression divergence, or a hunch).  Returns the loaded
    :class:`~repro.observability.flight.capsule.CapsuleArtifact`, or
    None when no violation fired and no center was given.
    """
    from repro.functional.replay import replay_window
    from repro.observability.flight.capsule import DEFAULT_ROOT, emit_capsule

    violation = None
    if center is None:
        violation, _monitor = find_first_violation(
            factory, inject=inject, max_cycles=max_cycles
        )
        if violation is None:
            return None
        center = violation.cycle
    capture = replay_window(factory, center, delta=delta, profile=profile)
    if violation is not None:
        reason = violation.message()
        if inject:
            reason += " [injected: %s]" % inject
    else:
        reason = "watchpoint capture at cycle %d" % center
    return emit_capsule(
        capture,
        label=label or (violation.invariant if violation else "watchpoint"),
        workload=workload,
        reason=reason,
        violation=violation.to_dict() if violation else None,
        source_run=source_run,
        host=host,
        root=root if root is not None else DEFAULT_ROOT,
    )
