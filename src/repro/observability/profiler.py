"""Host wall-time attribution for the compiled tick engine.

The compiled schedule (PR 2) made the engine fast and opaque at once:
`CompiledSchedule.run` is one fused loop over pre-bound step callables,
so nothing tells you *where* host time goes.  :class:`TickProfiler`
re-opens the box without giving up the static schedule: it rewrites the
schedule's step tuple in place, wrapping every step with a
perf_counter bracket keyed by the module's schedule path, and wraps the
pipeline stage methods (fetch/decode and
writeback/commit/issue/dispatch) the same way via instance-attribute
shadowing -- ``Backend.tick`` calls ``self._writeback(cycle)``, so an
instance attribute wins over the class method without any change to the
pipeline code.

The same shadowing covers the *functional* side of the busy path --
the trace-buffer span fill and FastBlock superblock capture/replay --
so a profile can split host time between "the TM ticking" and "the FM
streaming the trace", and show how much of the stream was replayed
rather than interpreted (``repro report``'s busy-path explanation).

Install **before** ``run()``: the run loop hoists ``self._steps`` into
a local once at entry, so a mid-run install would never be observed.

Profiling is read-only with respect to the simulation (each wrapper
calls its wrapped step exactly once, with the same arguments), so
``TimingStats`` stay bit-identical.  It is *not* free in host time --
two clock reads per step per cycle -- which is why it is opt-in
(``--profile``) and excluded from the overhead acceptance bar.

This file reads the host clock on purpose -- it *measures* the
simulator rather than simulating -- so the DT002 wall-clock rule is
suppressed line by line, exactly as in ``experiments/bench.py``.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional, Tuple

# Pipeline stage methods bracketed per call, as (owner attr, method).
STAGE_METHODS: Tuple[Tuple[str, str], ...] = (
    ("frontend", "_decode"),
    ("frontend", "_fetch"),
    ("backend", "_writeback"),
    ("backend", "_commit"),
    ("backend", "_issue"),
    ("backend", "_dispatch"),
)


class TickProfiler:
    """Attributes host wall-time per scheduled module and per pipeline
    stage, over one compiled-engine run."""

    def __init__(self, tm):
        schedule = getattr(tm, "_schedule", None)
        if schedule is None:
            raise RuntimeError(
                "TickProfiler requires the compiled engine "
                "(TimingConfig(engine='compiled'))"
            )
        self.tm = tm
        self.schedule = schedule
        self.module_seconds: Dict[str, float] = {}
        self.module_calls: Dict[str, int] = {}
        self.stage_seconds: Dict[str, float] = {}
        self.stage_calls: Dict[str, int] = {}
        # Functional-side busy path: feed span fill, superblock work.
        self.fm_seconds: Dict[str, float] = {}
        self.fm_calls: Dict[str, int] = {}
        self._orig_steps: Optional[tuple] = None
        self._orig_stages: List[Tuple[object, str]] = []
        self.installed = False

    # -- wrapping --------------------------------------------------------

    def _wrap_step(self, path: str,
                   step: Callable[[int], None]) -> Callable[[int], None]:
        seconds = self.module_seconds
        calls = self.module_calls
        perf = time.perf_counter

        def profiled_step(cycle: int) -> None:
            t0 = perf()  # fastlint: ignore[DT002]
            step(cycle)
            seconds[path] += perf() - t0  # fastlint: ignore[DT002]
            calls[path] += 1

        return profiled_step

    def _wrap_stage(self, label: str, method: Callable,
                    seconds: Optional[Dict[str, float]] = None,
                    calls: Optional[Dict[str, int]] = None) -> Callable:
        seconds = self.stage_seconds if seconds is None else seconds
        calls = self.stage_calls if calls is None else calls
        perf = time.perf_counter

        def profiled_stage(*args):
            t0 = perf()  # fastlint: ignore[DT002]
            result = method(*args)
            seconds[label] += perf() - t0  # fastlint: ignore[DT002]
            calls[label] += 1
            return result

        return profiled_stage

    def install(self) -> "TickProfiler":
        if self.installed:
            return self
        for path in self.schedule.describe():
            self.module_seconds[path] = 0.0
            self.module_calls[path] = 0
        self._orig_steps = self.schedule.instrument_steps(self._wrap_step)
        for owner_attr, name in STAGE_METHODS:
            owner = getattr(self.tm, owner_attr)
            label = "%s.%s" % (owner_attr, name.lstrip("_"))
            self.stage_seconds[label] = 0.0
            self.stage_calls[label] = 0
            # Bound method from the class; shadow it on the instance.
            setattr(owner, name, self._wrap_stage(label, getattr(owner, name)))
            self._orig_stages.append((owner, name))
        # Functional-side brackets: the span fill that streams the
        # trace, and FastBlock capture/replay inside it.  All are
        # called through dynamic self-attribute lookups, so instance
        # shadowing applies without touching the hot code.
        feed = getattr(self.tm, "feed", None)
        fm_targets: List[Tuple[object, str, str]] = []
        if feed is not None and hasattr(feed, "_fill"):
            fm_targets.append((feed, "_fill", "feed.fill"))
        blocks = getattr(getattr(feed, "fm", None), "blocks", None)
        if blocks is not None:
            fm_targets.append((blocks, "_capture", "blocks.capture"))
            fm_targets.append((blocks, "_replay", "blocks.replay"))
        for owner, name, label in fm_targets:
            self.fm_seconds[label] = 0.0
            self.fm_calls[label] = 0
            setattr(
                owner,
                name,
                self._wrap_stage(label, getattr(owner, name),
                                 self.fm_seconds, self.fm_calls),
            )
            self._orig_stages.append((owner, name))
        self.installed = True
        return self

    def uninstall(self) -> None:
        if not self.installed:
            return
        self.schedule._steps = self._orig_steps
        for owner, name in self._orig_stages:
            delattr(owner, name)  # fall back to the class method
        self._orig_stages = []
        self.installed = False

    # -- reporting -------------------------------------------------------

    def report(self) -> dict:
        total = sum(self.module_seconds.values())
        modules = [
            {
                "path": path,
                "seconds": round(self.module_seconds[path], 6),
                "calls": self.module_calls[path],
                "share": round(self.module_seconds[path] / total, 4)
                if total
                else 0.0,
            }
            for path in sorted(
                self.module_seconds,
                key=lambda p: -self.module_seconds[p],
            )
        ]
        stages = [
            {
                "stage": label,
                "seconds": round(self.stage_seconds[label], 6),
                "calls": self.stage_calls[label],
            }
            for label in sorted(
                self.stage_seconds,
                key=lambda s: -self.stage_seconds[s],
            )
        ]
        functional = [
            {
                "label": label,
                "seconds": round(self.fm_seconds[label], 6),
                "calls": self.fm_calls[label],
            }
            for label in sorted(
                self.fm_seconds,
                key=lambda s: -self.fm_seconds[s],
            )
        ]
        return {
            "engine_seconds": round(total, 6),
            "modules": modules,
            "stages": stages,
            "functional": functional,
        }

    def render(self) -> str:
        report = self.report()
        lines = [
            "tick-time profile (host seconds inside the compiled schedule)",
            "%-40s %10s %12s %7s" % ("module", "seconds", "calls", "share"),
        ]
        for row in report["modules"]:
            lines.append(
                "%-40s %10.4f %12d %6.1f%%"
                % (row["path"], row["seconds"], row["calls"],
                   100 * row["share"])
            )
        lines.append("")
        lines.append("%-40s %10s %12s" % ("pipeline stage", "seconds",
                                          "calls"))
        for row in report["stages"]:
            lines.append(
                "%-40s %10.4f %12d"
                % (row["stage"], row["seconds"], row["calls"])
            )
        if report["functional"]:
            lines.append("")
            lines.append("%-40s %10s %12s"
                         % ("functional busy path", "seconds", "calls"))
            for row in report["functional"]:
                lines.append(
                    "%-40s %10.4f %12d"
                    % (row["label"], row["seconds"], row["calls"])
                )
        return "\n".join(lines)
