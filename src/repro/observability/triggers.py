"""Run-time trigger queries compiled into the schedule.

"Run-time queries, such as 'when does the number of active functional
units drop below 1?', can continuously run in hardware at full speed."
(paper section 3)

The legacy :class:`repro.timing.stats.TriggerQuery` appends a bare
listener to ``tm.cycle_listeners`` -- which disables the compiled
engine's idle fast-forward entirely, because a hintless listener may
need to observe *every* cycle.  :class:`CompiledTriggerQuery` is the
engine-aware replacement: it registers through
``tm.add_cycle_listener`` **with an idle hint** (FastLint rule ST003
flags the bare-append pattern).

The default hint is unbounded, and that is sound for the common case:
a probe that reads only module state (queue occupancy, ROB depth,
busy-unit counts) cannot change value across a quiescent span, because
no module executes a step inside one.  The condition is evaluated on
the cycle the span starts from and again on the waking cycle, which is
exactly the set of cycles on which its value can differ.  A probe that
depends on the cycle number itself must pass an explicit *idle_hint*
(or ``single_step=True``) instead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

IDLE_HINT_UNBOUNDED = 1 << 40

DEFAULT_MAX_FIRINGS = 10_000


@dataclass(frozen=True)
class TriggerFiring:
    """One edge-triggered match of a trigger query."""

    cycle: int
    value: float


class CompiledTriggerQuery:
    """An edge-triggered predicate over simulator state, evaluated as a
    compiled-schedule cycle listener with an idle hint.

    *probe* is a zero-argument callable returning the watched value;
    *condition* maps that value to a bool.  The query records the cycle
    at which the condition first becomes true (edge-triggered: it
    re-arms only after the condition goes false again).
    """

    def __init__(
        self,
        tm,
        name: str,
        probe: Callable[[], float],
        condition: Callable[[float], bool],
        idle_hint: Optional[Callable[[int], int]] = None,
        single_step: bool = False,
        max_firings: int = DEFAULT_MAX_FIRINGS,
    ):
        self.tm = tm
        self.name = name
        self.probe = probe
        self.condition = condition
        self.max_firings = max_firings
        self.firings: List[TriggerFiring] = []
        self.fire_count = 0
        self._armed = True
        if single_step:
            # The caller's probe is cycle-dependent: evaluate every
            # cycle, accepting that idle fast-forward is disabled.
            hint = self._hint_zero
        elif idle_hint is not None:
            hint = idle_hint
        else:
            hint = self._hint_unbounded
        tm.add_cycle_listener(self._on_cycle, idle_hint=hint)

    @staticmethod
    def _hint_unbounded(cycle: int) -> int:
        return IDLE_HINT_UNBOUNDED

    @staticmethod
    def _hint_zero(cycle: int) -> int:
        return 0

    def _on_cycle(self, cycle: int) -> None:
        value = self.probe()
        active = self.condition(value)
        if active and self._armed:
            self.fire_count += 1
            if len(self.firings) < self.max_firings:
                self.firings.append(TriggerFiring(cycle, value))
        self._armed = not active

    @property
    def first_fired(self) -> Optional[int]:
        return self.firings[0].cycle if self.firings else None

    def report(self) -> dict:
        return {
            "name": self.name,
            "fire_count": self.fire_count,
            "first_fired": self.first_fired,
            "firings": [
                {"cycle": f.cycle, "value": f.value}
                for f in self.firings[:64]
            ],
        }

    @classmethod
    def below(cls, tm, name: str, probe: Callable[[], float],
              threshold: float, **kwargs) -> "CompiledTriggerQuery":
        """The paper's canonical shape: "when does <probe> drop below
        <threshold>?"."""
        return cls(tm, name, probe,
                   lambda value: value < threshold, **kwargs)

    @classmethod
    def at_least(cls, tm, name: str, probe: Callable[[], float],
                 threshold: float, **kwargs) -> "CompiledTriggerQuery":
        return cls(tm, name, probe,
                   lambda value: value >= threshold, **kwargs)


# -- canonical probes -------------------------------------------------------


def trace_buffer_occupancy(feed) -> Callable[[], float]:
    """Probe: uncommitted entries held by the trace buffer ("when does
    trace-buffer occupancy drop below N?")."""
    return lambda: float(feed.occupancy)


def rob_occupancy(tm) -> Callable[[], float]:
    """Probe: instructions resident in the reorder buffer."""
    rob = tm.backend.rob
    return lambda: float(len(rob))
