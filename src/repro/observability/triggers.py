"""Run-time trigger queries compiled into the schedule.

"Run-time queries, such as 'when does the number of active functional
units drop below 1?', can continuously run in hardware at full speed."
(paper section 3)

The legacy :class:`repro.timing.stats.TriggerQuery` appends a bare
listener to ``tm.cycle_listeners`` -- which disables the compiled
engine's idle fast-forward entirely, because a hintless listener may
need to observe *every* cycle.  :class:`CompiledTriggerQuery` is the
engine-aware replacement: it registers through
``tm.add_cycle_listener`` **with an idle hint** (FastLint rule ST003
flags the bare-append pattern).

The default hint is unbounded, and that is sound for the common case:
a probe that reads only module state (queue occupancy, ROB depth,
busy-unit counts) cannot change value across a quiescent span, because
no module executes a step inside one.  The condition is evaluated on
the cycle the span starts from and again on the waking cycle, which is
exactly the set of cycles on which its value can differ.  A probe that
depends on the cycle number itself must pass an explicit *idle_hint*
(or ``single_step=True``) instead.

The per-cycle listener is *compiled*, the same move the engine makes
for module ticks (:mod:`repro.timing.pipeline.fastpath`) and the
invariant monitor makes for its fused probe: a canonical probe carries
an ``inline_expr`` that is spliced into the generated listener source,
and the ``below``/``at_least`` comparisons become literal operators,
so the armed steady state costs one Python call per executed cycle
instead of a listener -> probe -> condition chain.  Arbitrary probe
and condition callables still work -- they are called from the
generated body instead of being inlined.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

IDLE_HINT_UNBOUNDED = 1 << 40

DEFAULT_MAX_FIRINGS = 10_000


@dataclass(frozen=True)
class TriggerFiring:
    """One edge-triggered match of a trigger query."""

    cycle: int
    value: float


class CompiledTriggerQuery:
    """An edge-triggered predicate over simulator state, evaluated as a
    compiled-schedule cycle listener with an idle hint.

    *probe* is a zero-argument callable returning the watched value;
    *condition* maps that value to a bool.  The query records the cycle
    at which the condition first becomes true (edge-triggered: it
    re-arms only after the condition goes false again).
    """

    def __init__(
        self,
        tm,
        name: str,
        probe: Callable[[], float],
        condition: Callable[[float], bool],
        idle_hint: Optional[Callable[[int], int]] = None,
        single_step: bool = False,
        max_firings: int = DEFAULT_MAX_FIRINGS,
        _compare: Optional[Tuple[str, float]] = None,
    ):
        self.tm = tm
        self.name = name
        self.probe = probe
        self.condition = condition
        self.max_firings = max_firings
        self.firings: List[TriggerFiring] = []
        self.fire_count = 0
        self._armed = True
        self._compare = _compare
        if single_step:
            # The caller's probe is cycle-dependent: evaluate every
            # cycle, accepting that idle fast-forward is disabled.
            hint = self._hint_zero
        elif idle_hint is not None:
            hint = idle_hint
        else:
            hint = self._hint_unbounded
        tm.add_cycle_listener(self._compile_listener(), idle_hint=hint)

    @staticmethod
    def _hint_unbounded(cycle: int) -> int:
        return IDLE_HINT_UNBOUNDED

    @staticmethod
    def _hint_zero(cycle: int) -> int:
        return 0

    def _compile_listener(self) -> Callable[[int], None]:
        """Generate the per-cycle hook with the probe and comparison
        spliced in.

        The steady state (condition false, or still inside an active
        edge) must touch nothing but locals and one ``_q._armed`` read.
        Equivalence with the reference semantics -- evaluate the
        condition every executed cycle, fire on the rising edge, re-arm
        on the first false cycle after -- is pinned by the
        generic-vs-inlined test in tests/test_observability.py.
        """
        namespace: dict = {"_q": self}
        expr = getattr(self.probe, "inline_expr", None)
        if expr is not None:
            namespace.update(self.probe.inline_ns)
            value_src = expr
        else:
            namespace["_probe"] = self.probe
            value_src = "_probe()"
        if self._compare is not None:
            op, threshold = self._compare
            namespace["_t"] = threshold
            test_src = "value %s _t" % op
        else:
            # An arbitrary condition keeps the float contract canonical
            # probes would otherwise guarantee through their lambda.
            namespace["_cond"] = self.condition
            if expr is not None:
                value_src = "float(%s)" % value_src
            test_src = "_cond(value)"
        source = (
            "def _listener(cycle):\n"
            "    value = %s\n"
            "    if %s:\n"
            "        if _q._armed:\n"
            "            _q._fire_edge(cycle, value)\n"
            "    elif not _q._armed:\n"
            "        _q._armed = True\n" % (value_src, test_src)
        )
        exec(source, namespace)
        return namespace["_listener"]

    def _fire_edge(self, cycle: int, value) -> None:
        """Rising edge (cold path): record the firing and disarm until
        the condition goes false again."""
        self._armed = False
        self.fire_count += 1
        if len(self.firings) < self.max_firings:
            self.firings.append(TriggerFiring(cycle, float(value)))

    @property
    def first_fired(self) -> Optional[int]:
        return self.firings[0].cycle if self.firings else None

    def report(self) -> dict:
        return {
            "name": self.name,
            "fire_count": self.fire_count,
            "first_fired": self.first_fired,
            "firings": [
                {"cycle": f.cycle, "value": f.value}
                for f in self.firings[:64]
            ],
        }

    @classmethod
    def below(cls, tm, name: str, probe: Callable[[], float],
              threshold: float, **kwargs) -> "CompiledTriggerQuery":
        """The paper's canonical shape: "when does <probe> drop below
        <threshold>?"."""
        return cls(tm, name, probe,
                   lambda value: value < threshold,
                   _compare=("<", threshold), **kwargs)

    @classmethod
    def at_least(cls, tm, name: str, probe: Callable[[], float],
                 threshold: float, **kwargs) -> "CompiledTriggerQuery":
        return cls(tm, name, probe,
                   lambda value: value >= threshold,
                   _compare=(">=", threshold), **kwargs)


# -- canonical probes -------------------------------------------------------
#
# Each probe is a plain zero-argument callable, plus an ``inline_expr``
# / ``inline_ns`` pair the trigger compiler splices into its generated
# listener.  The expression must compute the same value as the lambda;
# where it inlines another module's accessor body, a lockstep note at
# the definition site records the pairing.


def trace_buffer_occupancy(feed) -> Callable[[], float]:
    """Probe: uncommitted entries held by the trace buffer ("when does
    trace-buffer occupancy drop below N?")."""
    probe = lambda: float(feed.occupancy)  # noqa: E731
    # Inlined body of TraceBufferFeed.occupancy (see the lockstep note
    # on the property in repro/fast/trace_buffer.py).
    probe.inline_expr = "(_feed.fm.in_count - _feed._last_committed)"
    probe.inline_ns = {"_feed": feed}
    return probe


def rob_occupancy(tm) -> Callable[[], float]:
    """Probe: instructions resident in the reorder buffer."""
    rob = tm.backend.rob
    probe = lambda: float(len(rob))  # noqa: E731
    probe.inline_expr = "len(_rob)"
    probe.inline_ns = {"_rob": rob}
    return probe
