"""The hierarchical statistics fabric (the §4.7 tree network, at runtime).

"We are developing a tree-based statistics network that will flow back
through the Connectors, ensuring distributed and easy resource
routing."  (paper §4.7)

:class:`StatsFabric` is that network realized in the Python runtime.
Every :class:`~repro.timing.module.Module` owns its statistics -- the
ad hoc ``bump()`` counters that predate this fabric plus the typed
:class:`~repro.timing.module.Counter`/``Gauge``/``Histogram`` stats
registered at construction -- and the fabric aggregates them
*hop-by-hop along the module hierarchy* instead of wiring every stream
to a central point (the flat scheme whose routing cost
:mod:`repro.timing.statnet` prices).

Sampling windows
----------------

The fabric subscribes a compiled-schedule cycle listener that closes a
window every ``window_cycles`` target cycles, recording the per-stream
deltas since the previous window plus a sample of every gauge.  The
listener declares an **unbounded idle hint**: during a quiescent span no
module ticks, so no counter can change, and skipping the listener is
sound.  A window boundary crossed inside a fast-forwarded span is
therefore closed *retroactively* on the first executed cycle after the
span; the fully-idle windows it jumped over are not silently dropped --
they are merged into the closing record and counted in
``elided_windows``, with the span's cycles in ``idle_cycles``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.timing.module import Gauge, Module

# Idle hint for the window listener: "skip as far as you can".  Sound
# because a quiescent machine executes no module ticks, so no registered
# stream can change value; boundary crossings are reconstructed
# retroactively as elided windows.
IDLE_HINT_UNBOUNDED = 1 << 40

DEFAULT_WINDOW_CYCLES = 65536


@dataclass
class StatWindow:
    """One closed sampling window of the fabric."""

    index: int  # nominal window index at close (boundaries passed so far)
    start_cycle: int
    end_cycle: int  # first executed cycle at/after the nominal boundary
    idle_cycles: int  # idle (incl. fast-forwarded) cycles inside the window
    elided_windows: int  # nominal windows merged in (skipped while idle)
    partial: bool = False  # closed by finalize(), not by a boundary
    deltas: Dict[str, float] = field(default_factory=dict)
    gauges: Dict[str, float] = field(default_factory=dict)

    @property
    def cycles(self) -> int:
        return self.end_cycle - self.start_cycle

    @property
    def busy_cycles(self) -> int:
        return self.cycles - self.idle_cycles

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "start_cycle": self.start_cycle,
            "end_cycle": self.end_cycle,
            "cycles": self.cycles,
            "idle_cycles": self.idle_cycles,
            "elided_windows": self.elided_windows,
            "partial": self.partial,
            "deltas": dict(sorted(self.deltas.items())),
            "gauges": dict(sorted(self.gauges.items())),
        }


class StatsFabric:
    """The runtime statistics fabric over one TimingModel's module tree.

    *extra_roots* adds module trees that hang off the simulator but not
    off the TimingModel itself -- most importantly the
    :class:`~repro.fast.trace_buffer.TraceBufferFeed`, which is a Module
    on the FM/TM seam rather than a child of the pipeline.
    """

    def __init__(
        self,
        tm,
        window_cycles: int = DEFAULT_WINDOW_CYCLES,
        extra_roots: Sequence[Module] = (),
    ):
        if window_cycles < 1:
            raise ValueError("window_cycles must be >= 1")
        self.tm = tm
        self.window_cycles = window_cycles
        self.roots: Tuple[Module, ...] = (tm,) + tuple(extra_roots)
        self.windows: List[StatWindow] = []
        self._last: Dict[str, float] = self._collect()
        self._last_idle = tm.idle_cycles
        self._last_close_cycle = tm.cycle
        self._boundaries_closed = 0
        self._next_boundary = tm.cycle + window_cycles
        self._finalized = False
        tm.add_cycle_listener(self._on_cycle, idle_hint=self._idle_hint)

    # -- collection ------------------------------------------------------

    def _walk_stats(self):
        """(path, module) pairs across every root, in deterministic
        tree order."""
        for root in self.roots:
            for path, module in root.walk_paths():
                yield path, module

    def _collect(self) -> Dict[str, float]:
        """Flat ``path/name -> cumulative value`` for every counter-like
        stream (ad hoc counters, typed counters, histogram counts)."""
        out: Dict[str, float] = {}
        for path, module in self._walk_stats():
            prefix = path + "/"
            for name, value in module._counters.items():
                out[prefix + name] = value
            for name, stat in module._stats.items():
                if stat.kind != "gauge":
                    out[prefix + name] = stat.value()
        return out

    def _sample_gauges(self) -> Dict[str, float]:
        out: Dict[str, float] = {}
        for path, module in self._walk_stats():
            prefix = path + "/"
            for name, stat in module._stats.items():
                if isinstance(stat, Gauge):
                    out[prefix + name] = stat.value()
        return out

    # -- the per-cycle listener ------------------------------------------

    def _idle_hint(self, cycle: int) -> int:
        return IDLE_HINT_UNBOUNDED

    def _on_cycle(self, cycle: int) -> None:
        # Hot path: one compare per executed cycle.
        if cycle >= self._next_boundary:
            self._close(cycle, partial=False)

    def _close(self, cycle: int, partial: bool) -> None:
        now = self._collect()
        last = self._last
        deltas = {
            key: value - last.get(key, 0)
            for key, value in now.items()
            if value != last.get(key, 0)
        }
        idle_now = self.tm.idle_cycles
        if partial:
            boundaries_passed = 0
        else:
            boundaries_passed = 1 + (cycle - self._next_boundary) // self.window_cycles
        self._boundaries_closed += boundaries_passed
        self.windows.append(
            StatWindow(
                index=self._boundaries_closed,
                start_cycle=self._last_close_cycle,
                end_cycle=cycle,
                idle_cycles=idle_now - self._last_idle,
                elided_windows=max(0, boundaries_passed - 1),
                partial=partial,
                deltas=deltas,
                gauges=self._sample_gauges(),
            )
        )
        self._last = now
        self._last_idle = idle_now
        self._last_close_cycle = cycle
        self._next_boundary = (
            self.tm.cycle - (self.tm.cycle % self.window_cycles)
            + self.window_cycles
        )

    def finalize(self) -> None:
        """Close the trailing partial window (idempotent)."""
        if self._finalized:
            return
        self._finalized = True
        if self.tm.cycle > self._last_close_cycle:
            self._close(self.tm.cycle, partial=True)

    # -- hierarchical aggregation ----------------------------------------

    def aggregate_tree(self) -> Dict[str, Dict[str, float]]:
        """``path -> {stat name -> subtree-aggregated value}``.

        Computed hop-by-hop: each node's aggregate is its own streams
        plus the sum of its children's aggregates, exactly the
        dataflow of the paper's tree-based statistics network (each
        Connector link carries one aggregated stream instead of one
        wire per counter).
        """
        order = list(self._walk_stats())
        aggregates: Dict[str, Dict[str, float]] = {}
        for path, module in order:
            own: Dict[str, float] = {}
            for name, value in module._counters.items():
                own[name] = own.get(name, 0) + value
            for name, stat in module._stats.items():
                own[name] = own.get(name, 0) + stat.value()
            aggregates[path] = own
        # Reversed preorder puts every node after all of its
        # descendants, so one pass accumulates child sums into parents.
        for path, _module in reversed(order):
            if "/" not in path:
                continue
            parent = path.rsplit("/", 1)[0]
            target = aggregates[parent]
            for name, value in aggregates[path].items():
                target[name] = target.get(name, 0) + value
        return aggregates

    def totals(self) -> Dict[str, float]:
        """Root-level aggregate across every attached tree, by name."""
        aggregates = self.aggregate_tree()
        out: Dict[str, float] = {}
        for root in self.roots:
            for name, value in aggregates[root.name].items():
                out[name] = out.get(name, 0) + value
        return out

    def registered_streams(self) -> int:
        """How many statistics streams the fabric actually carries."""
        return len(self._collect()) + len(self._sample_gauges())

    # -- statnet coupling -------------------------------------------------

    def statnet_reports(self):
        """Price the flat vs tree routing schemes (§4.7) from the
        *actually registered* streams of this fabric -- see
        :func:`repro.timing.statnet.compare`."""
        from repro.timing.statnet import compare_modules

        return compare_modules(self.roots)

    # -- export ----------------------------------------------------------

    def report(self) -> dict:
        self.finalize()
        return {
            "window_cycles": self.window_cycles,
            "windows": [w.to_dict() for w in self.windows],
            "elided_windows": sum(w.elided_windows for w in self.windows),
            "totals": dict(sorted(self.totals().items())),
            "registered_streams": self.registered_streams(),
        }


def window_summary(windows: Sequence[StatWindow]) -> dict:
    """Roll a window list up for quick display."""
    return {
        "count": len(windows),
        "cycles": sum(w.cycles for w in windows),
        "idle_cycles": sum(w.idle_cycles for w in windows),
        "elided_windows": sum(w.elided_windows for w in windows),
        "partial": sum(1 for w in windows if w.partial),
    }
