"""FastPulse: the live telemetry plane over a running simulation.

Everything FastScope, FastFlight and FastWatch report is post-hoc --
nothing is visible until ``run()`` returns.  FastPulse closes that gap
the way co-emulation control planes do (ZynqParrot's host-visible
status registers, CHESSY-style heartbeats): a :class:`PulseEmitter`
subscribes to the timing model's cycle-listener seam *with an idle
hint*, so arming it preserves the compiled engine's idle fast-forward,
and every ``interval_cycles`` target cycles it snapshots progress into
an append-only ``pulse.jsonl`` sidecar that out-of-process readers
(``python -m repro top``, the OpenMetrics exporter) tail while the run
is still in flight.

Record stream
-------------

Every record is one line of sorted-key compact JSON with a monotonic
``seq`` number and a strict two-section split:

* ``det`` -- target-deterministic fields (cycle, committed
  instructions/uops, IPC, trace-buffer/ROB occupancy, invariant
  firings, watchdog stall state, progress vs. the configured horizon).
  Sampling cadence is pure cycle arithmetic, so the ``det`` sections of
  due samples -- and the footer's ``det`` section -- are byte-identical
  across same-seed runs and across both tick engines.
* ``host`` -- volatile host-timing fields (heartbeat timestamp, wall
  seconds, sim-cycles/sec, ETA).  Never enters any hash.

Four record kinds::

    pulse_header   written atomically at arm time (seq 0): schema,
                   workload, cadence, horizon, watchdog config
    pulse          one per due sample (det["sample"] counts them);
                   ``pulse_hb`` is the same shape emitted off-cadence
                   purely to keep the heartbeat fresh for readers
                   (det["sample"] is null; excluded from the det hash)
    pulse_stall    the liveness watchdog's edge-triggered no-progress
                   flag (deterministic: derived from det fields only)
    pulse_footer   final summary; ``det.det_hash`` is a rolling SHA-256
                   over every due sample's and stall's det section

Wall-clock capping: ``min_wall_s`` coalesces due-sample *writes* that
land closer together than the cap (the skipped count rides along in
``host.coalesced``), but the deterministic rolling hash is updated at
every due sample regardless, so coalescing never perturbs the footer.

The liveness watchdog
---------------------

:class:`LivenessWatchdog` watches the det stream for *no-progress*
stalls: no committed instruction and no idle-cycle progress across
``no_commit_cycles`` target cycles (the in-model watchdog in
``TimingConfig.watchdog_cycles`` raises; this one classifies and keeps
going -- the fuzz oracle uses it to say *where* a wedged cell stopped).
No-heartbeat detection is the host-side dual: readers compare the last
record's ``host.ts`` against the clock (:func:`classify`).  A stall can
trigger FastWatch time travel via :func:`capture_stall_capsule`.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

PULSE_SCHEMA = 1
PULSE_NAME = "pulse.jsonl"
DEFAULT_PULSE_DIR = os.path.join("results", "pulse")
DEFAULT_INTERVAL_CYCLES = 50_000
DEFAULT_STALL_CYCLES = 250_000
DEFAULT_HEARTBEAT_S = 1.0
DEFAULT_HEARTBEAT_TIMEOUT = 5.0

HEADER_KIND = "pulse_header"
SAMPLE_KIND = "pulse"
HEARTBEAT_KIND = "pulse_hb"
STALL_KIND = "pulse_stall"
FOOTER_KIND = "pulse_footer"


def _det_line(det: Dict[str, Any]) -> bytes:
    return json.dumps(det, sort_keys=True, separators=(",", ":")).encode(
        "utf-8"
    )


class LivenessWatchdog:
    """Deterministic no-progress stall classification over det samples.

    Progress means either committed instructions or idle cycles
    advanced since the previous due sample (a sleeping machine is
    alive; a machine that neither commits nor idles is wedged).  The
    flag is edge-triggered: one stall record per stall, re-armed the
    moment progress resumes.
    """

    def __init__(
        self,
        no_commit_cycles: int = DEFAULT_STALL_CYCLES,
        on_stall: Optional[Callable[[Dict[str, Any]], None]] = None,
    ):
        self.no_commit_cycles = int(no_commit_cycles)
        self.on_stall = on_stall
        self.stall_count = 0
        self.stalled = False
        self.last_stall: Optional[Dict[str, Any]] = None
        self._progress_mark: Optional[tuple] = None
        self._progress_cycle = 0

    def observe(self, det: Dict[str, Any]) -> Optional[Dict[str, Any]]:
        """Feed one due sample's det section; returns the stall det
        record on the stall's leading edge, else ``None``."""
        cycle = int(det["cycle"])
        mark = (det["instructions"], det["idle_cycles"])
        if self._progress_mark is None or mark != self._progress_mark:
            self._progress_mark = mark
            self._progress_cycle = cycle
            self.stalled = False
            return None
        if (
            not self.stalled
            and cycle - self._progress_cycle >= self.no_commit_cycles
        ):
            self.stalled = True
            self.stall_count += 1
            stall = {
                "kind": "no_progress",
                "cycle": cycle,
                "since_cycle": self._progress_cycle,
                "last_commit_cycle": det["last_commit_cycle"],
            }
            self.last_stall = stall
            if self.on_stall is not None:
                self.on_stall(stall)
            return stall
        return None


class PulseEmitter:
    """Sample live progress from the cycle-listener seam.

    Arm *before* ``run()``.  With *path* the sidecar is written (and
    flushed) live; without, records accumulate in memory (the fuzz
    oracle's mode).  The listener registers with an idle hint derived
    from the cadence -- idle spans batch up to the next due sample --
    unless *single_step* forces hintless registration (FastLint flags
    that: rule ST004).
    """

    def __init__(
        self,
        tm,
        feed=None,
        path: Optional[str] = None,
        workload: Optional[str] = None,
        interval_cycles: int = DEFAULT_INTERVAL_CYCLES,
        horizon: Optional[int] = None,
        min_wall_s: float = 0.0,
        heartbeat_s: float = DEFAULT_HEARTBEAT_S,
        monitor=None,
        watchdog: Optional[LivenessWatchdog] = None,
        single_step: bool = False,
    ):
        if interval_cycles < 1:
            raise ValueError("interval_cycles must be >= 1")
        self.tm = tm
        self.feed = feed
        self.path = path
        self.workload = workload
        self.interval_cycles = int(interval_cycles)
        self.horizon = horizon
        self.min_wall_s = float(min_wall_s)
        self.heartbeat_s = float(heartbeat_s)
        self.monitor = monitor
        self.watchdog = watchdog
        self._seq = 0
        self._samples = 0
        self._written = 0
        self._coalesced = 0
        self._coalesced_total = 0
        self._peak_tb = 0
        self._peak_rob = 0
        self._next_due = self.interval_cycles
        self._hb_check_cycles = max(1024, self.interval_cycles // 8)
        self._next_hb_check = self._hb_check_cycles
        self._hash = hashlib.sha256()
        self._finalized = False
        self._lines: List[str] = []  # in-memory mode only
        self._fh = None
        # Host timing state (volatile; never hashed).
        self._t0 = time.perf_counter()  # fastlint: ignore[DT002]
        self._last_write_t = 0.0  # perf_counter offset of last write
        self._rate_mark = (0, self._t0)  # (cycle, perf_counter)
        if path is not None:
            parent = os.path.dirname(path)
            if parent:
                os.makedirs(parent, exist_ok=True)
            self._fh = open(path, "w")
        self._write_header()
        if single_step:
            tm.add_cycle_listener(self._on_cycle)  # fastlint: ignore[ST003]
        else:
            tm.add_cycle_listener(self._on_cycle, idle_hint=self._idle_hint)

    # -- the listener seam ----------------------------------------------

    def _idle_hint(self, cycle: int) -> int:
        # Cycles strictly inside (cycle, next_due) are no-ops for the
        # deterministic plane; heartbeat checks in between are forfeited
        # (idle spans complete in negligible host time, so no reader
        # ever sees a stale heartbeat because of fast-forward).
        return max(0, self._next_due - cycle - 1)

    def _on_cycle(self, cycle: int) -> None:
        if cycle < self._next_due:
            if cycle >= self._next_hb_check:
                self._heartbeat_check(cycle)
            return
        self._sample(cycle)

    # -- sampling --------------------------------------------------------

    def _det_snapshot(self, cycle: int) -> Dict[str, Any]:
        tm = self.tm
        be = tm.backend
        instructions = be.committed_instructions
        det: Dict[str, Any] = {
            "cycle": cycle,
            "instructions": instructions,
            "uops": be.committed_uops,
            "idle_cycles": tm.idle_cycles,
            "last_commit_cycle": be.last_commit_cycle,
            "ipc": round(instructions / cycle, 6) if cycle else 0.0,
            "rob_occupancy": len(be.rob),
            "invariants": (
                self.monitor.firings if self.monitor is not None else 0
            ),
        }
        occupancy = getattr(self.feed, "occupancy", None)
        det["tb_occupancy"] = int(occupancy) if occupancy is not None else None
        if self.horizon:
            det["progress"] = round(min(1.0, cycle / self.horizon), 6)
        return det

    def _host_snapshot(self, cycle: int) -> Dict[str, Any]:
        now_pc = time.perf_counter()  # fastlint: ignore[DT002]
        mark_cycle, mark_pc = self._rate_mark
        dt = now_pc - mark_pc
        cps = (cycle - mark_cycle) / dt if dt > 0 else 0.0
        self._rate_mark = (cycle, now_pc)
        host: Dict[str, Any] = {
            "ts": round(time.time(), 3),  # fastlint: ignore[DT002]
            "wall_s": round(now_pc - self._t0, 3),
            "cps": round(cps, 1),
            "coalesced": self._coalesced,
        }
        if self.horizon and cps > 0:
            host["eta_s"] = round(max(0, self.horizon - cycle) / cps, 1)
        return host

    def _sample(self, cycle: int) -> None:
        det = self._det_snapshot(cycle)
        det["sample"] = self._samples
        self._samples += 1
        self._next_due = cycle + self.interval_cycles
        self._next_hb_check = cycle + self._hb_check_cycles
        stall = None
        if self.watchdog is not None:
            stall = self.watchdog.observe(det)
            det["stalls"] = self.watchdog.stall_count
            det["stalled"] = self.watchdog.stalled
        else:
            det["stalls"] = 0
            det["stalled"] = False
        # The rolling deterministic hash covers every *due* sample and
        # every stall edge, written or coalesced -- the byte-identity
        # contract the footer pins.
        self._hash.update(_det_line(det))
        self._hash.update(b"\n")
        if stall is not None:
            self._hash.update(_det_line(stall))
            self._hash.update(b"\n")
        tb = det["tb_occupancy"]
        if tb is not None and tb > self._peak_tb:
            self._peak_tb = tb
        if det["rob_occupancy"] > self._peak_rob:
            self._peak_rob = det["rob_occupancy"]
        if stall is not None:
            ts = round(time.time(), 3)  # fastlint: ignore[DT002]
            self._write_record(STALL_KIND, stall, {"ts": ts})
        now_pc = time.perf_counter()  # fastlint: ignore[DT002]
        if (
            self.min_wall_s > 0
            and stall is None
            and now_pc - self._last_write_t < self.min_wall_s
        ):
            self._coalesced += 1
            self._coalesced_total += 1
            return
        host = self._host_snapshot(cycle)
        self._coalesced = 0
        self._write_record(SAMPLE_KIND, det, host)

    def _heartbeat_check(self, cycle: int) -> None:
        self._next_hb_check = cycle + self._hb_check_cycles
        if self._fh is None:
            return
        now_pc = time.perf_counter()  # fastlint: ignore[DT002]
        if now_pc - self._last_write_t < self.heartbeat_s:
            return
        # Off-cadence heartbeat: same shape as a pulse record but
        # outside the deterministic stream (sample=null, never hashed).
        det = self._det_snapshot(cycle)
        det["sample"] = None
        det["stalls"] = (
            self.watchdog.stall_count if self.watchdog is not None else 0
        )
        det["stalled"] = (
            self.watchdog.stalled if self.watchdog is not None else False
        )
        self._write_record(HEARTBEAT_KIND, det, self._host_snapshot(cycle))

    # -- record plumbing -------------------------------------------------

    def _write_header(self) -> None:
        det = {
            "schema": PULSE_SCHEMA,
            "workload": self.workload,
            "interval_cycles": self.interval_cycles,
            "horizon": self.horizon,
            "engine": getattr(self.tm.config, "engine", None),
            "watchdog_cycles": (
                self.watchdog.no_commit_cycles
                if self.watchdog is not None
                else None
            ),
        }
        host = {
            "ts": round(time.time(), 3),  # fastlint: ignore[DT002]
            "pid": os.getpid(),
            "min_wall_s": self.min_wall_s,
            "heartbeat_s": self.heartbeat_s,
        }
        self._write_record(HEADER_KIND, det, host)

    def _write_record(
        self, kind: str, det: Dict[str, Any], host: Dict[str, Any]
    ) -> None:
        record = {"kind": kind, "seq": self._seq, "det": det, "host": host}
        self._seq += 1
        line = json.dumps(record, sort_keys=True, separators=(",", ":"))
        if self._fh is not None:
            # One write + flush per record: the line (header included)
            # lands atomically for line-oriented tailers.
            self._fh.write(line + "\n")
            self._fh.flush()
        else:
            self._lines.append(line + "\n")
        self._written += 1
        self._last_write_t = time.perf_counter()  # fastlint: ignore[DT002]

    # -- finalization ----------------------------------------------------

    def footer_det(self) -> Dict[str, Any]:
        """The deterministic footer section (current state; stable only
        after :meth:`finalize`)."""
        det = self._det_snapshot(self.tm.cycle)
        det.update(
            {
                "samples": self._samples,
                "stalls": (
                    self.watchdog.stall_count
                    if self.watchdog is not None
                    else 0
                ),
                "peak_tb": self._peak_tb,
                "peak_rob": self._peak_rob,
                "interval_cycles": self.interval_cycles,
                "horizon": self.horizon,
                "det_hash": self._hash.hexdigest(),
            }
        )
        finished = getattr(self.feed, "finished", None)
        if finished is not None:
            det["finished"] = bool(finished)
        return det

    def finalize(self) -> Dict[str, Any]:
        """Write the footer (idempotent) and return its record."""
        if self._finalized:
            return self._footer_record
        self._finalized = True
        det = self.footer_det()
        now_pc = time.perf_counter()  # fastlint: ignore[DT002]
        wall = now_pc - self._t0
        host = {
            "ts": round(time.time(), 3),  # fastlint: ignore[DT002]
            "wall_s": round(wall, 3),
            "cps": round(det["cycle"] / wall, 1) if wall > 0 else 0.0,
            "written": self._written,
            "coalesced": self._coalesced_total,
        }
        self._footer_record = {
            "kind": FOOTER_KIND,
            "seq": self._seq,
            "det": det,
            "host": host,
        }
        self._write_record(FOOTER_KIND, det, host)
        if self._fh is not None:
            self._fh.close()
            self._fh = None
        return self._footer_record

    def summary(self) -> Dict[str, Any]:
        """The footer record (finalizing if needed) -- FastScope's
        ``report()`` embeds this."""
        return self.finalize()

    def sidecar_text(self) -> str:
        """The full JSONL stream (file-backed or in-memory)."""
        if self.path is not None:
            with open(self.path) as fh:
                return fh.read()
        return "".join(self._lines)


# -- stall -> FastWatch time travel -----------------------------------------


def capture_stall_capsule(
    factory: Callable[[], object],
    workload: str,
    stall: Dict[str, Any],
    delta: int = 64,
    **kwargs,
):
    """Capture a FastWatch debug capsule around a watchdog stall.

    The re-executed window is centered on the stall's last-progress
    cycle (``since_cycle``): the cycles *entering* the stall are the
    interesting ones, not the arbitrary point where the threshold
    tripped.  Thin wrapper over
    :func:`repro.observability.watch.capture_debug_capsule`.
    """
    from repro.observability.watch import capture_debug_capsule

    return capture_debug_capsule(
        factory,
        workload,
        center=int(stall["since_cycle"]),
        delta=delta,
        **kwargs,
    )


# -- sidecar reading ---------------------------------------------------------


@dataclass
class PulseSidecar:
    """One parsed ``pulse.jsonl`` stream (tolerant of in-flight tails)."""

    path: str
    header: Optional[Dict[str, Any]] = None
    last: Optional[Dict[str, Any]] = None  # last pulse/pulse_hb record
    footer: Optional[Dict[str, Any]] = None
    stalls: List[Dict[str, Any]] = field(default_factory=list)
    samples: int = 0
    records: int = 0

    @property
    def name(self) -> str:
        if self.header is not None:
            workload = self.header.get("det", {}).get("workload")
            if workload:
                return str(workload)
        base = os.path.basename(self.path)
        return base[: -len(".jsonl")] if base.endswith(".jsonl") else base


def iter_records(path: str):
    """Yield parsed records; a truncated (mid-write) final line is
    skipped, never raised -- live tails end mid-record routinely."""
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                yield json.loads(line)
            except ValueError:
                return


def load_sidecar(path: str) -> PulseSidecar:
    sidecar = PulseSidecar(path=path)
    for record in iter_records(path):
        sidecar.records += 1
        kind = record.get("kind")
        if kind == HEADER_KIND:
            sidecar.header = record
        elif kind in (SAMPLE_KIND, HEARTBEAT_KIND):
            sidecar.last = record
            if kind == SAMPLE_KIND:
                sidecar.samples += 1
        elif kind == STALL_KIND:
            sidecar.stalls.append(record)
        elif kind == FOOTER_KIND:
            sidecar.footer = record
    return sidecar


def find_sidecars(paths: List[str]) -> List[str]:
    """Expand files/directories into sorted ``*.jsonl`` sidecar paths
    (a directory contributes every pulse stream directly under it)."""
    out: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            for name in sorted(os.listdir(path)):
                if name.endswith(".jsonl"):
                    out.append(os.path.join(path, name))
        elif os.path.exists(path):
            out.append(path)
    return out


STATUS_DONE = "done"
STATUS_LIVE = "live"
STATUS_ARMED = "armed"
STATUS_STALLED = "stalled"
STATUS_NO_HEARTBEAT = "no-heartbeat"


def classify(
    sidecar: PulseSidecar,
    now: Optional[float] = None,
    heartbeat_timeout: float = DEFAULT_HEARTBEAT_TIMEOUT,
) -> str:
    """Liveness verdict for one sidecar.

    ``done`` (footer present) > ``stalled`` (watchdog flag set on the
    last sample) > ``no-heartbeat`` (last record's host timestamp is
    older than *heartbeat_timeout* -- the emitting process is wedged or
    gone) > ``live``; ``armed`` means only the header has landed.
    """
    if sidecar.footer is not None:
        return STATUS_DONE
    if sidecar.last is None:
        record = sidecar.header
        if record is None:
            return STATUS_ARMED
    else:
        record = sidecar.last
        if record.get("det", {}).get("stalled"):
            return STATUS_STALLED
    if now is None:
        now = time.time()  # fastlint: ignore[DT002]
    ts = record.get("host", {}).get("ts")
    if ts is not None and now - float(ts) > heartbeat_timeout:
        return STATUS_NO_HEARTBEAT
    return STATUS_LIVE if sidecar.last is not None else STATUS_ARMED


def snapshot(
    sidecar: PulseSidecar,
    now: Optional[float] = None,
    heartbeat_timeout: float = DEFAULT_HEARTBEAT_TIMEOUT,
) -> Dict[str, Any]:
    """One flattened status row (``repro top``'s unit of display)."""
    if now is None:
        now = time.time()  # fastlint: ignore[DT002]
    record = sidecar.footer or sidecar.last or sidecar.header or {}
    det = dict(record.get("det", {}))
    host = dict(record.get("host", {}))
    ts = host.get("ts")
    return {
        "run": sidecar.name,
        "path": sidecar.path,
        "status": classify(sidecar, now=now,
                           heartbeat_timeout=heartbeat_timeout),
        "cycle": det.get("cycle", 0),
        "instructions": det.get("instructions", 0),
        "ipc": det.get("ipc", 0.0),
        "cps": host.get("cps", 0.0),
        "tb_occupancy": det.get("tb_occupancy"),
        "rob_occupancy": det.get("rob_occupancy", 0),
        "invariants": det.get("invariants", 0),
        "stalls": det.get("stalls", len(sidecar.stalls)),
        "progress": det.get("progress"),
        "eta_s": host.get("eta_s"),
        "age_s": round(now - float(ts), 1) if ts is not None else None,
        "samples": sidecar.samples,
    }


# -- OpenMetrics export ------------------------------------------------------

# (metric suffix, type, help text, row key)
_OPENMETRICS: List[tuple] = [
    ("cycles", "gauge", "Target cycles simulated", "cycle"),
    ("instructions", "gauge", "Committed instructions", "instructions"),
    ("ipc", "gauge", "Committed instructions per cycle", "ipc"),
    ("sim_cycles_per_second", "gauge",
     "Host-side simulation rate (sim-cycles/sec)", "cps"),
    ("tb_occupancy", "gauge",
     "Uncommitted trace-buffer entries at last sample", "tb_occupancy"),
    ("rob_occupancy", "gauge", "ROB entries at last sample",
     "rob_occupancy"),
    ("invariant_firings", "counter", "FastWatch invariant firings",
     "invariants"),
    ("stalls", "counter", "Liveness-watchdog no-progress stalls",
     "stalls"),
    ("progress_ratio", "gauge", "Fraction of the configured horizon",
     "progress"),
    ("up", "gauge", "1 while the run is live or freshly finished", None),
]

_UP_STATUSES = (STATUS_LIVE, STATUS_DONE, STATUS_ARMED)


def render_openmetrics(
    sidecars: List[PulseSidecar], now: Optional[float] = None
) -> str:
    """The sidecar fleet as OpenMetrics text (scrape-style export)."""
    if now is None:
        now = time.time()  # fastlint: ignore[DT002]
    rows = [snapshot(s, now=now) for s in sidecars]
    lines: List[str] = []
    for suffix, mtype, help_text, key in _OPENMETRICS:
        metric = "fast_pulse_" + suffix
        lines.append("# TYPE %s %s" % (metric, mtype))
        lines.append("# HELP %s %s" % (metric, help_text))
        for row in rows:
            if key is None:
                value: Any = 1 if row["status"] in _UP_STATUSES else 0
            else:
                value = row.get(key)
            if value is None:
                continue
            lines.append(
                '%s{run="%s"} %s' % (metric, row["run"], value)
            )
    lines.append("# EOF")
    return "\n".join(lines) + "\n"
