"""FastFuzz: differential conformance fuzzing for FM/TM equivalence.

FAST's central correctness claim (paper section 2/3) is that the
speculative functional model plus rollback is *observationally
equivalent* to in-order execution: the timing model's cycle counts must
be identical whether instructions arrive via the lock-step reference or
the trace buffer, under any mispredict/interrupt interleaving.  The
hand-written workloads exercise a sliver of that state space; FastFuzz
walks the rest of it:

* :mod:`repro.fuzz.generator` -- a seeded, deterministic FastISA
  program generator constrained to terminate (bounded loops, valid
  memory ranges, software-TLB fills, interrupt-arming instructions),
* :mod:`repro.fuzz.oracle` -- the differential harness running each
  program across the oracle matrix {compiled, legacy} engine x
  {lockstep, trace-buffer} feed x {instruction, cycle} interrupt mode,
  asserting bit-identical ``TimingStats`` and final architectural state
  (and matching the FM-alone golden run),
* :mod:`repro.fuzz.shrinker` -- delta-debugging minimization of a
  diverging program to a smallest failing case,
* :mod:`repro.fuzz.corpus` -- replayable repro files under
  ``tests/corpus/``, committed like regression tests,
* :mod:`repro.fuzz.cli` -- ``python -m repro fuzz``.
"""

from repro.fuzz.generator import FuzzProgram, GeneratorConfig, generate_program
from repro.fuzz.oracle import (
    ORACLE_CELLS,
    Divergence,
    MatrixResult,
    OracleCell,
    OracleConfig,
    run_matrix,
)
from repro.fuzz.shrinker import shrink
from repro.fuzz.corpus import iter_corpus, load_repro, write_repro

__all__ = [
    "FuzzProgram",
    "GeneratorConfig",
    "generate_program",
    "ORACLE_CELLS",
    "Divergence",
    "MatrixResult",
    "OracleCell",
    "OracleConfig",
    "run_matrix",
    "shrink",
    "iter_corpus",
    "load_repro",
    "write_repro",
]
