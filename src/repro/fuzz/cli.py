"""``python -m repro fuzz``: the differential conformance fuzzer.

Generates seeded programs, runs each across the oracle matrix
(:mod:`repro.fuzz.oracle`), and on any divergence shrinks the program
to a minimal failing case, writes a replayable repro into the corpus
directory and (when FastFlight is enabled) records a run artifact for
``python -m repro report``.

The run is deterministic: program *i* of a campaign uses seed
``base_seed + i``, all randomness flows through ``random.Random``, and
the summary carries no timestamps -- the same invocation produces
byte-identical output, so CI can diff fuzz logs across machines.

Exit status: 0 when every program agreed, 1 when any divergence was
found (the repro paths are printed), 2 on usage errors.
"""

from __future__ import annotations

import argparse
from typing import List, Optional

from repro.fuzz.generator import FuzzProgram, GeneratorConfig, generate_program
from repro.fuzz.oracle import MatrixResult, OracleConfig, run_matrix
from repro.fuzz.shrinker import instruction_count, shrink

DEFAULT_CORPUS = "tests/corpus"

# The smoke preset: small programs, a fixed seed, tight budgets -- sized
# for the CI fuzz-smoke job (~tens of seconds), still covering every
# atom kind across the campaign.
SMOKE_SEED = 20070601  # FAST appeared at MICRO-40; a fixed, meaningless seed
SMOKE_ITERATIONS = 40
SMOKE_GENERATOR = GeneratorConfig(min_atoms=2, max_atoms=5)
SMOKE_ORACLE = OracleConfig(max_cycles=400_000, max_instructions=120_000)


def _divergence_lines(outcome: MatrixResult) -> List[str]:
    return [str(d) for d in outcome.divergences]


def _check(program: FuzzProgram, oracle: OracleConfig) -> MatrixResult:
    return run_matrix(program.source(), program.base, seed=program.seed,
                      config=oracle)


def _handle_divergence(
    program: FuzzProgram,
    outcome: MatrixResult,
    oracle: OracleConfig,
    corpus_dir: str,
    shrink_evals: int,
) -> str:
    """Shrink, write the repro, emit a flight artifact; returns the path."""
    from repro.fuzz.corpus import write_repro
    from repro.isa.assembler import assemble
    from repro.isa.disassembler import disassemble_listing

    def is_failing(candidate: FuzzProgram) -> bool:
        return not _check(candidate, oracle).ok

    small, sstats = shrink(program, is_failing, max_evals=shrink_evals)
    final = _check(small, oracle)
    notes = _divergence_lines(final)
    assembled = assemble(small.source(), base=small.base)
    listing = disassemble_listing(assembled.data, base=small.base)
    path = write_repro(
        corpus_dir,
        small.source(),
        small.base,
        small.seed,
        divergences=notes,
        listing=listing,
    )
    print("  shrunk %d -> %d atoms (%d instructions, %d evaluations)"
          % (sstats.atoms_before, sstats.atoms_after,
             assembled.instruction_count, sstats.evaluations))
    for note in notes:
        print("  diverged: %s" % note)
    print("  repro written: %s" % path)
    _emit_flight(small, final, str(path))
    return str(path)


def _emit_flight(program: FuzzProgram, outcome: MatrixResult,
                 repro_path: str) -> None:
    from repro.experiments.harness import flight_enabled, flight_root

    if not flight_enabled():
        return
    from repro.observability.flight.artifact import emit_artifact

    artifact = emit_artifact(
        experiment="fuzz-divergence",
        workload="seed-%d" % program.seed,
        config={
            "seed": program.seed,
            "base": program.base,
            "atoms": [atom.kind for atom in program.atoms],
        },
        output=program.source(),
        extra={
            "divergences": _divergence_lines(outcome),
            "cell_status": {label: cell.status
                            for label, cell in outcome.cells.items()},
            "repro_path": repro_path,
        },
        root=flight_root(),
    )
    print("  flight artifact: %s" % artifact.run_id)


def fuzz_campaign(
    base_seed: int,
    iterations: int,
    generator: Optional[GeneratorConfig] = None,
    oracle: Optional[OracleConfig] = None,
    corpus_dir: str = DEFAULT_CORPUS,
    shrink_evals: int = 200,
) -> int:
    """Run the campaign; returns the number of diverging programs."""
    gen_cfg = generator or GeneratorConfig()
    oracle_cfg = oracle or OracleConfig()
    failures = 0
    for index in range(iterations):
        seed = base_seed + index
        program = generate_program(seed, gen_cfg)
        outcome = _check(program, oracle_cfg)
        kinds = ",".join(atom.kind for atom in program.atoms[1:])
        status = "ok" if outcome.ok else "DIVERGED"
        print("[%3d/%d] seed=%d atoms=%d (%s) golden=%s %s"
              % (index + 1, iterations, seed, len(program.atoms),
                 kinds, outcome.golden_status, status))
        if not outcome.ok:
            failures += 1
            _handle_divergence(program, outcome, oracle_cfg, corpus_dir,
                               shrink_evals)
    return failures


def main(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro fuzz",
        description="differential conformance fuzzing across the "
                    "engine/feed/interrupt oracle matrix",
    )
    parser.add_argument("--seed", type=int, default=1,
                        help="base seed; program i uses seed+i (default 1)")
    parser.add_argument("--iterations", type=int, default=50,
                        help="number of programs to generate (default 50)")
    parser.add_argument("--smoke", action="store_true",
                        help="CI preset: fixed seed, %d small programs, "
                             "tight budgets" % SMOKE_ITERATIONS)
    parser.add_argument("--corpus", default=DEFAULT_CORPUS,
                        help="directory for shrunk repros "
                             "(default %s)" % DEFAULT_CORPUS)
    parser.add_argument("--max-atoms", type=int, default=None,
                        help="override the per-program atom budget")
    parser.add_argument("--shrink-evals", type=int, default=200,
                        help="oracle evaluations the shrinker may spend "
                             "per divergence (default 200)")
    try:
        args = parser.parse_args(argv)
    except SystemExit as exc:
        return int(exc.code or 0)

    if args.smoke:
        base_seed, iterations = SMOKE_SEED, SMOKE_ITERATIONS
        generator, oracle = SMOKE_GENERATOR, SMOKE_ORACLE
    else:
        base_seed, iterations = args.seed, args.iterations
        generator, oracle = GeneratorConfig(), OracleConfig()
    if args.max_atoms is not None:
        generator = GeneratorConfig(
            min_atoms=min(generator.min_atoms, args.max_atoms),
            max_atoms=args.max_atoms,
        )

    failures = fuzz_campaign(
        base_seed,
        iterations,
        generator=generator,
        oracle=oracle,
        corpus_dir=args.corpus,
        shrink_evals=args.shrink_evals,
    )
    print("fuzz: %d/%d programs diverged" % (failures, iterations))
    return 1 if failures else 0
