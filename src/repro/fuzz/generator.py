"""Seeded, deterministic FastISA program generator.

A generated program is a list of *atoms*: small, self-contained
instruction groups (an ALU burst, a bounded loop, a string operation, a
timer-arming sequence, a user-mode excursion through the software TLB,
...).  Atoms are the unit the delta-debugging shrinker removes, so each
one must be independently droppable: no atom reads machine state that
only another atom establishes, and every loop an atom opens it also
closes.

Termination is guaranteed by construction:

* all loops are counted (``DEC``/``JNZ`` with a small immediate trip
  count), never condition-controlled on data;
* memory traffic stays inside fixed scratch windows, the stack inside a
  fixed stack window;
* ``DIV`` divisors are forced odd (``ORI r, 1``) so divide-by-zero
  cannot fault on the architectural path;
* ``HALT`` waits are emitted only after a timer-arming atom, so a wake
  interrupt is always pending, and the timer is never disarmed;
* the scaffold's exception vector terminates the run (power-off) on any
  cause the generator does not deliberately raise.

The interesting couplings come from the scaffold: when any atom needs
it, the program carries an exception/interrupt handler at
``VECTOR_BASE`` that services software-TLB refills, timer interrupts
(acknowledge + count) and user-mode ``SYSCALL`` returns -- so generated
programs exercise speculative execution across handler entries,
rollback over I/O, and TLB fills on both fetch and data paths.

Everything is derived from one ``random.Random(seed)``; the same seed
always produces byte-identical source.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.isa.opcodes import CLASS_ALU, by_class

# -- memory map (fits the default 1 MiB system) ---------------------------
CODE_BASE = 0x1000  # main program
IMAGE_BASE = 0x40  # == functional.model.VECTOR_BASE; handler lives here
USER_CODE = 0x5000  # user-mode code, identity-mapped on TLB miss
FIRE_COUNT = 0x8FF0  # timer-fire counter word
SCRATCH_BASE = 0x9000  # data scratch window (word ops)
SCRATCH_SIZE = 0x800
STACK_TOP = 0x9F00
USER_DATA = 0x20000  # user-mode data pages (identity-mapped)

PORT_CONSOLE = 0x10
PORT_TIMER_CTRL = 0x20
PORT_TIMER_INTERVAL = 0x21
PORT_POWER = 0x40
PORT_PIC_ACK = 0x50
PORT_PIC_ENABLE = 0x51

# Registers the atoms may freely clobber.  R6 is the scratch pointer,
# R7/SP the stack pointer, R0..R3 are pinned during string atoms only.
DATA_REGS = (1, 2, 3, 4, 5)

# ALU-class opcodes the generator knows how to emit operands for; the
# assertion below keeps the table honest against the ISA: adding an ALU
# opcode without teaching the fuzzer (or explicitly skipping it) fails
# at import.
_ALU_SKIP = {
    "MOV", "MOVI",  # emitted by the seeding logic, not as random ops
    "LEA",  # emitted by the mem atom (address shapes)
}
_ALU_REG_OPS = ("ADD", "SUB", "AND", "OR", "XOR", "CMP", "TEST", "ADC")
_ALU_UNARY_OPS = ("NOT", "NEG", "INC", "DEC")
_ALU_IMM_OPS = ("ADDI", "SUBI", "ANDI", "ORI", "XORI", "CMPI")
_ALU_SHIFT_OPS = ("SHL", "SHR", "SAR")
_KNOWN_ALU = (set(_ALU_REG_OPS) | set(_ALU_UNARY_OPS) | set(_ALU_IMM_OPS)
              | set(_ALU_SHIFT_OPS) | _ALU_SKIP)
assert {s.name for s in by_class(CLASS_ALU)} <= _KNOWN_ALU, (
    "ALU opcodes unknown to the fuzz generator: %s"
    % sorted({s.name for s in by_class(CLASS_ALU)} - _KNOWN_ALU)
)


@dataclass(frozen=True)
class Atom:
    """One self-contained instruction group.

    ``lines`` may contain the placeholder ``{L}``, expanded to a label
    prefix unique to the atom's position when the program is rendered
    (so shrinking can reorder/remove atoms without label collisions).
    """

    kind: str
    lines: Tuple[str, ...]
    needs_handler: bool = False
    needs_stack: bool = False
    needs_user: bool = False
    arms_timer: bool = False


@dataclass(frozen=True)
class GeneratorConfig:
    """Bounds for one generated program."""

    min_atoms: int = 2
    max_atoms: int = 10
    max_loop_trip: int = 8
    max_string_count: int = 12
    # Minimum timer interval, in device ticks (= executed instructions).
    # Low enough to interleave handlers with every atom kind, high
    # enough that the handler (~15 instructions) cannot livelock
    # forward progress.
    min_timer_interval: int = 60
    max_timer_interval: int = 400
    # Probability weights per atom kind.
    weights: Tuple[Tuple[str, int], ...] = (
        ("alu", 24),
        ("muldiv", 10),
        ("mem", 16),
        ("stack", 8),
        ("flow", 14),
        ("loop", 12),
        ("call", 6),
        ("string", 8),
        ("fp", 6),
        ("tlbwr", 4),
        ("timer", 10),
        ("halt_wait", 8),
        ("user", 8),
    )


@dataclass
class FuzzProgram:
    """A generated (or shrunk) program: atoms plus rendering."""

    seed: int
    atoms: List[Atom] = field(default_factory=list)

    @property
    def features(self) -> Tuple[bool, bool, bool, bool]:
        handler = any(a.needs_handler for a in self.atoms)
        stack = any(a.needs_stack for a in self.atoms)
        user = any(a.needs_user for a in self.atoms)
        timer = any(a.arms_timer for a in self.atoms)
        return handler, stack, user, timer

    @property
    def base(self) -> int:
        handler, _stack, _user, _timer = self.features
        return IMAGE_BASE if handler else CODE_BASE

    def source(self) -> str:
        """Render the full assembly source (scaffold + atoms)."""
        handler, stack, user, _timer = self.features
        lines: List[str] = ["; fastfuzz program seed=%d" % self.seed]
        if handler:
            lines += _HANDLER
        lines += [".org %#x" % CODE_BASE, "main:"]
        if stack or handler:
            # The vector saves registers on the stack, so any program
            # that can take an interrupt needs SP pointed somewhere real.
            lines.append("    MOVI SP, %#x" % STACK_TOP)
        if handler:
            # Clear the timer-fire counter the handler increments.
            lines += [
                "    MOVI R1, 0",
                "    MOVI R6, %#x" % FIRE_COUNT,
                "    ST [R6+0], R1",
            ]
        for index, atom in enumerate(self.atoms):
            prefix = "a%d" % index
            lines.append("; atom %d: %s" % (index, atom.kind))
            for line in atom.lines:
                lines.append("    " + line.replace("{L}", prefix))
        lines += [
            "exit:",
            "    MOVI R1, 0",
            "    OUT %#x, R1" % PORT_POWER,
            "    HALT",
        ]
        if user:
            lines += _USER_CODE
        return "\n".join(lines) + "\n"

    def replace(self, atoms: List[Atom]) -> "FuzzProgram":
        return FuzzProgram(seed=self.seed, atoms=list(atoms))


# -- scaffold -------------------------------------------------------------
#
# The exception/interrupt vector.  Saves the caller's flags and R1/R2 on
# the (kernel, physical) stack, dispatches on CAUSE, restores and IRETs.
# Unexpected causes power the system off: a generated program must never
# fault except where the generator means it to, so anything else ends
# the run deterministically instead of wedging.
_HANDLER = [
    ".org %#x" % IMAGE_BASE,
    "vector:",
    "    PUSH R1",
    "    MOVRS R1, FLAGS",
    "    PUSH R1",
    "    PUSH R2",
    "    MOVRS R1, CAUSE",
    "    ANDI R1, 0xFF",
    "    CMPI R1, 1",  # CAUSE_TLB_MISS
    "    JZ vec_tlb",
    "    CMPI R1, 3",  # CAUSE_SYSCALL
    "    JZ vec_sys",
    "    CMPI R1, 4",  # CAUSE_TIMER_IRQ
    "    JZ vec_timer",
    "    CMPI R1, 5",  # CAUSE_DEVICE_IRQ
    "    JZ vec_timer",
    "    JMP vec_fatal",
    "vec_tlb:",  # software-TLB refill: identity map, valid+writable
    "    MOVRS R1, BADVADDR",
    "    SHR R1, 12",
    "    MOV R2, R1",
    "    SHL R2, 12",
    "    ORI R2, 3",
    "    TLBWR R1, R2",
    "    JMP vec_out",
    "vec_timer:",  # acknowledge line 0, count the fire
    "    MOVI R1, 1",
    "    OUT %#x, R1" % PORT_PIC_ACK,
    "    MOVI R1, %#x" % FIRE_COUNT,
    "    LD R2, [R1+0]",
    "    INC R2",
    "    ST [R1+0], R2",
    "    JMP vec_out",
    "vec_sys:",  # return-to-kernel: continuation saved in SCRATCH1
    "    MOVRS R1, SCRATCH1",
    "    MOVSR EPC, R1",
    "    MOVRS R1, STATUS",
    "    ORI R1, 12",  # PREV_KERNEL | PREV_IE
    "    MOVSR STATUS, R1",
    "    JMP vec_out",
    "vec_fatal:",
    "    MOVI R1, 0",
    "    OUT %#x, R1" % PORT_POWER,
    "    HALT",
    "vec_out:",
    "    POP R2",
    "    POP R1",
    "    MOVSR FLAGS, R1",
    "    POP R1",
    "    IRET",
]

# User-mode excursion body.  Entered via IRET with R3 = iteration count,
# R4 = address stride; every fetch and data access goes through the
# software TLB (misses refilled by vec_tlb above).  SYSCALL returns to
# the kernel continuation stored in SCRATCH1.
_USER_CODE = [
    ".org %#x" % USER_CODE,
    "user_code:",
    "    MOVI R2, %#x" % USER_DATA,
    "user_loop:",
    "    ST [R2+0], R3",
    "    LD R1, [R2+4]",
    "    ADD R1, R3",
    "    ADD R2, R4",
    "    DEC R3",
    "    JNZ user_loop",
    "    SYSCALL",
]


# -- atom builders --------------------------------------------------------


def _scratch_addr(rng: random.Random) -> int:
    return SCRATCH_BASE + rng.randrange(0, SCRATCH_SIZE - 64, 4)


def _alu_lines(rng: random.Random, count: int,
               regs: Tuple[int, ...] = DATA_REGS) -> List[str]:
    lines = []
    for _ in range(count):
        shape = rng.randrange(4)
        reg = rng.choice(regs)
        if shape == 0:
            op = rng.choice(_ALU_REG_OPS)
            lines.append("%s R%d, R%d" % (op, reg, rng.choice(regs)))
        elif shape == 1:
            lines.append("%s R%d" % (rng.choice(_ALU_UNARY_OPS), reg))
        elif shape == 2:
            op = rng.choice(_ALU_IMM_OPS)
            lines.append("%s R%d, %d" % (op, reg, rng.randrange(1 << 16)))
        else:
            op = rng.choice(_ALU_SHIFT_OPS)
            lines.append("%s R%d, %d" % (op, reg, rng.randrange(1, 13)))
    return lines


def alu_burst(rng: random.Random, count: int,
              regs: Tuple[int, ...] = DATA_REGS) -> List[str]:
    """Public entry for other tools built on the generator (the
    hot-path bench's seeded busy kernels): a deterministic burst of
    *count* ALU instructions over *regs*."""
    return _alu_lines(rng, count, regs)


def _atom_alu(rng: random.Random, cfg: GeneratorConfig) -> Atom:
    return Atom("alu", tuple(_alu_lines(rng, rng.randint(1, 4))))


def _atom_muldiv(rng: random.Random, cfg: GeneratorConfig) -> Atom:
    dst, src = rng.choice(DATA_REGS), rng.choice(DATA_REGS)
    lines = ["MOVI R%d, %d" % (src, rng.randrange(1, 1 << 12))]
    if rng.random() < 0.5:
        lines.append("MUL R%d, R%d" % (dst, src))
    else:
        lines.append("ORI R%d, 1" % src)  # divisor can never be zero
        lines.append("DIV R%d, R%d" % (dst, src))
    return Atom("muldiv", tuple(lines))


def _atom_mem(rng: random.Random, cfg: GeneratorConfig) -> Atom:
    addr = _scratch_addr(rng)
    reg = rng.choice(DATA_REGS)
    lines = ["MOVI R6, %#x" % addr]
    for _ in range(rng.randint(1, 3)):
        disp = rng.randrange(0, 32, 4)
        shape = rng.randrange(5)
        if shape == 0:
            lines.append("ST [R6+%d], R%d" % (disp, reg))
        elif shape == 1:
            lines.append("LD R%d, [R6+%d]" % (rng.choice(DATA_REGS), disp))
        elif shape == 2:
            lines.append("STB [R6+%d], R%d" % (disp, reg))
        elif shape == 3:
            lines.append("LDB R%d, [R6+%d]" % (rng.choice(DATA_REGS), disp))
        else:
            lines.append("LEA R%d, [R6+%d]" % (rng.choice(DATA_REGS), disp))
    return Atom("mem", tuple(lines))


def _atom_stack(rng: random.Random, cfg: GeneratorConfig) -> Atom:
    depth = rng.randint(1, 3)
    pushes = [rng.choice(DATA_REGS) for _ in range(depth)]
    pops = [rng.choice(DATA_REGS) for _ in range(depth)]
    lines = ["PUSH R%d" % r for r in pushes]
    lines += ["POP R%d" % r for r in pops]
    return Atom("stack", tuple(lines), needs_stack=True)


def _atom_flow(rng: random.Random, cfg: GeneratorConfig) -> Atom:
    reg = rng.choice(DATA_REGS)
    cc = rng.choice(("JZ", "JNZ", "JL", "JGE", "JG", "JLE", "JC", "JNC"))
    lines = [
        "CMPI R%d, %d" % (reg, rng.randrange(1 << 16)),
        "%s {L}_skip" % cc,
    ]
    lines += _alu_lines(rng, rng.randint(1, 2))
    lines.append("{L}_skip:")
    return Atom("flow", tuple(lines))


def _atom_loop(rng: random.Random, cfg: GeneratorConfig) -> Atom:
    trip = rng.randint(2, cfg.max_loop_trip)
    # R5 is the loop counter; the body must leave it alone.
    body_regs = tuple(r for r in DATA_REGS if r != 5)
    lines = ["MOVI R5, %d" % trip, "{L}_top:"]
    lines += _alu_lines(rng, rng.randint(1, 3), regs=body_regs)
    if rng.random() < 0.3:
        addr = _scratch_addr(rng)
        lines.append("MOVI R6, %#x" % addr)
        lines.append("ST [R6+0], R%d" % rng.choice(body_regs))
    lines += ["DEC R5", "JNZ {L}_top"]
    return Atom("loop", tuple(lines))


def _atom_call(rng: random.Random, cfg: GeneratorConfig) -> Atom:
    lines = ["CALL {L}_sub", "JMP {L}_done", "{L}_sub:"]
    lines += _alu_lines(rng, rng.randint(1, 2))
    lines += ["RET", "{L}_done:"]
    return Atom("call", tuple(lines), needs_stack=True)


def _atom_string(rng: random.Random, cfg: GeneratorConfig) -> Atom:
    count = rng.randint(1, cfg.max_string_count)
    src = _scratch_addr(rng)
    dst = _scratch_addr(rng)
    op = rng.choice(("MOVSB", "STOSB", "SCASB"))
    lines = [
        "MOVI R0, %#x" % src,
        "MOVI R1, %#x" % dst,
        "MOVI R2, %d" % count,
        "MOVI R3, %d" % rng.randrange(256),
        "REP %s" % op,
    ]
    return Atom("string", tuple(lines))


def _atom_fp(rng: random.Random, cfg: GeneratorConfig) -> Atom:
    f1, f2 = rng.randrange(4), rng.randrange(4)
    gpr = rng.choice(DATA_REGS)
    lines = [
        "MOVI R%d, %d" % (gpr, rng.randrange(1, 1 << 10)),
        "FITOF F%d, R%d" % (f1, gpr),
        "%s F%d, F%d" % (rng.choice(("FADD", "FSUB", "FMUL", "FMOV")), f2, f1),
    ]
    if rng.random() < 0.5:
        addr = _scratch_addr(rng)
        lines.append("MOVI R6, %#x" % addr)
        lines.append("FST [R6+0], F%d" % f2)
        lines.append("FLD F%d, [R6+0]" % f1)
    lines.append("FFTOI R%d, F%d" % (gpr, f2))
    return Atom("fp", tuple(lines))


def _atom_tlbwr(rng: random.Random, cfg: GeneratorConfig) -> Atom:
    # Kernel-mode software-TLB fill: exercises the tlb_vpn/tlb_pte trace
    # fields and checkpointed TLB state even without a user excursion.
    vpn = (USER_DATA >> 12) + rng.randrange(8)
    lines = [
        "MOVI R1, %d" % vpn,
        "MOVI R2, %#x" % ((vpn << 12) | 3),
        "TLBWR R1, R2",
    ]
    if rng.random() < 0.25:
        lines.append("TLBFLUSH")
    return Atom("tlbwr", tuple(lines))


def _atom_timer(rng: random.Random, cfg: GeneratorConfig) -> Atom:
    interval = rng.randint(cfg.min_timer_interval, cfg.max_timer_interval)
    lines = [
        "MOVI R1, %d" % interval,
        "OUT %#x, R1" % PORT_TIMER_INTERVAL,
        "MOVI R1, 1",
        "OUT %#x, R1" % PORT_PIC_ENABLE,
        "OUT %#x, R1" % PORT_TIMER_CTRL,
        "STI",
    ]
    return Atom("timer", tuple(lines), needs_handler=True, arms_timer=True)


def _atom_halt_wait(rng: random.Random, cfg: GeneratorConfig) -> Atom:
    # Only emitted after a timer atom: the next fire always wakes it.
    return Atom("halt_wait", ("HALT",), needs_handler=True)


def _atom_user(rng: random.Random, cfg: GeneratorConfig) -> Atom:
    iters = rng.randint(2, 6)
    stride = rng.choice((4, 8, 64, 4096, 4100))
    lines = [
        "MOVI R3, %d" % iters,
        "MOVI R4, %d" % stride,
        "MOVI R1, {L}_cont",
        "MOVSR SCRATCH1, R1",
        "MOVI R1, user_code",
        "MOVSR EPC, R1",
        "MOVRS R1, STATUS",
        "ANDI R1, 0xFFFFFFF3",  # clear PREV_IE | PREV_KERNEL
        "ORI R1, 4",  # PREV_IE: user mode runs with interrupts on
        "MOVSR STATUS, R1",
        "IRET",
        "{L}_cont:",
    ]
    return Atom("user", tuple(lines), needs_handler=True, needs_user=True)


_BUILDERS = {
    "alu": _atom_alu,
    "muldiv": _atom_muldiv,
    "mem": _atom_mem,
    "stack": _atom_stack,
    "flow": _atom_flow,
    "loop": _atom_loop,
    "call": _atom_call,
    "string": _atom_string,
    "fp": _atom_fp,
    "tlbwr": _atom_tlbwr,
    "timer": _atom_timer,
    "halt_wait": _atom_halt_wait,
    "user": _atom_user,
}


def generate_program(seed: int,
                     config: Optional[GeneratorConfig] = None) -> FuzzProgram:
    """Generate one terminating program, deterministically from *seed*."""
    cfg = config or GeneratorConfig()
    rng = random.Random(seed)
    n_atoms = rng.randint(cfg.min_atoms, cfg.max_atoms)
    kinds = [kind for kind, weight in cfg.weights for _ in range(weight)]
    atoms: List[Atom] = []
    timer_armed = False
    # Seed the data registers so every atom starts from defined values.
    seed_lines = tuple(
        "MOVI R%d, %d" % (reg, rng.randrange(1 << 16)) for reg in DATA_REGS
    )
    atoms.append(Atom("seed-regs", seed_lines))
    while len(atoms) < n_atoms + 1:
        kind = rng.choice(kinds)
        if kind == "halt_wait" and not timer_armed:
            continue  # a HALT with no wake source would wedge
        if kind == "timer" and timer_armed:
            continue  # one arming per program keeps intervals stable
        atom = _BUILDERS[kind](rng, cfg)
        atoms.append(atom)
        timer_armed = timer_armed or atom.arms_timer
    return FuzzProgram(seed=seed, atoms=atoms)
