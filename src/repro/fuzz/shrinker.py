"""Delta-debugging minimization of a diverging fuzz program.

Two passes, both driven by a caller-supplied ``is_failing`` predicate
(typically "the oracle matrix still diverges"):

1. *ddmin over atoms* -- the classic Zeller/Hildebrandt algorithm on the
   program's atom list.  Atoms are self-contained by construction
   (:mod:`repro.fuzz.generator`), so any subset still assembles and
   still terminates; the scaffold (handler, user code, epilogue) follows
   the surviving atoms' feature flags automatically.
2. *line-level trim* -- within each surviving atom, drop one line at a
   time.  A candidate must still assemble (labels may be referenced by
   surviving lines) and still fail.

Every candidate evaluation re-runs the full oracle matrix, so shrinking
is bounded by ``max_evals`` rather than guaranteed minimal; in practice
a diverging program collapses to one or two atoms within a few dozen
evaluations.  The predicate is pure (same program, same verdict), so
the whole shrink is deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List

from repro.isa.assembler import AssemblerError, assemble
from repro.fuzz.generator import Atom, FuzzProgram


@dataclass
class ShrinkStats:
    """How much work the shrink did (reported by the CLI)."""

    evaluations: int = 0
    atoms_before: int = 0
    atoms_after: int = 0
    lines_removed: int = 0


class _Budget:
    def __init__(self, limit: int):
        self.limit = limit
        self.used = 0

    def spend(self) -> bool:
        if self.used >= self.limit:
            return False
        self.used += 1
        return True


def _assembles(program: FuzzProgram) -> bool:
    try:
        assemble(program.source(), base=program.base)
    except AssemblerError:
        return False
    return True


def _ddmin_atoms(
    program: FuzzProgram,
    is_failing: Callable[[FuzzProgram], bool],
    budget: _Budget,
) -> FuzzProgram:
    atoms: List[Atom] = list(program.atoms)
    granularity = 2
    while len(atoms) >= 2:
        chunk = max(1, len(atoms) // granularity)
        reduced = False
        start = 0
        while start < len(atoms):
            candidate_atoms = atoms[:start] + atoms[start + chunk:]
            candidate = program.replace(candidate_atoms)
            if candidate_atoms and budget.spend() and is_failing(candidate):
                atoms = candidate_atoms
                granularity = max(granularity - 1, 2)
                reduced = True
                # restart the sweep over the reduced list
                start = 0
                continue
            start += chunk
        if not reduced:
            if granularity >= len(atoms) or budget.used >= budget.limit:
                break
            granularity = min(len(atoms), granularity * 2)
    return program.replace(atoms)


def _trim_lines(
    program: FuzzProgram,
    is_failing: Callable[[FuzzProgram], bool],
    budget: _Budget,
    stats: ShrinkStats,
) -> FuzzProgram:
    atoms = list(program.atoms)
    for index in range(len(atoms)):
        lines: List[str] = list(atoms[index].lines)
        pos = 0
        while pos < len(lines) and budget.used < budget.limit:
            candidate_lines = lines[:pos] + lines[pos + 1:]
            if not candidate_lines:
                break  # removing the whole atom was ddmin's job
            trial_atom = Atom(
                kind=atoms[index].kind,
                lines=tuple(candidate_lines),
                needs_handler=atoms[index].needs_handler,
                needs_stack=atoms[index].needs_stack,
                needs_user=atoms[index].needs_user,
                arms_timer=atoms[index].arms_timer,
            )
            trial_atoms = atoms[:index] + [trial_atom] + atoms[index + 1:]
            candidate = program.replace(trial_atoms)
            if (
                _assembles(candidate)
                and budget.spend()
                and is_failing(candidate)
            ):
                lines = candidate_lines
                atoms = trial_atoms
                stats.lines_removed += 1
            else:
                pos += 1
    return program.replace(atoms)


def shrink(
    program: FuzzProgram,
    is_failing: Callable[[FuzzProgram], bool],
    max_evals: int = 200,
) -> "tuple[FuzzProgram, ShrinkStats]":
    """Minimize *program* while ``is_failing`` stays true.

    Returns ``(smaller_program, stats)``.  *program* must already fail;
    the result is guaranteed to fail too (the original is returned
    unchanged if nothing smaller does).
    """
    stats = ShrinkStats(atoms_before=len(program.atoms))
    budget = _Budget(max_evals)
    current = _ddmin_atoms(program, is_failing, budget)
    current = _trim_lines(current, is_failing, budget, stats)
    stats.evaluations = budget.used
    stats.atoms_after = len(current.atoms)
    return current, stats


def instruction_count(program: FuzzProgram) -> int:
    """Assembled instruction count of *program* (shrink quality metric)."""
    return assemble(program.source(), base=program.base).instruction_count
