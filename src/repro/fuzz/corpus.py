"""The regression corpus: shrunk diverging programs as ``.s`` files.

Every divergence the fuzzer finds is minimized and written into
``tests/corpus/`` as a plain FastISA assembly file.  The file is
self-contained and directly assemblable -- all metadata (seed, load
base, what diverged, a disassembly of the built image) lives in ``;``
comments, so a corpus entry can be read, triaged, edited and replayed
without any fuzzer machinery.  ``tests/test_fuzz_corpus.py`` replays
each file through the full oracle matrix on every test run, which turns
yesterday's fuzz finding into today's regression test.

File names are content-addressed (``repro-<sha256[:12]>.s``): re-finding
a known divergence is idempotent, and two different minimal programs
never collide.
"""

from __future__ import annotations

import hashlib
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, List, Optional, Sequence

_META_RE = re.compile(r"^;\s*fastfuzz-([a-z-]+):\s*(.+?)\s*$")


@dataclass
class ReproFile:
    """One parsed corpus entry."""

    path: Optional[Path]
    source: str
    seed: int = 0
    base: int = 0
    notes: List[str] = field(default_factory=list)

    @property
    def name(self) -> str:
        return self.path.name if self.path is not None else "<unsaved>"


def _digest(source: str, base: int) -> str:
    blob = ("%#x\n" % base).encode() + source.encode()
    return hashlib.sha256(blob).hexdigest()[:12]


def write_repro(
    directory: "Path | str",
    source: str,
    base: int,
    seed: int,
    divergences: Sequence[str] = (),
    listing: str = "",
) -> Path:
    """Write a repro file and return its (content-addressed) path."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / ("repro-%s.s" % _digest(source, base))
    lines = [
        "; FastFuzz minimized repro -- replayed by tests/test_fuzz_corpus.py",
        "; fastfuzz-seed: %d" % seed,
        "; fastfuzz-base: %#x" % base,
    ]
    for text in divergences:
        for part in str(text).splitlines():
            lines.append("; fastfuzz-diverged: %s" % part)
    if listing:
        lines.append(";")
        lines.append("; disassembly of the assembled image:")
        for part in listing.splitlines():
            lines.append(";   " + part)
    lines.append("")
    lines.append(source.rstrip("\n"))
    lines.append("")
    path.write_text("\n".join(lines))
    return path


def load_repro(path: "Path | str") -> ReproFile:
    """Parse a corpus file back into source + metadata."""
    path = Path(path)
    text = path.read_text()
    repro = ReproFile(path=path, source=text)
    for line in text.splitlines():
        match = _META_RE.match(line)
        if not match:
            continue
        key, value = match.group(1), match.group(2)
        if key == "seed":
            repro.seed = int(value, 0)
        elif key == "base":
            repro.base = int(value, 0)
        elif key == "diverged":
            repro.notes.append(value)
    return repro


def iter_corpus(directory: "Path | str") -> Iterator[ReproFile]:
    """Yield every repro in *directory*, sorted by file name."""
    directory = Path(directory)
    if not directory.is_dir():
        return
    for path in sorted(directory.glob("repro-*.s")):
        yield load_repro(path)
