"""The differential oracle: one program, ten simulators, one answer.

For each generated program the harness runs the full oracle matrix

    {compiled, legacy} engine x {lockstep, trace-buffer} feed
                              x {instruction, cycle} interrupt mode

plus a ninth cell -- the compiled/trace-buffer coupling with the FM's
FastBlock superblock cache forced *off* -- so superblock capture and
replay under speculation and rollback is differentially pinned against
the interpreted path, plus a tenth cell -- the *sharded* engine
(two-shard default plan) driving the trace-buffer coupling -- so the
bulk-synchronous tick engine is differentially pinned bit-identical
against the compiled schedule on every generated program, and asserts
that within each interrupt mode all coupled cells report
bit-identical ``TimingStats``, console output and final architectural
state -- the FAST invariant (paper section 2/3): speculation + rollback
must be observationally equivalent to in-order execution, and the
compiled tick schedule must be cycle-for-cycle the legacy dispatch.
Instruction-mode cells are additionally checked against a *golden* run
of the functional model alone (no timing model at all): coupling a
timing model must not change architecture.

The two interrupt modes are separate columns, not comparable to each
other: instruction-mode timers tick on committed instructions,
cycle-mode timers fire on target cycles, so they deliver interrupts at
different architectural points by design.

A cell that deadlocks, wedges or raises is itself a result (its status
string), so "one coupling finishes, the other deadlocks" shows up as an
ordinary divergence instead of crashing the fuzzer.

Wedge diagnosis rides on the FastPulse liveness watchdog: every cell
arms an in-memory :class:`~repro.observability.pulse.PulseEmitter` (no
sidecar file) with a :class:`~repro.observability.pulse.LivenessWatchdog`,
so a cell that runs out its cycle budget without shutting down reports
``wedged:no-progress@<since>(last_commit=<cycle>)`` -- the stall onset
and the last committed cycle -- instead of a bare ``wedged``.  The
detail is deterministic (pure cycle arithmetic), so matched couplings
still compare equal and a *differently*-wedged pair is a richer
divergence.  Against the golden run only the status *family* (the text
before ``:``) is compared: the FM alone has no cycles to diagnose with.
"""

from __future__ import annotations

import dataclasses
import hashlib
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.baselines.lockstep import LockStepFeed
from repro.fast.interrupts import CycleInterruptCoordinator
from repro.fast.trace_buffer import TraceBufferFeed
from repro.functional.model import FunctionalModel
from repro.isa.program import ProgramImage
from repro.system.bus import build_standard_system
from repro.timing.core import DeadlockError, TimingConfig, TimingModel

# Memory windows digested into the architectural fingerprint.  They
# cover everything a generated program can store to (scratch window,
# timer-fire counter, user-mode data pages); digests keep the
# fingerprint small enough to diff and to embed in repro files.
_DIGEST_WINDOWS = (
    ("scratch", 0x8FF0, 0x9800),
    ("user", 0x20000, 0x2A000),
)


@dataclass(frozen=True)
class OracleCell:
    """One point of the oracle matrix."""

    engine: str  # "compiled" | "legacy" | "sharded"
    feed: str  # "lockstep" | "tb"
    irq: str  # "instr" | "cycle"
    blocks: str = "on"  # "on" | "off": FM superblock capture/replay
    shards: int = 0  # shard count for engine="sharded" (0 = n/a)

    @property
    def label(self) -> str:
        label = "%s/%s/%s" % (self.engine, self.feed, self.irq)
        if self.blocks != "on":
            return label + "/noblocks"
        return label


ORACLE_CELLS: Tuple[OracleCell, ...] = tuple(
    OracleCell(engine, feed, irq)
    for irq in ("instr", "cycle")
    for engine in ("legacy", "compiled")
    for feed in ("lockstep", "tb")
) + (
    # The ninth cell: the most speculative coupling, interpreted.  Any
    # FastBlock replay bug diverges it from the (superblocks-on)
    # reference without perturbing the eight canonical cells.
    OracleCell("compiled", "tb", "instr", blocks="off"),
    # The tenth cell: the FastShard bulk-synchronous engine on a
    # two-shard auto plan, driving the most speculative coupling.  The
    # reference cell it is diffed against is itself bit-identical to
    # compiled/tb/instr, so any sharded-engine divergence (boundary
    # batching, span negotiation, plan interpretation) surfaces here.
    OracleCell("sharded", "tb", "instr", shards=2),
)

# Per interrupt mode, the cell every other cell is diffed against.  The
# legacy engine driving the lock-step feed is the simplest simulator in
# the matrix -- the closest thing to ground truth.
_REFERENCE = {
    "instr": OracleCell("legacy", "lockstep", "instr"),
    "cycle": OracleCell("legacy", "lockstep", "cycle"),
}


@dataclass(frozen=True)
class OracleConfig:
    """Budgets and hooks for one matrix evaluation."""

    max_cycles: int = 3_000_000
    max_instructions: int = 500_000
    memory_size: int = 1 << 20
    predictor: str = "gshare"
    cycle_irq_interval: int = 900
    # Arm the FastWatch invariant fabric in every cell.  A firing is a
    # divergence in its own right: on a healthy simulator the canonical
    # invariants hold on every cycle of every cell, so the fuzzer also
    # pins the fabric's false-positive rate at zero.
    invariants: bool = False
    # Arm the FastPulse liveness watchdog in every cell (in-memory; no
    # sidecar file) so wedged cells report the stall onset and last
    # commit cycle instead of a bare status.
    pulse: bool = True
    pulse_interval_cycles: int = 25_000
    stall_cycles: int = 100_000
    # Test hook: called as ``mutator(fm, tm, cell)`` after each matrix
    # cell is wired but before it runs (never for the golden run), so
    # tests can inject a semantics bug into selected cells and check the
    # fuzzer catches it.
    mutator: Optional[
        Callable[[FunctionalModel, Optional[TimingModel], OracleCell], None]
    ] = None


@dataclass
class CellResult:
    """What one simulator reported for the program."""

    label: str
    status: str  # "ok" | "deadlock" | "wedged" | "error:<type>"
    stats: Dict[str, int] = field(default_factory=dict)
    arch: Dict[str, object] = field(default_factory=dict)
    # FastWatch firings observed while the cell ran (always 0 unless
    # OracleConfig.invariants armed the fabric).
    invariant_firings: int = 0

    def key(self) -> Tuple[str, tuple, tuple]:
        return (
            self.status,
            tuple(sorted(self.stats.items())),
            tuple(sorted((k, repr(v)) for k, v in self.arch.items())),
        )


@dataclass
class Divergence:
    """Two cells (or a cell and the golden run) disagree."""

    kind: str  # "stats" | "arch" | "status" | "golden" | "invariant"
    reference: str
    cell: str
    fields: Tuple[str, ...]
    detail: str

    def __str__(self) -> str:
        return "%s: %s vs %s on %s (%s)" % (
            self.kind, self.cell, self.reference,
            ", ".join(self.fields) or "-", self.detail,
        )


@dataclass
class MatrixResult:
    """Outcome of running one program across the whole matrix."""

    seed: int
    golden: Dict[str, object]
    golden_status: str
    cells: Dict[str, CellResult]
    divergences: List[Divergence]

    @property
    def ok(self) -> bool:
        return not self.divergences


def _arch_fingerprint(fm: FunctionalModel, console_text: str) -> Dict[str, object]:
    state = fm.state
    digests = {}
    for name, lo, hi in _DIGEST_WINDOWS:
        blob = fm.memory.read_blob(lo, hi - lo)
        digests["mem_" + name] = hashlib.sha256(blob).hexdigest()[:16]
    return {
        "regs": tuple(state.regs),
        "fregs": tuple(state.fregs),
        "flags": state.flags,
        "pc": state.pc,
        "srs": tuple(state.srs),
        "halted": state.halted,
        "shutdown": fm.bus.shutdown_requested,
        "shutdown_code": fm.bus.shutdown_code,
        "in_count": fm.in_count,
        "console": console_text,
        **digests,
    }


def _build(source: str, base: int, config: OracleConfig):
    memory, bus, _intctrl, _timer, console, _disk = build_standard_system(
        memory_size=config.memory_size
    )
    fm = FunctionalModel(memory=memory, bus=bus)
    fm.load(ProgramImage.from_assembly("fuzz", source, base=base,
                                       entry="main"))
    return fm, console


def run_golden(source: str, base: int,
               config: OracleConfig) -> Tuple[Dict[str, object], str]:
    """The functional model alone: architectural ground truth."""
    fm, console = _build(source, base, config)
    status = "ok"
    try:
        fm.run(max_instructions=config.max_instructions)
        if not fm.bus.shutdown_requested:
            status = "wedged"
    except Exception as exc:  # pragma: no cover - defensive
        status = "error:%s" % type(exc).__name__
    return _arch_fingerprint(fm, console.text()), status


def _wedge_status(tm: TimingModel, watchdog) -> str:
    """A wedged cell's status, diagnosed by the liveness watchdog.

    Deterministic by construction -- stall onset and last-commit cycle
    are target-cycle arithmetic -- so two identically-wedged couplings
    still compare equal, while cells wedged *differently* surface the
    difference in the divergence detail."""
    last_commit = tm.backend.last_commit_cycle
    if watchdog is not None and watchdog.last_stall is not None:
        stall = watchdog.last_stall
        return "wedged:no-progress@%d(last_commit=%d)" % (
            stall["since_cycle"], stall["last_commit_cycle"])
    if watchdog is not None:
        # Budget ran out while the program was still making progress:
        # wedged from the harness's point of view, live from the
        # watchdog's.  Still worth distinguishing from a true stall.
        return "wedged:live@%d(last_commit=%d)" % (tm.cycle, last_commit)
    return "wedged"


def run_cell(source: str, base: int, cell: OracleCell,
             config: OracleConfig) -> CellResult:
    """Run one simulator configuration over the program."""
    fm, console = _build(source, base, config)
    if cell.blocks != "on":
        fm.config.superblocks = False
        fm.blocks = None
        fm._sb_pages = {}
    feed_cls = LockStepFeed if cell.feed == "lockstep" else TraceBufferFeed
    feed = feed_cls(fm)
    timing_config = TimingConfig(engine=cell.engine,
                                 predictor=config.predictor)
    if cell.engine == "sharded" and cell.shards:
        timing_config.shards = cell.shards
    tm = TimingModel(feed, microcode=fm.microcode, config=timing_config)
    if cell.irq == "cycle":
        CycleInterruptCoordinator(tm, fm,
                                  interval_cycles=config.cycle_irq_interval)
    if config.mutator is not None:
        config.mutator(fm, tm, cell)
    monitor = None
    if config.invariants:
        from repro.observability.watch import InvariantMonitor

        # Lock-step feeds are not Modules; the monitor filters them out
        # and arms the TM-side invariants alone in those cells.
        monitor = InvariantMonitor(tm, extra_roots=(feed,))
    watchdog = None
    if config.pulse:
        from repro.observability.pulse import LivenessWatchdog, PulseEmitter

        watchdog = LivenessWatchdog(no_commit_cycles=config.stall_cycles)
        # In-memory emitter (path=None): the watchdog needs the sampled
        # det stream, not a sidecar file, and the cadence hint keeps
        # idle fast-forward in the compiled cells.
        PulseEmitter(
            tm,
            feed=feed,
            interval_cycles=config.pulse_interval_cycles,
            monitor=monitor,
            watchdog=watchdog,
        )
    status = "ok"
    stats_dict: Dict[str, int] = {}
    try:
        stats = tm.run(max_cycles=config.max_cycles)
        stats_dict = dataclasses.asdict(stats)
        if not fm.bus.shutdown_requested:
            status = _wedge_status(tm, watchdog)
    except DeadlockError:
        status = "deadlock"
    except Exception as exc:
        status = "error:%s" % type(exc).__name__
    return CellResult(
        label=cell.label,
        status=status,
        stats=stats_dict,
        arch=_arch_fingerprint(fm, console.text()),
        invariant_firings=monitor.firings if monitor is not None else 0,
    )


def _diff_dicts(a: Dict, b: Dict) -> Tuple[str, ...]:
    return tuple(sorted(k for k in a.keys() | b.keys() if a.get(k) != b.get(k)))


def _status_family(status: str) -> str:
    """``wedged:no-progress@123(...)`` -> ``wedged``.  The golden run has
    no timing model, hence no watchdog detail to match against.  Only
    wedge detail is stripped; ``error:<type>`` stays exact."""
    if status.startswith("wedged"):
        return "wedged"
    return status


def _compare(reference: CellResult, cell: CellResult) -> List[Divergence]:
    out: List[Divergence] = []
    if reference.status != cell.status:
        out.append(Divergence(
            "status", reference.label, cell.label, (),
            "%s vs %s" % (cell.status, reference.status),
        ))
        return out  # stats/arch of a failed run are not meaningful
    fields = _diff_dicts(reference.stats, cell.stats)
    if fields:
        detail = "; ".join(
            "%s=%r vs %r" % (f, cell.stats.get(f), reference.stats.get(f))
            for f in fields[:4]
        )
        out.append(Divergence("stats", reference.label, cell.label,
                              fields, detail))
    fields = _diff_dicts(reference.arch, cell.arch)
    if fields:
        detail = "; ".join(
            "%s=%r vs %r" % (f, cell.arch.get(f), reference.arch.get(f))
            for f in fields[:4]
        )
        out.append(Divergence("arch", reference.label, cell.label,
                              fields, detail))
    return out


def run_matrix(source: str, base: int, seed: int = 0,
               config: Optional[OracleConfig] = None,
               cells: Tuple[OracleCell, ...] = ORACLE_CELLS) -> MatrixResult:
    """Run *source* across the oracle matrix and collect divergences."""
    cfg = config or OracleConfig()
    golden, golden_status = run_golden(source, base, cfg)
    results = {cell.label: run_cell(source, base, cell, cfg)
               for cell in cells}
    divergences: List[Divergence] = []
    for result in results.values():
        if result.invariant_firings:
            divergences.append(Divergence(
                "invariant", "fastwatch", result.label, (),
                "%d invariant firing(s)" % result.invariant_firings))
    for irq in ("instr", "cycle"):
        ref_label = _REFERENCE[irq].label
        reference = results.get(ref_label)
        if reference is None:
            continue
        for cell in cells:
            if cell.irq != irq or cell.label == ref_label:
                continue
            divergences.extend(_compare(reference, results[cell.label]))
        # Instruction-mode couplings must also reproduce the golden
        # (FM-alone) architecture: attaching a timing model cannot
        # change what the program computed.
        if irq == "instr" and reference.status == "ok" and golden_status == "ok":
            fields = _diff_dicts(golden, reference.arch)
            if fields:
                detail = "; ".join(
                    "%s=%r vs %r" % (f, reference.arch.get(f), golden.get(f))
                    for f in fields[:4]
                )
                divergences.append(Divergence(
                    "golden", "fm-alone", ref_label, fields, detail))
        elif irq == "instr" and (
            _status_family(reference.status) != _status_family(golden_status)
        ):
            divergences.append(Divergence(
                "golden", "fm-alone", ref_label, (),
                "%s vs %s" % (reference.status, golden_status)))
    return MatrixResult(
        seed=seed,
        golden=golden,
        golden_status=golden_status,
        cells=results,
        divergences=divergences,
    )
