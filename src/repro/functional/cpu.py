"""The FastISA interpreter: instruction execution handlers.

This module is the execution half of the functional model; the
lifecycle half (checkpoints, rollback, tracing, run loops) lives in
:mod:`repro.functional.model`.  The split keeps each file focused: this
one is a plain, careful interpreter.

Faults are raised as :class:`Fault` and converted to exception entries
by the model.  Handlers mutate architectural state only after all
faults for the instruction have been checked, so exceptions are
precise.
"""

from __future__ import annotations

import math
import struct

from repro.isa import registers
from repro.isa.causes import (
    CAUSE_DIV_ZERO,
    CAUSE_PROTECTION,
    CAUSE_SOFT_INT,
    CAUSE_SYSCALL,
)
from repro.isa.instructions import Instr
from repro.isa.opcodes import OPCODES
from repro.isa.registers import (
    FLAG_C,
    FLAG_N,
    FLAG_V,
    FLAG_Z,
    SR_CYCLE,
    SR_STATUS,
    STATUS_IE,
    STATUS_KERNEL,
)

MASK32 = 0xFFFFFFFF
SIGN_BIT = 0x80000000


class Fault(Exception):
    """A synchronous exception discovered while executing an instruction."""

    def __init__(self, cause: int, badvaddr: int = 0, epc_next: bool = False):
        super().__init__("fault cause=%d" % cause)
        self.cause = cause
        self.badvaddr = badvaddr
        # epc_next=True: the handler resumes AFTER this instruction
        # (SYSCALL/INT); otherwise the instruction re-executes (TLB miss).
        self.epc_next = epc_next


def _signed(value: int) -> int:
    return value - 0x100000000 if value & SIGN_BIT else value


class ExecResult:
    """What one instruction execution produced (feeds the trace entry)."""

    __slots__ = ("next_pc", "mem_vaddr", "mem_paddr", "iterations",
                 "tlb_vpn", "tlb_pte", "io_port", "io_value")

    def __init__(self, next_pc: int):
        self.next_pc = next_pc
        self.mem_vaddr = -1
        self.mem_paddr = -1
        self.iterations = 1
        self.tlb_vpn = -1
        self.tlb_pte = -1
        self.io_port = -1  # OUT port (I/O writes are passed in the trace)
        self.io_value = 0


class CPUMixin:
    """Instruction execution.  Mixed into FunctionalModel.

    Expects the host class to provide: ``state`` (ArchState), ``tlb``,
    ``bus``, ``memory``, ``_phys_write32``/``_phys_write8`` (logged
    writes), and ``_wrong_path`` (bool).
    """

    def _build_dispatch(self):
        dispatch = {}
        for name, spec in OPCODES.items():
            handler = getattr(self, "_op_" + name.lower(), None)
            if handler is None:
                raise NotImplementedError("no handler for %s" % name)
            dispatch[spec.value] = handler
        return dispatch

    # -- address translation -------------------------------------------

    def _translate(self, vaddr: int, is_write: bool) -> int:
        vaddr &= MASK32
        if self.state.kernel_mode:
            return vaddr
        return self.tlb.translate(vaddr, is_write)

    # -- flag helpers -----------------------------------------------------

    def _set_zn(self, result: int) -> int:
        result &= MASK32
        flags = self.state.flags & ~(FLAG_Z | FLAG_N)
        if result == 0:
            flags |= FLAG_Z
        if result & SIGN_BIT:
            flags |= FLAG_N
        self.state.flags = flags
        return result

    def _flags_add(self, a: int, b: int, carry_in: int = 0) -> int:
        full = a + b + carry_in
        result = full & MASK32
        flags = 0
        if result == 0:
            flags |= FLAG_Z
        if result & SIGN_BIT:
            flags |= FLAG_N
        if full > MASK32:
            flags |= FLAG_C
        if (~(a ^ b) & (a ^ result)) & SIGN_BIT:
            flags |= FLAG_V
        self.state.flags = flags
        return result

    def _flags_sub(self, a: int, b: int) -> int:
        result = (a - b) & MASK32
        flags = 0
        if result == 0:
            flags |= FLAG_Z
        if result & SIGN_BIT:
            flags |= FLAG_N
        if a < b:
            flags |= FLAG_C  # borrow
        if ((a ^ b) & (a ^ result)) & SIGN_BIT:
            flags |= FLAG_V
        self.state.flags = flags
        return result

    def _cond(self, name: str) -> bool:
        flags = self.state.flags
        z = bool(flags & FLAG_Z)
        n = bool(flags & FLAG_N)
        c = bool(flags & FLAG_C)
        v = bool(flags & FLAG_V)
        if name == "JZ":
            return z
        if name == "JNZ":
            return not z
        if name == "JL":
            return n != v
        if name == "JGE":
            return n == v
        if name == "JG":
            return not z and n == v
        if name == "JLE":
            return z or n != v
        if name == "JC":
            return c
        return not c  # JNC

    # -- privileged check --------------------------------------------------

    def _require_kernel(self):
        if not self.state.kernel_mode:
            raise Fault(CAUSE_PROTECTION, self.state.pc)

    # -- memory helpers ------------------------------------------------------

    def _load32(self, vaddr: int, res: ExecResult) -> int:
        paddr = self._translate(vaddr, False)
        res.mem_vaddr = vaddr & MASK32
        res.mem_paddr = paddr
        return self.memory.read32(paddr)

    def _load8(self, vaddr: int, res: ExecResult) -> int:
        paddr = self._translate(vaddr, False)
        res.mem_vaddr = vaddr & MASK32
        res.mem_paddr = paddr
        return self.memory.read8(paddr)

    def _store32(self, vaddr: int, value: int, res: ExecResult) -> None:
        paddr = self._translate(vaddr, True)
        res.mem_vaddr = vaddr & MASK32
        res.mem_paddr = paddr
        self._phys_write32(paddr, value)

    def _store8(self, vaddr: int, value: int, res: ExecResult) -> None:
        paddr = self._translate(vaddr, True)
        res.mem_vaddr = vaddr & MASK32
        res.mem_paddr = paddr
        self._phys_write8(paddr, value)

    # ====================================================================
    # Handlers.  Each takes (instr, res) where res.next_pc is pre-set to
    # the sequential successor; control instructions overwrite it.
    # ====================================================================

    def _op_nop(self, instr: Instr, res: ExecResult) -> None:
        pass

    def _op_halt(self, instr: Instr, res: ExecResult) -> None:
        self._require_kernel()
        self.state.halted = True

    def _op_syscall(self, instr: Instr, res: ExecResult) -> None:
        raise Fault(CAUSE_SYSCALL, epc_next=True)

    def _op_int(self, instr: Instr, res: ExecResult) -> None:
        raise Fault(CAUSE_SOFT_INT | ((instr.imm & 0xFF) << 8), epc_next=True)

    def _op_iret(self, instr: Instr, res: ExecResult) -> None:
        from repro.functional.state import STATUS_PREV_IE, STATUS_PREV_KERNEL

        self._require_kernel()
        srs = self.state.srs
        status = srs[SR_STATUS]
        new_status = status & ~(STATUS_IE | STATUS_KERNEL)
        if status & STATUS_PREV_IE:
            new_status |= STATUS_IE
        if status & STATUS_PREV_KERNEL:
            new_status |= STATUS_KERNEL
        srs[SR_STATUS] = new_status
        res.next_pc = srs[registers.sr_index("EPC")] & MASK32

    def _op_cli(self, instr: Instr, res: ExecResult) -> None:
        self._require_kernel()
        self.state.srs[SR_STATUS] &= ~STATUS_IE

    def _op_sti(self, instr: Instr, res: ExecResult) -> None:
        self._require_kernel()
        self.state.srs[SR_STATUS] |= STATUS_IE

    # -- data movement ----------------------------------------------------

    def _op_mov(self, instr: Instr, res: ExecResult) -> None:
        self.state.regs[instr.dst] = self.state.regs[instr.src]

    def _op_movi(self, instr: Instr, res: ExecResult) -> None:
        self.state.regs[instr.dst] = instr.imm & MASK32

    def _op_ld(self, instr: Instr, res: ExecResult) -> None:
        addr = self.state.regs[instr.src] + instr.imm
        self.state.regs[instr.dst] = self._load32(addr, res)

    def _op_ldb(self, instr: Instr, res: ExecResult) -> None:
        addr = self.state.regs[instr.src] + instr.imm
        self.state.regs[instr.dst] = self._load8(addr, res)

    def _op_st(self, instr: Instr, res: ExecResult) -> None:
        addr = self.state.regs[instr.src] + instr.imm
        self._store32(addr, self.state.regs[instr.dst], res)

    def _op_stb(self, instr: Instr, res: ExecResult) -> None:
        addr = self.state.regs[instr.src] + instr.imm
        self._store8(addr, self.state.regs[instr.dst], res)

    def _op_push(self, instr: Instr, res: ExecResult) -> None:
        regs = self.state.regs
        sp = (regs[registers.SP] - 4) & MASK32
        self._store32(sp, regs[instr.dst], res)
        regs[registers.SP] = sp

    def _op_pop(self, instr: Instr, res: ExecResult) -> None:
        regs = self.state.regs
        sp = regs[registers.SP]
        regs[instr.dst] = self._load32(sp, res)
        regs[registers.SP] = (sp + 4) & MASK32

    def _op_lea(self, instr: Instr, res: ExecResult) -> None:
        self.state.regs[instr.dst] = (
            self.state.regs[instr.src] + instr.imm
        ) & MASK32

    # -- integer ALU ---------------------------------------------------------

    def _op_add(self, instr: Instr, res: ExecResult) -> None:
        regs = self.state.regs
        regs[instr.dst] = self._flags_add(regs[instr.dst], regs[instr.src])

    def _op_adc(self, instr: Instr, res: ExecResult) -> None:
        regs = self.state.regs
        carry = 1 if self.state.flags & FLAG_C else 0
        regs[instr.dst] = self._flags_add(regs[instr.dst], regs[instr.src], carry)

    def _op_sub(self, instr: Instr, res: ExecResult) -> None:
        regs = self.state.regs
        regs[instr.dst] = self._flags_sub(regs[instr.dst], regs[instr.src])

    def _op_and(self, instr: Instr, res: ExecResult) -> None:
        regs = self.state.regs
        regs[instr.dst] = self._set_zn(regs[instr.dst] & regs[instr.src])

    def _op_or(self, instr: Instr, res: ExecResult) -> None:
        regs = self.state.regs
        regs[instr.dst] = self._set_zn(regs[instr.dst] | regs[instr.src])

    def _op_xor(self, instr: Instr, res: ExecResult) -> None:
        regs = self.state.regs
        regs[instr.dst] = self._set_zn(regs[instr.dst] ^ regs[instr.src])

    def _op_cmp(self, instr: Instr, res: ExecResult) -> None:
        regs = self.state.regs
        self._flags_sub(regs[instr.dst], regs[instr.src])

    def _op_test(self, instr: Instr, res: ExecResult) -> None:
        regs = self.state.regs
        self._set_zn(regs[instr.dst] & regs[instr.src])

    def _op_not(self, instr: Instr, res: ExecResult) -> None:
        regs = self.state.regs
        regs[instr.dst] = self._set_zn(~regs[instr.dst] & MASK32)

    def _op_neg(self, instr: Instr, res: ExecResult) -> None:
        regs = self.state.regs
        regs[instr.dst] = self._flags_sub(0, regs[instr.dst])

    def _op_inc(self, instr: Instr, res: ExecResult) -> None:
        regs = self.state.regs
        regs[instr.dst] = self._flags_add(regs[instr.dst], 1)

    def _op_dec(self, instr: Instr, res: ExecResult) -> None:
        regs = self.state.regs
        regs[instr.dst] = self._flags_sub(regs[instr.dst], 1)

    def _op_mul(self, instr: Instr, res: ExecResult) -> None:
        regs = self.state.regs
        full = regs[instr.dst] * regs[instr.src]
        result = self._set_zn(full & MASK32)
        flags = self.state.flags & ~(FLAG_C | FLAG_V)
        if full > MASK32:
            flags |= FLAG_C | FLAG_V
        self.state.flags = flags
        regs[instr.dst] = result

    def _op_div(self, instr: Instr, res: ExecResult) -> None:
        regs = self.state.regs
        divisor = regs[instr.src]
        if divisor == 0:
            raise Fault(CAUSE_DIV_ZERO)
        regs[instr.dst] = self._set_zn(regs[instr.dst] // divisor)

    def _op_addi(self, instr: Instr, res: ExecResult) -> None:
        regs = self.state.regs
        regs[instr.dst] = self._flags_add(regs[instr.dst], instr.imm & MASK32)

    def _op_subi(self, instr: Instr, res: ExecResult) -> None:
        regs = self.state.regs
        regs[instr.dst] = self._flags_sub(regs[instr.dst], instr.imm & MASK32)

    def _op_andi(self, instr: Instr, res: ExecResult) -> None:
        regs = self.state.regs
        regs[instr.dst] = self._set_zn(regs[instr.dst] & instr.imm)

    def _op_ori(self, instr: Instr, res: ExecResult) -> None:
        regs = self.state.regs
        regs[instr.dst] = self._set_zn(regs[instr.dst] | (instr.imm & MASK32))

    def _op_xori(self, instr: Instr, res: ExecResult) -> None:
        regs = self.state.regs
        regs[instr.dst] = self._set_zn(regs[instr.dst] ^ (instr.imm & MASK32))

    def _op_cmpi(self, instr: Instr, res: ExecResult) -> None:
        self._flags_sub(self.state.regs[instr.dst], instr.imm & MASK32)

    def _op_shl(self, instr: Instr, res: ExecResult) -> None:
        regs = self.state.regs
        shift = instr.imm & 31
        value = regs[instr.dst]
        result = self._set_zn((value << shift) & MASK32)
        if shift:
            flags = self.state.flags & ~FLAG_C
            if (value >> (32 - shift)) & 1:
                flags |= FLAG_C
            self.state.flags = flags
        regs[instr.dst] = result

    def _op_shr(self, instr: Instr, res: ExecResult) -> None:
        regs = self.state.regs
        shift = instr.imm & 31
        value = regs[instr.dst]
        result = self._set_zn(value >> shift)
        if shift:
            flags = self.state.flags & ~FLAG_C
            if (value >> (shift - 1)) & 1:
                flags |= FLAG_C
            self.state.flags = flags
        regs[instr.dst] = result

    def _op_sar(self, instr: Instr, res: ExecResult) -> None:
        regs = self.state.regs
        shift = instr.imm & 31
        value = _signed(regs[instr.dst])
        regs[instr.dst] = self._set_zn((value >> shift) & MASK32)

    # -- control flow -----------------------------------------------------------

    def _op_jmp(self, instr: Instr, res: ExecResult) -> None:
        res.next_pc = instr.branch_target(self.state.pc)

    def _branch(self, instr: Instr, res: ExecResult) -> None:
        if self._cond(instr.name):
            res.next_pc = instr.branch_target(self.state.pc)

    _op_jz = _branch
    _op_jnz = _branch
    _op_jl = _branch
    _op_jge = _branch
    _op_jg = _branch
    _op_jle = _branch
    _op_jc = _branch
    _op_jnc = _branch

    def _op_call(self, instr: Instr, res: ExecResult) -> None:
        regs = self.state.regs
        sp = (regs[registers.SP] - 4) & MASK32
        self._store32(sp, (self.state.pc + instr.length) & MASK32, res)
        regs[registers.SP] = sp
        res.next_pc = instr.branch_target(self.state.pc)

    def _op_callr(self, instr: Instr, res: ExecResult) -> None:
        regs = self.state.regs
        sp = (regs[registers.SP] - 4) & MASK32
        self._store32(sp, (self.state.pc + instr.length) & MASK32, res)
        regs[registers.SP] = sp
        res.next_pc = regs[instr.dst] & MASK32

    def _op_jr(self, instr: Instr, res: ExecResult) -> None:
        res.next_pc = self.state.regs[instr.dst] & MASK32

    def _op_ret(self, instr: Instr, res: ExecResult) -> None:
        regs = self.state.regs
        sp = regs[registers.SP]
        target = self._load32(sp, res)
        regs[registers.SP] = (sp + 4) & MASK32
        res.next_pc = target & MASK32

    def _op_loop(self, instr: Instr, res: ExecResult) -> None:
        regs = self.state.regs
        regs[instr.dst] = self._flags_sub(regs[instr.dst], 1)
        if not self.state.flags & FLAG_Z:
            res.next_pc = instr.branch_target(self.state.pc)

    # -- string operations ---------------------------------------------------

    def _op_movsb(self, instr: Instr, res: ExecResult) -> None:
        regs = self.state.regs
        max_iters = regs[2] if instr.rep else 1
        done = 0
        while done < max_iters:
            byte = self._load8(regs[0], res)
            self._store8(regs[1], byte, res)
            regs[0] = (regs[0] + 1) & MASK32
            regs[1] = (regs[1] + 1) & MASK32
            regs[2] = self._flags_sub(regs[2], 1)
            done += 1
            if not instr.rep:
                break
            if regs[2] == 0:
                break
        res.iterations = done

    def _op_stosb(self, instr: Instr, res: ExecResult) -> None:
        regs = self.state.regs
        fill = regs[3] & 0xFF
        max_iters = regs[2] if instr.rep else 1
        done = 0
        while done < max_iters:
            self._store8(regs[1], fill, res)
            regs[1] = (regs[1] + 1) & MASK32
            regs[2] = self._flags_sub(regs[2], 1)
            done += 1
            if not instr.rep:
                break
            if regs[2] == 0:
                break
        res.iterations = done

    def _op_scasb(self, instr: Instr, res: ExecResult) -> None:
        # REPNE-style scan: stop when the byte matches R3 or R2 reaches 0.
        regs = self.state.regs
        needle = regs[3] & 0xFF
        done = 0
        found = False
        if instr.rep and regs[2] == 0:
            res.iterations = 0  # x86 semantics: REP with count 0 is a no-op
            return
        while True:
            byte = self._load8(regs[0], res)
            regs[0] = (regs[0] + 1) & MASK32
            regs[2] = (regs[2] - 1) & MASK32
            done += 1
            self._flags_sub(byte, needle)
            found = byte == needle
            if not instr.rep or found or regs[2] == 0:
                break
        res.iterations = done

    # -- floating point -------------------------------------------------------

    def _op_fadd(self, instr: Instr, res: ExecResult) -> None:
        fregs = self.state.fregs
        fregs[instr.dst] = fregs[instr.dst] + fregs[instr.src]

    def _op_fsub(self, instr: Instr, res: ExecResult) -> None:
        fregs = self.state.fregs
        fregs[instr.dst] = fregs[instr.dst] - fregs[instr.src]

    def _op_fmul(self, instr: Instr, res: ExecResult) -> None:
        fregs = self.state.fregs
        fregs[instr.dst] = fregs[instr.dst] * fregs[instr.src]

    def _op_fdiv(self, instr: Instr, res: ExecResult) -> None:
        fregs = self.state.fregs
        divisor = fregs[instr.src]
        if divisor == 0.0:
            fregs[instr.dst] = math.inf if fregs[instr.dst] >= 0 else -math.inf
        else:
            fregs[instr.dst] = fregs[instr.dst] / divisor

    def _op_fsqrt(self, instr: Instr, res: ExecResult) -> None:
        fregs = self.state.fregs
        value = fregs[instr.src]
        fregs[instr.dst] = math.sqrt(value) if value >= 0 else 0.0

    def _op_fmov(self, instr: Instr, res: ExecResult) -> None:
        fregs = self.state.fregs
        fregs[instr.dst] = fregs[instr.src]

    def _op_fitof(self, instr: Instr, res: ExecResult) -> None:
        self.state.fregs[instr.dst] = float(_signed(self.state.regs[instr.src]))

    def _op_fftoi(self, instr: Instr, res: ExecResult) -> None:
        value = self.state.fregs[instr.src]
        if math.isnan(value) or math.isinf(value):
            result = 0
        else:
            result = int(value)
        self.state.regs[instr.dst] = result & MASK32

    def _op_fcmp(self, instr: Instr, res: ExecResult) -> None:
        fregs = self.state.fregs
        diff = fregs[instr.dst] - fregs[instr.src]
        flags = 0
        if diff == 0.0:
            flags |= FLAG_Z
        if diff < 0.0:
            flags |= FLAG_N
        self.state.flags = flags

    def _op_fld(self, instr: Instr, res: ExecResult) -> None:
        addr = self.state.regs[instr.src] + instr.imm
        paddr = self._translate(addr, False)
        res.mem_vaddr = addr & MASK32
        res.mem_paddr = paddr
        blob = self.memory.read_blob(paddr, 4)
        self.state.fregs[instr.dst] = struct.unpack("<f", blob)[0]

    def _op_fst(self, instr: Instr, res: ExecResult) -> None:
        addr = self.state.regs[instr.src] + instr.imm
        paddr = self._translate(addr, True)
        res.mem_vaddr = addr & MASK32
        res.mem_paddr = paddr
        value = self.state.fregs[instr.dst]
        if math.isinf(value) or math.isnan(value):
            value = 0.0
        try:
            blob = struct.pack("<f", value)
        except OverflowError:
            blob = struct.pack("<f", 0.0)
        self._phys_write32(paddr, int.from_bytes(blob, "little"))

    # -- privileged -------------------------------------------------------------

    def _op_in(self, instr: Instr, res: ExecResult) -> None:
        self._require_kernel()
        self.state.regs[instr.dst] = self.bus.read(instr.imm)

    def _op_out(self, instr: Instr, res: ExecResult) -> None:
        self._require_kernel()
        res.io_port = instr.imm
        res.io_value = self.state.regs[instr.dst]
        self.bus.write(instr.imm, self.state.regs[instr.dst])

    def _op_tlbwr(self, instr: Instr, res: ExecResult) -> None:
        self._require_kernel()
        regs = self.state.regs
        vpn, pte = regs[instr.dst], regs[instr.src]
        self.tlb.write(vpn, pte)
        self._bump_tlb_generation()  # user-mode superblocks pin translations
        res.tlb_vpn = vpn
        res.tlb_pte = pte

    def _op_tlbflush(self, instr: Instr, res: ExecResult) -> None:
        self._require_kernel()
        self.tlb.flush()
        self._bump_tlb_generation()

    def _op_movsr(self, instr: Instr, res: ExecResult) -> None:
        self._require_kernel()
        if instr.dst == registers.SR_FLAGS:
            state_flags = self.state.regs[instr.src] & 0xF
            self.state.flags = state_flags
        elif instr.dst != SR_CYCLE:  # SR_CYCLE is read-only
            self.state.srs[instr.dst] = self.state.regs[instr.src] & MASK32

    def _op_movrs(self, instr: Instr, res: ExecResult) -> None:
        self._require_kernel()
        if instr.src == SR_CYCLE:
            self.state.regs[instr.dst] = self.in_count & MASK32
        elif instr.src == registers.SR_FLAGS:
            self.state.regs[instr.dst] = self.state.flags
        else:
            self.state.regs[instr.dst] = self.state.srs[instr.src]
