"""Architectural state of the simulated CPU."""

from __future__ import annotations

from typing import Tuple

from repro.isa.registers import (
    NUM_FPRS,
    NUM_GPRS,
    NUM_SRS,
    SR_STATUS,
    STATUS_IE,
    STATUS_KERNEL,
)

# STATUS shadow bits used by interrupt entry/exit (IRET).
STATUS_PREV_IE = 1 << 2
STATUS_PREV_KERNEL = 1 << 3


class ArchState:
    """Registers, flags, PC and special registers.

    Snapshot/restore is the basis of functional-model checkpoints; the
    snapshot is a flat tuple so copies are cheap.
    """

    __slots__ = ("regs", "fregs", "flags", "pc", "srs", "halted")

    def __init__(self):
        self.regs = [0] * NUM_GPRS
        self.fregs = [0.0] * NUM_FPRS
        self.flags = 0
        self.pc = 0
        self.srs = [0] * NUM_SRS
        self.halted = False
        # Boot in kernel mode with interrupts disabled, like any CPU.
        self.srs[SR_STATUS] = STATUS_KERNEL

    # -- mode queries ----------------------------------------------------

    @property
    def kernel_mode(self) -> bool:
        return bool(self.srs[SR_STATUS] & STATUS_KERNEL)

    @property
    def interrupts_enabled(self) -> bool:
        return bool(self.srs[SR_STATUS] & STATUS_IE)

    # -- checkpointing ---------------------------------------------------

    def snapshot(self) -> Tuple:
        return (
            tuple(self.regs),
            tuple(self.fregs),
            self.flags,
            self.pc,
            tuple(self.srs),
            self.halted,
        )

    def restore(self, snap: Tuple) -> None:
        regs, fregs, self.flags, self.pc, srs, self.halted = snap
        self.regs[:] = regs
        self.fregs[:] = fregs
        self.srs[:] = srs

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "ArchState(pc=%#x regs=%s flags=%#x halted=%s)" % (
            self.pc,
            ["%#x" % r for r in self.regs],
            self.flags,
            self.halted,
        )
