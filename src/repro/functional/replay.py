"""Deterministic window re-execution for time-travel debugging.

The FAST coupling is deterministic end to end: a same-seed run visits
bit-identical architectural and microarchitectural state on every
target cycle, on either tick engine.  That turns any recorded cycle
number -- an invariant violation, a trigger firing, a first-diverging
event from regression bisection -- into an *address* we can travel back
to: rebuild the identical simulator from a zero-argument factory, fast-
forward to the window start, then single-step through ``[C-delta,
C+delta]`` with maximum-detail capture.

The fast-forward leg reuses the production run loop (idle spans
batched, superblocks replayed); inside the window every cycle is
stepped individually so per-tick rows can be captured.  Single-stepped
cycles are bit-identical to fast-forwarded ones -- the same property
the engine-equivalence tests pin -- so the capture itself never
perturbs what it observes.  Intra-window mis-speculation is handled by
the same ``set_pc``/:meth:`FunctionalModel.rollback_to` checkpoint
machinery (:meth:`CheckpointManager.checkpoint_for` picks the leapfrog
checkpoint) that the original run used: re-execution replays those
excursions exactly rather than reconstructing them.

Capture per tick:

* an architectural fingerprint of the FM (pc, registers, flags,
  in-flight instruction count),
* microarchitectural occupancies (ROB / RS / LSQ / trace buffer),
* every typed FastScope stat that changed this tick,
* the seam events of the tick (unbounded :class:`EventTracer`), and
* (compiled engine only) TickProfiler rows for the whole window.

Everything except the profiler rows is target-deterministic, which is
what lets the debug-capsule layer content-address the capture.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.observability.events import attach_tracer

# Capture windows are small (tens to hundreds of cycles); this holds
# every event a window can plausibly produce, i.e. the tracer is
# effectively unbounded.
WINDOW_TRACER_CAPACITY = 1 << 20

DEFAULT_DELTA = 64


def _digest(value) -> str:
    return hashlib.sha256(repr(value).encode("ascii")).hexdigest()[:16]


@dataclass
class WindowCapture:
    """Everything one re-executed window produced."""

    center: int
    delta: int
    start_cycle: int
    end_cycle: int  # last captured cycle (inclusive)
    engine: str
    rows: List[dict] = field(default_factory=list)
    events: List[dict] = field(default_factory=list)
    baseline: Dict[str, float] = field(default_factory=dict)
    profile: Optional[dict] = None
    finished_early: bool = False

    def contains(self, cycle: int) -> bool:
        return self.start_cycle <= cycle <= self.end_cycle

    def summary(self) -> dict:
        """Target-deterministic description of the capture (the part
        of the capsule identity derived from the window itself)."""
        return {
            "center": self.center,
            "delta": self.delta,
            "start": self.start_cycle,
            "end": self.end_cycle,
            "rows": len(self.rows),
            "events": len(self.events),
            "finished_early": self.finished_early,
        }


def _collect_stats(roots) -> Dict[str, float]:
    out: Dict[str, float] = {}
    for root in roots:
        out.update(
            (path, stat.value()) for path, stat in root.all_stats().items()
        )
    return out


def _tick_row(sim, prev_stats: Dict[str, float]) -> dict:
    """One per-tick capture row.  Every field is target-deterministic
    and engine-independent (both engines visit identical state)."""
    tm = sim.tm
    fm = sim.fm
    state = fm.state
    backend = tm.backend
    stats_now = _collect_stats((tm, sim.feed))
    changed = {
        path: value
        for path, value in stats_now.items()
        if value != prev_stats.get(path)
    }
    prev_stats.clear()
    prev_stats.update(stats_now)
    return {
        "cycle": tm.cycle,
        "pc": state.pc,
        "in_count": fm.in_count,
        "halted": bool(state.halted),
        "flags": state.flags,
        "regs": list(state.regs),
        "fregs_digest": _digest(tuple(state.fregs)),
        "srs_digest": _digest(tuple(state.srs)),
        "rob": len(backend.rob),
        "rs": len(backend.rs),
        "lsq": len(backend.lsq),
        "tb": fm.in_count - sim.feed._last_committed,
        "buffered": len(sim.feed._buffer),
        "committed": backend.committed_instructions,
        "checkpoints": len(fm.ckpt),
        "stats": changed,
    }


def replay_window(
    factory: Callable[[], object],
    center: int,
    delta: int = DEFAULT_DELTA,
    profile: bool = True,
) -> WindowCapture:
    """Re-execute ``[center-delta, center+delta]`` on a fresh simulator
    built by the zero-argument *factory*, capturing per-tick detail.

    The factory must reconstruct the run whose cycle numbering *center*
    came from (same workload, same configuration) -- determinism does
    the rest.  Returns a :class:`WindowCapture`; ``finished_early`` is
    set when the workload completed before ``center+delta``.
    """
    if center < 0:
        raise ValueError("window center must be >= 0")
    if delta < 1:
        raise ValueError("window delta must be >= 1")
    sim = factory()
    tm = sim.tm
    start = max(1, center - delta)  # cycle numbering starts at 1
    end = center + delta

    # Fast-forward to just before the window with the production run
    # loop (idle spans batched); the tracer is attached only
    # afterwards, so the capture holds exactly the window's events.
    if start > 1:
        tm.run(max_cycles=start - 1)
    tracer = attach_tracer(sim, capacity=WINDOW_TRACER_CAPACITY)

    profiler = None
    if profile and tm.config.engine == "compiled":
        from repro.observability.profiler import TickProfiler

        profiler = TickProfiler(tm).install()

    capture = WindowCapture(
        center=center,
        delta=delta,
        start_cycle=tm.cycle,
        end_cycle=tm.cycle,
        engine=tm.config.engine,
        baseline=_collect_stats((tm, sim.feed)),
    )
    prev = dict(capture.baseline)
    # The fast-forward stopped at cycle start-1, so the first captured
    # tick is exactly the window start.
    while tm.cycle < end:
        if sim.feed.finished and tm.drained:
            capture.finished_early = True
            break
        tm.tick()
        capture.rows.append(_tick_row(sim, prev))
    capture.end_cycle = tm.cycle
    if capture.rows:
        capture.start_cycle = capture.rows[0]["cycle"]
    else:
        capture.start_cycle = tm.cycle
        capture.finished_early = True

    if profiler is not None:
        capture.profile = profiler.report()
        profiler.uninstall()
    capture.events = [event.to_dict() for event in tracer.events]
    return capture
