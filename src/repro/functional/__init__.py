"""Functional model: the full-system, speculative, roll-back-able ISA
simulator (the paper's modified-QEMU analog)."""

from repro.functional.checkpoint import CheckpointManager, CheckpointStats
from repro.functional.cpu import Fault
from repro.functional.model import (
    FunctionalConfig,
    FunctionalModel,
    FunctionalStats,
    RollbackError,
    VECTOR_BASE,
)
from repro.functional.state import ArchState
from repro.functional.trace import TraceEntry, format_trace

__all__ = [
    "ArchState",
    "CheckpointManager",
    "CheckpointStats",
    "Fault",
    "FunctionalConfig",
    "FunctionalModel",
    "FunctionalStats",
    "RollbackError",
    "TraceEntry",
    "VECTOR_BASE",
    "format_trace",
]
