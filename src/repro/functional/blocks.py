"""FastBlock: a superblock trace cache for the functional model.

The busy-path analog of the idle fast-forward: once a straight-line
region (entry PC up to and including the first control transfer, or up
to the first serializing/privileged instruction) has been interpreted
``threshold`` times, it is captured as a *superblock* -- every
instruction pre-translated, pre-decoded and pre-cracked -- and later
executions replay it with one fused loop that skips per-instruction
fetch, decode and dispatch-table lookups.  This is the paper's
heavily-modified-QEMU translation cache in miniature (and Manticore's
static-compilation thesis applied to an interpreter): per-instruction
decision-making moves to a one-time capture step.

Replay is *observationally identical* to interpretation:

* trace entries carry exactly the fields ``FunctionalModel._complete``
  would have produced (excluded opcodes guarantee the TLB/IO trace
  fields stay at their defaults);
* ``FunctionalStats`` counters advance by the same amounts, including
  Table 1 microcode-coverage accounting;
* device time advances one bus tick per instruction.  Ticks are
  *deferred* and applied in one batch, which is device-state-identical
  to single ticks (the idle fast-forward already relies on this)
  provided no device effect lands inside the span -- so the replay
  length is clamped to the interrupt horizon (when interrupts are
  enabled) and to the DMA horizon (always; see
  ``Device.ticks_until_dma``), and the deferred ticks are flushed
  before every mid-block checkpoint, fault, and block exit;
* checkpoints are taken at exactly the interpreted run's boundaries
  (the ``CheckpointManager.next_due`` grid);
* a fault inside the block flushes the deferred state and delegates to
  ``FunctionalModel._exec_fault`` -- the same code path interpretation
  takes -- so partial string-op mutation and precise-exception
  behavior match bit-for-bit.

Validity.  A superblock is keyed by ``(entry PC, kernel_mode)`` and
records the physical pages its instruction bytes span.  Instead of a
global memory-image generation, invalidation is eager: every logged
physical write probes the (tiny) page index and kills any block whose
code range it touches, and rollback kills blocks on every page its
undo log rewrites.  A killed block also sets ``dead`` so an in-flight
replay of it exits cleanly after the offending store's instruction.
User-mode blocks additionally pin the TLB generation (bumped by TLBWR,
TLBFLUSH and rollback's TLB restore) since their per-instruction fetch
translations were resolved at capture time; kernel-mode blocks use
identity mapping and need no pin.  Every block pins the microcode
table version (hand-patching re-cracks) and the trace-compression mode
(it bakes per-entry trace-word counts).

Serializing and trace-visible-side-effect opcodes (HALT, SYSCALL, INT,
IRET, CLI, STI, IN, OUT, TLBWR, TLBFLUSH, MOVSR, MOVRS) never enter a
block: mode, interrupt-enable and device-port state are therefore
constant across a replay, which is what makes hoisting the interrupt
check to the block boundary sound.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.functional.cpu import ExecResult, Fault, MASK32
from repro.functional.trace import TraceEntry
from repro.isa.causes import CAUSE_INVALID_OPCODE
from repro.isa.encoding import EncodingError
from repro.system.memory import MemoryError_
from repro.system.mmu import PAGE_SHIFT, ProtectionFault, TLBMiss

# Opcodes that terminate capture *without* being included: they
# serialize (mode/IE changes, HALT), touch device ports, read host
# counters, or carry TLB/IO payloads in their trace entries.
EXCLUDED_OPCODES = frozenset({
    "HALT", "SYSCALL", "INT", "IRET", "CLI", "STI",
    "IN", "OUT", "TLBWR", "TLBFLUSH", "MOVSR", "MOVRS",
})

# Opcodes whose trace entry always carries a data address (strings are
# conditional: a REP with count 0 never touches memory).
MEM_OPCODES = frozenset({
    "LD", "LDB", "ST", "STB", "PUSH", "POP", "CALL", "CALLR", "RET",
    "FLD", "FST",
})

MIN_BLOCK_LEN = 2

# Spec values at which a block-entry boundary follows: control
# transfers, excluded (serializing) opcodes.  The model's batched loop
# only consults the block cache right after one of these (or after an
# exception/interrupt), so hotness counts mean "times this basic-block
# entry was reached" and straight-line interior PCs never pollute the
# tables.
def _boundary_values() -> frozenset:
    from repro.isa.opcodes import OPCODES

    return frozenset(
        spec.value for name, spec in OPCODES.items()
        if spec.is_control or name in EXCLUDED_OPCODES
    )


BOUNDARY_SPEC_VALUES = _boundary_values()

# Bound on the hotness-counter table; wholesale reset on overflow is
# deterministic and only costs re-warming.
_HEAT_LIMIT = 1 << 16

_NO_BOUND = 1 << 40

# Sentinel stored in the block table for entry points that failed
# capture (first instruction excluded/undecodable), so they are not
# re-walked on every execution.
_UNCAPTURABLE = False


class SuperblockStats:
    """Replay-engine counters (FastScope-exposed via the feed)."""

    __slots__ = ("hits", "replayed_instructions", "misses", "captures",
                 "capture_failures", "invalidations", "horizon_bails")

    def __init__(self) -> None:
        self.hits = 0  # block replays started
        self.replayed_instructions = 0
        self.misses = 0  # lookups finding no (valid) block
        self.captures = 0
        self.capture_failures = 0
        self.invalidations = 0  # blocks killed (stores/rollback/etc.)
        self.horizon_bails = 0  # replays clipped to zero by a horizon


class Superblock:
    """One captured straight-line region.

    ``steps`` is a tuple of per-instruction tuples
    ``(pc, ppc, instr, handler, seq_next, is_ctrl, words, uop_n,
    translated, is_string)`` -- everything the fused replay loop needs
    without touching the decode path.
    """

    __slots__ = ("key", "steps", "n", "pages", "intervals", "tlb_gen",
                 "mc_version", "compression", "dead")

    def __init__(self, key: Tuple[int, bool], steps: Tuple[tuple, ...],
                 pages: Set[int], intervals: Tuple[Tuple[int, int], ...],
                 tlb_gen: int, mc_version: int, compression: str):
        self.key = key
        self.steps = steps
        self.n = len(steps)
        self.pages = pages
        # Merged [start, end) physical byte ranges of the instruction
        # bytes -- writes are checked against these, so data sharing a
        # page with hot code does not kill the block.
        self.intervals = intervals
        self.tlb_gen = tlb_gen
        self.mc_version = mc_version
        self.compression = compression
        self.dead = False


class SuperblockCache:
    """Owns the block table, hotness counters and the page index."""

    def __init__(self, fm, threshold: int = 16, max_len: int = 64):
        self.fm = fm
        self.threshold = max(2, threshold)
        self.max_len = max(MIN_BLOCK_LEN, max_len)
        self.stats = SuperblockStats()
        self._blocks: Dict[Tuple[int, bool], object] = {}
        self._heat: Dict[Tuple[int, bool], int] = {}
        # page -> set of block keys whose code bytes touch that page.
        # FunctionalModel._invalidate_code probes this dict's key set
        # on every logged physical write.
        self.page_index: Dict[int, Set[Tuple[int, bool]]] = {}
        # Whether the last replay exited at a basic-block boundary (the
        # batched loop resumes cache lookups there) or mid-block (a
        # budget/horizon clip: the interpreter carries on to the next
        # control transfer without consulting the cache).
        self.exited_at_boundary = True

    # -- invalidation -----------------------------------------------------

    def invalidate_all(self) -> None:
        """Drop every block and reset hotness (fresh memory image).
        ``page_index`` is cleared in place -- the model aliases it."""
        for block in self._blocks.values():
            if isinstance(block, Superblock):
                block.dead = True
                self.stats.invalidations += 1
        self._blocks.clear()
        self._heat.clear()
        self.page_index.clear()

    def invalidate_write(self, paddr: int) -> None:
        """A logged physical write landed at *paddr* (treated as 4
        bytes wide, covering both write32 and an unaligned write8):
        kill only the blocks whose instruction bytes it overlaps.  The
        page index is the first-level filter; the interval check is
        what lets data stores share a page with hot code without
        killing it -- by far the common case in small images."""
        keys = self.page_index.get(paddr >> PAGE_SHIFT)
        if not keys:
            return
        end = paddr + 4
        doomed = None
        for key in keys:
            block = self._blocks.get(key)
            if isinstance(block, Superblock):
                for lo, hi in block.intervals:
                    if lo < end and paddr < hi:
                        if doomed is None:
                            doomed = [block]
                        else:
                            doomed.append(block)
                        break
        if doomed:
            for block in doomed:
                self._drop(block)

    def invalidate_page(self, page: int) -> None:
        """A physical write (or rollback undo) touched *page*: kill
        every block whose code bytes span it."""
        keys = self.page_index.pop(page, None)
        if not keys:
            return
        for key in keys:
            block = self._blocks.pop(key, None)
            if isinstance(block, Superblock):
                block.dead = True
                self.stats.invalidations += 1
                for other in block.pages:
                    if other != page:
                        index = self.page_index.get(other)
                        if index is not None:
                            index.discard(key)
                            if not index:
                                del self.page_index[other]

    def _drop(self, block: Superblock) -> None:
        """Remove one stale (version/generation-mismatched) block."""
        self._blocks.pop(block.key, None)
        block.dead = True
        self.stats.invalidations += 1
        for page in block.pages:
            index = self.page_index.get(page)
            if index is not None:
                index.discard(block.key)
                if not index:
                    del self.page_index[page]

    # -- lookup / capture -------------------------------------------------

    def step(self, sink: List[TraceEntry], budget: int) -> int:
        """Replay a superblock at the FM's current PC if one applies.

        Returns the number of trace entries appended to *sink* (0 means
        no block: the caller falls back to single-step interpretation).
        """
        fm = self.fm
        state = fm.state
        key = (state.pc, state.kernel_mode)
        block = self._blocks.get(key)
        if block is None:
            heat = self._heat
            count = heat.get(key, 0) + 1
            if count < self.threshold:
                if len(heat) >= _HEAT_LIMIT:
                    heat.clear()
                heat[key] = count
                self.stats.misses += 1
                return 0
            heat.pop(key, None)
            block = self._capture(key)
            if block is None:
                self._blocks[key] = _UNCAPTURABLE
                self.stats.capture_failures += 1
                return 0
            self.stats.captures += 1
            self._blocks[key] = block
            page_index = self.page_index
            for page in block.pages:
                index = page_index.get(page)
                if index is None:
                    index = page_index[page] = set()
                index.add(key)
        elif block is _UNCAPTURABLE:
            return 0
        elif (
            block.mc_version != fm.microcode.version
            or block.compression != fm.config.trace_compression
            or (not key[1] and block.tlb_gen != fm.tlb_generation)
        ):
            self._drop(block)
            self.stats.misses += 1
            return 0
        return self._replay(block, sink, budget)

    def _capture(self, key: Tuple[int, bool]) -> Optional[Superblock]:
        """Walk forward from the entry PC, pre-decoding and pre-cracking
        until the first control transfer, excluded opcode, fault-at-
        fetch, or the length cap."""
        fm = self.fm
        vpc, _kernel = key
        microcode = fm.microcode
        compression = fm.config.trace_compression
        base_words = 2 if compression == "bb" else 4
        dispatch = fm._dispatch
        steps: List[tuple] = []
        pages: Set[int] = set()
        intervals: List[list] = []
        for _ in range(self.max_len):
            try:
                ppc = fm._translate(vpc, False)
                instr = fm._decode_at(ppc)
            except (TLBMiss, ProtectionFault, EncodingError, IndexError,
                    MemoryError_):
                break
            spec = instr.spec
            if spec.name in EXCLUDED_OPCODES:
                break
            length = instr.length
            seq_next = (vpc + length) & MASK32
            is_ctrl = spec.is_control
            is_string = spec.iclass == "string"
            uops, translated = microcode.crack(instr, count=False)
            words = base_words
            if not is_string and spec.name in MEM_OPCODES:
                words += 1
            pages.update(range(ppc >> PAGE_SHIFT,
                               ((ppc + length - 1) >> PAGE_SHIFT) + 1))
            if intervals and intervals[-1][1] == ppc:
                intervals[-1][1] = ppc + length
            else:
                intervals.append([ppc, ppc + length])
            steps.append((vpc, ppc, instr, dispatch[spec.value], seq_next,
                          is_ctrl, words, len(uops), translated, is_string))
            if is_ctrl:
                break
            vpc = seq_next
        if len(steps) < MIN_BLOCK_LEN:
            return None
        return Superblock(key, tuple(steps), pages,
                          tuple((lo, hi) for lo, hi in intervals),
                          fm.tlb_generation, microcode.version, compression)

    # -- replay horizons --------------------------------------------------

    def _horizon(self, interrupts_enabled: bool) -> int:
        """How many instructions may replay before a deferred bus tick
        could change what the block observes: the earliest enabled IRQ
        (checked at block boundaries only) and the earliest DMA memory
        effect (mid-block loads must see it land on time).

        With the interrupt check happening *before* instruction k --
        i.e. after k-1 device ticks -- a bound of B ticks admits
        exactly B replayed instructions.
        """
        fm = self.fm
        horizon = _NO_BOUND
        intctrl = fm._intctrl
        if interrupts_enabled and intctrl is not None:
            if intctrl.output:
                return 0
            enabled = intctrl.enabled
            for device in fm.bus.devices:
                bound = device.ticks_until_irq(enabled)
                if bound is not None and bound < horizon:
                    horizon = bound
        for device in fm.bus.devices:
            bound = device.ticks_until_dma()
            if bound is not None and bound < horizon:
                horizon = bound
        return horizon

    # -- the fused replay loop -------------------------------------------

    def _replay(self, block: Superblock, sink: List[TraceEntry],
                budget: int) -> int:
        fm = self.fm
        state = fm.state
        horizon = self._horizon(state.interrupts_enabled)
        cap = budget if budget < horizon else horizon
        if cap <= 0:
            self.stats.horizon_bails += 1
            return 0
        bus = fm.bus
        tlb = fm.tlb
        stats = fm.stats
        ckpt = fm.ckpt
        config = fm.config
        collect = config.collect_coverage
        kernel = block.key[1]
        append = sink.append
        in_count = fm.in_count
        next_ckpt = ckpt.next_due(in_count)
        handler_entry = fm._handler_pending
        fm._handler_pending = False
        res = ExecResult(0)
        produced = 0
        ticks = 0  # deferred bus ticks (flushed before any observer)
        words_total = 0
        blocks_ended = 0
        cov_translated = 0
        cov_untranslated = 0
        cov_uops = 0
        # Chain-lookup state.  None of these can change mid-chain: the
        # opcodes that move them (TLBWR/TLBFLUSH, MOVSR, IRET, ...) are
        # excluded from blocks, and a fault exits through
        # _replay_fault.
        sb_stats = self.stats
        blocks_map = self._blocks
        mc_version = fm.microcode.version
        compression = config.trace_compression
        tlb_gen = fm.tlb_generation
        while True:
            steps = block.steps
            bn = block.n
            m = cap - produced
            if bn < m:
                m = bn
            i = 0
            while i < m:
                (pc, ppc, instr, handler, seq_next, is_ctrl, words, uop_n,
                 translated, is_string) = steps[i]
                if is_ctrl:
                    # Control handlers compute targets from state.pc
                    # (branch_target, CALL's return address).
                    state.pc = pc
                res.next_pc = seq_next
                res.mem_vaddr = -1
                res.mem_paddr = -1
                res.iterations = 1
                try:
                    handler(instr, res)
                except Fault as fault:
                    return self._replay_fault(
                        block, sink, pc, ppc, instr, fault, in_count,
                        produced, ticks, words_total, blocks_ended,
                        cov_translated, cov_untranslated, cov_uops)
                except (TLBMiss, ProtectionFault) as exc:
                    return self._replay_fault(
                        block, sink, pc, ppc, instr, fm._mmu_fault(exc),
                        in_count, produced, ticks, words_total, blocks_ended,
                        cov_translated, cov_untranslated, cov_uops)
                except (IndexError, MemoryError_):
                    return self._replay_fault(
                        block, sink, pc, ppc, instr,
                        Fault(CAUSE_INVALID_OPCODE, pc), in_count, produced,
                        ticks, words_total, blocks_ended, cov_translated,
                        cov_untranslated, cov_uops)
                in_count += 1
                entry = TraceEntry(in_count, pc, ppc, instr, res.next_pc,
                                   res.iterations, res.mem_vaddr,
                                   res.mem_paddr)
                if handler_entry:
                    entry.handler_entry = True
                    handler_entry = False
                append(entry)
                produced += 1
                ticks += 1
                if is_string:
                    words_total += words + (1 if res.mem_vaddr >= 0 else 0)
                else:
                    words_total += words
                if is_ctrl:
                    blocks_ended += 1
                if collect:
                    if translated:
                        cov_translated += 1
                    else:
                        cov_untranslated += 1
                    if is_string:
                        cov_uops += (uop_n * res.iterations
                                     if res.iterations > 0 else 1)
                    else:
                        cov_uops += uop_n
                i += 1
                if in_count >= next_ckpt:
                    # Checkpoint exactly where interpretation would
                    # have: flush deferred device time and the post-
                    # instruction PC first, since the snapshot captures
                    # both.
                    state.pc = res.next_pc
                    fm.in_count = in_count
                    bus.tick(ticks)
                    if not kernel:
                        tlb.lookups += ticks  # skipped fetch translations
                    ticks = 0
                    fm._take_checkpoint()
                    next_ckpt = in_count + ckpt.interval
                if block.dead:
                    # A store in this very block rewrote its code range;
                    # later pre-decoded steps are stale.  Exit after the
                    # offending instruction -- interpretation resumes
                    # with fresh bytes.
                    break
            sb_stats.hits += 1
            if block.dead:
                at_boundary = True
                break
            if i < bn:
                # Clipped by the budget/horizon cap: mid-block exit.
                at_boundary = False
                break
            at_boundary = True
            if produced >= cap:
                break
            # Chain: the block ended at a boundary with cap to spare and
            # no observer due (within the horizon the interrupt check
            # between blocks is a guaranteed no-op), so the block at the
            # fall-through/taken PC replays in the same invocation.  A
            # missing or stale successor exits instead -- the caller's
            # next blocks.step() call repeats the heat/miss/drop
            # accounting exactly as an unchained replay would.
            nxt = blocks_map.get((res.next_pc, kernel))
            if (
                nxt is None
                or nxt is _UNCAPTURABLE
                or nxt.dead
                or nxt.mc_version != mc_version
                or nxt.compression != compression
                or (not kernel and nxt.tlb_gen != tlb_gen)
            ):
                break
            block = nxt
        state.pc = res.next_pc
        fm.in_count = in_count
        if ticks:
            bus.tick(ticks)
            if not kernel:
                tlb.lookups += ticks
        # A full replay ends where capture stopped -- a block boundary
        # either way (control transfer, excluded opcode, or length
        # cap); a dead block's exit point is fresh code and also worth
        # a lookup.  Only a budget/horizon clip leaves the PC
        # mid-block.
        self.exited_at_boundary = at_boundary
        stats.executed += produced
        stats.traced += produced
        stats.trace_words += words_total
        stats.basic_blocks += blocks_ended
        stats.decode_hits += produced
        if collect:
            coverage = fm.microcode.coverage
            coverage.translated += cov_translated
            coverage.untranslated += cov_untranslated
            coverage.uops += cov_uops
        self.stats.replayed_instructions += produced
        return produced

    def _replay_fault(self, block: Superblock, sink: List[TraceEntry],
                      pc: int, ppc: int, instr, fault: Fault,
                      in_count: int, produced: int, ticks: int,
                      words_total: int, blocks_ended: int,
                      cov_translated: int, cov_untranslated: int,
                      cov_uops: int) -> int:
        """A step faulted mid-replay: flush the deferred state for the
        completed prefix, then delegate the faulting instruction to the
        interpreter's own fault path (bit-identical entry + handler
        redirection + its own bus tick and checkpoint check)."""
        fm = self.fm
        fm.in_count = in_count
        if ticks:
            fm.bus.tick(ticks)
        kernel = block.key[1]
        if not kernel:
            # One fetch translation per completed step, plus the
            # faulting instruction's own (successful) fetch.
            fm.tlb.lookups += ticks + 1
        stats = fm.stats
        stats.executed += produced
        stats.traced += produced
        stats.trace_words += words_total
        stats.basic_blocks += blocks_ended
        stats.decode_hits += produced + 1
        if fm.config.collect_coverage:
            coverage = fm.microcode.coverage
            coverage.translated += cov_translated
            coverage.untranslated += cov_untranslated
            coverage.uops += cov_uops
        entry = fm._exec_fault(pc, ppc, instr, fault)
        sink.append(entry)
        self.exited_at_boundary = True  # the handler entry follows
        self.stats.hits += 1
        self.stats.replayed_instructions += produced
        return produced + 1
