"""Instruction-trace entries flowing from the functional model to the
timing model.

"Each instruction entry in the trace includes everything needed by the
timing model that the functional model can conveniently provide, such as
a fixed-length opcode, instruction size, source, destination and
condition code architectural register names, instruction and data
virtual addresses and data written to special registers, such as
software-filled TLB entries."  (paper section 2)

The entry also carries a *size model* used by the host link-cost
accounting: the paper compresses opcodes to 11 bits and instructions to
an average of about four 32-bit words.
"""

from __future__ import annotations


from repro.isa.instructions import Instr


class TraceEntry:
    """One dynamic instruction as seen by the timing model."""

    __slots__ = (
        "in_no",  # dynamic instruction number (IN)
        "pc",  # virtual PC
        "ppc",  # physical PC (redundant info to simplify the TM)
        "instr",
        "next_pc",  # functional-path successor PC
        "iterations",  # REP iteration count actually executed
        "mem_vaddr",  # data virtual address or -1
        "mem_paddr",  # data physical address or -1
        "exception",  # cause code raised BY this instruction, or 0
        "handler_entry",  # True if this is the first instruction of a handler
        "tlb_vpn",  # TLBWR payload passed in the trace (or -1)
        "tlb_pte",
        "io_port",  # OUT port written by this instruction (or -1)
        "io_value",
        "wrong_path",  # produced while the FM was forced down a wrong path
    )

    def __init__(
        self,
        in_no: int,
        pc: int,
        ppc: int,
        instr: Instr,
        next_pc: int,
        iterations: int = 1,
        mem_vaddr: int = -1,
        mem_paddr: int = -1,
        exception: int = 0,
        handler_entry: bool = False,
        tlb_vpn: int = -1,
        tlb_pte: int = -1,
        io_port: int = -1,
        io_value: int = 0,
        wrong_path: bool = False,
    ):
        self.in_no = in_no
        self.pc = pc
        self.ppc = ppc
        self.instr = instr
        self.next_pc = next_pc
        self.iterations = iterations
        self.mem_vaddr = mem_vaddr
        self.mem_paddr = mem_paddr
        self.exception = exception
        self.handler_entry = handler_entry
        self.tlb_vpn = tlb_vpn
        self.tlb_pte = tlb_pte
        self.io_port = io_port
        self.io_value = io_value
        self.wrong_path = wrong_path

    @property
    def taken(self) -> bool:
        """For control instructions: did the functional path branch away
        from the sequential successor?"""
        return self.next_pc != (self.pc + self.instr.length) & 0xFFFFFFFF

    @property
    def is_control(self) -> bool:
        return self.instr.spec.is_control

    @property
    def is_cond_branch(self) -> bool:
        return self.instr.spec.iclass == "branch"

    def trace_words(self, compression: str = "full") -> int:
        """32-bit words this entry occupies on the host link.

        ``full``: everything inline -- the paper's measured average of
        ~4 words/instruction.  ``bb``: translation-cache mirroring sends
        only a basic-block id + addresses for repeat blocks (~2 words).
        """
        words = 4
        if self.mem_vaddr >= 0:
            words += 1
        if self.tlb_vpn >= 0:
            words += 2
        if compression == "bb":
            words = 2 + (1 if self.mem_vaddr >= 0 else 0) + (
                2 if self.tlb_vpn >= 0 else 0
            )
        return words

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "TraceEntry(IN=%d pc=%#x %s -> %#x%s%s)" % (
            self.in_no,
            self.pc,
            self.instr.name,
            self.next_pc,
            " exc=%d" % self.exception if self.exception else "",
            " WP" if self.wrong_path else "",
        )


def format_trace(entries) -> str:
    """Human-readable multi-line rendering of a trace slice."""
    from repro.isa.disassembler import format_instr

    lines = []
    for entry in entries:
        lines.append(
            "IN%-6d %#010x  %-28s -> %#010x%s"
            % (
                entry.in_no,
                entry.pc,
                format_instr(entry.instr, pc=entry.pc),
                entry.next_pc,
                "  exc=%d" % entry.exception if entry.exception else "",
            )
        )
    return "\n".join(lines)
