"""Leapfrog checkpoints with memory write-logging.

"We currently support set_pc using periodic software checkpoints of
architectural state along with memory and I/O logging.  At least two
checkpoints that leapfrog each other are maintained to ensure that the
functional model can rollback to any non-committed instruction.  As
commits return from the timing model, checkpoints are released and
others are taken."  (paper section 3.2)

A checkpoint records the architectural state, TLB and device state
*after* executing instruction ``in_no``.  Between checkpoints, every
memory word written is logged with its pre-image; rolling back to a
checkpoint applies the undo log in reverse, restores the snapshots, and
the CPU then re-executes forward to the exact target instruction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple


@dataclass
class Checkpoint:
    in_no: int
    arch: Tuple
    tlb: Tuple
    bus: Tuple
    undo_base: int  # index into the undo log at snapshot time


@dataclass
class CheckpointStats:
    taken: int = 0
    released: int = 0
    undo_entries: int = 0
    rollbacks: int = 0
    reexecuted_instructions: int = 0


class CheckpointManager:
    """Owns the checkpoint list and the shared memory undo log."""

    def __init__(self, interval: int = 128, max_checkpoints: int = 64):
        if interval < 1:
            raise ValueError("checkpoint interval must be >= 1")
        self.interval = interval
        self.max_checkpoints = max_checkpoints
        self._checkpoints: List[Checkpoint] = []
        # Undo log entries: (addr, old_word).  Indexes partition it by
        # checkpoint via Checkpoint.undo_base.
        self._undo: List[Tuple[int, int]] = []
        self.stats = CheckpointStats()

    def __len__(self) -> int:
        """Live (retained) checkpoints."""
        return len(self._checkpoints)

    # -- write logging -----------------------------------------------------

    def log_write(self, addr: int, old_word: int) -> None:
        self._undo.append((addr, old_word))
        self.stats.undo_entries += 1

    # -- checkpoint lifecycle ------------------------------------------------

    def due(self, in_no: int) -> bool:
        """Should a checkpoint be taken after instruction *in_no*?"""
        if not self._checkpoints:
            return True
        return in_no - self._checkpoints[-1].in_no >= self.interval

    def next_due(self, in_no: int) -> int:
        """The smallest instruction count > *in_no* at which ``due``
        becomes true -- the superblock replay loop precomputes this so
        its fused loop checkpoints on exactly the interpreted grid."""
        if not self._checkpoints:
            return in_no + 1
        return self._checkpoints[-1].in_no + self.interval

    def take(self, in_no: int, arch: Tuple, tlb: Tuple, bus: Tuple) -> None:
        if self._checkpoints and in_no <= self._checkpoints[-1].in_no:
            raise ValueError("checkpoints must advance monotonically")
        self._checkpoints.append(
            Checkpoint(in_no, arch, tlb, bus, len(self._undo))
        )
        self.stats.taken += 1
        if len(self._checkpoints) > self.max_checkpoints:
            # Merge forward: dropping the oldest is only safe because
            # release() keeps at least one checkpoint at or before every
            # uncommitted instruction; hitting this limit means commits
            # are extremely stale, so we refuse instead of corrupting.
            raise RuntimeError(
                "checkpoint limit exceeded; timing model stopped committing?"
            )

    def release(self, committed_in: int) -> None:
        """Free checkpoints no longer needed once *committed_in* commits.

        We must always retain the newest checkpoint with
        ``in_no <= committed_in`` (rollback to committed_in+1 needs it),
        and everything after it.
        """
        keep_from = 0
        for i, ckpt in enumerate(self._checkpoints):
            if ckpt.in_no <= committed_in:
                keep_from = i
        if keep_from > 0:
            dropped = self._checkpoints[:keep_from]
            self._checkpoints = self._checkpoints[keep_from:]
            self.stats.released += len(dropped)
            # Trim undo entries older than the new oldest checkpoint.
            base = self._checkpoints[0].undo_base
            if base:
                del self._undo[:base]
                for ckpt in self._checkpoints:
                    ckpt.undo_base -= base

    # -- rollback ------------------------------------------------------------

    def checkpoint_for(self, target_in: int) -> Optional[Checkpoint]:
        """Newest checkpoint with ``in_no <= target_in``."""
        best = None
        for ckpt in self._checkpoints:
            if ckpt.in_no <= target_in:
                best = ckpt
            else:
                break
        return best

    def undo_entries_since(self, ckpt: Checkpoint):
        """Undo entries newer than *ckpt*, in reverse (apply order)."""
        return reversed(self._undo[ckpt.undo_base :])

    def truncate_to(self, ckpt: Checkpoint) -> None:
        """Discard checkpoints and undo entries newer than *ckpt*."""
        index = self._checkpoints.index(ckpt)
        self._checkpoints = self._checkpoints[: index + 1]
        del self._undo[ckpt.undo_base :]

    @property
    def checkpoints(self) -> Tuple[Checkpoint, ...]:
        return tuple(self._checkpoints)

    @property
    def oldest_in(self) -> Optional[int]:
        return self._checkpoints[0].in_no if self._checkpoints else None
