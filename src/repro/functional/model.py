"""The functional model: a full-system FastISA simulator with trace
generation, leapfrog checkpoints and ``set_pc`` rollback.

This is the reproduction's QEMU stand-in.  Like the paper's heavily
modified QEMU it:

* executes application, OS and BIOS code at the ISA level,
* emits an instruction trace entry per dynamic instruction,
* maintains periodic checkpoints plus memory/I-O logging so it can
  roll back to any non-committed instruction (``set_pc``),
* releases checkpoint resources as the timing model commits,
* can be forced down a mis-speculated path and later resteered.

Device time advances once per executed instruction (QEMU icount-style),
so interrupt delivery points are a deterministic function of the
committed instruction stream.  That determinism is what makes the three
drivers (monolithic, timing-directed, FAST) produce *identical* traces
and therefore identical cycle counts -- the core correctness invariant
of this reproduction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.functional.blocks import BOUNDARY_SPEC_VALUES
from repro.functional.checkpoint import CheckpointManager
from repro.functional.cpu import MASK32, CPUMixin, ExecResult, Fault
from repro.functional.state import (
    STATUS_PREV_IE,
    STATUS_PREV_KERNEL,
    ArchState,
)
from repro.functional.trace import TraceEntry
from repro.isa.causes import CAUSE_DEVICE_IRQ, CAUSE_TIMER_IRQ, CAUSE_TLB_MISS, CAUSE_PROTECTION, CAUSE_INVALID_OPCODE
from repro.isa.encoding import EncodingError, decode
from repro.isa.instructions import Instr
from repro.isa.opcodes import lookup
from repro.isa.program import ProgramImage
from repro.isa.registers import (
    SR_BADVADDR,
    SR_CAUSE,
    SR_EPC,
    SR_STATUS,
    STATUS_IE,
    STATUS_KERNEL,
)
from repro.microcode.table import MicrocodeTable
from repro.system.bus import IOBus, build_standard_system
from repro.system.interrupt_controller import IRQ_TIMER, InterruptController
from repro.system.memory import MemoryError_, PhysicalMemory
from repro.system.mmu import PAGE_SHIFT, ProtectionFault, SoftwareTLB, TLBMiss

VECTOR_BASE = 0x40  # all exceptions/interrupts enter here

NOP_INSTR = Instr(spec=lookup("NOP"))

# "Forever" for idle_horizon(): a halted CPU with interrupts disabled
# can only be woken by the timing model itself (cycle-driven delivery),
# so device time imposes no bound.  Callers clamp to their own budgets.
IDLE_HORIZON_MAX = 1 << 40

# Identity-keyed memo bound (see _count_coverage).
_COVERAGE_MEMO_LIMIT = 16384


class RollbackError(RuntimeError):
    """Rollback target is older than the oldest retained checkpoint."""


@dataclass
class FunctionalConfig:
    """Tunables mirroring the paper's QEMU configuration knobs."""

    checkpoint_interval: int = 32
    max_checkpoints: int = 4096
    # Translation (decode) cache: the block-chaining analog.  Turning it
    # off reproduces the paper's de-optimized QEMU data point.
    block_chaining: bool = True
    trace_compression: str = "full"  # or "bb"
    # Collect Table 1 microcode-coverage statistics while executing.
    collect_coverage: bool = True
    # FastBlock superblock trace cache (repro.functional.blocks):
    # capture hot straight-line regions after `superblock_threshold`
    # executions and replay them with a fused loop.  Observationally
    # identical to interpretation; requires block_chaining (it is the
    # same translation-cache ablation knob, only more so).
    superblocks: bool = True
    superblock_threshold: int = 16
    superblock_max_len: int = 64


@dataclass
class FunctionalStats:
    """Event counts the host-cost models later convert to time."""

    executed: int = 0  # instructions executed, incl. replay + wrong path
    traced: int = 0  # trace entries emitted
    wrong_path: int = 0  # trace entries emitted on a forced wrong path
    replayed: int = 0  # instructions re-executed during rollback
    rollbacks: int = 0
    set_pc_calls: int = 0
    interrupts: int = 0
    exceptions: int = 0
    halted_steps: int = 0
    forced_interrupts: int = 0  # delivered by the timing model (cycle mode)
    basic_blocks: int = 0  # ended by a control-flow instruction
    trace_words: int = 0  # 32-bit words shipped to the timing model
    decode_hits: int = 0
    decode_misses: int = 0

    @property
    def mean_basic_block(self) -> float:
        if not self.basic_blocks:
            return float(self.traced)
        return self.traced / self.basic_blocks


class FunctionalModel(CPUMixin):
    """Full-system functional simulator.  See module docstring."""

    def __init__(
        self,
        memory: Optional[PhysicalMemory] = None,
        bus: Optional[IOBus] = None,
        tlb: Optional[SoftwareTLB] = None,
        microcode: Optional[MicrocodeTable] = None,
        config: Optional[FunctionalConfig] = None,
    ):
        if memory is None or bus is None:
            memory, bus, _intctrl, _timer, _console, _disk = (
                build_standard_system()
            )
        self.memory = memory
        self.bus = bus
        self.tlb = tlb or SoftwareTLB()
        self.microcode = microcode or MicrocodeTable()
        self.config = config or FunctionalConfig()
        self.state = ArchState()
        self.stats = FunctionalStats()
        self.ckpt = CheckpointManager(
            interval=self.config.checkpoint_interval,
            max_checkpoints=self.config.max_checkpoints,
        )
        self.in_count = 0  # IN of the most recently executed instruction
        self._dispatch = self._build_dispatch()
        self._decode_cache: dict = {}
        # Identifies the current TLB content; pins the fetch
        # translations baked into user-mode superblocks.  Values come
        # from a never-reused allocator (TLBWR/TLBFLUSH take a fresh
        # one) so a generation maps one-to-one onto a TLB image:
        # rollback restores the checkpoint's generation alongside the
        # checkpoint's TLB snapshot, and blocks captured under it stay
        # valid while blocks from an abandoned divergent path can never
        # alias a live value.
        self.tlb_generation = 0
        self._tlb_gen_next = 1
        # True when the next PC is a basic-block entry (right after a
        # control transfer, serializing opcode, exception or interrupt):
        # the batched loop only consults the superblock cache there.
        self._at_boundary = True
        if self.config.superblocks and self.config.block_chaining:
            from repro.functional.blocks import SuperblockCache

            self.blocks: Optional[SuperblockCache] = SuperblockCache(
                self,
                threshold=self.config.superblock_threshold,
                max_len=self.config.superblock_max_len,
            )
            self._sb_pages = self.blocks.page_index
        else:
            self.blocks = None
            self._sb_pages = {}
        self._memview = memory.view()
        self._wrong_path = False
        self._replaying = False
        self._handler_pending = False
        self._intctrl = self._find_intctrl()
        # Timing-model-delivered interrupts, keyed by the commit
        # boundary (IN) they arrived after; consulted during replay.
        self._forced_irqs: dict = {}
        # Optional FastScope observer (repro.observability.events):
        # notified on checkpoint creation and rollback replay.  Purely
        # observational -- never consulted for simulation decisions.
        self.observer = None
        # Crack-once coverage memo: id(Instr) -> (instr, uop_count,
        # translated, table_version).  Keeping the Instr itself in the
        # value pins the object so its id cannot be recycled.  Identity
        # keys make staleness impossible: self-modifying code and
        # rollback already invalidate the per-page decode cache, so a
        # changed code byte produces a *new* Instr object.
        self._coverage_memo: dict = {}

    def _find_intctrl(self) -> Optional[InterruptController]:
        for device in self.bus.devices:
            if isinstance(device, InterruptController):
                return device
        return None

    # ------------------------------------------------------------------
    # Loading
    # ------------------------------------------------------------------

    def load(self, image: ProgramImage) -> None:
        """Load *image* into physical memory and point the PC at it."""
        for segment in image.segments:
            self.memory.load_blob(segment.base, segment.data)
        self.state.pc = image.entry
        self._decode_cache.clear()
        self._at_boundary = True
        if self.blocks is not None:
            self.blocks.invalidate_all()
        self._take_checkpoint()  # baseline checkpoint at IN 0

    # ------------------------------------------------------------------
    # Main stepping
    # ------------------------------------------------------------------

    def execute_next(self) -> Optional[TraceEntry]:
        """Execute one instruction and return its trace entry.

        Returns ``None`` when the CPU is halted (waiting for an
        interrupt) or the system has shut down.  Each call while halted
        still advances device time by one unit, so a timer interrupt
        eventually wakes the CPU.
        """
        if self.bus.shutdown_requested:
            return None
        state = self.state
        if state.halted:
            self.bus.tick(1)
            self.stats.halted_steps += 1
            if not self._maybe_take_interrupt():
                return None
        else:
            self._maybe_take_interrupt()
        return self._step()

    def execute_into(self, sink, budget: int) -> int:
        """Execute up to *budget* instructions, appending their trace
        entries to *sink* (any object with ``append``).

        The batched busy-path producer: entry-for-entry identical to
        calling :meth:`execute_next` in a loop, but hot straight-line
        regions replay through the superblock cache
        (:mod:`repro.functional.blocks`), skipping per-instruction
        fetch/decode/dispatch.  Stops early (returning the count
        produced so far) when the CPU halts or the system shuts down --
        halted stepping stays with ``execute_next`` so device time
        advances exactly as the feeds expect.
        """
        produced = 0
        bus = self.bus
        state = self.state
        blocks = self.blocks
        # Consult the block cache only at basic-block boundaries, so
        # hotness counters see entry PCs (not every straight-line
        # interior PC) and the common interpreted instruction pays no
        # lookup.  The flag persists across calls: a span clipped by
        # the budget resumes mid-block and stays on the interpreter
        # until the next control transfer.
        boundary = self._at_boundary
        while produced < budget:
            if bus.shutdown_requested or state.halted:
                break
            if self._maybe_take_interrupt():
                boundary = True
            if boundary and blocks is not None and not self._wrong_path:
                n = blocks.step(sink, budget - produced)
                if n:
                    produced += n
                    boundary = blocks.exited_at_boundary
                    continue
            entry = self._step()
            if entry is None:  # unreachable outside rollback replay
                break
            sink.append(entry)
            produced += 1
            boundary = (entry.exception != 0
                        or entry.instr.spec.value in BOUNDARY_SPEC_VALUES)
        self._at_boundary = boundary
        return produced

    def idle_horizon(self) -> int:
        """How many further :meth:`execute_next` calls are guaranteed to
        be uneventful halted steps (device tick + no interrupt).

        A safe *under*-estimate of the wake-up distance: each device
        reports a lower bound on the time until it could raise an
        enabled IRQ (:meth:`repro.system.devices.Device.ticks_until_irq`)
        and the horizon stops one unit short of the earliest, so the
        waking tick itself is always executed step-by-step.  Returns 0
        whenever batching would be unsound (not halted, wrong path,
        shutdown, or an interrupt already pending).
        """
        state = self.state
        if not state.halted or self._wrong_path or self.bus.shutdown_requested:
            return 0
        intctrl = self._intctrl
        if not state.interrupts_enabled or intctrl is None:
            # Nothing can wake the CPU from device time; only the
            # timing model (cycle-driven delivery) or nothing at all.
            return IDLE_HORIZON_MAX
        if intctrl.output:
            return 0
        enabled = intctrl.enabled
        horizon = IDLE_HORIZON_MAX
        for device in self.bus.devices:
            bound = device.ticks_until_irq(enabled)
            if bound is not None and bound - 1 < horizon:
                horizon = bound - 1
                if horizon <= 0:
                    return 0
        return horizon

    def idle_steps(self, count: int) -> None:
        """Batch *count* uneventful halted steps (``count`` must not
        exceed :meth:`idle_horizon`): one bus tick of *count* units is
        device-time-identical to *count* single ticks when no enabled
        IRQ fires within the span."""
        self.bus.tick(count)
        self.stats.halted_steps += count

    def _maybe_take_interrupt(self) -> bool:
        state = self.state
        if self._wrong_path:
            return False  # interrupts are squashed on the wrong path
        if not state.interrupts_enabled:
            return False
        intctrl = self._intctrl
        if intctrl is None or not intctrl.output:
            return False
        line = intctrl.highest_pending()
        cause = CAUSE_TIMER_IRQ if line == IRQ_TIMER else CAUSE_DEVICE_IRQ
        self._enter_handler(cause, epc=state.pc, badvaddr=0)
        if not self._replaying:
            self.stats.interrupts += 1
        state.halted = False
        return True

    def _enter_handler(self, cause: int, epc: int, badvaddr: int) -> None:
        """Common exception/interrupt entry sequence."""
        state = self.state
        srs = state.srs
        srs[SR_EPC] = epc & MASK32
        srs[SR_CAUSE] = cause
        srs[SR_BADVADDR] = badvaddr & MASK32
        status = srs[SR_STATUS]
        new_status = status & ~(
            STATUS_IE | STATUS_KERNEL | STATUS_PREV_IE | STATUS_PREV_KERNEL
        )
        if status & STATUS_IE:
            new_status |= STATUS_PREV_IE
        if status & STATUS_KERNEL:
            new_status |= STATUS_PREV_KERNEL
        new_status |= STATUS_KERNEL  # handler runs in kernel, IE off
        srs[SR_STATUS] = new_status
        state.pc = VECTOR_BASE
        self._handler_pending = True
        self._at_boundary = True  # the handler entry starts a block

    def _step(self) -> Optional[TraceEntry]:
        state = self.state
        pc = state.pc
        # Fetch.
        try:
            ppc = self._translate(pc, False)
            instr = self._decode_at(ppc)
        except (TLBMiss, ProtectionFault, EncodingError) as exc:
            return self._fetch_fault(pc, exc)
        res = ExecResult((pc + instr.length) & MASK32)
        try:
            self._dispatch[instr.spec.value](instr, res)
        except Fault as fault:
            return self._exec_fault(pc, ppc, instr, fault)
        except (TLBMiss, ProtectionFault) as exc:
            fault = self._mmu_fault(exc)
            return self._exec_fault(pc, ppc, instr, fault)
        except (IndexError, MemoryError_) as exc:
            # Garbage decoded on a forced wrong path: register fields
            # beyond the architectural file or wild physical addresses.
            # Architecturally this is an invalid instruction.
            fault = Fault(CAUSE_INVALID_OPCODE, pc)
            return self._exec_fault(pc, ppc, instr, fault)
        state.pc = res.next_pc
        return self._complete(pc, ppc, instr, res, exception=0)

    def _mmu_fault(self, exc) -> Fault:
        if isinstance(exc, TLBMiss):
            return Fault(CAUSE_TLB_MISS, exc.vaddr)
        return Fault(CAUSE_PROTECTION, exc.vaddr)

    def _fetch_fault(self, pc: int, exc) -> Optional[TraceEntry]:
        """A fault during fetch: no instruction executes; the handler is
        entered directly and the *next* entry is the handler's first."""
        if self._wrong_path:
            # Squashed anyway: emit a wrong-path bubble and move on.
            state = self.state
            state.pc = (pc + 1) & MASK32
            res = ExecResult(state.pc)
            return self._complete(pc, pc & MASK32, NOP_INSTR, res, exception=0)
        if isinstance(exc, EncodingError):
            fault = Fault(CAUSE_INVALID_OPCODE, pc)
        else:
            fault = self._mmu_fault(exc)
        self._enter_handler(fault.cause, epc=pc, badvaddr=fault.badvaddr)
        if not self._replaying:
            self.stats.exceptions += 1
        return self._step()

    def _exec_fault(
        self, pc: int, ppc: int, instr: Instr, fault: Fault
    ) -> Optional[TraceEntry]:
        """A fault during execution: the instruction appears in the trace
        with its exception cause, then the handler instructions follow."""
        state = self.state
        if self._wrong_path:
            state.pc = (pc + instr.length) & MASK32
            res = ExecResult(state.pc)
            return self._complete(pc, ppc, instr, res, exception=fault.cause)
        epc = (pc + instr.length) & MASK32 if fault.epc_next else pc
        self._enter_handler(fault.cause, epc=epc, badvaddr=fault.badvaddr)
        if not self._replaying:
            self.stats.exceptions += 1
        self._handler_pending = False  # the faulting entry itself flags it
        res = ExecResult(state.pc)  # next_pc = handler vector
        return self._complete(pc, ppc, instr, res, exception=fault.cause)

    def _complete(
        self, pc: int, ppc: int, instr: Instr, res: ExecResult, exception: int
    ) -> TraceEntry:
        self.in_count += 1
        self.stats.executed += 1
        if self._replaying:
            self.stats.replayed += 1
            self.bus.tick(1)
            return None  # replay emits no trace entries
        handler_entry = self._handler_pending
        self._handler_pending = False
        entry = TraceEntry(
            in_no=self.in_count,
            pc=pc,
            ppc=ppc,
            instr=instr,
            next_pc=res.next_pc,
            iterations=res.iterations,
            mem_vaddr=res.mem_vaddr,
            mem_paddr=res.mem_paddr,
            exception=exception,
            handler_entry=handler_entry,
            tlb_vpn=res.tlb_vpn,
            tlb_pte=res.tlb_pte,
            io_port=res.io_port,
            io_value=res.io_value,
            wrong_path=self._wrong_path,
        )
        self.stats.traced += 1
        if self._wrong_path:
            self.stats.wrong_path += 1
        if instr.spec.is_control or exception:
            self.stats.basic_blocks += 1
        self.stats.trace_words += entry.trace_words(self.config.trace_compression)
        if self.config.collect_coverage and not self._wrong_path:
            self._count_coverage(instr, res.iterations)
        self.bus.tick(1)
        if self.ckpt.due(self.in_count):
            self._take_checkpoint()
        return entry

    # ------------------------------------------------------------------
    # Decode (translation) cache
    # ------------------------------------------------------------------

    def _decode_at(self, ppc: int) -> Instr:
        if not self.config.block_chaining:
            instr, _length = decode(self._memview, ppc)
            self.stats.decode_misses += 1
            return instr
        page = ppc >> PAGE_SHIFT
        page_cache = self._decode_cache.get(page)
        if page_cache is None:
            page_cache = self._decode_cache[page] = {}
        instr = page_cache.get(ppc)
        if instr is None:
            instr, _length = decode(self._memview, ppc)
            page_cache[ppc] = instr
            self.stats.decode_misses += 1
        else:
            self.stats.decode_hits += 1
        return instr

    def _count_coverage(self, instr: Instr, iterations: int) -> None:
        """Update Table 1 coverage counters for one executed instruction.

        Equivalent to ``microcode.crack(instr)`` /
        ``crack_rep(instr, iterations)`` with counting on, but the
        crack itself happens once per decoded Instr object: the µop
        count and translated flag are memoized by identity, so the
        per-instruction hot path is a dict hit instead of a key-tuple
        hash plus a cache probe inside the table.
        """
        microcode = self.microcode
        memo = self._coverage_memo
        entry = memo.get(id(instr))
        if entry is None or entry[0] is not instr or entry[3] != microcode.version:
            uops, translated = microcode.crack(instr, count=False)
            if len(memo) >= _COVERAGE_MEMO_LIMIT:
                memo.clear()
            entry = (instr, len(uops), translated, microcode.version)
            memo[id(instr)] = entry
        coverage = microcode.coverage
        if entry[2]:
            coverage.translated += 1
        else:
            coverage.untranslated += 1
        if instr.spec.iclass == "string":
            # crack_rep: the per-iteration body repeats; zero iterations
            # degenerate to the single REP-check NOP.
            coverage.uops += entry[1] * iterations if iterations > 0 else 1
        else:
            coverage.uops += entry[1]

    # ------------------------------------------------------------------
    # Logged physical writes (undo support + decode invalidation)
    # ------------------------------------------------------------------

    def _phys_write32(self, paddr: int, value: int) -> None:
        self.ckpt.log_write(paddr, self.memory.read32(paddr))
        self.memory.write32(paddr, value)
        self._invalidate_code(paddr)

    def _phys_write8(self, paddr: int, value: int) -> None:
        aligned = paddr & ~3
        self.ckpt.log_write(aligned, self.memory.read32(aligned))
        self.memory.write8(paddr, value)
        self._invalidate_code(paddr)

    def _invalidate_code(self, paddr: int) -> None:
        page = paddr >> PAGE_SHIFT
        if page in self._decode_cache:
            del self._decode_cache[page]
        # An instruction starting near the end of the previous page may
        # span into this one.
        if (paddr & ((1 << PAGE_SHIFT) - 1)) < 8 and (page - 1) in self._decode_cache:
            del self._decode_cache[page - 1]
        # Superblock pages cover each instruction's full byte range, so
        # one probe of the written page suffices (no prev-page case).
        # The write then kills only blocks whose instruction bytes it
        # overlaps -- data stores into a code page leave them alone.
        if page in self._sb_pages:
            self.blocks.invalidate_write(paddr)

    # ------------------------------------------------------------------
    # Checkpoints and rollback
    # ------------------------------------------------------------------

    def _bump_tlb_generation(self) -> None:
        """TLB content changed (TLBWR/TLBFLUSH): move to a fresh, never
        previously used generation so stale user-mode superblocks
        lazily drop on their next lookup."""
        self.tlb_generation = self._tlb_gen_next
        self._tlb_gen_next += 1

    def _take_checkpoint(self) -> None:
        self.ckpt.take(
            self.in_count,
            self.state.snapshot(),
            (self.tlb.snapshot(), self.tlb_generation),
            self.bus.snapshot(),
        )
        if self.observer is not None:
            self.observer.on_checkpoint(self.in_count, len(self.ckpt))

    def rollback_to(self, target_in: int) -> int:
        """Restore state to just after instruction *target_in*.

        Returns the number of instructions re-executed to reach the
        target (the rollback cost the host model charges for).
        """
        if target_in > self.in_count:
            raise RollbackError(
                "cannot roll forward: target %d > current %d"
                % (target_in, self.in_count)
            )
        if target_in == self.in_count:
            return 0
        ckpt = self.ckpt.checkpoint_for(target_in)
        if ckpt is None:
            raise RollbackError(
                "rollback target %d is older than the oldest checkpoint" % target_in
            )
        undo = list(self.ckpt.undo_entries_since(ckpt))
        self.memory.apply_undo(undo)
        touched_pages = {addr >> PAGE_SHIFT for addr, _ in undo}
        for page in touched_pages:
            self._decode_cache.pop(page, None)
        sb_pages = self._sb_pages
        if sb_pages:
            # Undoing a write changes memory at exactly that word: kill
            # only the blocks whose instruction bytes it overlaps (the
            # overwhelmingly common undo entry is a data store).
            invalidate_write = self.blocks.invalidate_write
            for addr, _ in undo:
                if (addr >> PAGE_SHIFT) in sb_pages:
                    invalidate_write(addr)
        self.state.restore(ckpt.arch)
        tlb_snapshot, tlb_gen = ckpt.tlb
        self.tlb.restore(tlb_snapshot)
        if tlb_gen != self.tlb_generation:
            # TLBWR/TLBFLUSH effects were rewound.  Restoring the
            # checkpoint's generation is exact: generations map
            # one-to-one onto TLB images (the allocator never reuses a
            # value), so superblocks captured under it remain valid and
            # blocks from the abandoned path stale-drop lazily.
            self.tlb_generation = tlb_gen
        self.bus.restore(ckpt.bus)
        self.ckpt.truncate_to(ckpt)
        self.in_count = ckpt.in_no
        self.ckpt.stats.rollbacks += 1
        self.stats.rollbacks += 1
        # Re-execute forward to the exact target instruction.
        replayed = target_in - self.in_count
        if replayed:
            self._replaying = True
            try:
                # Replay mirrors execute_next exactly (interrupt checks
                # included) so the re-executed stream is bit-identical to
                # the original run -- determinism is what makes rollback
                # sound across I/O and interrupts.
                while self.in_count < target_in:
                    forced = self._forced_irqs.get(self.in_count)
                    if forced is not None and self._intctrl is not None:
                        # A timing-model-delivered interrupt arrived at
                        # this boundary in the original run: re-raise it
                        # (raising is idempotent) so replay matches.
                        self._intctrl.raise_irq(forced)
                        self.state.halted = False if (
                            self.state.interrupts_enabled
                        ) else self.state.halted
                    if self.state.halted:
                        self.bus.tick(1)
                        if not self._maybe_take_interrupt():
                            continue
                    else:
                        self._maybe_take_interrupt()
                    self._step()
            finally:
                self._replaying = False
            self.ckpt.stats.reexecuted_instructions += replayed
        if self.observer is not None:
            self.observer.on_rollback(target_in, replayed)
        return replayed

    def set_pc(self, in_no: int, new_pc: int) -> int:
        """The paper's ``set_pc`` command: roll back to *in_no*, removing
        the effects of that instruction, and continue from *new_pc*.

        Returns the re-execution count (rollback overhead).
        """
        self.stats.set_pc_calls += 1
        replayed = self.rollback_to(in_no - 1)
        self.state.pc = new_pc & MASK32
        self.state.halted = False
        self._at_boundary = True  # resteer targets start a block
        return replayed

    def commit(self, in_no: int) -> None:
        """The timing model committed everything up to *in_no*: release
        rollback resources older than that point."""
        self.ckpt.release(in_no)

    # ------------------------------------------------------------------
    # Timing-model-generated interrupts (section 3.4)
    # ------------------------------------------------------------------

    def deliver_interrupt(self, after_in: int, line: int):
        """The timing model decided an interrupt arrives at the commit
        boundary after instruction *after_in* ("the timing model
        generates interrupts for reproducibility and passes those
        interrupts to the functional model").

        Rolls the (possibly far-ahead, possibly wrong-path) functional
        model back to that boundary, raises the line and takes the
        interrupt if architecturally enabled.  The delivery is logged so
        later checkpoint replays reproduce it at the same boundary.

        Returns ``(taken, replayed_instructions)``.
        """
        self.exit_wrong_path()
        replayed = self.rollback_to(after_in)
        self._forced_irqs[after_in] = line
        if self._intctrl is not None:
            self._intctrl.raise_irq(line)
        self.state.halted = False if self.state.interrupts_enabled else (
            self.state.halted
        )
        taken = self._maybe_take_interrupt()
        if not self._replaying:
            self.stats.forced_interrupts += 1
        return taken, replayed

    # ------------------------------------------------------------------
    # Wrong-path control (used by the FAST driver)
    # ------------------------------------------------------------------

    def enter_wrong_path(self) -> None:
        """Mark subsequent execution as forced-wrong-path: faults become
        bubbles, interrupts are deferred, trace entries are flagged."""
        self._wrong_path = True

    def exit_wrong_path(self) -> None:
        self._wrong_path = False

    @property
    def on_wrong_path(self) -> bool:
        return self._wrong_path

    # ------------------------------------------------------------------
    # Standalone run helper
    # ------------------------------------------------------------------

    def run(
        self,
        max_instructions: int = 1_000_000,
        on_entry: Optional[Callable[[TraceEntry], None]] = None,
    ) -> int:
        """Run standalone (functional-only) until shutdown or the budget
        is exhausted.  Returns the number of instructions executed."""
        executed = 0
        idle = 0
        sink: list = []
        while executed < max_instructions:
            if (
                self.blocks is not None
                and not self.state.halted
                and not self.bus.shutdown_requested
            ):
                n = self.execute_into(
                    sink, min(4096, max_instructions - executed)
                )
                if n:
                    if self.bus.shutdown_requested:
                        # Mirror the stepped loop below: the shutdown-
                        # raising instruction executes but is neither
                        # counted nor reported.
                        sink.pop()
                        n -= 1
                    if on_entry is not None:
                        for batched in sink:
                            on_entry(batched)
                    del sink[:]
                    before = executed
                    executed += n
                    idle = 0
                    if executed // 1024 > before // 1024:
                        # Standalone runs have no timing model
                        # committing for them; release rollback state
                        # on the same 1024-instruction grid the stepped
                        # loop below uses (in_count == executed here).
                        self.commit((executed // 1024) * 1024)
                    if self.bus.shutdown_requested:
                        break
                    continue
                del sink[:]
            entry = self.execute_next()
            if self.bus.shutdown_requested:
                break
            if entry is None:
                if self.state.halted and not self.state.interrupts_enabled:
                    break  # HALT with no possible wake: program finished
                idle += 1
                if idle > 200_000:
                    raise RuntimeError("functional model wedged while halted")
                continue
            idle = 0
            executed += 1
            if executed % 1024 == 0:
                # Standalone runs have no timing model committing for
                # them; everything executed is final, so release
                # rollback resources ourselves.
                self.commit(self.in_count)
            if on_entry is not None:
                on_entry(entry)
        return executed
