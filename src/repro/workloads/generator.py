"""Workload framework: named, scalable FastISA programs.

Each workload bundles one or more user programs with the OS variant it
runs under and carries metadata describing the behaviour it was built
to exhibit (the paper's benchmarks are characterized by branch
predictability, floating-point fraction, system-call behaviour, code
footprint and memory access pattern -- see Table 1 / Figures 4-5).

Workloads take a ``scale`` parameter so tests can run them in a few
thousand instructions while benchmarks run them longer.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence

from repro.kernel.image import UserProgram
from repro.kernel.sources import KernelConfig, linux24_config


@dataclass
class Workload:
    """One benchmark: programs + OS configuration + metadata."""

    name: str
    programs: List[UserProgram]
    kernel_config: KernelConfig = field(default_factory=linux24_config)
    description: str = ""
    paper_row: str = ""  # the Table 1 row this models

    def __post_init__(self):
        if not self.programs:
            raise ValueError("workload needs at least one program")


def seeded(seed: int) -> random.Random:
    """The deterministic RNG used by all generators."""
    return random.Random(0xFA57 ^ seed)


def data_words(label: str, values: Sequence[int]) -> str:
    """Emit a labeled .word block (eight values per line)."""
    lines = [label + ":"]
    values = list(values)
    if not values:
        values = [0]
    for i in range(0, len(values), 8):
        chunk = values[i : i + 8]
        lines.append("    .word " + ", ".join(str(v & 0xFFFFFFFF) for v in chunk))
    return "\n".join(lines)


def data_bytes(label: str, blob: bytes) -> str:
    """Emit a labeled .byte block."""
    lines = [label + ":"]
    if not blob:
        blob = b"\x00"
    for i in range(0, len(blob), 16):
        chunk = blob[i : i + 16]
        lines.append("    .byte " + ", ".join(str(b) for b in chunk))
    return "\n".join(lines)


EXIT_SNIPPET = """
    MOVI R0, 0            ; SYS_EXIT
    SYSCALL
"""


def putchar(char: str) -> str:
    """Assembly to print one character via SYS_PUTCHAR."""
    return """
    MOVI R0, 1
    MOVI R1, %d
    SYSCALL
""" % ord(char)


# Registry filled in by the suite module.
_REGISTRY: Dict[str, Callable[[int], Workload]] = {}


def register(name: str):
    """Decorator: register a ``scale -> Workload`` factory."""

    def wrap(factory: Callable[[int], Workload]):
        _REGISTRY[name] = factory
        return factory

    return wrap


def workload_names() -> List[str]:
    return list(_REGISTRY)


def build(name: str, scale: int = 1) -> Workload:
    """Instantiate a registered workload at *scale*."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise KeyError(
            "unknown workload %r (known: %s)" % (name, ", ".join(_REGISTRY))
        )
    return factory(scale)
