"""MySQL-like workload: index lookups, disk reads and string compares.

Models the paper's "MySQL running some test cases" row: a query loop
that pulls pages from the disk device (through the kernel's synchronous
read syscall), binary-searches keys, and uses string operations --
giving the highest µops/instruction of Table 1 (1.51) and plenty of
kernel interaction.
"""

from __future__ import annotations

from repro.kernel.image import UserProgram
from repro.workloads.generator import Workload, data_words, register, seeded
from repro.workloads.specint import _repeat_wrapper

SECTOR_KEYS = 128  # 32-bit keys per 512-byte disk sector


def make_disk_image(num_sectors: int = 64, seed: int = 42) -> bytes:
    """A sorted-key 'table' on disk, one page per sector."""
    rng = seeded(seed)
    blob = bytearray()
    base = 0
    for _ in range(num_sectors):
        keys = sorted(base + rng.randrange(1, 50) for _ in range(SECTOR_KEYS))
        base = keys[-1]
        for key in keys:
            blob += key.to_bytes(4, "little")
    return bytes(blob)


@register("mysql")
def mysql(scale: int = 1) -> Workload:
    rng = seeded(999)
    queries = [rng.randrange(0, 6000) for _ in range(24)]
    body = """
    MOVI R5, 0            ; query index
my_query:
    CMPI R5, %(nq)d
    JGE my_done
    ; fetch the page for this query (cycling over 8 sectors)
    MOV R1, R5
    ANDI R1, 7
    PUSH R5
    MOVI R0, 5            ; SYS_READ_DISK(sector, buf)
    MOVI R2, page
    SYSCALL
    POP R5
    ; binary search the page for the query key
    MOV R1, R5
    SHL R1, 2
    ADDI R1, queries
    LD R6, [R1+0]         ; needle
    MOVI R3, 0            ; lo
    MOVI R4, %(nkeys)d    ; hi
my_bs:
    MOV R1, R4
    SUB R1, R3
    CMPI R1, 1
    JLE my_bsdone
    MOV R1, R3
    ADD R1, R4
    SHR R1, 1             ; mid
    MOV R2, R1
    SHL R2, 2
    ADDI R2, page
    LD R2, [R2+0]
    CMP R2, R6
    JG my_hi
    MOV R3, R1
    JMP my_bs
my_hi:
    MOV R4, R1
    JMP my_bs
my_bsdone:
    ; copy the result rows out with a string move (SELECT result set)
    MOV R1, R3
    SHL R1, 2
    MOV R0, R1
    ADDI R0, page
    MOVI R1, rowbuf
    MOVI R2, 256
    REP MOVSB
    ; let other clients run
    MOVI R0, 4            ; SYS_YIELD
    SYSCALL
    INC R5
    JMP my_query
my_done:
""" % {"nq": len(queries), "nkeys": SECTOR_KEYS}
    data = "\n".join(
        [
            data_words("queries", queries),
            ".align 4",
            "page:\n    .space 512",
            "rowbuf:\n    .space 512",
        ]
    )
    return Workload(
        name="mysql",
        programs=[UserProgram("mysql", _repeat_wrapper(body, scale, data), entry="main")],
        description="disk-backed index lookups with string row copies",
        paper_row="MySQL",
    )
