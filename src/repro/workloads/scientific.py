"""Sweep3D: the Department of Energy wavefront transport benchmark.

Modeled as a triple-nested floating-point stencil whose inner loop is
dominated by FP operations without automatic microcode translations --
the paper's Table 1 shows only 44.05 % of Sweep3D's dynamic
instructions translated, the lowest of the suite.
"""

from __future__ import annotations

from repro.kernel.image import UserProgram
from repro.workloads.generator import Workload, data_words, register, seeded
from repro.workloads.specint import _repeat_wrapper


@register("sweep3d")
def sweep3d(scale: int = 1) -> Workload:
    rng = seeded(3333)
    n = 12  # n^3 cells per sweep
    flux = [rng.randrange(1, 1 << 10) for _ in range(n * n)]
    body = """
    MOVI R2, 1
    FITOF F5, R2          ; divisor plane
    MOVI R4, 0            ; i (sweep direction)
sw_i:
    MOVI R5, 0            ; j
sw_j:
    MOVI R1, flux         ; row pointer
    MOVI R6, 0            ; k
sw_k:
    ; wavefront update: dominated by untranslated FP microcode
    FLD F0, [R1+0]
    FLD F1, [R1+4]
    FMUL F0, F1
    FDIV F0, F5
    FSUB F1, F0
    FMUL F1, F1
    FADD F2, F1
    FST [R1+0], F2
    ADDI R1, 4
    INC R6
    CMPI R6, %(n)d
    JL sw_k
    INC R5
    CMPI R5, %(n)d
    JL sw_j
    INC R4
    CMPI R4, %(n)d
    JL sw_i
""" % {"n": n}
    data = data_words("flux", flux)
    return Workload(
        name="sweep3d",
        programs=[UserProgram("sweep3d", _repeat_wrapper(body, scale, data), entry="main")],
        description="wavefront FP stencil; lowest microcode coverage",
        paper_row="Sweep3D",
    )
