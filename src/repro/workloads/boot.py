"""Operating-system boot workloads (Linux 2.4 / 2.6, Windows XP rows).

For these rows the *boot itself* is the benchmark: BIOS, kernel
decompression, device initialisation and the first user process, just
like the paper boots unmodified kernels.  The init process does a token
amount of user work and exits, shutting the system down.
"""

from __future__ import annotations

from repro.kernel.image import UserProgram
from repro.kernel.sources import (
    linux24_config,
    linux26_config,
    windowsxp_config,
)
from repro.workloads.generator import EXIT_SNIPPET, Workload, register

INIT_SOURCE = """
main:
    ; init: print a marker and start (then immediately stop) services
    MOVI R0, 1
    MOVI R1, 105          ; 'i'
    SYSCALL
    MOVI R5, 64
init_spin:
    DEC R5
    JNZ init_spin
    MOVI R0, 1
    MOVI R1, 10           ; newline
    SYSCALL
%s
""" % EXIT_SNIPPET


def _boot_workload(name: str, config_factory, row: str) -> Workload:
    return Workload(
        name=name,
        programs=[UserProgram("init", INIT_SOURCE, entry="main")],
        kernel_config=config_factory(),
        description="full-system boot of " + row,
        paper_row=row,
    )


@register("linux-2.4")
def linux24(scale: int = 1) -> Workload:
    return _boot_workload("linux-2.4", linux24_config, "Linux-2.4")


@register("linux-2.6")
def linux26(scale: int = 1) -> Workload:
    return _boot_workload("linux-2.6", linux26_config, "Linux-2.6")


@register("windows-xp")
def windowsxp(scale: int = 1) -> Workload:
    return _boot_workload("windows-xp", windowsxp_config, "Windows XP")
