"""SPECINT2000-like synthetic kernels (the 12 rows of Table 1).

Each generator produces a small FastISA program whose *behavioural
signature* models the corresponding SPEC benchmark as the paper
describes it: eon's heavy floating point (mostly untranslated
microcode, hence the 52.32 % Table 1 coverage), perlbmk's sleep/HALT
system calls that starve the timing model (Figure 4), mcf's pointer
chasing, gcc's large code footprint, parser's data-dependent control,
and so on.  They are behavioural models, not ports: what matters for
the reproduced experiments is branch predictability, FP fraction,
memory pattern, code footprint and syscall behaviour.
"""

from __future__ import annotations

from repro.kernel.image import UserProgram
from repro.workloads.generator import (
    EXIT_SNIPPET,
    Workload,
    data_bytes,
    data_words,
    register,
    seeded,
)


def _repeat_wrapper(body: str, scale: int, data: str) -> str:
    """Wrap *body* so it runs ``scale`` times before exiting."""
    return """
main:
    MOVI R1, %d
    MOVI R2, iters
    ST [R2+0], R1
restart:
%s
    MOVI R2, iters
    LD R1, [R2+0]
    DEC R1
    ST [R2+0], R1
    JNZ restart
%s
.align 4
iters:
    .word 0
%s
""" % (max(1, scale), body, EXIT_SNIPPET, data)


@register("164.gzip")
def gzip(scale: int = 1) -> Workload:
    rng = seeded(164)
    # Semi-repetitive buffer: run-length structure like real text.
    buf = bytearray()
    while len(buf) < 1536:
        buf += bytes([rng.randrange(64, 96)]) * rng.randrange(1, 9)
    buf = buf[:1536]
    body = """
    ; histogram pass
    MOVI R4, buf
    MOVI R5, %(n)d
gz_hist:
    LDB R1, [R4+0]
    MOV R2, R1
    SHL R2, 2
    ADDI R2, hist
    LD R3, [R2+0]
    INC R3
    ST [R2+0], R3
    INC R4
    DEC R5
    JNZ gz_hist
    ; RLE compression pass
    MOVI R4, buf
    MOVI R5, %(n)d
    MOVI R6, outbuf
    LDB R2, [R4+0]
    MOVI R3, 1
    MOVI SP, 0x43f000
gz_rle:
    DEC R5
    JZ gz_done
    INC R4
    LDB R1, [R4+0]
    CMP R1, R2
    JZ gz_same
    CALL gz_emit
    MOV R2, R1
    MOVI R3, 1
    JMP gz_rle
gz_same:
    INC R3
    JMP gz_rle
gz_emit:                  ; write the (value, count) pair
    PUSH R1
    STB [R6+0], R2
    INC R6
    STB [R6+0], R3
    INC R6
    POP R1
    RET
gz_done:
""" % {"n": len(buf)}
    data = "\n".join(
        [
            data_bytes("buf", bytes(buf)),
            ".align 4",
            "hist:\n    .space 1024",
            "outbuf:\n    .space 4096",
        ]
    )
    return Workload(
        name="164.gzip",
        programs=[UserProgram("gzip", _repeat_wrapper(body, scale, data), entry="main")],
        description="byte histogram + RLE compression over repetitive data",
        paper_row="164.gzip",
    )


@register("175.vpr")
def vpr(scale: int = 1) -> Workload:
    rng = seeded(175)
    n = 128
    xs = [rng.randrange(0, 512) for _ in range(n)]
    ys = [rng.randrange(0, 512) for _ in range(n)]
    body = """
    MOVI R5, 600          ; placement moves
    MOVI R6, 12345        ; LCG state
vpr_move:
    ; LCG to pick two cells
    MOVI R1, 1103515245
    MUL R6, R1
    ADDI R6, 12345
    MOV R1, R6
    SHR R1, 8
    ANDI R1, %(mask)d
    MOV R2, R6
    SHR R2, 16
    ANDI R2, %(mask)d
    ; load coordinates, compute FP cost delta
    SHL R1, 2
    ADDI R1, xs
    LD R3, [R1+0]
    SHL R2, 2
    ADDI R2, ys
    LD R4, [R2+0]
    FITOF F0, R3
    FITOF F1, R4
    FSUB F0, F1           ; untranslated FP (NOP microcode)
    FMUL F0, F0           ; untranslated FP
    FADD F2, F0
    ; accept the move if cost improved (sign of F0 - F3)
    FCMP F0, F3
    JL vpr_accept
    DEC R5
    JNZ vpr_move
    JMP vpr_done
vpr_accept:
    LD R3, [R1+0]
    LD R4, [R2+0]
    ST [R1+0], R4
    ST [R2+0], R3
    FMOV F3, F0
    DEC R5
    JNZ vpr_move
vpr_done:
""" % {"mask": n - 1}
    data = "\n".join([data_words("xs", xs), data_words("ys", ys)])
    return Workload(
        name="175.vpr",
        programs=[UserProgram("vpr", _repeat_wrapper(body, scale, data), entry="main")],
        description="FP placement-cost moves; significant untranslated FP",
        paper_row="175.vpr",
    )


@register("176.gcc")
def gcc(scale: int = 1) -> Workload:
    rng = seeded(176)
    nfuncs = 96
    funcs = []
    for i in range(nfuncs):
        op = rng.choice(["ADD", "XOR", "SUB", "OR"])
        shift = rng.randrange(1, 5)
        funcs.append(
            """
func_%(i)d:
    PUSH R3
    MOV R3, R1
    SHL R3, %(shift)d
    %(op)s R1, R3
    CMPI R1, %(threshold)d
    JC func_%(i)d_skip
    XORI R1, %(xor)d
func_%(i)d_skip:
    POP R3
    RET"""
            % {
                "i": i,
                "shift": shift,
                "op": op,
                "threshold": rng.randrange(1 << 20),
                "xor": rng.randrange(1 << 16),
            }
        )
    body = """
    MOVI R1, 7
    MOVI R5, %(n)d
    MOVI R6, functab
gcc_pass:
    LD R2, [R6+0]
    MOVI R4, 4            ; optimizer passes revisit each function
gcc_rep:
    CALLR R2
    DEC R4
    JNZ gcc_rep
    ADDI R6, 4
    DEC R5
    JNZ gcc_pass
""" % {"n": nfuncs}
    table = data_words("functab", [0] * 0) + "\n"
    table = "functab:\n" + "\n".join("    .word func_%d" % i for i in range(nfuncs))
    data = "\n".join([table] + funcs)
    return Workload(
        name="176.gcc",
        programs=[UserProgram("gcc", _repeat_wrapper(body, scale, data), entry="main")],
        description="large code footprint, indirect calls through a table",
        paper_row="176.gcc",
    )


@register("181.mcf")
def mcf(scale: int = 1) -> Workload:
    rng = seeded(181)
    n = 4096
    order = list(range(1, n)) + [0]
    rng.shuffle(order)
    # node[i] = (next_index*8, value); shuffled to defeat locality.
    node_words = []
    perm = list(range(n))
    rng.shuffle(perm)
    nxt = {perm[i]: perm[(i + 1) % n] for i in range(n)}
    for i in range(n):
        node_words += [nxt[i] * 8, rng.randrange(1 << 16)]
    body = """
    MOVI R4, nodes        ; current node
    MOVI R5, %(steps)d
    MOVI R6, 0            ; accumulator
mcf_chase:
    LD R2, [R4+4]         ; value
    TEST R2, R2
    JZ mcf_skip
    MOV R3, R2
    ANDI R3, 1
    JZ mcf_even
    ADD R6, R2
    JMP mcf_next
mcf_even:
    SUB R6, R2
    JMP mcf_next
mcf_skip:
    INC R6
mcf_next:
    LD R4, [R4+0]         ; follow the pointer
    ADDI R4, nodes
    DEC R5
    JNZ mcf_chase
    MOVI R2, acc
    ST [R2+0], R6
""" % {"steps": 2500}
    data = "\n".join([data_words("nodes", node_words), "acc:\n    .word 0"])
    return Workload(
        name="181.mcf",
        programs=[UserProgram("mcf", _repeat_wrapper(body, scale, data), entry="main")],
        description="pointer chasing with data-dependent branches",
        paper_row="181.mcf",
    )


@register("186.crafty")
def crafty(scale: int = 1) -> Workload:
    rng = seeded(186)
    boards = [rng.randrange(1 << 32) for _ in range(64)]
    body = """
    MOVI R4, boards
    MOVI R5, 64
    MOVI SP, 0x43f000
cr_board:
    LD R1, [R4+0]
    CALL cr_popcount
    JMP cr_popdone
cr_popcount:              ; R1 -> R2 = population count
    PUSH R4
    MOVI R2, 0
cr_pop:
    TEST R1, R1
    JZ cr_popret
    MOV R3, R1
    ANDI R3, 1
    ADD R2, R3
    SHR R1, 1
    JMP cr_pop
cr_popret:
    POP R4
    RET
cr_popdone:
    ; fold the count back into the next board (attack map update)
    LD R1, [R4+0]
    SHL R1, 1
    XOR R1, R2
    ST [R4+0], R1
    ADDI R4, 4
    DEC R5
    JNZ cr_board
"""
    data = data_words("boards", boards)
    return Workload(
        name="186.crafty",
        programs=[UserProgram("crafty", _repeat_wrapper(body, scale, data), entry="main")],
        description="bitboard manipulation, highly predictable branches",
        paper_row="186.crafty",
    )


@register("197.parser")
def parser(scale: int = 1) -> Workload:
    rng = seeded(197)
    text = bytes(rng.randrange(0, 8) for _ in range(1024))
    states = []
    for s in range(8):
        delta = rng.randrange(1, 7)
        states.append(
            """
state_%(s)d:
    PUSH R1
    ADDI R6, %(delta)d
    ANDI R6, 7
    POP R1
    JMP ps_next"""
            % {"s": s, "delta": delta}
        )
    body = """
    MOVI SP, 0x43f000
    MOVI R4, text
    MOVI R5, %(n)d
    MOVI R6, 0            ; parser state
ps_loop:
    LDB R1, [R4+0]
    ADD R1, R6
    ANDI R1, 7
    SHL R1, 2
    ADDI R1, statetab
    LD R2, [R1+0]
    JR R2                 ; indirect dispatch: hard to predict
ps_next:
    INC R4
    DEC R5
    JNZ ps_loop
""" % {"n": len(text)}
    table = "statetab:\n" + "\n".join("    .word state_%d" % s for s in range(8))
    data = "\n".join([data_bytes("text", text), ".align 4", table] + states)
    return Workload(
        name="197.parser",
        programs=[UserProgram("parser", _repeat_wrapper(body, scale, data), entry="main")],
        description="table-driven state machine, unpredictable indirect branches",
        paper_row="197.parser",
    )


@register("252.eon")
def eon(scale: int = 1) -> Workload:
    rng = seeded(252)
    n = 96
    verts = [rng.randrange(1, 1 << 12) for _ in range(3 * n)]
    body = """
    MOVI R4, verts
    MOVI R5, %(n)d
    MOVI SP, 0x43f000
eon_ray:
    LD R1, [R4+0]
    LD R2, [R4+4]
    LD R3, [R4+8]
    CALL eon_shade
    ADDI R4, 12
    DEC R5
    JNZ eon_ray
    JMP eon_rays_done
eon_shade:
    FITOF F0, R1
    FITOF F1, R2
    FITOF F2, R3
    ; shading: dot products, reflection, normalization -- mostly
    ; untranslated FP microcode (the Table 1 eon signature)
    FMUL F0, F1
    FMUL F1, F2
    FMUL F2, F0
    FADD F0, F1
    FSQRT F3, F0
    FDIV F0, F3
    FDIV F1, F3
    FMUL F2, F0
    FSUB F1, F2
    FMUL F1, F1
    FSUB F2, F1
    FMUL F3, F2
    FDIV F2, F3
    FADD F4, F1
    RET
eon_rays_done:
""" % {"n": n}
    data = data_words("verts", verts)
    return Workload(
        name="252.eon",
        programs=[UserProgram("eon", _repeat_wrapper(body, scale, data), entry="main")],
        description="ray-shading FP kernel; most FP microcode untranslated",
        paper_row="252.eon",
    )


@register("253.perlbmk")
def perlbmk(scale: int = 1) -> Workload:
    rng = seeded(253)
    text = bytes(rng.choice(b"abcdefeegh e\n") for _ in range(768))
    body = """
    ; interpreter-style hash loop over the text (the bulk of the work),
    ; short REP SCASB scans, then sleep -- the HALT behaviour that
    ; hurts perlbmk in Figure 4.
    MOVI R4, text
    MOVI R5, %(n)d
    MOVI R6, 5381
pb_hash:
    LDB R1, [R4+0]
    MOV R2, R6
    SHL R2, 5
    ADD R6, R2
    ADD R6, R1
    XORI R6, 0x1505
    INC R4
    DEC R5
    JNZ pb_hash
    ; scan a slice for 'e' characters with REP SCASB
    MOVI R0, text
    MOVI R2, 192
    MOVI R3, 101          ; 'e'
pb_scan:
    REP SCASB
    JNZ pb_scandone       ; Z clear: ran out without a match
    MOV R1, R0
    SUBI R1, text
    MUL R6, R1
    ADDI R6, 17
    CMPI R2, 0
    JNZ pb_scan
pb_scandone:
    MOVI R2, hashv
    ST [R2+0], R6
    ; perl's sleep(): block until the timer wakes us
    MOVI R0, 2            ; SYS_SLEEP
    MOVI R1, 2
    SYSCALL
    ; copy a result string
    MOVI R0, text
    MOVI R1, copybuf
    MOVI R2, 48
    REP MOVSB
""" % {"n": len(text)}
    data = "\n".join(
        [
            data_bytes("text", text),
            ".align 4",
            "hashv:\n    .word 0",
            "copybuf:\n    .space %d" % len(text),
        ]
    )
    return Workload(
        name="253.perlbmk",
        programs=[UserProgram("perlbmk", _repeat_wrapper(body, scale, data), entry="main")],
        description="string scanning + sleep system calls (HALT idling)",
        paper_row="253.perlbmk",
    )


@register("254.gap")
def gap(scale: int = 1) -> Workload:
    body = """
    MOVI R4, 2
    MOVI R5, 400
    MOVI SP, 0x43f000
gap_outer:
    ; gcd(R4, R5-ish) by repeated division
    MOV R1, R4
    MOV R2, R5
    ADDI R2, 7
    CALL gap_gcd_fn
    JMP gap_gcddone
gap_gcd_fn:
    PUSH R5
    CALL gap_gcd_inner
    POP R5
    RET
gap_gcd_inner:
gap_gcd:
    TEST R2, R2
    JZ gap_gcddone
    MOV R3, R1
    DIV R3, R2            ; quotient
    MUL R3, R2
    SUB R1, R3            ; remainder via r - q*b
    MOV R6, R1
    MOV R1, R2
    MOV R2, R6
    JMP gap_gcd
    RET
gap_gcddone:
    ; modular product chain
    MOV R2, R4
    MUL R2, R5
    MOVI R3, 65521
    MOV R6, R2
    DIV R6, R3
    MUL R6, R3
    SUB R2, R6
    ADD R4, R2
    ANDI R4, 1023
    INC R4
    DEC R5
    JNZ gap_outer
"""
    return Workload(
        name="254.gap",
        programs=[UserProgram("gap", _repeat_wrapper(body, scale, ""), entry="main")],
        description="integer multiply/divide chains (computer algebra)",
        paper_row="254.gap",
    )


@register("255.vortex")
def vortex(scale: int = 1) -> Workload:
    rng = seeded(255)
    keys = [rng.randrange(1, 1 << 30) for _ in range(256)]
    body = """
    ; insert pass
    MOVI R5, %(n)d
    MOVI R6, keys
vx_ins:
    LD R1, [R6+0]
    CALL vx_insert
    ADDI R6, 4
    DEC R5
    JNZ vx_ins
    ; lookup pass
    MOVI R5, %(n)d
    MOVI R6, keys
vx_look:
    LD R1, [R6+0]
    CALL vx_lookup
    ADDI R6, 4
    DEC R5
    JNZ vx_look
    JMP vx_done
vx_insert:                ; R1 = key; clobbers R2,R3
    PUSH R1
    MOV R2, R1
    SHR R2, 7
    XOR R2, R1
    ANDI R2, 511
    SHL R2, 2
    ADDI R2, table
    ST [R2+0], R1
    POP R1
    RET
vx_lookup:                ; R1 = key -> R3 = found?
    PUSH R1
    MOV R2, R1
    SHR R2, 7
    XOR R2, R1
    ANDI R2, 511
    SHL R2, 2
    ADDI R2, table
    LD R3, [R2+0]
    CMP R3, R1
    JZ vx_hit
    MOVI R3, 0
    POP R1
    RET
vx_hit:
    MOVI R3, 1
    POP R1
    RET
vx_done:
""" % {"n": len(keys)}
    data = "\n".join([data_words("keys", keys), "table:\n    .space 2048"])
    return Workload(
        name="255.vortex",
        programs=[UserProgram("vortex", _repeat_wrapper(body, scale, data), entry="main")],
        description="hash-table OODB operations, call/return heavy",
        paper_row="255.vortex",
    )


@register("256.bzip2")
def bzip2(scale: int = 1) -> Workload:
    rng = seeded(256)
    n = 192
    arr = [rng.randrange(1 << 16) for _ in range(n)]
    body = """
    ; insertion sort (block-sorting stand-in)
    MOVI SP, 0x43f000
    MOVI R4, 1
bz_outer:
    CMPI R4, %(n)d
    JGE bz_sorted
    MOV R5, R4
    SHL R5, 2
    ADDI R5, arr
    LD R6, [R5+0]         ; key
    MOV R3, R4
bz_inner:
    CMPI R3, 0
    JZ bz_place
    MOV R5, R3
    DEC R5
    SHL R5, 2
    ADDI R5, arr
    LD R2, [R5+0]
    CMP R2, R6
    JLE bz_place
    MOV R1, R3
    SHL R1, 2
    ADDI R1, arr
    ST [R1+0], R2
    DEC R3
    JMP bz_inner
bz_place:
    CALL bz_store
    INC R4
    JMP bz_outer
bz_store:                 ; arr[R3] = R6
    PUSH R1
    MOV R1, R3
    SHL R1, 2
    ADDI R1, arr
    ST [R1+0], R6
    POP R1
    RET
bz_sorted:
""" % {"n": n}
    data = data_words("arr", arr)
    return Workload(
        name="256.bzip2",
        programs=[UserProgram("bzip2", _repeat_wrapper(body, scale, data), entry="main")],
        description="insertion sort over pseudo-random data",
        paper_row="256.bzip2",
    )


@register("300.twolf")
def twolf(scale: int = 1) -> Workload:
    rng = seeded(300)
    n = 128
    cells = [rng.randrange(0, 1024) for _ in range(n)]
    body = """
    MOVI SP, 0x43f000
    MOVI R5, 500
    MOVI R6, 99991        ; LCG state
tw_move:
    MOVI R1, 69069
    MUL R6, R1
    ADDI R6, 1
    MOV R1, R6
    SHR R1, 10
    ANDI R1, %(mask)d
    SHL R1, 2
    ADDI R1, cells
    LD R2, [R1+0]
    CALL tw_cost
    JMP tw_cost_done
tw_cost:                  ; R2 -> R3 = |pos - 512|
    PUSH R2
    MOV R3, R2
    SUBI R3, 512
    JGE tw_abs_done
    NEG R3
tw_abs_done:
    POP R2
    RET
tw_cost_done:
    CMPI R3, 256
    JG tw_reject
    ; accept: nudge the cell toward the center
    CMPI R2, 512
    JGE tw_dec
    ADDI R2, 3
    JMP tw_store
tw_dec:
    SUBI R2, 3
tw_store:
    ST [R1+0], R2
tw_reject:
    DEC R5
    JNZ tw_move
""" % {"mask": n - 1}
    data = data_words("cells", cells)
    return Workload(
        name="300.twolf",
        programs=[UserProgram("twolf", _repeat_wrapper(body, scale, data), entry="main")],
        description="simulated-annealing placement moves",
        paper_row="300.twolf",
    )
