"""Synthetic workload suite modeling the paper's benchmarks."""

from repro.workloads.database import make_disk_image
from repro.workloads.generator import Workload, build, register, workload_names
from repro.workloads.suite import (
    QUICK_SUITE,
    SUITE_ORDER,
    full_suite,
    quick_suite,
)

__all__ = [
    "QUICK_SUITE",
    "SUITE_ORDER",
    "Workload",
    "build",
    "full_suite",
    "make_disk_image",
    "quick_suite",
    "register",
    "workload_names",
]
