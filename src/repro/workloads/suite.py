"""The full workload suite, ordered as the paper's Table 1."""

from __future__ import annotations

from typing import List

# Importing the generator modules registers their workloads.
from repro.workloads import boot, database, scientific, specint  # noqa: F401
from repro.workloads.generator import Workload, build, workload_names

# Table 1 row order.
SUITE_ORDER = [
    "linux-2.4",
    "164.gzip",
    "175.vpr",
    "176.gcc",
    "181.mcf",
    "186.crafty",
    "197.parser",
    "252.eon",
    "253.perlbmk",
    "254.gap",
    "255.vortex",
    "256.bzip2",
    "300.twolf",
    "linux-2.6",
    "sweep3d",
    "mysql",
]

# A cheaper subset for quick runs and smoke tests.
QUICK_SUITE = ["164.gzip", "181.mcf", "252.eon", "253.perlbmk"]


def full_suite(scale: int = 1) -> List[Workload]:
    """All 16 workloads at *scale*, in Table 1 order."""
    return [build(name, scale) for name in SUITE_ORDER]


def quick_suite(scale: int = 1) -> List[Workload]:
    return [build(name, scale) for name in QUICK_SUITE]


__all__ = [
    "QUICK_SUITE",
    "SUITE_ORDER",
    "Workload",
    "build",
    "full_suite",
    "quick_suite",
    "workload_names",
]
