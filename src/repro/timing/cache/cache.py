"""Set-associative cache timing model (state only, no data).

"Because data values are often not required to predict performance,
data path components such as ... cache values are generally not
included in the timing model."  (paper section 2) -- so this tracks
tags and replacement state only.
"""

from __future__ import annotations

from typing import Dict, List

from repro.timing.module import Module


class SetAssocCache(Module):
    """An LRU set-associative cache of tags."""

    def __init__(
        self,
        name: str,
        size_bytes: int,
        ways: int,
        line_bytes: int = 64,
    ):
        super().__init__(name)
        if size_bytes % (ways * line_bytes):
            raise ValueError("size must be a multiple of ways*line")
        self.size_bytes = size_bytes
        self.ways = ways
        self.line_bytes = line_bytes
        self.num_sets = size_bytes // (ways * line_bytes)
        self._line_shift = line_bytes.bit_length() - 1
        # Per-set ordered dict of tags (LRU first).
        self._sets: List[Dict[int, bool]] = [dict() for _ in range(self.num_sets)]

    def line_of(self, paddr: int) -> int:
        return paddr >> self._line_shift

    def access(self, paddr: int, is_write: bool = False) -> bool:
        """Access the line containing *paddr*.  Returns hit/miss and
        updates tag + LRU state (allocate-on-miss, write-allocate)."""
        line = paddr >> self._line_shift
        index = line % self.num_sets
        tag = line // self.num_sets
        cache_set = self._sets[index]
        self.bump("accesses")
        if is_write:
            self.bump("writes")
        hit = tag in cache_set
        if hit:
            dirty = cache_set.pop(tag) or is_write
            cache_set[tag] = dirty
            self.bump("hits")
        else:
            self.bump("misses")
            if len(cache_set) >= self.ways:
                _evicted_tag, dirty = next(iter(cache_set.items()))
                del cache_set[_evicted_tag]
                self.bump("evictions")
                if dirty:
                    self.bump("writebacks")
            cache_set[tag] = is_write
        return hit

    def probe(self, paddr: int) -> bool:
        """Non-allocating, non-LRU-updating lookup."""
        line = paddr >> self._line_shift
        return (line // self.num_sets) in self._sets[line % self.num_sets]

    def invalidate_all(self) -> None:
        for cache_set in self._sets:
            cache_set.clear()

    @property
    def hit_rate(self) -> float:
        accesses = self.counter("accesses")
        if not accesses:
            return 1.0
        return self.counter("hits") / accesses

    def resource_estimate(self):
        # Tag array in BRAM: ~one 18 Kb BRAM per 2K lines of tags, plus
        # comparators per way.
        lines = self.size_bytes // self.line_bytes
        return {"luts": 120 * self.ways, "brams": max(1, lines // 2048)}
