"""Set-associative cache timing model (state only, no data).

"Because data values are often not required to predict performance,
data path components such as ... cache values are generally not
included in the timing model."  (paper section 2) -- so this tracks
tags and replacement state only, in the flat array-backed tag store of
:mod:`repro.timing.tables` (the host-side analogue of a tag BRAM).
"""

from __future__ import annotations

from repro.timing.module import Module
from repro.timing.tables import LruTagStore


class SetAssocCache(Module):
    """An LRU set-associative cache of tags."""

    def __init__(
        self,
        name: str,
        size_bytes: int,
        ways: int,
        line_bytes: int = 64,
    ):
        super().__init__(name)
        if size_bytes % (ways * line_bytes):
            raise ValueError("size must be a multiple of ways*line")
        self.size_bytes = size_bytes
        self.ways = ways
        self.line_bytes = line_bytes
        self.num_sets = size_bytes // (ways * line_bytes)
        self._line_shift = line_bytes.bit_length() - 1
        # Flat tag array, LRU-first within each set; the payload slot
        # carries the line's dirty bit.
        self._sets = LruTagStore(self.num_sets, ways)

    def line_of(self, paddr: int) -> int:
        return paddr >> self._line_shift

    def access(self, paddr: int, is_write: bool = False) -> bool:
        """Access the line containing *paddr*.  Returns hit/miss and
        updates tag + LRU state (allocate-on-miss, write-allocate).

        Works on the tag store's parallel arrays directly (BRAM ports
        wired into the stage): one C-level scan plus slice moves, no
        per-entry Python objects."""
        line = paddr >> self._line_shift
        index = line % self.num_sets
        tag = line // self.num_sets
        store = self._sets
        tags = store._tags
        payloads = store._payload
        ways = self.ways
        base = index * ways
        count = store._count[index]
        end = base + count
        self.bump("accesses")
        if is_write:
            self.bump("writes")
        try:
            slot = tags.index(tag, base, end)
        except ValueError:
            slot = -1
        if slot >= 0:
            dirty = 1 if (payloads[slot] or is_write) else 0
            last = end - 1
            if slot != last:
                tags[slot:last] = tags[slot + 1:end]
                payloads[slot:last] = payloads[slot + 1:end]
                tags[last] = tag
            payloads[last] = dirty
            self.bump("hits")
            return True
        self.bump("misses")
        if count >= ways:
            # Evict the LRU entry at the base slot; slot order shifts
            # down and the set stays full.
            dirty = payloads[base]
            last = end - 1
            tags[base:last] = tags[base + 1:end]
            payloads[base:last] = payloads[base + 1:end]
            self.bump("evictions")
            if dirty:
                self.bump("writebacks")
            slot = last
        else:
            slot = end
            store._count[index] = count + 1
        tags[slot] = tag
        payloads[slot] = 1 if is_write else 0
        return False

    def probe(self, paddr: int) -> bool:
        """Non-allocating, non-LRU-updating lookup."""
        line = paddr >> self._line_shift
        return self._sets.find(line % self.num_sets, line // self.num_sets) >= 0

    def probe_lines(self, paddrs) -> list:
        """Batch non-destructive lookups (span consumers, probes)."""
        num_sets = self.num_sets
        shift = self._line_shift
        find = self._sets.find
        return [
            find((paddr >> shift) % num_sets, (paddr >> shift) // num_sets) >= 0
            for paddr in paddrs
        ]

    def invalidate_all(self) -> None:
        self._sets.clear()

    @property
    def hit_rate(self) -> float:
        accesses = self.counter("accesses")
        if not accesses:
            return 1.0
        return self.counter("hits") / accesses

    def resource_estimate(self):
        # Tag array in BRAM: ~one 18 Kb BRAM per 2K lines of tags, plus
        # comparators per way.
        lines = self.size_bytes // self.line_bytes
        return {"luts": 120 * self.ways, "brams": max(1, lines // 2048)}
