"""Cache and TLB timing models."""

from repro.timing.cache.cache import SetAssocCache
from repro.timing.cache.hierarchy import CacheGeometry, CacheHierarchy
from repro.timing.cache.itlb import ITLBModel

__all__ = ["CacheGeometry", "CacheHierarchy", "ITLBModel", "SetAssocCache"]
