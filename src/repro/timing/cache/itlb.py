"""Instruction TLB timing/statistics model.

The architectural TLB lives in the functional model (software-managed;
misses raise real exceptions whose handler instructions flow through
the trace).  The timing model's iTLB mirrors installs/flushes it sees in
the trace -- exactly the "mirroring ... TLBs" trace-compression idea of
section 3.2 -- and tracks hit statistics for Fetch.
"""

from __future__ import annotations

from typing import Dict

from repro.timing.module import Module

PAGE_SHIFT = 12


class ITLBModel(Module):
    def __init__(self, name: str = "itlb", capacity: int = 64):
        super().__init__(name)
        self.capacity = capacity
        self._entries: Dict[int, bool] = {}

    def lookup(self, vaddr: int) -> bool:
        self.bump("lookups")
        vpn = vaddr >> PAGE_SHIFT
        if vpn in self._entries:
            del self._entries[vpn]
            self._entries[vpn] = True  # refresh FIFO/LRU position
            self.bump("hits")
            return True
        self.bump("misses")
        # Allocate: in the target, the refill handler installs it; by
        # the time fetch retries it is present.
        self.install(vpn)
        return False

    def install(self, vpn: int) -> None:
        if vpn in self._entries:
            del self._entries[vpn]
        elif len(self._entries) >= self.capacity:
            del self._entries[next(iter(self._entries))]
        self._entries[vpn] = True

    def flush(self) -> None:
        self._entries.clear()
        self.bump("flushes")

    def resource_estimate(self):
        return {"luts": 40 * self.capacity, "brams": 0}
