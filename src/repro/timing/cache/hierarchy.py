"""The memory hierarchy of the Figure 3 target.

Default geometry (paper section 4): 8-way 32 KB split L1 I/D caches, an
8-way 256 KB shared L2, and a fixed-delay DRAM.  Connector delays from
Figure 3: L1<->L2 = 8 cycles, L2<->MEM = 25 cycles.  Caches are
*blocking*, a stated prototype limitation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.timing.cache.cache import SetAssocCache
from repro.timing.module import Module


@dataclass
class CacheGeometry:
    l1i_bytes: int = 32 * 1024
    l1d_bytes: int = 32 * 1024
    l1_ways: int = 8
    l2_bytes: int = 256 * 1024
    l2_ways: int = 8
    line_bytes: int = 64
    l1_hit_latency: int = 1
    l2_latency: int = 8  # Figure 3: L1 <-> L2 connector delay
    mem_latency: int = 25  # Figure 3: L2 <-> MEM connector delay


class CacheHierarchy(Module):
    """L1i + L1d + shared L2 + fixed-delay memory."""

    def __init__(self, geometry: CacheGeometry = None, name: str = "memhier"):
        super().__init__(name)
        self.geometry = geometry or CacheGeometry()
        g = self.geometry
        self.l1i = SetAssocCache("iL1", g.l1i_bytes, g.l1_ways, g.line_bytes)
        self.l1d = SetAssocCache("dL1", g.l1d_bytes, g.l1_ways, g.line_bytes)
        self.l2 = SetAssocCache("L2", g.l2_bytes, g.l2_ways, g.line_bytes)
        for cache in (self.l1i, self.l1d, self.l2):
            self.add_child(cache)

    def access_instr(self, paddr: int) -> int:
        """Instruction fetch: returns total latency in cycles."""
        g = self.geometry
        if self.l1i.access(paddr):
            return g.l1_hit_latency
        if self.l2.access(paddr):
            return g.l1_hit_latency + g.l2_latency
        return g.l1_hit_latency + g.l2_latency + g.mem_latency

    def access_data(self, paddr: int, is_write: bool = False) -> int:
        """Data access: returns total latency in cycles."""
        g = self.geometry
        if self.l1d.access(paddr, is_write):
            return g.l1_hit_latency
        if self.l2.access(paddr, is_write):
            return g.l1_hit_latency + g.l2_latency
        return g.l1_hit_latency + g.l2_latency + g.mem_latency
