"""Static tick scheduling: the compiled engine for the timing model.

The paper's Bluespec compiler turns the timing model into hardware: the
evaluation order of modules within a target cycle is fixed at *compile*
time, not rediscovered every cycle.  The legacy Python engine instead
hand-orders a dynamic dispatch sequence inside ``TimingModel.tick()``.
This module closes that gap: a **compile step**, run once at
construction, extracts the dataflow graph (:mod:`repro.analysis.graph`)
from the Module/Connector tree and emits a flat list of pre-bound tick
callables -- the schedule -- plus a tight run loop over it.

Ordering rule
-------------

Within one target cycle every Connector's throughput budget resets
first (phase 0), then units evaluate **consumer-first**: if module A
pushes into a Connector drained by module B, B ticks before A, so data
pushed by A this cycle becomes poppable no earlier than ``min_latency``
cycles later regardless of evaluation order.  Consumer-first is the
topological order of the dataflow condensation; it is well defined only
when every dataflow cycle crosses at least one ``min_latency >= 1``
Connector -- a zero-latency cycle would make the order load-bearing
(FastLint rule TG002), so compilation rejects it.

Modules declare their per-cycle step by overriding
:meth:`repro.timing.module.Module.bind_tick`.  A module that overrides
it but is reachable through no Connector cannot be ordered -- it is
silently never ticked by *either* engine (the legacy sequence is
hand-written; the compiled schedule is derived).  Such scheduling blind
spots are recorded on the schedule and reported by FastLint as TG006.

On top of the static order the compiled run loop adds **idle
fast-forward**: when a tick leaves the machine quiescent (front end
idle, ROB/RS/queues empty -- perlbmk's ``sleep`` stalls, boot-phase
idling), the feed reports how many further cycles are guaranteed
uneventful (:meth:`repro.timing.feed.InstructionFeed.idle_horizon`) and
the loop advances ``cycle``, ``idle_cycles`` and device time in one
batched step, preserving watchdog and cycle-listener semantics exactly.

Invariant step hook
-------------------

The cycle-listener hook that runs after the per-cycle steps is the
engines' invariant seam: the FastWatch monitor
(:mod:`repro.observability.watch`) compiles every registered module
invariant into one listener and subscribes it with an idle hint, so
structural properties are checked after *every executed cycle* on both
engines while idle spans still batch.  Invariant probes must go through
this hook -- never inside the fused step closures -- because listeners
observe the post-step state of a fully-evaluated cycle on either
engine, which is what keeps a violation's cycle number engine-
independent.  ``_idle_span`` already enforces the corresponding rule:
any listener registered without a hint (e.g. a hintless invariant,
FastLint rule IV003) pins the loop to single-cycle stepping.

The same seam is FastPulse's sampling point
(:mod:`repro.observability.pulse`): the live-telemetry emitter
registers here with a cadence-derived hint (``next due sample - cycle
- 1``), so idle spans batch up to the next sample boundary and a due
sample always lands on a fully-evaluated cycle.  Because the wake
cycle replays the whole per-cycle path on both engines, the set of
sampled cycles -- and therefore the deterministic section of every
pulse record -- is engine-independent by construction.

Sharded execution
-----------------

:class:`repro.timing.shard.ShardedSchedule` subclasses
:class:`CompiledSchedule`: it compiles the identical phase-0 +
consumer-first step order, then overlays a validated PartitionPlan
(:mod:`repro.analysis.partition`) as per-shard step lists evaluated
bulk-synchronously between span barriers.  Everything documented above
-- the ordering rule, idle fast-forward, the cycle-listener seam -- is
shared verbatim by the sharded run loop; only *unit evaluation within
a busy cycle* differs, and only when span negotiation proves the cycle
order-independent (otherwise the cycle runs in this class's sequential
order).
"""

from __future__ import annotations

from typing import Callable, List, Tuple

from repro.analysis.graph import TimingGraph, extract_graph
from repro.timing.connector import Connector
from repro.timing.module import Module
from repro.timing.pipeline.frontend import F_FETCH


class ScheduleError(RuntimeError):
    """The module tree cannot be statically scheduled."""


def _is_tickable(module: Module) -> bool:
    """True if *module* overrides :meth:`Module.bind_tick`."""
    return type(module).bind_tick is not Module.bind_tick


def unscheduled_tickables(
    graph: TimingGraph,
) -> List[Tuple[str, Module]]:
    """Tickable modules the compiled schedule cannot reach.

    A module that overrides ``bind_tick`` participates in the schedule
    only if it is an endpoint of at least one Connector (Connectors
    themselves are phase 0, and the root *is* the engine).  Anything
    else is a blind spot: no engine will ever tick it.  FastLint rule
    TG006 reports these.
    """
    endpoint_ids = set()
    for edge in graph.edges:
        if edge.producer is not None:
            endpoint_ids.add(id(edge.producer))
        if edge.consumer is not None:
            endpoint_ids.add(id(edge.consumer))
    out: List[Tuple[str, Module]] = []
    for path, module in graph.modules:
        if module is graph.root or isinstance(module, Connector):
            continue
        if _is_tickable(module) and id(module) not in endpoint_ids:
            out.append((path, module))
    return out


def _order_units(
    graph: TimingGraph, units: List[Tuple[str, Module]]
) -> List[Tuple[str, Module]]:
    """Consumer-first topological order of *units* (tree order breaks
    ties, deterministically)."""
    index = {id(module): i for i, (_path, module) in enumerate(units)}
    # H holds one edge consumer -> producer per bound dataflow edge
    # between distinct units: "the consumer evaluates first".
    indegree = [0] * len(units)
    successors: List[List[int]] = [[] for _ in units]
    seen_pairs = set()
    for edge in graph.edges:
        if not edge.bound:
            continue
        p = index.get(id(edge.producer))
        c = index.get(id(edge.consumer))
        if p is None or c is None or p == c:
            continue
        if (c, p) in seen_pairs:
            continue
        seen_pairs.add((c, p))
        successors[c].append(p)
        indegree[p] += 1
    order: List[int] = []
    placed = [False] * len(units)
    ready = sorted(i for i in range(len(units)) if indegree[i] == 0)
    while len(order) < len(units):
        if not ready:
            # Every remaining unit sits on a cycle of min_latency >= 1
            # edges: any order is sound (data crosses cycles anyway);
            # break the tie deterministically by tree order.
            forced = min(i for i in range(len(units)) if not placed[i])
            ready = [forced]
        i = ready.pop(0)
        if placed[i]:
            continue
        placed[i] = True
        order.append(i)
        changed = False
        for j in successors[i]:
            indegree[j] -= 1
            if indegree[j] == 0 and not placed[j]:
                ready.append(j)
                changed = True
        if changed:
            ready.sort()
    return [units[i] for i in order]


class CompiledSchedule:
    """The pre-compiled tick engine for one :class:`TimingModel`.

    Built once at construction (``TimingConfig(engine="compiled")``);
    exposes :meth:`tick_cycle` (one cycle, bit-identical to the legacy
    ``TimingModel.tick``) and :meth:`run` (the batched run loop with
    idle fast-forward).
    """

    def __init__(self, tm) -> None:
        self._tm = tm
        graph = extract_graph(tm)
        if graph.zero_latency_cycles():
            raise ScheduleError(
                "zero-min_latency dataflow cycle: consumer-first order "
                "is undefined (FastLint rule TG002 pinpoints the loop)"
            )
        # Phase 0: every Connector's budget reset, in tree order (the
        # legacy engine clocks fetch2decode then decode2dispatch; tree
        # order generalizes that).
        self.connector_order: List[Tuple[str, Connector]] = list(
            graph.connectors
        )
        units = [
            (path, module)
            for path, module in graph.modules
            if module is not tm
            and not isinstance(module, Connector)
            and _is_tickable(module)
        ]
        self.unscheduled: List[Tuple[str, Module]] = unscheduled_tickables(
            graph
        )
        unscheduled_ids = {id(module) for _p, module in self.unscheduled}
        units = [u for u in units if id(u[1]) not in unscheduled_ids]
        self.unit_order: List[Tuple[str, Module]] = _order_units(graph, units)
        steps: List[Callable[[int], None]] = [
            conn.tick for _path, conn in self.connector_order
        ]
        for _path, module in self.unit_order:
            step = module.bind_tick()
            if step is None:
                raise ScheduleError(
                    "module %r advertises bind_tick but returned None"
                    % module.name
                )
            steps.append(step)
        self._steps: Tuple[Callable[[int], None], ...] = tuple(steps)

    # -- introspection ---------------------------------------------------

    def describe(self) -> List[str]:
        """The schedule as an ordered list of module paths."""
        return [path for path, _m in self.connector_order] + [
            path for path, _m in self.unit_order
        ]

    def instrument_steps(
        self,
        wrap: Callable[[str, Callable[[int], None]], Callable[[int], None]],
    ) -> Tuple[Callable[[int], None], ...]:
        """Replace every step with ``wrap(path, step)`` (FastScope's
        tick profiler).  Must run before :meth:`run`, which hoists the
        step tuple into a local at entry.  Returns the previous tuple so
        the caller can restore it."""
        previous = self._steps
        self._steps = tuple(
            wrap(path, step)
            for path, step in zip(self.describe(), previous)
        )
        return previous

    # -- one cycle -------------------------------------------------------

    def tick_cycle(self, cycle: int) -> None:
        """Evaluate one target cycle.  The caller (``TimingModel.tick``
        or :meth:`run`) has already advanced ``tm.cycle`` to *cycle*;
        semantics are bit-identical to the legacy engine's tick."""
        tm = self._tm
        for step in self._steps:
            step(cycle)
        listeners = tm.cycle_listeners
        if listeners:
            if len(listeners) == 1:
                listeners[0](cycle)
            else:
                for listener in listeners:
                    listener(cycle)
        frontend = tm.frontend
        backend = tm.backend
        if (
            frontend.idle_this_cycle
            and not backend.rob
            and not tm.feed.finished
        ):
            tm.feed.idle_tick()
            tm.idle_cycles += 1
            tm._last_progress = cycle
        if backend.last_commit_cycle > tm._last_progress:
            tm._last_progress = backend.last_commit_cycle
        if cycle - tm._last_progress > tm.config.watchdog_cycles:
            tm._raise_deadlock(cycle)

    # -- the batched run loop --------------------------------------------

    def run(self, max_cycles: int):
        """Run to completion (or budget), fast-forwarding idle spans.

        The loop body is :meth:`tick_cycle` fused inline with every
        per-cycle attribute hoisted into locals: on this Python host the
        engine overhead is attribute traffic, and the whole point of
        compiling the schedule is that none of these bindings can change
        between cycles.  ``cycle_listeners`` is hoisted as a *list
        object* -- subscribing mid-run mutates it in place, so the hoist
        still observes late listeners.  Mutable counters are carried in
        locals and written back on every exit path (``finally``) so
        stats and post-mortem state match the legacy engine exactly.
        """
        tm = self._tm
        feed = tm.feed
        frontend = tm.frontend
        backend = tm.backend
        steps = self._steps
        listeners = tm.cycle_listeners
        hints = tm._cycle_idle_hints
        watchdog = tm.config.watchdog_cycles
        idle_span = self._idle_span
        cycle = tm.cycle
        last_progress = tm._last_progress
        try:
            while cycle < max_cycles:
                cycle += 1
                tm.cycle = cycle
                for step in steps:
                    step(cycle)
                if listeners:
                    if len(listeners) == 1:
                        listeners[0](cycle)
                    else:
                        for listener in listeners:
                            listener(cycle)
                idle = frontend.idle_this_cycle and not backend.rob
                if idle and not feed.finished:
                    feed.idle_tick()
                    # Not hoisted into a local: commit listeners (the
                    # statistics sampler) snapshot tm.idle_cycles
                    # mid-run, and it is only written on idle cycles,
                    # so the busy hot path pays nothing.
                    tm.idle_cycles += 1
                    last_progress = cycle
                committed = backend.last_commit_cycle
                if committed > last_progress:
                    last_progress = committed
                if cycle - last_progress > watchdog:
                    tm._raise_deadlock(cycle)
                if feed.finished:
                    if (
                        not backend.rob
                        and len(frontend.fetch_q) == 0
                        and len(frontend.decode_q) == 0
                        and backend._dispatching is None
                    ):
                        break
                    continue
                # Idle fast-forward: only from a fully quiescent machine
                # (this tick fetched nothing, committed nothing, holds
                # nothing in flight and is not draining or stalled), so
                # a batched span is a pure repetition of uneventful
                # cycles.
                if idle:
                    span = idle_span(cycle, max_cycles, hints)
                    if span > 0:
                        feed.idle_ticks(span)
                        cycle += span
                        tm.cycle = cycle
                        tm.idle_cycles += span
                        last_progress = cycle
                        # Seam event, once per batched span (not per
                        # cycle): how far the engine fast-forwarded.
                        if tm.tracer is not None:
                            tm.tracer.emit("idle_span", cycles=span,
                                           from_cycle=cycle - span)
        finally:
            tm.cycle = cycle
            tm._last_progress = last_progress
        return tm.stats()

    def _idle_span(self, cycle: int, max_cycles: int, hints: dict) -> int:
        """How many upcoming cycles may be skipped in one batch.

        Bounded by (a) machine quiescence, (b) the feed's guaranteed-
        uneventful horizon, (c) every cycle listener's declared idle
        hint (a listener without one forces 0 -- it may observe any
        cycle), and (d) the cycle budget.  The waking cycle itself is
        never skipped: spans end one cycle short, so wake-ups (device
        IRQ, coordinator firing, watchdog accounting) replay through
        the full per-cycle path exactly as in the legacy engine.
        """
        tm = self._tm
        frontend = tm.frontend
        backend = tm.backend
        if (
            frontend.mode != F_FETCH
            or frontend.stall_until > cycle
            or backend.rs
            or backend.in_flight
            or backend._dispatching is not None
            or len(frontend.fetch_q)
            or len(frontend.decode_q)
        ):
            return 0
        span = tm.feed.idle_horizon()
        if span <= 0:
            return 0
        if cycle + span > max_cycles:
            span = max_cycles - cycle
        for listener in tm.cycle_listeners:
            hint = hints.get(id(listener))
            if hint is None:
                return 0
            bound = hint(cycle)
            if bound < span:
                span = bound
            if span <= 0:
                return 0
        return span


def compile_schedule(tm) -> CompiledSchedule:
    """Compile the static schedule for *tm* (a ``TimingModel``)."""
    return CompiledSchedule(tm)


# Re-exported for TG006 without importing the whole engine.
__all__ = [
    "CompiledSchedule",
    "ScheduleError",
    "compile_schedule",
    "unscheduled_tickables",
]
