"""Statistics gathering: sampled traces, run-time queries, power.

"FAST simulators can gather statistics with little to no simulation
performance degradation since hardware can be dedicated to gather and
aggregate statistics ...  run-time queries, such as 'when does the
number of active functional units drop below 1?', can continuously run
in hardware at full speed."  (paper section 3)

:class:`StatisticTraceSampler` reproduces the Figure 6 instrumentation:
counter snapshots every N committed basic blocks, yielding per-window
branch-prediction accuracy, I-cache hit rate and pipe-drain percentage
(the boot-phase structure of Figure 6).

:class:`TriggerQuery` models the continuously-evaluated hardware
queries; in this Python host they cost real time, so they are opt-in.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.timing.core import TimingModel


@dataclass
class StatSample:
    """One Figure 6 window."""

    basic_blocks: int  # cumulative blocks at the end of the window
    cycle: int
    bp_accuracy: float
    icache_hit_rate: float
    pipe_drain_fraction: float
    ipc: float
    # Idle (fast-forwarded) cycles inside the window.  Rates above are
    # computed over *busy* cycles, so a window spanning a long HALT
    # sleep is comparable to one that never idled.
    idle_cycles: int = 0
    # True for the trailing partial window flushed by finalize(): under
    # the compiled engine an idle fast-forward span can jump straight
    # from the last committed block to shutdown, and everything after
    # the last interval boundary would otherwise be silently dropped.
    elided: bool = False


class StatisticTraceSampler:
    """Samples pipeline counters every *interval* committed basic blocks.

    Attach before running::

        sampler = StatisticTraceSampler(tm, interval=2000)
        tm.run()
        for s in sampler.samples: ...
    """

    def __init__(self, tm: TimingModel, interval: int = 2000):
        if interval < 1:
            raise ValueError("interval must be >= 1")
        self.tm = tm
        self.interval = interval
        self.samples: List[StatSample] = []
        self._blocks = 0
        self._last = self._snapshot()
        self._finalized = False
        tm.commit_listeners.append(self._on_commit)

    def _snapshot(self) -> Dict[str, int]:
        be, fe = self.tm.backend, self.tm.frontend
        l1i = self.tm.hierarchy.l1i
        return {
            "branches": be.counter("branches"),
            "mispredicts": be.counter("mispredicts"),
            "iacc": l1i.counter("accesses"),
            "ihit": l1i.counter("hits"),
            "drain": fe.counter("drain_cycles_mispredict"),
            "cycle": self.tm.cycle,
            "idle": self.tm.idle_cycles,
            "instructions": be.committed_instructions,
        }

    def _close_window(self, elided: bool) -> None:
        now = self._snapshot()
        last = self._last
        self._last = now
        branches = now["branches"] - last["branches"]
        mispredicts = now["mispredicts"] - last["mispredicts"]
        iacc = now["iacc"] - last["iacc"]
        ihit = now["ihit"] - last["ihit"]
        idle = now["idle"] - last["idle"]
        # Rates are per *busy* cycle: windows are keyed by committed
        # basic blocks, so one that brackets a HALT sleep (or, under
        # the compiled engine, a fast-forwarded span) would otherwise
        # report diluted ipc/drain numbers that depend on the engine's
        # batching rather than on pipeline behaviour.
        busy = max(1, now["cycle"] - last["cycle"] - idle)
        self.samples.append(
            StatSample(
                basic_blocks=self._blocks,
                cycle=now["cycle"],
                bp_accuracy=1.0 - mispredicts / branches if branches else 1.0,
                icache_hit_rate=ihit / iacc if iacc else 1.0,
                pipe_drain_fraction=(now["drain"] - last["drain"]) / busy,
                ipc=(now["instructions"] - last["instructions"]) / busy,
                idle_cycles=idle,
                elided=elided,
            )
        )

    def _on_commit(self, di, cycle: int) -> None:
        if not di.is_control:
            return
        self._blocks += 1
        if self._blocks % self.interval:
            return
        self._close_window(elided=False)

    def finalize(self) -> None:
        """Flush the trailing partial window (idempotent).

        Blocks committed after the last interval boundary -- and any
        pure-idle tail the compiled engine fast-forwarded through, such
        as a final sleep before shutdown -- never reach an interval
        boundary, so without this flush they are silently dropped.  The
        flushed sample is marked ``elided=True``.
        """
        if self._finalized:
            return
        self._finalized = True
        if self.tm.cycle > self._last["cycle"]:
            self._close_window(elided=True)


@dataclass
class TriggerEvent:
    cycle: int
    value: float


class TriggerQuery:
    """A continuously-evaluated predicate over timing-model state.

    *probe* maps the TimingModel to a number each cycle; the query
    records the cycles at which *predicate* first becomes true (edge
    triggered), modeling the paper's start/stop/dump triggers.
    """

    def __init__(
        self,
        tm: TimingModel,
        probe: Callable[[TimingModel], float],
        predicate: Callable[[float], bool],
        name: str = "query",
        max_events: int = 10_000,
    ):
        self.tm = tm
        self.probe = probe
        self.predicate = predicate
        self.name = name
        self.max_events = max_events
        self.events: List[TriggerEvent] = []
        self._armed = True
        # Registering without an idle hint pins the compiled engine to
        # single-stepping for the whole run.  Kept for probes that are
        # genuinely cycle-dependent; prefer
        # repro.observability.triggers.CompiledTriggerQuery, which
        # declares a hint.
        tm.cycle_listeners.append(self._on_cycle)  # fastlint: ignore[ST003]

    def _on_cycle(self, cycle: int) -> None:
        value = self.probe(self.tm)
        active = self.predicate(value)
        if active and self._armed:
            if len(self.events) < self.max_events:
                self.events.append(TriggerEvent(cycle, value))
            self._armed = False
        elif not active:
            self._armed = True


def active_functional_units(tm: TimingModel) -> float:
    """Probe: functional units busy this cycle (for the paper's example
    query "when does the number of active functional units drop below
    1?")."""
    busy = 0
    cycle = tm.cycle
    for unit_list in tm.backend._units.values():
        for busy_until in unit_list:
            if busy_until > cycle:
                busy += 1
    return float(busy)


# ---------------------------------------------------------------------------
# Relative power estimation (the paper's future-work extension): "The
# initial goal is not to perfectly estimate power, but to provide
# relative power estimates that will permit architects to compare
# different architectures."
# ---------------------------------------------------------------------------

# Activity energy weights, in arbitrary units per event.
DEFAULT_ENERGY_WEIGHTS = {
    "fetch": 1.0,
    "decode": 0.6,
    "dispatch": 0.8,
    "issue": 1.2,
    "writeback": 0.8,
    "icache_access": 2.0,
    "dcache_access": 2.5,
    "l2_access": 8.0,
    "bp_lookup": 0.4,
    "squash": 0.5,
}

LEAKAGE_PER_CYCLE = 0.8


@dataclass
class PowerEstimate:
    dynamic: float
    leakage: float
    breakdown: Dict[str, float] = field(default_factory=dict)

    @property
    def total(self) -> float:
        return self.dynamic + self.leakage

    @property
    def per_instruction(self) -> float:
        count = self.breakdown.get("_instructions", 0)
        return self.total / count if count else 0.0


def estimate_power(
    tm: TimingModel, weights: Optional[Dict[str, float]] = None
) -> PowerEstimate:
    """Activity-based relative power for a finished run."""
    w = dict(DEFAULT_ENERGY_WEIGHTS)
    if weights:
        w.update(weights)
    fe, be = tm.frontend, tm.backend
    activities = {
        "fetch": fe.counter("fetched"),
        "decode": fe.counter("decoded"),
        "dispatch": be.counter("dispatched_uops"),
        "issue": be.counter("issues"),
        "writeback": be.counter("writebacks"),
        "icache_access": tm.hierarchy.l1i.counter("accesses"),
        "dcache_access": tm.hierarchy.l1d.counter("accesses"),
        "l2_access": tm.hierarchy.l2.counter("accesses"),
        "bp_lookup": tm.predictor.counter("predictions"),
        "squash": be.counter("squashed_uops"),
    }
    breakdown = {key: count * w[key] for key, count in activities.items()}
    dynamic = sum(breakdown.values())
    breakdown["_instructions"] = be.committed_instructions
    return PowerEstimate(
        dynamic=dynamic,
        leakage=LEAKAGE_PER_CYCLE * tm.cycle,
        breakdown=breakdown,
    )
