"""Branch target buffer: set-associative, LRU within a set.

The paper's default target uses a "4-way and 8K BTB gshare" predictor.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.timing.module import Module


class BTB(Module):
    """Set-associative branch target buffer."""

    def __init__(self, name: str = "btb", entries: int = 8192, ways: int = 4):
        super().__init__(name)
        if entries % ways:
            raise ValueError("entries must be a multiple of ways")
        self.entries = entries
        self.ways = ways
        self.sets = entries // ways
        # Per-set ordered dict {pc: target}; first key is LRU.
        self._table: List[Dict[int, int]] = [dict() for _ in range(self.sets)]

    def _set_for(self, pc: int) -> Dict[int, int]:
        return self._table[(pc >> 1) % self.sets]

    def lookup(self, pc: int) -> Optional[int]:
        self.bump("lookups")
        entry_set = self._set_for(pc)
        target = entry_set.get(pc)
        if target is None:
            self.bump("misses")
            return None
        # Refresh LRU position.
        del entry_set[pc]
        entry_set[pc] = target
        self.bump("hits")
        return target

    def install(self, pc: int, target: int) -> None:
        entry_set = self._set_for(pc)
        if pc in entry_set:
            del entry_set[pc]
        elif len(entry_set) >= self.ways:
            oldest = next(iter(entry_set))
            del entry_set[oldest]
            self.bump("evictions")
        entry_set[pc] = target

    def resource_estimate(self):
        # Target + tag storage maps naturally onto block RAMs.
        return {"luts": 400, "brams": max(1, self.entries // 2048)}
