"""Branch target buffer: set-associative, LRU within a set.

The paper's default target uses a "4-way and 8K BTB gshare" predictor.
Storage is a flat :class:`~repro.timing.tables.LruTagStore` (the
host-side analogue of the BTB's tag/target block RAMs); replacement
decisions are identical to the per-set dict implementation it replaced.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.timing.module import Module
from repro.timing.tables import LruTagStore


class BTB(Module):
    """Set-associative branch target buffer."""

    def __init__(self, name: str = "btb", entries: int = 8192, ways: int = 4):
        super().__init__(name)
        if entries % ways:
            raise ValueError("entries must be a multiple of ways")
        self.entries = entries
        self.ways = ways
        self.sets = entries // ways
        # Flat LRU-first tag store: tag is the full pc, payload the target.
        self._table = LruTagStore(self.sets, ways)

    def _index(self, pc: int) -> int:
        return (pc >> 1) % self.sets

    def lookup(self, pc: int) -> Optional[int]:
        self.bump("lookups")
        store = self._table
        index = (pc >> 1) % self.sets
        tags = store._tags
        base = index * self.ways
        end = base + store._count[index]
        try:
            slot = tags.index(pc, base, end)
        except ValueError:
            self.bump("misses")
            return None
        payloads = store._payload
        target = payloads[slot]
        # Refresh LRU position.
        last = end - 1
        if slot != last:
            tags[slot:last] = tags[slot + 1:end]
            payloads[slot:last] = payloads[slot + 1:end]
            tags[last] = pc
            payloads[last] = target
        self.bump("hits")
        return target

    def probe_many(self, pcs: Sequence[int]) -> List[Optional[int]]:
        """Batch non-LRU-updating, non-counting target lookups for span
        consumers and probes."""
        sets = self.sets
        return self._table.probe_many([((pc >> 1) % sets, pc) for pc in pcs])

    def install(self, pc: int, target: int) -> None:
        store = self._table
        index = (pc >> 1) % self.sets
        tags = store._tags
        payloads = store._payload
        ways = self.ways
        base = index * ways
        count = store._count[index]
        end = base + count
        try:
            slot = tags.index(pc, base, end)
        except ValueError:
            slot = -1
        if slot >= 0:
            # Refresh to MRU with the (possibly new) target.
            last = end - 1
            if slot != last:
                tags[slot:last] = tags[slot + 1:end]
                payloads[slot:last] = payloads[slot + 1:end]
                tags[last] = pc
            payloads[last] = target
            return
        if count >= ways:
            last = end - 1
            tags[base:last] = tags[base + 1:end]
            payloads[base:last] = payloads[base + 1:end]
            self.bump("evictions")
            slot = last
        else:
            slot = end
            store._count[index] = count + 1
        tags[slot] = pc
        payloads[slot] = target

    def resource_estimate(self):
        # Target + tag storage maps naturally onto block RAMs.
        return {"luts": 400, "brams": max(1, self.entries // 2048)}
