"""Concrete branch predictors: perfect, fixed-accuracy, 2-bit, gshare.

These are the paper's stock predictors ("currently perfect, 2b
saturating and gshare"; the bottleneck analysis also uses count-based
97%/95% predictors).
"""

from __future__ import annotations

import hashlib
from typing import Optional, Tuple

from repro.functional.trace import TraceEntry
from repro.timing.bpred.base import BranchPredictor
from repro.timing.bpred.btb import BTB
from repro.timing.tables import SaturatingCounterTable

_COND = "branch"  # OpSpec.iclass for conditional branches


def _actual(entry: TraceEntry) -> Tuple[bool, int]:
    return entry.taken, entry.next_pc


class PerfectPredictor(BranchPredictor):
    """Oracle: always predicts the architectural outcome.

    The paper notes that perfect-BP studies are possible in FAST but not
    in timing-directed simulators like Asim -- the trace gives the
    functional outcome at fetch time.
    """

    def __init__(self, name: str = "bp_perfect"):
        super().__init__(name)

    def predict(self, entry: TraceEntry) -> Tuple[bool, int]:
        return _actual(entry)

    def update(self, entry: TraceEntry, taken: bool, target: int) -> None:
        pass


class FixedAccuracyPredictor(BranchPredictor):
    """Predicts correctly with a fixed probability (deterministically).

    Correctness of each prediction is a pure hash of ``(pc, IN, seed)``,
    so replays and different simulator drivers see identical outcomes.
    Used for the paper's "97% count-based branch predictor" experiments.
    """

    def __init__(self, accuracy: float, seed: int = 1234, name: str = ""):
        super().__init__(name or "bp_fixed_%d" % round(accuracy * 100))
        if not 0.0 <= accuracy <= 1.0:
            raise ValueError("accuracy must be within [0, 1]")
        self.target_accuracy = accuracy
        self.seed = seed

    def _correct(self, entry: TraceEntry) -> bool:
        digest = hashlib.blake2b(
            b"%d:%d:%d" % (entry.pc, entry.in_no, self.seed), digest_size=4
        ).digest()
        return int.from_bytes(digest, "little") % 1_000_000 < (
            self.target_accuracy * 1_000_000
        )

    def predict(self, entry: TraceEntry) -> Tuple[bool, int]:
        taken, target = _actual(entry)
        if self._correct(entry):
            return taken, target
        if entry.instr.spec.iclass == _COND:
            if taken:
                return False, self.sequential(entry)
            return True, entry.instr.branch_target(entry.pc)
        return False, self.sequential(entry)  # indirect: missed target

    def update(self, entry: TraceEntry, taken: bool, target: int) -> None:
        pass


class TwoBitPredictor(BranchPredictor):
    """Classic 2-bit saturating counters + BTB for targets."""

    def __init__(
        self,
        name: str = "bp_2bit",
        table_size: int = 4096,
        btb: Optional[BTB] = None,
    ):
        super().__init__(name)
        self.table_size = table_size
        self._table = SaturatingCounterTable(table_size)  # weakly taken
        self.btb = btb or BTB()
        self.add_child(self.btb)

    def _index(self, pc: int) -> int:
        return (pc >> 1) % self.table_size

    def _direction(self, pc: int) -> bool:
        return self._table.direction(self._index(pc))

    def predict(self, entry: TraceEntry) -> Tuple[bool, int]:
        iclass = entry.instr.spec.iclass
        if iclass == _COND:
            taken = self._direction(entry.pc)
        else:
            taken = True  # unconditional control
        if not taken:
            return False, self.sequential(entry)
        target = self.btb.lookup(entry.pc)
        if target is None:
            return False, self.sequential(entry)  # no target: fall through
        return True, target

    def update(self, entry: TraceEntry, taken: bool, target: int) -> None:
        if entry.instr.spec.iclass == _COND:
            self._table.update(self._index(entry.pc), taken)
        if taken:
            self.btb.install(entry.pc, target)

    def resource_estimate(self):
        return {"luts": 200, "brams": max(1, self.table_size // 4096)}


class GsharePredictor(BranchPredictor):
    """Gshare: global history XOR PC indexing a 2-bit counter table.

    Matches the paper's default: 8K-entry table, 4-way 8K-entry BTB,
    history trained at commit.
    """

    def __init__(
        self,
        name: str = "bp_gshare",
        table_size: int = 8192,
        history_bits: int = 12,
        btb: Optional[BTB] = None,
    ):
        super().__init__(name)
        self.table_size = table_size
        self.history_bits = history_bits
        self._history = 0
        self._table = SaturatingCounterTable(table_size)
        self.btb = btb or BTB()
        self.add_child(self.btb)

    def _index(self, pc: int) -> int:
        return ((pc >> 1) ^ self._history) % self.table_size

    def predict(self, entry: TraceEntry) -> Tuple[bool, int]:
        iclass = entry.instr.spec.iclass
        if iclass == _COND:
            taken = self._table.direction(self._index(entry.pc))
        else:
            taken = True
        if not taken:
            return False, self.sequential(entry)
        target = self.btb.lookup(entry.pc)
        if target is None:
            return False, self.sequential(entry)
        return True, target

    def update(self, entry: TraceEntry, taken: bool, target: int) -> None:
        if entry.instr.spec.iclass == _COND:
            self._table.update(self._index(entry.pc), taken)
            mask = (1 << self.history_bits) - 1
            self._history = ((self._history << 1) | (1 if taken else 0)) & mask
        if taken:
            self.btb.install(entry.pc, target)

    def resource_estimate(self):
        return {"luts": 300, "brams": max(1, self.table_size // 4096)}


def make_predictor(spec: str) -> BranchPredictor:
    """Factory: ``"perfect"``, ``"gshare"``, ``"2bit"`` or ``"fixed:0.97"``."""
    if spec == "perfect":
        return PerfectPredictor()
    if spec == "gshare":
        return GsharePredictor()
    if spec == "2bit":
        return TwoBitPredictor()
    if spec.startswith("fixed:"):
        return FixedAccuracyPredictor(float(spec.split(":", 1)[1]))
    raise ValueError("unknown predictor spec %r" % spec)
