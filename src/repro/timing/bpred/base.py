"""Branch predictor interface.

The timing model owns branch prediction ("Since most branch predictors
depend on timing information, the branch predictor must be implemented
in the timing model", paper section 2.1).

Determinism contract: predictor state is updated only at **commit**, so
prediction outcomes are a pure function of the committed instruction
stream.  This is what makes the FAST-coupled simulator produce exactly
the same cycle counts as the lock-step reference: wrong-path fetches
consult the predictor but never perturb it.
"""

from __future__ import annotations

from typing import Tuple

from repro.functional.trace import TraceEntry
from repro.timing.module import Module


class BranchPredictor(Module):
    """Direction + target prediction for one control instruction."""

    def predict(self, entry: TraceEntry) -> Tuple[bool, int]:
        """Fetch-time prediction for *entry* (a control instruction).

        Returns ``(taken, next_fetch_pc)``.  The target must always be a
        concrete PC: predictors fall back to the sequential successor
        when they have no target (e.g. a BTB miss).
        """
        raise NotImplementedError

    def update(self, entry: TraceEntry, taken: bool, target: int) -> None:
        """Commit-time training with the architectural outcome."""
        raise NotImplementedError

    @staticmethod
    def sequential(entry: TraceEntry) -> int:
        return (entry.pc + entry.instr.length) & 0xFFFFFFFF

    # -- common statistics helpers --------------------------------------

    def record_outcome(self, correct: bool) -> None:
        self.bump("predictions")
        if correct:
            self.bump("correct")
        else:
            self.bump("mispredictions")

    @property
    def accuracy(self) -> float:
        total = self.counter("predictions")
        if not total:
            return 1.0
        return self.counter("correct") / total
