"""Branch prediction modules for the timing model."""

from repro.timing.bpred.base import BranchPredictor
from repro.timing.bpred.btb import BTB
from repro.timing.bpred.predictors import (
    FixedAccuracyPredictor,
    GsharePredictor,
    PerfectPredictor,
    TwoBitPredictor,
    make_predictor,
)

__all__ = [
    "BTB",
    "BranchPredictor",
    "FixedAccuracyPredictor",
    "GsharePredictor",
    "PerfectPredictor",
    "TwoBitPredictor",
    "make_predictor",
]
