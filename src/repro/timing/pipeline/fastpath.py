"""Fused per-cycle steps for the compiled schedule.

The compiled engine's contract is that every module contributes its
per-cycle behaviour through ``bind_tick`` (see
:mod:`repro.timing.schedule`).  The generic ``Frontend.tick`` and
``Backend.tick`` bodies call through Connector methods, Uop generator
helpers and ``Module.bump`` thousands of times per simulated cycle --
pure Python dispatch overhead that an FPGA would have elaborated away
at compile time.  This module is the software analogue of that static
elaboration: ``bind_frontend_tick`` / ``bind_backend_tick`` return
closures that hoist every stable attribute into locals and inline the
Connector/queue/counter operations, while performing the *identical*
sequence of state mutations, counter bumps, feed calls and predictor
calls as the legacy path.

Bit-identity rules the implementation:

* every ``bump`` becomes an inlined ``d[k] = d.get(k, 0) + 1`` on the
  same module's counter dict, in the same control-flow position;
* attributes that squash paths *rebind* (``Backend.rs``, ``lsq``,
  ``in_flight``, ``on_instr_commit``) are read fresh at each use;
  attributes that are only mutated in place (``rob``,
  ``reg_producer``, connector deques, unit busy lists) are hoisted;
* rare paths (drain, resolve, interrupt redirect, load issue) still
  call the original methods so there is exactly one copy of their
  logic.

Uop templates are immutable after cracking, so their per-µop metadata
(unit class, source/destination register tuples, unpipelined flag) is
computed once and cached on ``Uop.meta`` instead of re-walking the
``sources()`` / ``destinations()`` generators at every dispatch.

A corollary of the bit-identity rules: the fused closures carry **no
observability probes**.  FastWatch invariants over the structures these
closures mutate (ROB/RS occupancy bounds, Connector credits) attach as
cycle listeners on the engine (see the "Invariant step hook" section of
:mod:`repro.timing.schedule`), which run after the cycle's steps on
both engines -- checking mid-step here would observe half-evaluated
cycles and differ between the fused and legacy orderings.
"""

from __future__ import annotations

import operator

from repro.microcode.uop import (
    KIND_TO_UNIT,
    UOP_BRANCH,
    UOP_JUMP,
    UOP_LOAD,
    UOP_STORE,
    Uop,
)
from repro.timing.pipeline.dynamic import (
    DynInstr,
    DynUop,
    U_DONE,
    U_ISSUED,
    U_SQUASHED,
)

# frontend.py and backend.py import this module at top level so the
# FastPart effects analyzer can resolve the factories from their
# bind_tick bodies; the reverse imports below are deferred into the
# functions to break the cycle.


def _uop_meta(uop: Uop):
    """Compute and cache the dispatch/issue metadata for a µop template.

    Layout: ``(unit, is_mem, sources, destinations, kind,
    holds_unit_for_latency, lat)``.
    """
    from repro.timing.pipeline.backend import UNPIPELINED

    kind = uop.kind
    meta = (
        KIND_TO_UNIT[kind],
        kind == UOP_LOAD or kind == UOP_STORE,
        tuple(uop.sources()),
        tuple(uop.destinations()),
        kind,
        uop.op in UNPIPELINED or kind == UOP_LOAD,
        uop.lat,
    )
    uop.meta = meta
    return meta


def bind_frontend_tick(fe):
    """Fused Fetch+Decode step for the compiled schedule."""
    from repro.timing.pipeline.frontend import (
        DRAIN_INTERRUPT,
        F_DRAIN,
        F_FETCH,
        F_HALTED,
        MASK32,
        SERIALIZING,
    )

    backend = fe.backend
    feed = fe.feed
    feed_peek = feed.peek
    # Minimal feed stubs (resource estimation) only implement peek();
    # consume is reached only after peek returns an entry.
    feed_consume = getattr(feed, "consume", None)
    microcode = fe.microcode
    crack_slow = fe._crack
    predictor_sink = fe._predict
    begin_drain = fe.begin_drain
    itlb_lookup = fe.itlb.lookup
    hierarchy = fe.hierarchy
    access_instr = hierarchy.access_instr
    l1_hit_latency = hierarchy.geometry.l1_hit_latency
    line_shift = hierarchy.l1i._line_shift
    fetch_width = fe.fetch_width
    max_nested = fe.max_nested_branches

    fec = fe._counters
    fec_get = fec.get

    fq = fe.fetch_q
    fq_queue = fq._queue
    fq_counters = fq._counters
    fq_get = fq_counters.get
    fq_in_tp = fq.input_throughput
    fq_out_tp = fq.output_throughput
    fq_max = fq.max_transactions
    fq_lat = fq.min_latency

    dq = fe.decode_q
    dq_queue = dq._queue
    dq_counters = dq._counters
    dq_get = dq_counters.get
    dq_in_tp = dq.input_throughput
    dq_max = dq.max_transactions
    dq_lat = dq.min_latency

    rob = backend.rob

    def step(cycle: int) -> None:
        # Connector.tick x2 (budget reset; the schedule's phase-0 tick
        # already ran, but the legacy engine re-ticks inside
        # Frontend.tick, so the fused step does too).
        fq._now = cycle
        fq._pushed_this_cycle = 0
        fq._popped_this_cycle = 0
        dq._now = cycle
        dq._pushed_this_cycle = 0
        dq._popped_this_cycle = 0
        fe.idle_this_cycle = False

        # ---- decode: fetch_q -> crack -> decode_q ----------------------
        if fe._crack_memo_version != microcode.version:
            fe._crack_memo.clear()
            fe._crack_memo_prev.clear()
            fe._crack_memo_version = microcode.version
        memo = fe._crack_memo  # rebound on generation rotation
        n_dec = 0
        for _ in range(fetch_width):
            if dq._pushed_this_cycle >= dq_in_tp or len(dq_queue) >= dq_max:
                fec["decode_stalls"] = fec_get("decode_stalls", 0) + 1
                break
            # fetch_q.pop()
            if (
                fq._popped_this_cycle >= fq_out_tp
                or not fq_queue
                or fq_queue[0][0] > cycle
            ):
                break
            fq._popped_this_cycle += 1
            di = fq_queue.popleft()[1]
            entry = di.entry
            instr = entry.instr
            if instr.spec.iclass == "string":
                key = (id(instr), entry.iterations)
            else:
                key = id(instr)
            cached = memo.get(key)
            if cached is not None and cached[0] is instr:
                uops = cached[1]
            else:
                uops = crack_slow(entry, instr, key)
                memo = fe._crack_memo
            di.uops_template = uops
            # decode_q.push(di) -- can_push verified at loop top
            dq_queue.append((cycle + dq_lat, di))
            dq._pushed_this_cycle += 1
            n_dec += 1
            if dq._trace_log is not None and (
                dq._trigger is None or dq._trigger(cycle, di)
            ):
                if len(dq._trace_log) < dq._trace_limit:
                    dq._trace_log.append((cycle, di))
        if n_dec:
            # One flush per cycle: pops == pushes == decoded here.
            fq_counters["pops"] = fq_get("pops", 0) + n_dec
            dq_counters["pushes"] = dq_get("pushes", 0) + n_dec
            fec["decoded"] = fec_get("decoded", 0) + n_dec

        # ---- fetch: feed -> predict -> fetch_q -------------------------
        mode = fe.mode
        if mode == F_HALTED:
            fec["halt_stall_cycles"] = fec_get("halt_stall_cycles", 0) + 1
            return
        if mode == F_DRAIN:
            fec["drain_cycles"] = fec_get("drain_cycles", 0) + 1
            key = "drain_cycles_" + fe.drain_reason
            fec[key] = fec_get(key, 0) + 1
            if not rob:
                fe.mode = F_FETCH
                fe.expected_pc = fe.resume_pc
                fe.resume_pc = None
            return
        if fe.stall_until > cycle:
            fec["icache_stall_cycles"] = fec_get("icache_stall_cycles", 0) + 1
            return

        fetched = 0
        n_wp = 0
        while fetched < fetch_width:
            if fq._pushed_this_cycle >= fq_in_tp or len(fq_queue) >= fq_max:
                if fetched == 0:
                    fec["fetchq_full_cycles"] = (
                        fec_get("fetchq_full_cycles", 0) + 1
                    )
                break
            entry = feed_peek()
            if entry is None:
                if fetched == 0:
                    fe.idle_this_cycle = True
                break
            expected_pc = fe.expected_pc
            if expected_pc is not None and entry.pc != expected_pc:
                if entry.handler_entry:
                    begin_drain(entry.pc, DRAIN_INTERRUPT)
                    fec["interrupt_redirects"] = (
                        fec_get("interrupt_redirects", 0) + 1
                    )
                else:
                    raise AssertionError(
                        "feed/fetch divergence: expected %#x got %#x (IN %d)"
                        % (expected_pc, entry.pc, entry.in_no)
                    )
                break
            instr = entry.instr
            line = entry.ppc >> line_shift
            if line != fe._current_line:
                if fetched > 0:
                    break
                itlb_lookup(entry.pc)
                latency = access_instr(entry.ppc)
                fe._current_line = line
                if latency > l1_hit_latency:
                    fe.stall_until = cycle + latency
                    fec["icache_miss_stalls"] = (
                        fec_get("icache_miss_stalls", 0) + 1
                    )
                    break
            is_control = instr.spec.is_control
            if is_control and fe.branches_outstanding >= max_nested:
                fec["branch_limit_stalls"] = (
                    fec_get("branch_limit_stalls", 0) + 1
                )
                break

            feed_consume()
            di = DynInstr(entry, cycle, wrong_path=entry.wrong_path)
            if is_control:
                fe.branches_outstanding += 1
                predictor_sink(di)
            else:
                fe.expected_pc = entry.next_pc
            # is_barrier(entry), inlined
            if (
                entry.exception
                or instr.name in SERIALIZING
                or (
                    not is_control
                    and entry.next_pc != (entry.pc + instr.length) & MASK32
                )
            ):
                di.is_barrier = True
                fe.mode = F_HALTED
                fec["barrier_fetches"] = fec_get("barrier_fetches", 0) + 1
            # fetch_q.push(di) -- can_push verified at loop top
            fq_queue.append((cycle + fq_lat, di))
            fq._pushed_this_cycle += 1
            if fq._trace_log is not None and (
                fq._trigger is None or fq._trigger(cycle, di)
            ):
                if len(fq._trace_log) < fq._trace_limit:
                    fq._trace_log.append((cycle, di))
            if entry.wrong_path:
                n_wp += 1
            fetched += 1
            if di.is_barrier or is_control:
                break
        if fetched:
            # One flush per cycle: pushes == fetched here.
            fq_counters["pushes"] = fq_get("pushes", 0) + fetched
            fec["fetched"] = fec_get("fetched", 0) + fetched
            if n_wp:
                fec["fetched_wrong_path"] = (
                    fec_get("fetched_wrong_path", 0) + n_wp
                )

    return step


def bind_backend_tick(be):
    """Fused writeback->commit->issue->dispatch step for the compiled
    schedule."""
    from repro.timing.pipeline.frontend import (
        DRAIN_EXCEPTION,
        DRAIN_SERIALIZE,
    )

    rob = be.rob
    reg_producer = be.reg_producer
    units = be._units
    bec = be._counters
    bec_get = bec.get
    frontend = be.frontend
    begin_drain = frontend.begin_drain
    predictor = frontend.predictor
    predictor_update = predictor.update
    record_outcome = predictor.record_outcome
    hierarchy = be.hierarchy
    access_data = hierarchy.access_data
    resolve_control = be._resolve_control
    issue_load = be._issue_load
    # Minimal feed stubs (resource estimation) only implement peek();
    # commit is reached only once an instruction flows through.
    feed_commit = getattr(be.feed, "commit", None)

    result_bus_width = be.result_bus_width
    commit_width = be.commit_width
    dispatch_width = be.dispatch_width
    rob_entries = be.rob_entries
    rs_entries = be.rs_entries
    lsq_entries = be.lsq_entries

    dq = frontend.decode_q
    dq_queue = dq._queue
    dq_counters = dq._counters
    dq_get = dq_counters.get
    dq_out_tp = dq.output_throughput
    by_seq = operator.attrgetter("seq")

    def step(cycle: int) -> None:
        # ---- writeback -------------------------------------------------
        if be.in_flight:
            finishing = [u for u in be.in_flight if u.done_cycle <= cycle]
            if finishing:
                finishing.sort(key=by_seq)
                overflow = len(finishing) - result_bus_width
                if overflow > 0:
                    for uop in finishing[result_bus_width:]:
                        uop.done_cycle = cycle + 1
                    bec["result_bus_conflicts"] = (
                        bec_get("result_bus_conflicts", 0) + overflow
                    )
                n_wb = 0
                for uop in finishing[:result_bus_width]:
                    if uop.state == U_SQUASHED:
                        continue
                    # in_flight is REBOUND by squash paths reachable via
                    # _resolve_control below: read it fresh.
                    be.in_flight.remove(uop)
                    uop.state = U_DONE
                    uop.done_cycle = cycle
                    n_wb += 1
                    kind = uop.uop.kind
                    if kind == UOP_BRANCH or kind == UOP_JUMP:
                        resolve_control(uop, cycle)
                if n_wb:
                    bec["writebacks"] = bec_get("writebacks", 0) + n_wb
                    # Producers just completed: waiting consumers may
                    # have become dep-ready, so the issue scan must run.
                    be._rs_quiet = False

        # ---- commit ----------------------------------------------------
        committed = 0
        while rob and committed < commit_width:
            uop = rob[0]
            if uop.state != U_DONE or uop.done_cycle >= cycle:
                break
            rob.popleft()
            committed += 1
            be.committed_uops += 1
            be.last_commit_cycle = cycle
            di = uop.instr
            kind = uop.uop.kind
            if kind == UOP_STORE:
                access_data(uop.mem_paddr, is_write=True)
                lsq = be.lsq
                if uop in lsq:
                    lsq.remove(uop)
            elif kind == UOP_LOAD:
                lsq = be.lsq
                if uop in lsq:
                    lsq.remove(uop)
            di.uops_committed += 1
            if uop.is_last:
                # Backend._commit_instruction, inlined.
                entry = di.entry
                be.committed_instructions += 1
                bec["instructions"] = bec_get("instructions", 0) + 1
                if entry.instr.spec.is_control:
                    predictor_update(entry, entry.taken, entry.next_pc)
                    record_outcome(not di.mispredicted)
                    bec["branches"] = bec_get("branches", 0) + 1
                    if di.mispredicted:
                        bec["mispredicts"] = bec_get("mispredicts", 0) + 1
                if entry.exception:
                    bec["exception_redirects"] = (
                        bec_get("exception_redirects", 0) + 1
                    )
                feed_commit(entry.in_no)
                if di.is_barrier:
                    begin_drain(
                        entry.next_pc,
                        DRAIN_EXCEPTION if entry.exception
                        else DRAIN_SERIALIZE,
                    )
                hook = be.on_instr_commit
                if hook is not None:
                    hook(di, cycle)
        if committed:
            bec["commit_cycles"] = bec_get("commit_cycles", 0) + 1

        # ---- issue -----------------------------------------------------
        rs = be.rs  # rebound only by squashes, which cannot happen here
        if rs and not be._rs_quiet:
            issued = None
            n_issues = 0
            n_ready = 0
            for uop in rs:
                # Readiness before unit availability: both checks are
                # pure, so the order cannot change which µops issue, and
                # a stalled consumer (the common case when a load is
                # outstanding) fails on its first dependency instead of
                # scanning the functional units.
                ready = True
                for dep in uop.deps:
                    dep_state = dep.state
                    if dep_state == U_SQUASHED:
                        continue
                    if dep_state != U_DONE or dep.done_cycle > cycle:
                        ready = False
                        break
                if not ready:
                    continue
                n_ready += 1
                template = uop.uop
                meta = template.meta
                if meta is None:
                    meta = _uop_meta(template)
                unit_list = units[meta[0]]
                index = -1
                for i, busy_until in enumerate(unit_list):
                    if busy_until <= cycle:
                        index = i
                        break
                if index < 0:
                    continue
                kind = meta[4]
                if kind == UOP_LOAD:
                    latency = issue_load(uop)
                elif kind == UOP_STORE:
                    latency = 1
                else:
                    latency = meta[6]
                uop.state = U_ISSUED
                uop.done_cycle = cycle + latency
                uop.fu = (meta[0], index)
                if meta[5]:
                    unit_list[index] = cycle + latency
                else:
                    unit_list[index] = cycle + 1
                be.in_flight.append(uop)
                if issued is None:
                    issued = [uop]
                else:
                    issued.append(uop)
                n_issues += 1
            if issued is not None:
                for uop in issued:
                    rs.remove(uop)
                bec["issues"] = bec_get("issues", 0) + n_issues
            elif n_ready == 0:
                # Every entry failed the dependency check.  Until a
                # writeback, squash, or dispatch changes readiness the
                # scan would find the same answer -- skip it.  (Unit
                # availability is irrelevant: no uop got that far.)
                be._rs_quiet = True

        # ---- dispatch --------------------------------------------------
        budget = dispatch_width
        n_pops = 0
        while budget > 0:
            dispatching = be._dispatching
            if dispatching is None:
                # decode_q.pop()
                if (
                    dq._popped_this_cycle >= dq_out_tp
                    or not dq_queue
                    or dq_queue[0][0] > cycle
                ):
                    break
                dq._popped_this_cycle += 1
                n_pops += 1
                di = dq_queue.popleft()[1]
                if di.squashed:
                    continue
                if not di.uops_template:
                    continue
                dispatching = (di, 0)
                be._dispatching = dispatching
            di, index = dispatching
            if di.squashed:
                be._dispatching = None
                continue
            template = di.uops_template
            uop = template[index]
            if len(rob) >= rob_entries:
                bec["rob_full_stalls"] = bec_get("rob_full_stalls", 0) + 1
                break
            if len(be.rs) >= rs_entries:
                bec["rs_full_stalls"] = bec_get("rs_full_stalls", 0) + 1
                break
            meta = uop.meta
            if meta is None:
                meta = _uop_meta(uop)
            if meta[1] and len(be.lsq) >= lsq_entries:
                bec["lsq_full_stalls"] = bec_get("lsq_full_stalls", 0) + 1
                break
            be._seq = seq = be._seq + 1
            is_last = index + 1 == len(template)
            dyn = DynUop(seq, di, uop, is_last=is_last)
            deps = dyn.deps
            for reg in meta[2]:
                producer = reg_producer.get(reg)
                if producer is not None and producer.state != U_SQUASHED:
                    deps.append(producer)
            for reg in meta[3]:
                reg_producer[reg] = dyn
            di.uops.append(dyn)
            rob.append(dyn)
            be.rs.append(dyn)
            if meta[1]:
                be.lsq.append(dyn)
            budget -= 1
            if is_last:
                be._dispatching = None
            else:
                be._dispatching = (di, index + 1)
        if n_pops:
            dq_counters["pops"] = dq_get("pops", 0) + n_pops
        dispatched = dispatch_width - budget
        if dispatched:
            bec["dispatched_uops"] = (
                bec_get("dispatched_uops", 0) + dispatched
            )
            # Fresh uops may be ready immediately (operands already in
            # the register file): rescan next cycle.
            be._rs_quiet = False

        # ---- rename-map reset ------------------------------------------
        if not rob:
            reg_producer.clear()

    return step
