"""Dynamic (in-flight) instruction and µop records."""

from __future__ import annotations

from typing import List

from repro.functional.trace import TraceEntry
from repro.microcode.uop import Uop

# µop lifecycle states.
U_WAITING = 0  # in the reservation station, operands pending
U_ISSUED = 1  # executing on a functional unit
U_DONE = 2  # result written back
U_SQUASHED = 3


class DynInstr:
    """One fetched dynamic instruction (maybe wrong-path)."""

    __slots__ = (
        "entry",
        "fetch_cycle",
        "uops",
        "uops_template",
        "uops_committed",
        "wrong_path",
        "mispredicted",
        "predicted_pc",
        "is_barrier",
        "resolved",
        "squashed",
    )

    def __init__(self, entry: TraceEntry, fetch_cycle: int, wrong_path: bool):
        self.entry = entry
        self.fetch_cycle = fetch_cycle
        self.uops: List["DynUop"] = []
        self.uops_template = ()  # set by decode, consumed by dispatch
        self.uops_committed = 0
        self.wrong_path = wrong_path
        self.mispredicted = False
        self.predicted_pc = -1
        self.is_barrier = False
        self.resolved = False
        self.squashed = False

    @property
    def is_control(self) -> bool:
        return self.entry.instr.spec.is_control

    @property
    def in_no(self) -> int:
        return self.entry.in_no

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "DynInstr(IN=%d %s%s%s)" % (
            self.entry.in_no,
            self.entry.instr.name,
            " WP" if self.wrong_path else "",
            " MISP" if self.mispredicted else "",
        )


class DynUop:
    """One in-flight µop."""

    __slots__ = (
        "seq",
        "instr",
        "uop",
        "state",
        "deps",
        "done_cycle",
        "is_last",
        "mem_paddr",
        "fu",
    )

    def __init__(self, seq: int, instr: DynInstr, uop: Uop, is_last: bool):
        self.seq = seq
        self.instr = instr
        self.uop = uop
        self.state = U_WAITING
        self.deps: List["DynUop"] = []
        self.done_cycle = -1
        self.is_last = is_last
        self.mem_paddr = instr.entry.mem_paddr if uop.is_mem else -1
        self.fu = None  # (unit_class, index) while issued

    def ready(self, cycle: int) -> bool:
        """All producers have written back by *cycle*."""
        for dep in self.deps:
            if dep.state == U_SQUASHED:
                continue  # producer squashed: value comes from the map
            if dep.state != U_DONE or dep.done_cycle > cycle:
                return False
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "DynUop(#%d %s/%s st=%d)" % (
            self.seq,
            self.uop.kind,
            self.uop.op,
            self.state,
        )
