"""Back end of the timing model: Rename/ROB, reservation stations,
functional units, the load/store queue and commit.

Microarchitecture matches the paper's Figure 3 target: a shared pool of
reservation stations feeding n general-purpose ALUs, b branch units,
one load/store unit and an FPU pool, writing back over a result bus
into a ROB that commits in order.  Caches are blocking; resolving a
misprediction flushes the pipeline through the ROB (stated prototype
limitations we reproduce deliberately).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Tuple

from repro.microcode.uop import (
    UOP_BRANCH,
    UOP_JUMP,
    UOP_LOAD,
    UOP_STORE,
    UNIT_ALU,
    UNIT_BRU,
    UNIT_FPU,
    UNIT_LSU,
)
from repro.timing.cache.hierarchy import CacheHierarchy
from repro.timing.module import Module
from repro.timing.pipeline.dynamic import (
    DynInstr,
    DynUop,
    U_DONE,
    U_ISSUED,
    U_SQUASHED,
)
from repro.timing.pipeline.fastpath import bind_backend_tick
from repro.timing.pipeline.frontend import (
    DRAIN_EXCEPTION,
    DRAIN_MISPREDICT,
    DRAIN_SERIALIZE,
    Frontend,
)

# µop ops that occupy their unit for the full latency (not pipelined).
UNPIPELINED = frozenset({"div", "fdiv", "fsqrt"})


class Backend(Module):
    # The commit hook is an intentional shared-state seam (FastPart):
    # TimingModel rebinds it from the commit-listener list, and every
    # subscriber is observability-side (statistics sampler, host
    # models) -- commit never reads anything back through it.
    shard_seams = {
        "on_instr_commit": "observability fan-out hook rebound by "
                           "TimingModel._rebind_commit_hook",
    }

    def __init__(
        self,
        frontend: Frontend,
        hierarchy: CacheHierarchy,
        feed,
        rob_entries: int = 64,
        rs_entries: int = 16,
        lsq_entries: int = 16,
        num_alus: int = 8,
        num_brus: int = 2,
        num_fpus: int = 2,
        num_lsus: int = 1,
        dispatch_width: int = 4,
        commit_width: int = 2,
        result_bus_width: int = 4,
    ):
        super().__init__("backend")
        self.frontend = frontend
        self.hierarchy = hierarchy
        self.feed = feed
        self.rob_entries = rob_entries
        self.rs_entries = rs_entries
        self.lsq_entries = lsq_entries
        self.dispatch_width = dispatch_width
        self.commit_width = commit_width
        self.result_bus_width = result_bus_width

        self.rob: deque = deque()
        self.rs: List[DynUop] = []
        self.lsq: List[DynUop] = []
        self.in_flight: List[DynUop] = []
        self.reg_producer: Dict[int, DynUop] = {}
        self._units: Dict[str, List[int]] = {  # busy-until cycle per unit
            UNIT_ALU: [0] * num_alus,
            UNIT_BRU: [0] * num_brus,
            UNIT_FPU: [0] * num_fpus,
            UNIT_LSU: [0] * num_lsus,
        }
        self._seq = 0
        self._dispatching: Optional[Tuple[DynInstr, int]] = None
        # True while the reservation station is known to hold no
        # dep-ready uops.  Readiness only changes on writeback, squash,
        # or dispatch (a U_DONE producer's done_cycle never exceeds the
        # cycle that marked it done), so the compiled issue loop can
        # skip its scan until one of those events clears the flag.
        self._rs_quiet = False
        self.committed_instructions = 0
        self.committed_uops = 0
        self.last_commit_cycle = 0
        self.on_instr_commit = None  # optional (dyn_instr, cycle) hook
        # FastWatch structural invariants (registered here, at
        # construction -- FastLint rule IV001).  The armed bounds are
        # observation-only copies of the configured capacities: tests
        # shrink them to force a deterministic violation without
        # perturbing the simulation itself.
        self._rob_limit = rob_entries
        self._rs_limit = rs_entries
        self.new_invariant(
            "rob_occupancy_bound",
            check=lambda: len(self.rob) <= self._rob_limit,
            expr="len(m.rob) <= m._rob_limit",
            hint="idle-stable",
            probe=lambda: float(len(self.rob)),
            desc="ROB occupancy never exceeds its configured entry count")
        self.new_invariant(
            "rs_occupancy_bound",
            check=lambda: len(self.rs) <= self._rs_limit,
            expr="len(m.rs) <= m._rs_limit",
            hint="idle-stable",
            probe=lambda: float(len(self.rs)),
            desc="reservation-station occupancy never exceeds its "
                 "configured entry count")

    # -- queries ---------------------------------------------------------

    @property
    def rob_empty(self) -> bool:
        return not self.rob

    def count_unresolved_controls(self) -> int:
        """Distinct in-flight control instructions not yet resolved."""
        seen = set()
        count = 0
        for uop in self.rob:
            di = uop.instr
            if id(di) in seen:
                continue
            seen.add(id(di))
            if di.is_control and not di.resolved and not di.squashed:
                count += 1
        return count

    @property
    def rob_occupancy(self) -> int:
        return len(self.rob)

    # -- per-cycle operation: writeback -> commit -> issue -> dispatch ----

    def bind_tick(self):
        """Pre-bound per-cycle step for the compiled schedule: the fused
        writeback->commit->issue->dispatch closure from
        repro.timing.pipeline.fastpath (same mutation sequence as
        ``tick``, queue/counter operations inlined)."""
        return bind_backend_tick(self)

    def tick(self, cycle: int) -> None:
        self._writeback(cycle)
        self._commit(cycle)
        self._issue(cycle)
        self._dispatch(cycle)
        if not self.rob:
            # Empty ROB: every architectural value is in the register
            # file, so the rename map resets (this is why flushing
            # through the ROB makes recovery simple -- and slow).
            self.reg_producer.clear()

    # -- writeback ---------------------------------------------------------

    def _writeback(self, cycle: int) -> None:
        if not self.in_flight:
            return
        finishing = [u for u in self.in_flight if u.done_cycle <= cycle]
        if not finishing:
            return
        finishing.sort(key=lambda u: u.seq)
        granted = finishing[: self.result_bus_width]
        for uop in finishing[self.result_bus_width :]:
            uop.done_cycle = cycle + 1  # result bus conflict: retry
            self.bump("result_bus_conflicts")
        for uop in granted:
            if uop.state == U_SQUASHED:
                continue  # squashed by a resolution earlier this cycle
            self.in_flight.remove(uop)
            uop.state = U_DONE
            uop.done_cycle = cycle
            self.bump("writebacks")
            if uop.uop.kind in (UOP_BRANCH, UOP_JUMP):
                self._resolve_control(uop, cycle)

    def _resolve_control(self, uop: DynUop, cycle: int) -> None:
        di = uop.instr
        if di.resolved or di.squashed:
            return
        di.resolved = True
        self.frontend.branch_resolved()
        if di.mispredicted and not di.wrong_path:
            self.bump("mispredict_resolutions")
            self.squash_younger(di, cycle)
            self.feed.resolve_wrong_path(di.in_no, di.entry.next_pc)
            self.frontend.begin_drain(di.entry.next_pc, DRAIN_MISPREDICT)

    # -- commit ----------------------------------------------------------------

    def _commit(self, cycle: int) -> None:
        committed = 0
        while self.rob and committed < self.commit_width:
            uop: DynUop = self.rob[0]
            if uop.state != U_DONE or uop.done_cycle >= cycle:
                break
            self.rob.popleft()
            committed += 1
            self.committed_uops += 1
            self.last_commit_cycle = cycle
            di = uop.instr
            if uop.uop.kind == UOP_STORE:
                self.hierarchy.access_data(uop.mem_paddr, is_write=True)
                if uop in self.lsq:
                    self.lsq.remove(uop)
            elif uop.uop.kind == UOP_LOAD and uop in self.lsq:
                self.lsq.remove(uop)
            di.uops_committed += 1
            if uop.is_last:
                self._commit_instruction(di, cycle)
        if committed:
            self.bump("commit_cycles")

    def _commit_instruction(self, di: DynInstr, cycle: int) -> None:
        entry = di.entry
        self.committed_instructions += 1
        self.bump("instructions")
        if di.is_control:
            self.frontend.predictor.update(entry, entry.taken, entry.next_pc)
            self.frontend.predictor.record_outcome(not di.mispredicted)
            self.bump("branches")
            if di.mispredicted:
                self.bump("mispredicts")
        if entry.exception:
            self.bump("exception_redirects")
        self.feed.commit(entry.in_no)
        if di.is_barrier:
            reason = DRAIN_EXCEPTION if entry.exception else DRAIN_SERIALIZE
            self.frontend.begin_drain(entry.next_pc, reason)
        if self.on_instr_commit is not None:
            self.on_instr_commit(di, cycle)

    # -- issue ---------------------------------------------------------------------

    def _free_unit(self, unit: str, cycle: int) -> int:
        for index, busy_until in enumerate(self._units[unit]):
            if busy_until <= cycle:
                return index
        return -1

    def _issue(self, cycle: int) -> None:
        if not self.rs:
            return
        issued: List[DynUop] = []
        for uop in self.rs:
            unit = uop.uop.unit
            index = self._free_unit(unit, cycle)
            if index < 0:
                continue
            if not uop.ready(cycle):
                continue
            latency = uop.uop.lat
            if uop.uop.kind == UOP_LOAD:
                latency = self._issue_load(uop)
            elif uop.uop.kind == UOP_STORE:
                latency = 1  # cache write happens at commit
            uop.state = U_ISSUED
            uop.done_cycle = cycle + latency
            uop.fu = (unit, index)
            if uop.uop.op in UNPIPELINED or uop.uop.kind == UOP_LOAD:
                self._units[unit][index] = cycle + latency
            else:
                self._units[unit][index] = cycle + 1
            self.in_flight.append(uop)
            issued.append(uop)
            self.bump("issues")
        for uop in issued:
            self.rs.remove(uop)

    def _issue_load(self, uop: DynUop) -> int:
        """Load execution: store-to-load forwarding, else the blocking
        data-cache hierarchy."""
        word = uop.mem_paddr & ~3
        for other in self.lsq:
            if other.seq >= uop.seq:
                break
            if (
                other.uop.kind == UOP_STORE
                and other.mem_paddr >= 0
                and (other.mem_paddr & ~3) == word
            ):
                self.bump("store_forwards")
                return self.hierarchy.geometry.l1_hit_latency
        if uop.mem_paddr < 0:
            return self.hierarchy.geometry.l1_hit_latency
        latency = self.hierarchy.access_data(uop.mem_paddr)
        if latency > self.hierarchy.geometry.l1_hit_latency:
            self.bump("load_misses")
        return latency

    # -- dispatch (rename + ROB/RS/LSQ allocation) ------------------------------------

    def _dispatch(self, cycle: int) -> None:
        budget = self.dispatch_width
        while budget > 0:
            if self._dispatching is None:
                di = self.frontend.decode_q.pop()
                if di is None:
                    return
                if di.squashed:
                    continue
                if not di.uops_template:
                    # Degenerate (shouldn't happen: crack returns >= 1 µop)
                    continue
                self._dispatching = (di, 0)
            di, index = self._dispatching
            if di.squashed:
                self._dispatching = None
                continue
            template = di.uops_template
            uop = template[index]
            if len(self.rob) >= self.rob_entries:
                self.bump("rob_full_stalls")
                return
            if len(self.rs) >= self.rs_entries:
                self.bump("rs_full_stalls")
                return
            if uop.is_mem and len(self.lsq) >= self.lsq_entries:
                self.bump("lsq_full_stalls")
                return
            self._seq += 1
            dyn = DynUop(self._seq, di, uop, is_last=(index + 1 == len(template)))
            for reg in uop.sources():
                producer = self.reg_producer.get(reg)
                if producer is not None and producer.state != U_SQUASHED:
                    dyn.deps.append(producer)
            for reg in uop.destinations():
                self.reg_producer[reg] = dyn
            di.uops.append(dyn)
            self.rob.append(dyn)
            self.rs.append(dyn)
            if uop.is_mem:
                self.lsq.append(dyn)
            self.bump("dispatched_uops")
            budget -= 1
            if index + 1 == len(template):
                self._dispatching = None
            else:
                self._dispatching = (di, index + 1)

    # -- squash -----------------------------------------------------------------------

    def squash_all(self, cycle: int) -> None:
        """Squash every in-flight µop (asynchronous-interrupt flush)."""
        squashed_controls = 0
        seen = set()
        while self.rob:
            uop: DynUop = self.rob.pop()
            uop.state = U_SQUASHED
            victim = uop.instr
            if id(victim) not in seen:
                seen.add(id(victim))
                if not victim.squashed:
                    victim.squashed = True
                    if victim.is_control and not victim.resolved:
                        squashed_controls += 1
            self.bump("squashed_uops")
        self.rs = []
        self.lsq = []
        for uop in self.in_flight:
            uop.state = U_SQUASHED
            if uop.fu is not None:
                unit, index = uop.fu
                self._units[unit][index] = cycle
        self.in_flight = []
        self.reg_producer.clear()
        self._dispatching = None
        self._rs_quiet = False
        self.frontend.branches_squashed(squashed_controls)

    def squash_younger(self, di: DynInstr, cycle: int) -> None:
        """Remove every µop younger than *di* (mis-speculation recovery)."""
        boundary = di.uops[-1].seq
        squashed_controls = 0
        seen_instrs = set()
        while self.rob and self.rob[-1].seq > boundary:
            uop: DynUop = self.rob.pop()
            uop.state = U_SQUASHED
            victim = uop.instr
            if id(victim) not in seen_instrs:
                seen_instrs.add(id(victim))
                if not victim.squashed:
                    victim.squashed = True
                    if victim.is_control and not victim.resolved:
                        squashed_controls += 1
            self.bump("squashed_uops")
        self.rs = [u for u in self.rs if u.seq <= boundary]
        self.lsq = [u for u in self.lsq if u.seq <= boundary]
        for uop in self.in_flight:
            if uop.seq > boundary:
                uop.state = U_SQUASHED
                if uop.fu is not None:
                    # Release the (possibly long-latency) unit it held.
                    unit, index = uop.fu
                    self._units[unit][index] = cycle
        self.in_flight = [u for u in self.in_flight if u.seq <= boundary]
        if self._dispatching is not None:
            # Dispatch is in-order, so anything occupying the partial-
            # dispatch slot was fetched after the resolving branch (which
            # is already in the ROB) -- it is wrong-path by construction,
            # even if none of its µops made it into the ROB yet.
            pending_di = self._dispatching[0]
            if not pending_di.squashed:
                pending_di.squashed = True
                if pending_di.is_control and not pending_di.resolved:
                    squashed_controls += 1
            self._dispatching = None
        self._rs_quiet = False
        self.frontend.branches_squashed(squashed_controls)
