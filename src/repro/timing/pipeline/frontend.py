"""Front end of the timing model: Fetch and Decode.

Fetch follows the functional-path stream from the instruction feed,
running it through the branch predictor, the iTLB and the L1 I-cache.
When a prediction disagrees with the functional outcome the feed is
redirected down the predicted (wrong) path -- the FAST mis-speculation
protocol of Figure 2 -- and fetch continues with wrong-path entries
until the branch resolves in the back end.

Serializing instructions (exceptions, IRET, HALT, ...) are fetch
barriers: fetch stops until they commit, then the pipeline refills from
their successor.  Asynchronous interrupt deliveries appear as
handler-entry trace entries at an unexpected PC and drain the pipeline
the same way.
"""

from __future__ import annotations

from typing import Optional

from repro.functional.trace import TraceEntry
from repro.microcode.table import MicrocodeTable
from repro.timing.bpred.base import BranchPredictor
from repro.timing.cache.hierarchy import CacheHierarchy
from repro.timing.cache.itlb import ITLBModel
from repro.timing.connector import Connector
from repro.timing.feed import InstructionFeed
from repro.timing.module import Module
from repro.timing.pipeline.dynamic import DynInstr
from repro.timing.pipeline.fastpath import bind_frontend_tick

MASK32 = 0xFFFFFFFF

# Fetch modes.
F_FETCH = 0
F_DRAIN = 1  # waiting for the ROB to empty before a redirect
F_HALTED = 2  # a barrier instruction is in flight

SERIALIZING = frozenset(
    {"HALT", "IRET", "SYSCALL", "INT", "TLBFLUSH", "STI", "CLI"}
)

DRAIN_MISPREDICT = "mispredict"
DRAIN_EXCEPTION = "exception"
DRAIN_INTERRUPT = "interrupt"
DRAIN_SERIALIZE = "serialize"

# Decode-stage crack memo bound (per generation).  Identity keys pin
# their Instr objects; eviction is generational second-chance: when the
# live generation fills it becomes the "previous" generation, and
# entries re-used from there get promoted back instead of re-cracked.
# Cold entries age out after at most two rotations.  Deterministic:
# rotation depends only on the decode stream, never on wall time.
CRACK_MEMO_LIMIT = 16384


def is_barrier(entry: TraceEntry) -> bool:
    """Serializing instructions stop fetch until they commit."""
    if entry.exception:
        return True
    if entry.instr.name in SERIALIZING:
        return True
    if (
        not entry.instr.spec.is_control
        and entry.next_pc != (entry.pc + entry.instr.length) & MASK32
    ):
        return True
    return False


class Frontend(Module):
    """Fetch + Decode + branch prediction."""

    def __init__(
        self,
        feed: InstructionFeed,
        predictor: BranchPredictor,
        hierarchy: CacheHierarchy,
        microcode: MicrocodeTable,
        fetch_width: int = 2,
        max_nested_branches: int = 4,
        fetch_buffer: int = 8,
        decode_buffer: int = 8,
    ):
        super().__init__("frontend")
        self.feed = feed
        self.predictor = predictor
        self.hierarchy = hierarchy
        self.microcode = microcode
        self.fetch_width = fetch_width
        self.max_nested_branches = max_nested_branches
        self.itlb = ITLBModel()
        self.add_child(self.itlb)
        self.add_child(predictor)
        self.fetch_q = Connector(
            "fetch2decode",
            input_throughput=fetch_width,
            output_throughput=fetch_width,
            min_latency=1,
            max_transactions=fetch_buffer,
        )
        self.decode_q = Connector(
            "decode2dispatch",
            input_throughput=fetch_width,
            output_throughput=fetch_width,
            min_latency=1,
            max_transactions=decode_buffer,
        )
        # Fetch both fills and drains fetch_q (fetch -> decode happen
        # inside this Module); decode2dispatch is drained by the back
        # end, which TimingModel binds once it exists.
        self.fetch_q.bind_endpoints(producer=self, consumer=self)
        self.decode_q.bind_endpoints(producer=self)
        self.add_child(self.fetch_q)
        self.add_child(self.decode_q)

        self.mode = F_FETCH
        self.expected_pc: Optional[int] = None  # None: follow the stream
        self.resume_pc: Optional[int] = None
        self.drain_reason = ""
        self.stall_until = 0
        self.branches_outstanding = 0
        self._current_line = -1
        self.idle_this_cycle = False
        # Wired by TimingModel: used to recompute the outstanding-branch
        # count after a flush (queued controls never resolve).
        self.backend = None
        # Decode-stage crack memo: id(Instr) -> (instr, uops) so each
        # decoded Instr object pays the microcode-table probe once.
        # Identity keys stay valid across self-modifying code and
        # rollback (both invalidate the FM's per-page decode cache, so
        # changed bytes arrive as new Instr objects); the table version
        # covers hand_patch() replacing templates mid-run.
        self._crack_memo: dict = {}
        self._crack_memo_prev: dict = {}
        self._crack_memo_version = microcode.version

    # -- control from the back end --------------------------------------

    def begin_drain(self, resume_pc: int, reason: str) -> None:
        """Flush the front end and refetch at *resume_pc* once the ROB
        has drained ("flushing the pipeline through the ROB")."""
        self.mode = F_DRAIN
        self.resume_pc = resume_pc & MASK32
        self.drain_reason = reason
        self.flush_queues()
        self._current_line = -1
        self.stall_until = 0
        # Flushed queue entries included fetched-but-undispatched control
        # instructions; only backend-resident unresolved controls still
        # count against the nested-branch limit.
        if self.backend is not None:
            self.branches_outstanding = self.backend.count_unresolved_controls()

    def flush_queues(self) -> None:
        self.fetch_q.flush()
        self.decode_q.flush()

    def branch_resolved(self) -> None:
        if self.branches_outstanding > 0:
            self.branches_outstanding -= 1

    def branches_squashed(self, count: int) -> None:
        self.branches_outstanding = max(0, self.branches_outstanding - count)

    # -- per-cycle operation ----------------------------------------------

    def bind_tick(self):
        """Pre-bound per-cycle step for the compiled schedule.

        With a back end wired, the compiled engine gets the fused
        fetch+decode closure (repro.timing.pipeline.fastpath): same
        state machine, connector/counter operations inlined.  The
        ``rob_empty`` input stays a zero-latency combinational read of
        back-end state, re-evaluated each cycle inside the closure."""
        if self.backend is None:
            # Structural tree without a back end: nothing drains the
            # ROB, so it reads as permanently empty.
            tick = self.tick
            return lambda cycle: tick(cycle, True)
        return bind_frontend_tick(self)

    def tick(self, cycle: int, rob_empty: bool) -> None:
        self.fetch_q.tick(cycle)
        self.decode_q.tick(cycle)
        self.idle_this_cycle = False
        self._decode(cycle)
        self._fetch(cycle, rob_empty)

    def _decode(self, cycle: int) -> None:
        """Move fetched instructions to the dispatch queue, cracking
        each into µops via the microcode table."""
        if self._crack_memo_version != self.microcode.version:
            self._crack_memo.clear()
            self._crack_memo_prev.clear()
            self._crack_memo_version = self.microcode.version
        memo = self._crack_memo
        for _ in range(self.fetch_width):
            if not self.decode_q.can_push():
                self.bump("decode_stalls")
                return
            di = self.fetch_q.pop()
            if di is None:
                return
            entry = di.entry
            instr = entry.instr
            if instr.spec.iclass == "string":
                # Iteration counts vary per dynamic instance; key on both.
                key = (id(instr), entry.iterations)
            else:
                key = id(instr)
            cached = memo.get(key)
            if cached is not None and cached[0] is instr:
                uops = cached[1]
            else:
                uops = self._crack(entry, instr, key)
                memo = self._crack_memo  # may have rotated
            di.uops_template = uops  # consumed by dispatch
            self.decode_q.push(di)
            self.bump("decoded")

    def _crack(self, entry: TraceEntry, instr, key) -> tuple:
        """Crack-memo miss path: probe the previous generation (second
        chance), else crack via the microcode table; rotate generations
        when the live one fills."""
        prev = self._crack_memo_prev
        cached = prev.get(key)
        if cached is not None and cached[0] is instr:
            # Survivor: promote back into the live generation.
            del prev[key]
            self.bump("crack_memo_promotions")
        else:
            if instr.spec.iclass == "string":
                uops, _ok = self.microcode.crack_rep(
                    instr, entry.iterations, count=False
                )
            else:
                uops, _ok = self.microcode.crack(instr, count=False)
            cached = (instr, uops)
        memo = self._crack_memo
        if len(memo) >= CRACK_MEMO_LIMIT:
            # Generation rotation: everything not touched since the
            # previous rotation ages out; recently-used entries survive
            # via promotion above.
            self._crack_memo_prev = memo
            self._crack_memo = memo = {}
            self.bump("crack_memo_rotations")
        memo[key] = cached
        return cached[1]

    def _fetch(self, cycle: int, rob_empty: bool) -> None:
        if self.mode == F_HALTED:
            self.bump("halt_stall_cycles")
            return
        if self.mode == F_DRAIN:
            self.bump("drain_cycles")
            self.bump("drain_cycles_" + self.drain_reason)
            if rob_empty:
                self.mode = F_FETCH
                self.expected_pc = self.resume_pc
                self.resume_pc = None
            return
        if self.stall_until > cycle:
            self.bump("icache_stall_cycles")
            return

        fetched = 0
        while fetched < self.fetch_width:
            if not self.fetch_q.can_push():
                if fetched == 0:
                    self.bump("fetchq_full_cycles")
                break
            entry = self.feed.peek()
            if entry is None:
                if fetched == 0:
                    self.idle_this_cycle = True
                break
            if self.expected_pc is not None and entry.pc != self.expected_pc:
                if entry.handler_entry:
                    # Asynchronous interrupt: drain, then redirect into
                    # the handler (paper section 3.4: the timing model
                    # freezes and waits for handler instructions).
                    self.begin_drain(entry.pc, DRAIN_INTERRUPT)
                    self.bump("interrupt_redirects")
                else:
                    raise AssertionError(
                        "feed/fetch divergence: expected %#x got %#x (IN %d)"
                        % (self.expected_pc, entry.pc, entry.in_no)
                    )
                break
            # I-cache: one line access per group; crossing ends the group.
            line = self.hierarchy.l1i.line_of(entry.ppc)
            if line != self._current_line:
                if fetched > 0:
                    break
                self.itlb.lookup(entry.pc)
                latency = self.hierarchy.access_instr(entry.ppc)
                self._current_line = line
                if latency > self.hierarchy.geometry.l1_hit_latency:
                    self.stall_until = cycle + latency
                    self.bump("icache_miss_stalls")
                    break
            is_control = entry.instr.spec.is_control
            if (
                is_control
                and self.branches_outstanding >= self.max_nested_branches
            ):
                self.bump("branch_limit_stalls")
                break

            self.feed.consume()
            di = DynInstr(entry, cycle, wrong_path=entry.wrong_path)
            if is_control:
                self.branches_outstanding += 1
                self._predict(di)
            else:
                self.expected_pc = entry.next_pc
            if is_barrier(entry):
                di.is_barrier = True
                self.mode = F_HALTED
                self.bump("barrier_fetches")
            self.fetch_q.push(di)
            self.bump("fetched")
            if entry.wrong_path:
                self.bump("fetched_wrong_path")
            fetched += 1
            if di.is_barrier or is_control:
                break

    def _predict(self, di: DynInstr) -> None:
        entry = di.entry
        if di.wrong_path:
            # On a forced wrong path we follow the functional model's
            # concrete wrong-path execution; nested re-steering is not
            # modeled (prototype limitation, see DESIGN.md).
            self.expected_pc = entry.next_pc
            return
        taken, predicted_pc = self.predictor.predict(entry)
        di.predicted_pc = predicted_pc
        if predicted_pc != entry.next_pc:
            di.mispredicted = True
            self.bump("fetch_mispredicts")
            self.feed.force_wrong_path(entry.in_no, predicted_pc)
        self.expected_pc = predicted_pc
