"""Pipeline stages of the Figure 3 target."""

from repro.timing.pipeline.backend import Backend
from repro.timing.pipeline.dynamic import DynInstr, DynUop
from repro.timing.pipeline.frontend import Frontend, is_barrier

__all__ = ["Backend", "DynInstr", "DynUop", "Frontend", "is_barrier"]
