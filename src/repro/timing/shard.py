"""FastShard: the bulk-synchronous sharded tick engine.

The paper's parallelization claim (section 3.1) is that a partitioned
timing model can evaluate its partitions concurrently *without changing
observed cycle counts*; Manticore's static bulk-synchronous recipe
shows how: cut the module graph only at latency >= 1 Connector edges,
run each shard's units independently within a tick span, and exchange
boundary values in batches at span barriers.  Because every cut edge
delays data by at least one target cycle, nothing a shard computes in
span *t* can be observed by another shard before span *t + 1* -- so
intra-span execution needs no cross-shard communication at all.

``TimingConfig(engine="sharded", shards=K)`` selects this engine.  It
consumes a :mod:`PartitionPlan <repro.analysis.partition>` -- auto-
planned (LPT over TickProfiler costs when available) when none is
given -- and **revalidates it at compile time against the live module
tree**: :func:`repro.analysis.partition.validate_plan` re-derives
every footprint from the tree as built, so a plan produced before a
topology change is refused with a :class:`ScheduleError` (rule SH007)
instead of silently mis-sharding, and SH001/SH002/SH003 violations in
hand-written plans are refused the same way.

Execution model
---------------

A **tick span** is one busy target cycle or one batched idle span
(idle fast-forward ticks no units, so every shard trivially agrees on
it -- span negotiation costs nothing).  Each busy cycle:

1. The coordinator clocks every Connector (phase 0, tree order --
   identical to the compiled engine).
2. Span negotiation: the cycle runs **parallel** only when every
   boundary FIFO has headroom for a full producer budget
   (``len(queue) + input_throughput <= max_transactions``).  Under that
   precondition a producer's push accept/reject decisions depend only
   on its own throughput budget -- exactly what the sequential
   consumer-first order would decide -- so the cycle is safe to run
   concurrently.  Otherwise the coordinator falls back to the full
   compiled sequential order for that one cycle (the semantic
   backstop: ordered cycles are the compiled engine).
3. In a parallel cycle each cut-edge Connector routes pushes into a
   :class:`BoundaryOutbox` (visibility cycles stamped at push time);
   workers and the coordinator evaluate their shards' units between a
   pair of barriers; then the coordinator drains every outbox into its
   Connector in deterministic plan order.  With
   ``shard_backend="process"`` each batch crosses the boundary as
   pickled bytes -- the serialization contract a multi-process
   deployment needs -- while shard state itself stays thread-resident
   (this Python host shares the functional model and observability
   fabric process-wide; the batch transport is the part that must
   prove picklable).
4. The per-cycle tail (cycle listeners, idle bookkeeping, watchdog,
   idle fast-forward) is byte-for-byte the compiled run loop, so
   TimingStats, FastScope stats, EventTracer streams and pulse
   det-hashes stay bit-identical.

Two structural notes keep the parallel mode exact: a cut edge whose
*producer* precedes its consumer in the compiled order (only possible
on a broken dataflow cycle) pins the engine to ordered execution, and
a plan with at most one populated shard degenerates to the compiled
loop outright (the default two-shard core plan does: its only atomic
group holds the whole pipeline).  Units that emit through ``tm.tracer``
from a non-anchor shard would interleave nondeterministically; the
canonical pipeline emits only from the anchor shard (feed, interrupt
coordinator, engine), which the effect analyzer's seam discipline
documents.
"""

from __future__ import annotations

import pickle
import threading
from typing import Dict, List, Optional, Tuple

from repro.analysis.graph import extract_graph
from repro.timing.connector import Connector
from repro.timing.schedule import CompiledSchedule, ScheduleError

# Barrier timeout: generous enough for any legitimate span, short
# enough that a lost worker fails the run instead of hanging CI.
_BARRIER_TIMEOUT = 300.0


class BoundaryTransportError(RuntimeError):
    """A boundary batch could not cross the shard boundary."""


class BoundaryOutbox:
    """Per-cut-edge push buffer for one parallel tick span.

    While installed on its Connector (``connector._outbox``), producer
    pushes land here instead of the shared queue, replicating the
    Connector's accept/reject semantics exactly: the throughput budget
    and counters live on the Connector (single-producer, so updates are
    race-free), visibility cycles are stamped at push time from the
    phase-0 ``_now``, and the occupancy check counts queued plus
    outboxed items.  The coordinator drains accepted batches into the
    queue at the span barrier.
    """

    __slots__ = ("connector", "batch")

    def __init__(self, connector: Connector) -> None:
        self.connector = connector
        self.batch: List[Tuple[int, object]] = []

    def can_push(self) -> bool:
        conn = self.connector
        return (
            conn._pushed_this_cycle < conn.input_throughput
            and len(conn._queue) + len(self.batch) < conn.max_transactions
        )

    def push(self, item) -> bool:
        conn = self.connector
        if not self.can_push():
            conn.bump("push_stalls")
            return False
        self.batch.append((conn._now + conn.min_latency, item))
        conn._pushed_this_cycle += 1
        conn.bump("pushes")
        if conn._trace_log is not None and (
            conn._trigger is None or conn._trigger(conn._now, item)
        ):
            if len(conn._trace_log) < conn._trace_limit:
                conn._trace_log.append((conn._now, item))
        return True

    def drain(self) -> List[Tuple[int, object]]:
        batch, self.batch = self.batch, []
        return batch


# Auto-plan cache: planning re-analyzes the whole tree (effect
# extraction dominates engine compile time), but identical tree
# structures always yield the identical plan and validation outcome,
# so matrix tests that build hundreds of default cores pay once.  The
# signature covers everything planning reads: module paths and classes
# (footprints derive from class source), Connector parameters and
# endpoint wiring, and the shard count.
_PLAN_CACHE: Dict[tuple, dict] = {}
_PLAN_CACHE_LIMIT = 64


def _tree_signature(graph, shards: int) -> tuple:
    modules = tuple(
        (path, type(module).__module__ + "." + type(module).__qualname__)
        for path, module in graph.modules
    )
    connectors = tuple(
        (
            path,
            conn.min_latency,
            conn.input_throughput,
            conn.output_throughput,
            conn.max_transactions,
            graph.path_of(conn.producer) if conn.producer is not None
            and graph.contains(conn.producer) else None,
            graph.path_of(conn.consumer) if conn.consumer is not None
            and graph.contains(conn.consumer) else None,
        )
        for path, conn in graph.connectors
    )
    return (modules, connectors, shards)


class ShardedSchedule(CompiledSchedule):
    """The bulk-synchronous parallel tick engine for one TimingModel.

    Compiles the same static schedule as :class:`CompiledSchedule`
    (which it falls back to cycle-by-cycle whenever parallelism is
    unsafe or useless), then overlays a validated PartitionPlan as
    per-shard step lists plus boundary outboxes at the cut edges.
    """

    def __init__(self, tm, plan: Optional[dict] = None, shards: int = 2,
                 backend: str = "thread") -> None:
        super().__init__(tm)
        if backend not in ("thread", "process"):
            raise ScheduleError(
                "unknown shard backend %r (use 'thread' or 'process')"
                % backend
            )
        if shards < 1:
            raise ScheduleError("shards must be >= 1 (got %d)" % shards)
        self._backend = backend
        self.graph = extract_graph(tm)
        self.plan = self._resolve_plan(tm, plan, shards)
        self._compile_shards(tm)
        # Worker machinery, created lazily by run() when more than one
        # shard is populated.
        self._release: Optional[threading.Barrier] = None
        self._joined: Optional[threading.Barrier] = None
        self._workers: List[threading.Thread] = []
        self._worker_errors: List[BaseException] = []
        self._shutdown = False
        self._cycle = 0

    # -- compile -----------------------------------------------------------

    def _resolve_plan(self, tm, plan: Optional[dict], shards: int) -> dict:
        from repro.analysis.effects import analyze_tree
        from repro.analysis.partition import plan_partition, validate_plan

        auto = plan is None
        # The cache is sound only when the signature captures every
        # validation input; registered listeners are analyzed too, so
        # their presence disables it (they are empty at TimingModel
        # construction, the canonical compile point).
        cacheable = auto and not tm.cycle_listeners and not tm._commit_listeners
        signature = _tree_signature(self.graph, shards) if cacheable else None
        if signature is not None:
            cached = _PLAN_CACHE.get(signature)
            if cached is not None:
                return cached
        effects = analyze_tree(tm)
        if auto:
            plan, _planner_report = plan_partition(
                tm, shards=shards, effects=effects
            )
        report = validate_plan(plan, effects)
        if report.errors:
            raise ScheduleError(
                "partition plan rejected at engine compile time "
                "(%d error(s)):\n%s"
                % (len(report.errors), report.format())
            )
        if signature is not None:
            if len(_PLAN_CACHE) >= _PLAN_CACHE_LIMIT:
                _PLAN_CACHE.pop(next(iter(_PLAN_CACHE)))
            _PLAN_CACHE[signature] = plan
        return plan

    def _compile_shards(self, tm) -> None:
        plan = self.plan
        self.shard_count: int = plan["shard_count"]
        unit_shard: Dict[str, int] = {}
        for row in plan["shards"]:
            for path in row["units"]:
                unit_shard[path] = row["index"]
        # Indices into the unit portion of the compiled step tuple, in
        # compiled (consumer-first) order within each shard.
        self._unit_indices: List[List[int]] = [
            [] for _ in range(self.shard_count)
        ]
        for i, (path, _module) in enumerate(self.unit_order):
            home = unit_shard.get(path)
            if home is None:
                # validate_plan (SH007) already rejects this; defensive
                # for plans injected after validation.
                raise ScheduleError(
                    "plan assigns no shard to scheduled unit %s" % path
                )
            self._unit_indices[home].append(i)
        self._populated: List[int] = [
            s for s in range(self.shard_count) if self._unit_indices[s]
        ]
        # The anchor shard runs on the coordinator thread.  Pipeline
        # feed traffic (TB refills, commits, interrupt delivery) comes
        # from the backend's shard, so anchoring there keeps every
        # tracer-emitting unit on one thread.
        backend_path = (
            self.graph.path_of(tm.backend)
            if self.graph.contains(tm.backend) else None
        )
        anchor = unit_shard.get(backend_path)
        if anchor is None or anchor not in self._populated:
            anchor = self._populated[0] if self._populated else 0
        self._anchor: int = anchor
        # Boundary Connectors, in the plan's deterministic cut-edge
        # order (drain order = merge determinism).
        order = {path: i for i, (path, _m) in enumerate(self.unit_order)}
        modules_by_path = {path: m for path, m in self.graph.modules}
        self._cut: List[Connector] = []
        self._force_ordered = False
        seen_cut = set()
        for edge in plan["cut_edges"]:
            conn = modules_by_path.get(edge["connector"])
            if not isinstance(conn, Connector):
                raise ScheduleError(
                    "stale plan: cut edge %r is not a live Connector"
                    % edge["connector"]
                )
            if conn.min_latency < 1:
                raise ScheduleError(
                    "cut edge %r has zero min_latency (SH001): the "
                    "consumer would observe same-cycle pushes from "
                    "another worker" % edge["connector"]
                )
            if id(conn) in seen_cut:
                continue
            seen_cut.add(id(conn))
            self._cut.append(conn)
            # Parallel cycles are exact only when the consumer of every
            # cut edge evaluates before its producer in the compiled
            # order (so its occupancy view matches the outboxed one); a
            # broken dataflow cycle can order them the other way round.
            if (
                order.get(edge["consumer"], -1)
                > order.get(edge["producer"], len(order))
            ):
                self._force_ordered = True
        self._outboxes: List[BoundaryOutbox] = [
            BoundaryOutbox(conn) for conn in self._cut
        ]

    # -- introspection -----------------------------------------------------

    def describe_shards(self) -> List[List[str]]:
        """Per-shard unit paths, in execution (compiled) order."""
        return [
            [self.unit_order[i][0] for i in indices]
            for indices in self._unit_indices
        ]

    # -- workers -----------------------------------------------------------

    def _start_workers(self, worker_shards: List[int],
                       shard_steps: List[tuple]) -> None:
        parties = len(worker_shards) + 1
        self._release = threading.Barrier(parties)
        self._joined = threading.Barrier(parties)
        self._worker_errors = []
        self._shutdown = False
        self._workers = []
        for shard in worker_shards:
            worker = threading.Thread(
                target=self._worker_loop,
                args=(shard_steps[shard],),
                name="fastshard-%d" % shard,
                daemon=True,
            )
            worker.start()
            self._workers.append(worker)

    def _worker_loop(self, steps: tuple) -> None:
        release = self._release
        joined = self._joined
        while True:
            release.wait()
            if self._shutdown:
                return
            cycle = self._cycle
            try:
                for step in steps:
                    step(cycle)
            except BaseException as exc:  # propagate via the coordinator
                self._worker_errors.append(exc)
            joined.wait()

    def _stop_workers(self) -> None:
        if not self._workers:
            return
        self._shutdown = True
        try:
            self._release.wait(_BARRIER_TIMEOUT)
        except threading.BrokenBarrierError:  # a worker already died
            pass
        for worker in self._workers:
            worker.join(timeout=5.0)
        self._workers = []
        self._release = None
        self._joined = None

    # -- the bulk-synchronous run loop -------------------------------------

    def run(self, max_cycles: int):
        """Run to completion with per-span barriers.

        Degenerates to the compiled loop when at most one shard holds
        units -- then there is nothing to synchronize and the compiled
        engine *is* the single shard's execution.  The loop tail
        (listeners, idle bookkeeping, watchdog, shutdown drain, idle
        fast-forward) mirrors :meth:`CompiledSchedule.run` exactly;
        only unit evaluation differs.
        """
        if len(self._populated) <= 1:
            return super().run(max_cycles)
        tm = self._tm
        feed = tm.feed
        frontend = tm.frontend
        backend = tm.backend
        steps = self._steps
        n_conn = len(self.connector_order)
        conn_steps = steps[:n_conn]
        unit_steps = steps[n_conn:]
        # Rebuilt from the live step tuple so instrument_steps wrapping
        # (the tick profiler) is honored shard-by-shard.
        shard_steps = [
            tuple(unit_steps[i] for i in indices)
            for indices in self._unit_indices
        ]
        anchor_steps = shard_steps[self._anchor]
        worker_shards = [s for s in self._populated if s != self._anchor]
        listeners = tm.cycle_listeners
        hints = tm._cycle_idle_hints
        watchdog = tm.config.watchdog_cycles
        idle_span = self._idle_span
        cut = self._cut
        outboxes = self._outboxes
        pickled = self._backend == "process"
        parallel_ok = not self._force_ordered
        cycle = tm.cycle
        last_progress = tm._last_progress
        self._start_workers(worker_shards, shard_steps)
        release = self._release
        joined = self._joined
        try:
            while cycle < max_cycles:
                cycle += 1
                tm.cycle = cycle
                for step in conn_steps:
                    step(cycle)
                # Span negotiation: parallel only when every boundary
                # FIFO can absorb a full producer budget this cycle.
                safe = parallel_ok
                if safe:
                    for conn in cut:
                        if (
                            len(conn._queue) + conn.input_throughput
                            > conn.max_transactions
                        ):
                            safe = False
                            break
                if safe:
                    for box in outboxes:
                        box.connector._outbox = box
                    self._cycle = cycle
                    release.wait(_BARRIER_TIMEOUT)
                    try:
                        for step in anchor_steps:
                            step(cycle)
                    finally:
                        joined.wait(_BARRIER_TIMEOUT)
                    for box in outboxes:
                        box.connector._outbox = None
                    if self._worker_errors:
                        raise self._worker_errors.pop(0)
                    for box in outboxes:
                        batch = box.drain()
                        if batch:
                            if pickled:
                                batch = self._transport(
                                    box.connector, batch
                                )
                            box.connector._queue.extend(batch)
                else:
                    # Ordered fallback: the full compiled order, on the
                    # coordinator -- exact sequential semantics.
                    for step in unit_steps:
                        step(cycle)
                if listeners:
                    if len(listeners) == 1:
                        listeners[0](cycle)
                    else:
                        for listener in listeners:
                            listener(cycle)
                idle = frontend.idle_this_cycle and not backend.rob
                if idle and not feed.finished:
                    feed.idle_tick()
                    tm.idle_cycles += 1
                    last_progress = cycle
                committed = backend.last_commit_cycle
                if committed > last_progress:
                    last_progress = committed
                if cycle - last_progress > watchdog:
                    tm._raise_deadlock(cycle)
                if feed.finished:
                    if (
                        not backend.rob
                        and len(frontend.fetch_q) == 0
                        and len(frontend.decode_q) == 0
                        and backend._dispatching is None
                    ):
                        break
                    continue
                if idle:
                    span = idle_span(cycle, max_cycles, hints)
                    if span > 0:
                        feed.idle_ticks(span)
                        cycle += span
                        tm.cycle = cycle
                        tm.idle_cycles += span
                        last_progress = cycle
                        if tm.tracer is not None:
                            tm.tracer.emit("idle_span", cycles=span,
                                           from_cycle=cycle - span)
        finally:
            tm.cycle = cycle
            tm._last_progress = last_progress
            for box in outboxes:
                box.connector._outbox = None
            self._stop_workers()
        return tm.stats()

    @staticmethod
    def _transport(conn: Connector,
                   batch: List[Tuple[int, object]]) -> List[Tuple[int, object]]:
        """Round-trip one boundary batch through pickled bytes.

        The process backend's transport contract: everything crossing a
        cut edge must survive serialization, byte-for-byte.  (Shard
        state itself stays thread-resident on this host -- the
        functional model and observability fabric are process-wide --
        so the batch transport is the part a real multi-process
        deployment additionally needs proven.)
        """
        try:
            payload = pickle.dumps(batch, protocol=pickle.HIGHEST_PROTOCOL)
            return pickle.loads(payload)
        except Exception as exc:
            raise BoundaryTransportError(
                "boundary batch on %s is not picklable: %s"
                % (conn.name, exc)
            ) from exc


def compile_sharded_schedule(tm, plan: Optional[dict] = None,
                             shards: int = 2,
                             backend: str = "thread") -> ShardedSchedule:
    """Compile the sharded schedule for *tm* (a ``TimingModel``)."""
    return ShardedSchedule(tm, plan=plan, shards=shards, backend=backend)


__all__ = [
    "BoundaryOutbox",
    "BoundaryTransportError",
    "ShardedSchedule",
    "compile_sharded_schedule",
]
