"""Cycle-accurate timing model: Modules, Connectors and the Figure 3
out-of-order target pipeline."""

from repro.timing.connector import Connector
from repro.timing.core import (
    DeadlockError,
    TimingConfig,
    TimingModel,
    TimingStats,
)
from repro.timing.feed import InstructionFeed
from repro.timing.module import Module

__all__ = [
    "Connector",
    "DeadlockError",
    "InstructionFeed",
    "Module",
    "TimingConfig",
    "TimingModel",
    "TimingStats",
]
