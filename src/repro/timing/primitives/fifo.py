"""Bounded FIFO primitive (a base Module of the paper's library)."""

from __future__ import annotations

from collections import deque
from typing import Any, Optional

from repro.timing.module import Module


class Fifo(Module):
    """A plain bounded FIFO with occupancy statistics."""

    def __init__(self, name: str, capacity: int):
        super().__init__(name)
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._items = deque()

    @property
    def full(self) -> bool:
        return len(self._items) >= self.capacity

    @property
    def empty(self) -> bool:
        return not self._items

    def push(self, item: Any) -> bool:
        if self.full:
            self.bump("full_stalls")
            return False
        self._items.append(item)
        self.bump("pushes")
        return True

    def pop(self) -> Optional[Any]:
        if not self._items:
            return None
        self.bump("pops")
        return self._items.popleft()

    def peek(self) -> Optional[Any]:
        return self._items[0] if self._items else None

    def clear(self) -> int:
        count = len(self._items)
        self._items.clear()
        return count

    def remove_if(self, predicate) -> int:
        kept = deque(item for item in self._items if not predicate(item))
        removed = len(self._items) - len(kept)
        self._items = kept
        return removed

    def __iter__(self):
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def resource_estimate(self):
        return {"luts": 40 + 8 * self.capacity, "brams": 1 if self.capacity > 16 else 0}
