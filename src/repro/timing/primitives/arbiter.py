"""Arbiters: LRU and round-robin (the paper's two stock policies)."""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.timing.module import Module


class Arbiter(Module):
    """Base: picks one granted requester per cycle from a request set."""

    def __init__(self, name: str, num_requesters: int):
        super().__init__(name)
        if num_requesters < 1:
            raise ValueError("need at least one requester")
        self.num_requesters = num_requesters

    def grant(self, requests: Sequence[bool]) -> Optional[int]:
        raise NotImplementedError


class RoundRobinArbiter(Arbiter):
    """Grants the next requester after the previously granted one."""

    def __init__(self, name: str, num_requesters: int):
        super().__init__(name, num_requesters)
        self._last = num_requesters - 1

    def grant(self, requests: Sequence[bool]) -> Optional[int]:
        self.bump("arbitrations")
        n = self.num_requesters
        for offset in range(1, n + 1):
            index = (self._last + offset) % n
            if requests[index]:
                self._last = index
                self.bump("grants")
                return index
        return None


class LRUArbiter(Arbiter):
    """Grants the least-recently-granted active requester."""

    def __init__(self, name: str, num_requesters: int):
        super().__init__(name, num_requesters)
        self._order: List[int] = list(range(num_requesters))  # LRU first

    def grant(self, requests: Sequence[bool]) -> Optional[int]:
        self.bump("arbitrations")
        for index in self._order:
            if requests[index]:
                self._order.remove(index)
                self._order.append(index)
                self.bump("grants")
                return index
        return None

    def resource_estimate(self):
        return {"luts": 30 * self.num_requesters, "brams": 0}
