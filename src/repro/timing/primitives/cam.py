"""Content-addressable memory primitive.

Used by the BTB, caches and the load/store queue.  On FPGAs a CAM is
expensive (the paper simulates multi-ported structures with multiple
host cycles); the host model charges accordingly.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.timing.module import Module


class CAM(Module):
    """Fixed-capacity key->value store with FIFO eviction."""

    def __init__(self, name: str, capacity: int):
        super().__init__(name)
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._entries: Dict[Any, Any] = {}  # insertion-ordered

    def lookup(self, key: Any) -> Optional[Any]:
        self.bump("lookups")
        value = self._entries.get(key)
        if value is None:
            self.bump("misses")
        else:
            self.bump("hits")
        return value

    def insert(self, key: Any, value: Any) -> None:
        if key in self._entries:
            del self._entries[key]
        elif len(self._entries) >= self.capacity:
            oldest = next(iter(self._entries))
            del self._entries[oldest]
            self.bump("evictions")
        self._entries[key] = value

    def invalidate(self, key: Any) -> bool:
        if key in self._entries:
            del self._entries[key]
            return True
        return False

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Any) -> bool:
        return key in self._entries

    def resource_estimate(self):
        return {"luts": 60 * self.capacity, "brams": 0}
