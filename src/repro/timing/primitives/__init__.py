"""Base timing-model primitives: CAMs, FIFOs and arbiters."""

from repro.timing.primitives.arbiter import Arbiter, LRUArbiter, RoundRobinArbiter
from repro.timing.primitives.cam import CAM
from repro.timing.primitives.fifo import Fifo

__all__ = ["Arbiter", "CAM", "Fifo", "LRUArbiter", "RoundRobinArbiter"]
