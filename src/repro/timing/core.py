"""The timing model: the Figure 3 target microarchitecture.

``TimingModel`` glues the front end and back end into a synchronous,
cycle-accurate machine driven one target cycle at a time.  It consumes
instructions from an :class:`~repro.timing.feed.InstructionFeed` and is
completely agnostic about *how* the functional model is coupled -- the
lock-step reference and the FAST trace-buffer coupling both drive the
same TimingModel, which is why their cycle counts can be compared
exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.microcode.table import MicrocodeTable
from repro.timing.bpred.predictors import make_predictor
from repro.timing.cache.hierarchy import CacheGeometry, CacheHierarchy
from repro.timing.feed import InstructionFeed, NullFeed
from repro.timing.module import Module
from repro.timing.pipeline.backend import Backend
from repro.timing.pipeline.frontend import Frontend


@dataclass
class TimingConfig:
    """Target microarchitecture parameters (paper section 4 defaults:
    two-issue, 8-way 32KB L1s, 8-way 256KB L2, 64 ROB entries, 16 shared
    reservation stations, 16 LSQ entries, gshare with a 4-way 8K BTB,
    8 ALUs, one load/store unit, up to 4 nested branches)."""

    issue_width: int = 2
    rob_entries: int = 64
    rs_entries: int = 16
    lsq_entries: int = 16
    num_alus: int = 8
    num_brus: int = 2
    num_fpus: int = 2
    num_lsus: int = 1
    dispatch_width: int = 4
    commit_width: int = 2
    result_bus_width: int = 4
    max_nested_branches: int = 4
    predictor: str = "gshare"  # "perfect", "2bit", "fixed:0.97", ...
    caches: CacheGeometry = field(default_factory=CacheGeometry)
    watchdog_cycles: int = 500_000
    # Tick engine: "compiled" pre-compiles a static schedule from the
    # dataflow graph and batches idle spans (repro.timing.schedule);
    # "sharded" overlays a PartitionPlan on the compiled schedule and
    # evaluates shards bulk-synchronously (repro.timing.shard);
    # "legacy" is the original hand-ordered dynamic dispatch.  All
    # three produce bit-identical cycle counts and statistics.
    engine: str = "compiled"
    # Sharded-engine parameters (engine="sharded" only).  shard_plan
    # is a PartitionPlan document (repro.analysis.partition); None
    # auto-plans via LPT at engine compile time.  shard_backend is
    # "thread" or "process" (the latter round-trips every boundary
    # batch through pickled bytes -- the multi-process transport
    # contract).
    shards: int = 2
    shard_backend: str = "thread"
    shard_plan: Optional[dict] = None

    @classmethod
    def with_issue_width(cls, width: int, **kwargs) -> "TimingConfig":
        """Scale widths together, as reconfiguring Connectors would."""
        return cls(
            issue_width=width,
            dispatch_width=2 * width,
            commit_width=width,
            result_bus_width=2 * width,
            **kwargs,
        )

    def to_dict(self) -> dict:
        """Serializable form (the AWB-style configuration interface)."""
        from dataclasses import asdict

        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "TimingConfig":
        data = dict(data)
        caches = data.pop("caches", None)
        config = cls(**data)
        if caches is not None:
            config.caches = CacheGeometry(**caches)
        return config


@dataclass
class TimingStats:
    """Summary of one timing-model run."""

    cycles: int = 0
    idle_cycles: int = 0
    instructions: int = 0
    uops: int = 0
    branches: int = 0
    mispredicts: int = 0
    drain_cycles: int = 0
    drain_mispredict: int = 0
    drain_exception: int = 0
    drain_interrupt: int = 0
    drain_serialize: int = 0
    icache_accesses: int = 0
    icache_hits: int = 0
    dcache_accesses: int = 0
    dcache_hits: int = 0
    l2_accesses: int = 0
    l2_hits: int = 0

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def bp_accuracy(self) -> float:
        if not self.branches:
            return 1.0
        return 1.0 - self.mispredicts / self.branches

    @property
    def icache_hit_rate(self) -> float:
        if not self.icache_accesses:
            return 1.0
        return self.icache_hits / self.icache_accesses

    @property
    def pipe_drain_fraction(self) -> float:
        if not self.cycles:
            return 0.0
        return self.drain_mispredict / self.cycles


class DeadlockError(RuntimeError):
    """The pipeline stopped committing without being idle."""


class _CommitListenerList(list):
    """``commit_listeners`` with a change hook.

    Every mutation re-binds the back end's ``on_instr_commit`` to the
    cheapest equivalent hook: ``None`` with no listeners (commit pays
    nothing), the listener itself with exactly one (no wrapper call, no
    loop), and the fan-out method beyond that.
    """

    __slots__ = ("_owner",)

    def __init__(self, owner: "TimingModel", iterable=()):
        super().__init__(iterable)
        self._owner = owner

    def _changed(self) -> None:
        self._owner._rebind_commit_hook()

    def append(self, item):
        super().append(item)
        self._changed()

    def extend(self, iterable):
        super().extend(iterable)
        self._changed()

    def insert(self, index, item):
        super().insert(index, item)
        self._changed()

    def remove(self, item):
        super().remove(item)
        self._changed()

    def pop(self, index=-1):
        item = super().pop(index)
        self._changed()
        return item

    def clear(self):
        super().clear()
        self._changed()

    def __setitem__(self, index, item):
        super().__setitem__(index, item)
        self._changed()

    def __delitem__(self, index):
        super().__delitem__(index)
        self._changed()

    def __iadd__(self, iterable):
        super().extend(iterable)
        self._changed()
        return self


# The Table 2 configuration sweep: the paper reports FPGA resources for
# the default target at issue widths 1, 2, 4 and 8.
DEFAULT_ISSUE_WIDTHS = (1, 2, 4, 8)


def build_default_core(
    issue_width: int = 2, feed: Optional[InstructionFeed] = None
) -> "TimingModel":
    """The default Figure 3 target at *issue_width*, fed by a NullFeed
    unless a real feed is supplied.  Structural tools (FastLint, the
    resource model) use this to inspect a core without running it."""
    return TimingModel(
        feed=feed or NullFeed(),
        config=TimingConfig.with_issue_width(issue_width),
    )


def default_cores() -> "List[TimingModel]":
    """One default core per Table 2 issue width (1, 2, 4, 8)."""
    return [build_default_core(width) for width in DEFAULT_ISSUE_WIDTHS]


class TimingModel(Module):
    """The complete target pipeline (Figure 3)."""

    # Listener plumbing is an intentional shared-state seam (FastPart):
    # commit/cycle listeners and the tracer observe the run but are
    # never consulted for simulation decisions, so the effect analyzer
    # records accesses to them without treating them as races.
    shard_seams = {
        "_commit_listeners": "observability commit fan-out list; "
                             "rebinds backend.on_instr_commit",
        "cycle_listeners": "observability per-cycle hook list",
        "_cycle_idle_hints": "idle-span hints for the compiled engine",
        "tracer": "FastScope seam-event tracer; write-only from the "
                  "engine",
    }

    def __init__(
        self,
        feed: InstructionFeed,
        microcode: Optional[MicrocodeTable] = None,
        config: Optional[TimingConfig] = None,
    ):
        super().__init__("timing_model")
        self.feed = feed
        self.config = config or TimingConfig()
        self.microcode = microcode or MicrocodeTable()
        cfg = self.config
        self.hierarchy = CacheHierarchy(cfg.caches)
        self.predictor = make_predictor(cfg.predictor)
        self.frontend = Frontend(
            feed,
            self.predictor,
            self.hierarchy,
            self.microcode,
            fetch_width=cfg.issue_width,
            max_nested_branches=cfg.max_nested_branches,
            fetch_buffer=4 * cfg.issue_width,
            decode_buffer=4 * cfg.issue_width,
        )
        self.backend = Backend(
            self.frontend,
            self.hierarchy,
            feed,
            rob_entries=cfg.rob_entries,
            rs_entries=cfg.rs_entries,
            lsq_entries=cfg.lsq_entries,
            num_alus=cfg.num_alus,
            num_brus=cfg.num_brus,
            num_fpus=cfg.num_fpus,
            num_lsus=cfg.num_lsus,
            dispatch_width=cfg.dispatch_width,
            commit_width=cfg.commit_width,
            result_bus_width=cfg.result_bus_width,
        )
        self.frontend.backend = self.backend
        self.frontend.decode_q.bind_endpoints(consumer=self.backend)
        self.add_child(self.hierarchy)
        self.add_child(self.frontend)
        self.add_child(self.backend)
        self.cycle = 0
        self.idle_cycles = 0
        self._last_progress = 0
        # Optional commit hook: (dyn_instr, cycle) -> None.  The
        # statistics sampler (Figure 6) and host models subscribe here.
        # The list re-binds backend.on_instr_commit on every mutation so
        # zero-listener runs pay nothing per commit and single-listener
        # runs skip the fan-out loop.
        self._commit_listeners = _CommitListenerList(self)
        # Optional per-cycle hooks (run-time trigger queries).  Only
        # evaluated when non-empty: dedicated statistics hardware is
        # free on an FPGA but not on this Python host.
        self.cycle_listeners: List[Callable] = []
        # Idle-span hints for the compiled engine, keyed by id(listener)
        # (see add_cycle_listener).  A listener with no hint pins the
        # engine to one-cycle stepping whenever it is subscribed.
        self._cycle_idle_hints: dict = {}
        # Optional FastScope event tracer (repro.observability.events),
        # attached by attach_tracer().  The engine and the interrupt
        # coordinator emit seam events through it when present; it is
        # never consulted for simulation decisions.
        self.tracer = None
        self._rebind_commit_hook()
        if cfg.engine == "compiled":
            from repro.timing.schedule import compile_schedule

            self._schedule = compile_schedule(self)
        elif cfg.engine == "sharded":
            from repro.timing.shard import compile_sharded_schedule

            self._schedule = compile_sharded_schedule(
                self,
                plan=cfg.shard_plan,
                shards=cfg.shards,
                backend=cfg.shard_backend,
            )
        elif cfg.engine == "legacy":
            self._schedule = None
        else:
            raise ValueError(
                "unknown timing engine %r (use 'compiled', 'sharded' "
                "or 'legacy')" % cfg.engine
            )

    # -- listener registration ---------------------------------------------

    @property
    def commit_listeners(self) -> "_CommitListenerList":
        return self._commit_listeners

    @commit_listeners.setter
    def commit_listeners(self, listeners) -> None:
        self._commit_listeners = _CommitListenerList(self, listeners)
        self._rebind_commit_hook()

    def _rebind_commit_hook(self) -> None:
        listeners = self._commit_listeners
        if not listeners:
            self.backend.on_instr_commit = None
        elif len(listeners) == 1:
            self.backend.on_instr_commit = listeners[0]
        else:
            self.backend.on_instr_commit = self._notify_commit

    def add_cycle_listener(self, listener: Callable, idle_hint=None) -> None:
        """Subscribe a per-cycle hook, optionally with an idle hint.

        *idle_hint* is a ``cycle -> int`` callable returning how many
        upcoming cycles the listener is guaranteed to ignore (its
        ``(cycle, cycle + n]`` calls would all be no-ops).  The compiled
        engine takes the minimum across listeners when batching idle
        spans; registering without a hint disables idle fast-forward
        while this listener is subscribed (appending directly to
        ``cycle_listeners`` behaves the same way).
        """
        # The registration primitive itself: the hint (if any) is
        # recorded just below.
        self.cycle_listeners.append(listener)  # fastlint: ignore[ST003]
        if idle_hint is not None:
            self._cycle_idle_hints[id(listener)] = idle_hint

    def replace_cycle_listener(self, old: Callable, new: Callable) -> None:
        """Swap a subscribed cycle listener in place, keeping its slot
        and idle hint.

        For subscribers that compile their hook into a closure (the
        invariant monitor's fused probe, compiled trigger queries) and
        need to re-compile when their watch set changes mid-run.  The
        compiled engine hoists ``cycle_listeners`` as a list object, so
        an in-place element swap is observed by a run already in
        flight.
        """
        index = self.cycle_listeners.index(old)
        self.cycle_listeners[index] = new
        hint = self._cycle_idle_hints.pop(id(old), None)
        if hint is not None:
            self._cycle_idle_hints[id(new)] = hint

    def _notify_commit(self, di, cycle: int) -> None:
        for listener in self._commit_listeners:
            listener(di, cycle)

    # -- stepping ------------------------------------------------------------

    def tick(self) -> None:
        """Advance one target cycle."""
        self.cycle += 1
        cycle = self.cycle
        if self._schedule is not None:
            self._schedule.tick_cycle(cycle)
            return
        self.frontend.fetch_q.tick(cycle)
        self.frontend.decode_q.tick(cycle)
        self.backend.tick(cycle)
        self.frontend.tick(cycle, self.backend.rob_empty)
        listeners = self.cycle_listeners
        if listeners:
            if len(listeners) == 1:
                listeners[0](cycle)
            else:
                for listener in listeners:
                    listener(cycle)
        if (
            self.frontend.idle_this_cycle
            and self.backend.rob_empty
            and not self.feed.finished
        ):
            self.feed.idle_tick()
            self.idle_cycles += 1
            self._last_progress = cycle
        if self.backend.last_commit_cycle > self._last_progress:
            self._last_progress = self.backend.last_commit_cycle
        if cycle - self._last_progress > self.config.watchdog_cycles:
            self._raise_deadlock(cycle)

    def _raise_deadlock(self, cycle: int) -> None:
        raise DeadlockError(
            "no commit or idle progress for %d cycles at cycle %d "
            "(ROB=%d RS=%d fetchq=%d mode=%d)"
            % (
                self.config.watchdog_cycles,
                cycle,
                len(self.backend.rob),
                len(self.backend.rs),
                len(self.frontend.fetch_q),
                self.frontend.mode,
            )
        )

    @property
    def drained(self) -> bool:
        return (
            self.backend.rob_empty
            and len(self.frontend.fetch_q) == 0
            and len(self.frontend.decode_q) == 0
            and self.backend._dispatching is None
        )

    def run(self, max_cycles: int = 100_000_000) -> TimingStats:
        """Run until the simulated system shuts down (or the budget
        runs out) and return summary statistics."""
        if self._schedule is not None:
            return self._schedule.run(max_cycles)
        while self.cycle < max_cycles:
            self.tick()
            if self.feed.finished and self.drained:
                break
        return self.stats()

    # -- statistics -------------------------------------------------------------

    def stats_report(self) -> dict:
        """Every counter in the module tree, flattened by path -- the
        Asim/AWB-style statistics dump the paper integrates with."""
        report = self.all_counters()
        # Typed stats (the FastScope fabric) ride along in the same
        # flattened namespace; ad hoc counters win on a name collision
        # (FastLint rule ST001 flags those).
        for path, stat in self.all_stats().items():
            if path not in report:
                report[path] = stat.value()
        report["timing_model/cycles"] = self.cycle
        report["timing_model/idle_cycles"] = self.idle_cycles
        report["timing_model/committed_instructions"] = (
            self.backend.committed_instructions
        )
        report["timing_model/committed_uops"] = self.backend.committed_uops
        return report

    def stats(self) -> TimingStats:
        fe, be = self.frontend, self.backend
        l1i, l1d, l2 = self.hierarchy.l1i, self.hierarchy.l1d, self.hierarchy.l2
        return TimingStats(
            cycles=self.cycle,
            idle_cycles=self.idle_cycles,
            instructions=be.committed_instructions,
            uops=be.committed_uops,
            branches=be.counter("branches"),
            mispredicts=be.counter("mispredicts"),
            drain_cycles=fe.counter("drain_cycles"),
            drain_mispredict=fe.counter("drain_cycles_mispredict"),
            drain_exception=fe.counter("drain_cycles_exception"),
            drain_interrupt=fe.counter("drain_cycles_interrupt"),
            drain_serialize=fe.counter("drain_cycles_serialize"),
            icache_accesses=l1i.counter("accesses"),
            icache_hits=l1i.counter("hits"),
            dcache_accesses=l1d.counter("accesses"),
            dcache_hits=l1d.counter("hits"),
            l2_accesses=l2.counter("accesses"),
            l2_hits=l2.counter("hits"),
        )
