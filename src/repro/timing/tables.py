"""Flat array-backed TM tables.

The timing model's regular, array-shaped state -- branch-predictor
saturating counters, BTB entries, cache tag arrays -- used to live in
per-set Python dicts and lists of boxed ints.  On an FPGA these are
block RAMs: dense, fixed-geometry, no pointer chasing.  This module is
the host-side analogue: contiguous ``array`` storage with C-speed
scans (``array.index``) and slice moves for LRU maintenance, plus
batch lookup/summary paths for the span consumer and FastScope probes
(one call summarizing a whole table instead of a Python loop).

Replacement behaviour is *exactly* the dict-based semantics these
tables replace (LRU-first order, allocate-on-miss, write-allocate),
so every timing statistic stays bit-identical.
"""

from __future__ import annotations

from array import array
from typing import Iterable, List, Optional, Sequence, Tuple


class SaturatingCounterTable:
    """A flat table of 2-bit saturating counters (``array('B')``).

    Counter values: 0 strongly not-taken .. 3 strongly taken; >= 2
    predicts taken.  ``reset_value`` 2 is the classic "weakly taken"
    initial state.
    """

    __slots__ = ("size", "reset_value", "_counters")

    def __init__(self, size: int, reset_value: int = 2):
        if size < 1:
            raise ValueError("table size must be >= 1")
        if not 0 <= reset_value <= 3:
            raise ValueError("reset_value must be a 2-bit counter state")
        self.size = size
        self.reset_value = reset_value
        self._counters = array("B", bytes([reset_value]) * size)

    def direction(self, index: int) -> bool:
        return self._counters[index] >= 2

    def read(self, index: int) -> int:
        return self._counters[index]

    def update(self, index: int, taken: bool) -> None:
        counters = self._counters
        counter = counters[index]
        if taken:
            if counter < 3:
                counters[index] = counter + 1
        elif counter > 0:
            counters[index] = counter - 1

    # -- batch paths -----------------------------------------------------

    def read_many(self, indices: Iterable[int]) -> List[int]:
        counters = self._counters
        return [counters[index] for index in indices]

    def directions(self, indices: Iterable[int]) -> List[bool]:
        counters = self._counters
        return [counters[index] >= 2 for index in indices]

    def saturation(self) -> float:
        """Fraction of counters in a saturated state (0 or 3) -- a
        one-call summary used by FastScope probes."""
        counters = self._counters
        return (counters.count(0) + counters.count(3)) / self.size

    def reset(self) -> None:
        # In place: hot-path consumers may hold a reference to the array.
        self._counters[:] = array(
            "B", bytes([self.reset_value]) * self.size
        )


class LruTagStore:
    """Set-associative tag storage in flat parallel arrays.

    Set ``s`` occupies slots ``[s*ways, s*ways + count[s])`` of one
    contiguous signed-64 tag array, kept LRU-first (slot ``s*ways`` is
    the eviction victim).  A per-slot payload array rides along: dirty
    bits for caches, branch targets for the BTB.  Scans and reorder
    moves are C-level (``array.index`` + slice assignment), not Python
    loops over boxed entries.

    The parallel arrays are deliberately exposed to the timing-model
    consumers that own a store (cache, BTB): their single-access busy
    paths read/shift the arrays directly -- the software equivalent of
    wiring the BRAM ports straight into the pipeline stage -- while
    this class keeps the generic single-entry API and the batch/summary
    paths used by span consumers and probes.
    """

    __slots__ = ("sets", "ways", "_tags", "_payload", "_count")

    def __init__(self, sets: int, ways: int):
        if sets < 1 or ways < 1:
            raise ValueError("sets and ways must be >= 1")
        self.sets = sets
        self.ways = ways
        self._tags = array("q", [-1]) * (sets * ways)
        self._payload = array("q", [0]) * (sets * ways)
        self._count = array("B", [0]) * sets

    def find(self, set_index: int, tag: int) -> int:
        """Absolute slot of *tag* in set *set_index*, or -1."""
        base = set_index * self.ways
        try:
            return self._tags.index(tag, base, base + self._count[set_index])
        except ValueError:
            return -1

    def payload(self, slot: int) -> int:
        return self._payload[slot]

    def touch(self, slot: int, set_index: int, payload: int) -> None:
        """Refresh *slot* to MRU position with a new payload."""
        tags = self._tags
        payloads = self._payload
        base = set_index * self.ways
        end = base + self._count[set_index]
        tag = tags[slot]
        if slot != end - 1:
            tags[slot:end - 1] = tags[slot + 1:end]
            payloads[slot:end - 1] = payloads[slot + 1:end]
            tags[end - 1] = tag
        payloads[end - 1] = payload

    def evict_lru(self, set_index: int) -> Tuple[int, int]:
        """Drop the LRU entry of a full set; returns (tag, payload)."""
        tags = self._tags
        payloads = self._payload
        base = set_index * self.ways
        end = base + self._count[set_index]
        victim = (tags[base], payloads[base])
        tags[base:end - 1] = tags[base + 1:end]
        payloads[base:end - 1] = payloads[base + 1:end]
        self._count[set_index] -= 1
        return victim

    def insert(self, set_index: int, tag: int, payload: int) -> None:
        """Append *tag* at the MRU position (caller ensures room)."""
        count = self._count[set_index]
        slot = set_index * self.ways + count
        self._tags[slot] = tag
        self._payload[slot] = payload
        self._count[set_index] = count + 1

    def count(self, set_index: int) -> int:
        return self._count[set_index]

    def clear(self) -> None:
        # In place: hot-path consumers may hold a reference to the array.
        self._count[:] = array("B", [0]) * self.sets

    # -- batch paths -----------------------------------------------------

    def probe_many(
        self, pairs: Sequence[Tuple[int, int]]
    ) -> List[Optional[int]]:
        """Batch non-LRU-updating lookups: payload per (set, tag), or
        None on miss."""
        out: List[Optional[int]] = []
        for set_index, tag in pairs:
            slot = self.find(set_index, tag)
            out.append(self._payload[slot] if slot >= 0 else None)
        return out

    def occupancy(self) -> int:
        """Total valid entries across all sets (C-level sum)."""
        return sum(self._count)
