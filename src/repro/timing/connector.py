"""Connectors: parameterized FIFOs joining timing-model Modules.

"Modules are connected by Connectors which are FIFOs that enforce
timing and throughput constraints.  Connectors can be configured for
input throughput, output throughput, minimum latency and maximum
transactions ...  By specifying parameters to a Connector, one can ...
reconfigure a target from a single issue machine to a multi-issue
machine."  (paper section 4)

A Connector is clocked by the timing model: producers ``push`` up to
``input_throughput`` items per cycle; items become visible to the
consumer ``min_latency`` cycles later; consumers ``pop`` up to
``output_throughput`` items per cycle; at most ``max_transactions``
items are in flight.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Optional, Tuple

from repro.timing.module import Module


class Connector(Module):
    """A latency/throughput-constrained FIFO between two Modules."""

    # Tracing state is an intentional shared-state seam (FastPart):
    # the trace log and trigger predicate observe traffic but are never
    # consulted for simulation decisions, so their cross-shard ordering
    # is benign.
    shard_seams = {
        "_trace_log": "observability-only push log; never read on the "
                      "simulation path",
        "_trigger": "observability-only trace predicate hook",
        "_trace_limit": "observability-only trace log bound",
        "_outbox": "sharded-engine boundary buffer; installed by the "
                   "coordinator for parallel tick spans only and "
                   "drained at the span barrier",
    }

    def __init__(
        self,
        name: str,
        input_throughput: int = 1,
        output_throughput: int = 1,
        min_latency: int = 1,
        max_transactions: int = 4,
    ):
        super().__init__(name)
        if min_latency < 0:
            raise ValueError("min_latency must be >= 0")
        if max_transactions < 1:
            raise ValueError("max_transactions must be >= 1")
        self.input_throughput = input_throughput
        self.output_throughput = output_throughput
        self.min_latency = min_latency
        self.max_transactions = max_transactions
        self._queue: Deque[Tuple[int, Any]] = deque()  # (visible_cycle, item)
        self._now = 0
        self._pushed_this_cycle = 0
        self._popped_this_cycle = 0
        # Explicit dataflow endpoints.  Bluespec infers producers and
        # consumers from the module connections it compiles; here the
        # builder declares them so FastLint (repro.analysis) can extract
        # the dataflow graph and reject malformed targets before a run.
        self.producer: Optional[Module] = None
        self.consumer: Optional[Module] = None
        # Optional event tracing with triggering (the paper's planned
        # "logging/tracing statistics support with triggering (start,
        # stop and dump logs/traces based on user-specified criteria)",
        # section 4.7).  Disabled by default: tracing is free in FPGA
        # hardware but not on this host.
        self._trace_log: Optional[list] = None
        self._trace_limit = 0
        self._trigger = None
        # Sharded-engine boundary buffer (repro.timing.shard).  When a
        # parallel tick span is active on a cut edge, the coordinator
        # installs a BoundaryOutbox here: pushes are captured (with
        # identical accept/reject semantics and counters) and merged
        # into the queue at the span barrier, so a producer evaluating
        # on another worker never mutates the shared deque mid-span.
        self._outbox = None
        # FastWatch credit conservation (registered here, at
        # construction -- FastLint rule IV001): in-flight transactions
        # never exceed the configured capacity, and per-cycle traffic
        # never exceeds the declared throughput budgets.  The armed
        # bound is an observation-only copy so violation-injection
        # tests can shrink it without touching the FIFO itself.
        self._transactions_limit = max_transactions
        self.new_invariant(
            "credit_conservation",
            check=self._credits_conserved,
            expr="len(m._queue) <= m._transactions_limit"
                 " and m._pushed_this_cycle <= m.input_throughput"
                 " and m._popped_this_cycle <= m.output_throughput",
            hint="idle-stable",
            probe=lambda: float(len(self._queue)),
            desc="in-flight <= max_transactions and per-cycle "
                 "push/pop counts within throughput budgets")

    def _credits_conserved(self) -> bool:
        return (
            len(self._queue) <= self._transactions_limit
            and self._pushed_this_cycle <= self.input_throughput
            and self._popped_this_cycle <= self.output_throughput
        )

    # -- dataflow endpoints -------------------------------------------------

    def bind_endpoints(
        self,
        producer: Optional[Module] = None,
        consumer: Optional[Module] = None,
    ) -> "Connector":
        """Declare which Modules push into and pop from this Connector.

        Either side may be bound later (e.g. the consumer is built after
        the producer); rebinding an already-bound side raises, since a
        Connector joins exactly one producer to one consumer.
        """
        if producer is not None:
            if self.producer is not None and self.producer is not producer:
                raise ValueError(
                    "connector %r already has producer %r" % (self.name, self.producer)
                )
            self.producer = producer
        if consumer is not None:
            if self.consumer is not None and self.consumer is not consumer:
                raise ValueError(
                    "connector %r already has consumer %r" % (self.name, self.consumer)
                )
            self.consumer = consumer
        return self

    @property
    def bound(self) -> bool:
        """True when both endpoints have been declared."""
        return self.producer is not None and self.consumer is not None

    # -- clocking -----------------------------------------------------------

    def bind_tick(self):
        """Pre-bound per-cycle step for the compiled schedule.  The
        schedule clocks every Connector first each cycle (budget reset
        precedes all unit evaluation), mirroring the legacy engine."""
        return self.tick

    def tick(self, cycle: int) -> None:
        """Advance to *cycle*; resets per-cycle throughput budgets."""
        self._now = cycle
        self._pushed_this_cycle = 0
        self._popped_this_cycle = 0

    # -- producer side --------------------------------------------------------

    def can_push(self) -> bool:
        outbox = self._outbox
        if outbox is not None:
            return outbox.can_push()
        return (
            self._pushed_this_cycle < self.input_throughput
            and len(self._queue) < self.max_transactions
        )

    def push(self, item: Any) -> bool:
        """Push one item; returns False if throughput/capacity exhausted."""
        outbox = self._outbox
        if outbox is not None:
            return outbox.push(item)
        if not self.can_push():
            self.bump("push_stalls")
            return False
        self._queue.append((self._now + self.min_latency, item))
        self._pushed_this_cycle += 1
        self.bump("pushes")
        if self._trace_log is not None and (
            self._trigger is None or self._trigger(self._now, item)
        ):
            if len(self._trace_log) < self._trace_limit:
                self._trace_log.append((self._now, item))
        return True

    # -- tracing with triggering (section 4.7) -------------------------

    def start_trace(self, limit: int = 4096, trigger=None) -> None:
        """Begin logging pushed transactions.

        *trigger*, if given, is a ``(cycle, item) -> bool`` predicate
        that selects which transactions to log (the "user-specified
        criteria").  At most *limit* events are retained.
        """
        self._trace_log = []
        self._trace_limit = limit
        self._trigger = trigger

    def stop_trace(self) -> list:
        """Stop logging and return the captured ``(cycle, item)`` events."""
        log = self._trace_log or []
        self._trace_log = None
        self._trigger = None
        return log

    @property
    def tracing(self) -> bool:
        return self._trace_log is not None

    # -- consumer side ----------------------------------------------------------

    def can_pop(self) -> bool:
        if self._popped_this_cycle >= self.output_throughput:
            return False
        if not self._queue:
            return False
        visible, _item = self._queue[0]
        return visible <= self._now

    def peek(self) -> Optional[Any]:
        if not self._queue:
            return None
        visible, item = self._queue[0]
        return item if visible <= self._now else None

    def pop(self) -> Optional[Any]:
        """Pop the oldest visible item, or None."""
        if not self.can_pop():
            return None
        self._popped_this_cycle += 1
        self.bump("pops")
        return self._queue.popleft()[1]

    # -- management ---------------------------------------------------------------

    def flush(self) -> int:
        """Drop everything in flight (pipeline squash).  Returns count."""
        dropped = len(self._queue)
        self._queue.clear()
        self.bump("flushes")
        return dropped

    def drop_if(self, predicate) -> int:
        """Selectively squash items (e.g. wrong-path entries)."""
        kept = deque(
            (visible, item)
            for visible, item in self._queue
            if not predicate(item)
        )
        dropped = len(self._queue) - len(kept)
        self._queue = kept
        return dropped

    def __len__(self) -> int:
        return len(self._queue)

    @property
    def occupancy(self) -> int:
        return len(self._queue)

    def resource_estimate(self):
        # FIFO storage maps to distributed RAM / small BRAMs; the paper
        # notes Connectors are BRAM-hungry before optimization.
        brams = 0
        if self.max_transactions > 4:
            brams = 1 + self.max_transactions // 8
        return {
            "luts": 80 + 10 * self.max_transactions,
            "brams": brams,
        }
