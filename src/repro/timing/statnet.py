"""Statistics-network routing model (section 4.7).

The paper's lesson: "while developing a unified statistics tracing
fabric, a temporary mechanism was implemented in each Module to track
relevant metrics.  Collecting and piping this data out of the FPGA
required significant global routing resources that limited the number
of metrics tracked as well as impacted FPGA timing closure.  We are
developing a tree-based statistics network that will flow back through
the Connectors, ensuring distributed and easy resource routing."

This module prices both schemes over a real Module tree:

* **flat** -- every counter routed point-to-point to the host
  interface: global routing cost grows with (counters x tree depth),
  and timing closure degrades as wires converge on one point;
* **tree** -- counters aggregate hop-by-hop through the module
  hierarchy (the Connectors): each link carries one aggregated stream,
  so routing grows with the number of tree edges.

The shape is what matters: the flat fabric's cost explodes with counter
count while the tree's stays near-linear in module count -- the reason
the paper re-architected it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.timing.module import Module

# Cost constants (arbitrary routing-resource units).
WIRE_PER_HOP = 1.0  # one counter routed across one hierarchy level
TREE_LINK_COST = 4.0  # one aggregation link between parent and child
AGGREGATOR_LUTS = 30  # per-node adder/mux for the tree scheme
# Timing-closure pressure: wires converging on a single endpoint crowd
# the routing channels near it; model as quadratic in endpoint fan-in.
CONGESTION_EXPONENT = 2.0
CONGESTION_SCALE = 1e-3


@dataclass
class StatNetReport:
    scheme: str
    counters: int
    modules: int
    routing_units: float
    aggregator_luts: int
    congestion: float  # timing-closure pressure at the worst endpoint

    @property
    def total_cost(self) -> float:
        return self.routing_units + self.aggregator_luts + self.congestion


def _depths(root: Module) -> Dict[int, int]:
    depths: Dict[int, int] = {}

    def walk(module: Module, depth: int) -> None:
        depths[id(module)] = depth
        for child in module.children:
            walk(child, depth + 1)

    walk(root, 0)
    return depths


def _counter_count(module: Module) -> int:
    # Every stream the FastScope fabric would actually route: the ad hoc
    # bump() counters plus the typed Counter/Gauge/Histogram stats
    # registered at construction.  Pricing the real registered set (not
    # a synthetic per-module estimate) is what makes the flat-vs-tree
    # comparison honest for a given build.
    return len(module._counters) + len(module._stats)


def flat_fabric_cost(root: Module,
                     extra_counters_per_module: int = 0) -> StatNetReport:
    """Every counter wired individually to the host interface."""
    depths = _depths(root)
    counters = 0
    routing = 0.0
    for module in root.walk():
        count = _counter_count(module) + extra_counters_per_module
        counters += count
        routing += count * max(1, depths[id(module)]) * WIRE_PER_HOP
    congestion = CONGESTION_SCALE * (counters ** CONGESTION_EXPONENT)
    return StatNetReport(
        scheme="flat",
        counters=counters,
        modules=sum(1 for _ in root.walk()),
        routing_units=routing,
        aggregator_luts=0,
        congestion=congestion,
    )


def tree_network_cost(root: Module,
                      extra_counters_per_module: int = 0) -> StatNetReport:
    """Counters aggregate through the module hierarchy (the Connectors)."""
    modules = list(root.walk())
    counters = sum(
        _counter_count(m) + extra_counters_per_module for m in modules
    )
    edges = len(modules) - 1
    # Each edge carries one aggregated stream; each node needs a small
    # aggregator.  Congestion is bounded by the widest fan-in, which is
    # the widest child count in the tree rather than the global total.
    widest = max((len(m.children) for m in modules), default=1)
    congestion = CONGESTION_SCALE * (max(1, widest) ** CONGESTION_EXPONENT)
    return StatNetReport(
        scheme="tree",
        counters=counters,
        modules=len(modules),
        routing_units=edges * TREE_LINK_COST,
        aggregator_luts=AGGREGATOR_LUTS * len(modules),
        congestion=congestion,
    )


def compare(root: Module, extra_counters_per_module: int = 0):
    """Return ``(flat, tree)`` reports for the same module tree."""
    return (
        flat_fabric_cost(root, extra_counters_per_module),
        tree_network_cost(root, extra_counters_per_module),
    )


def _merge(reports) -> StatNetReport:
    first = reports[0]
    return StatNetReport(
        scheme=first.scheme,
        counters=sum(r.counters for r in reports),
        modules=sum(r.modules for r in reports),
        routing_units=sum(r.routing_units for r in reports),
        aggregator_luts=sum(r.aggregator_luts for r in reports),
        congestion=max(r.congestion for r in reports),
    )


def compare_modules(roots) -> tuple:
    """``(flat, tree)`` priced across several module trees at once.

    The FastScope fabric spans trees that do not share a root (the
    TimingModel plus the trace-buffer feed on the FM/TM seam); each
    tree routes independently, so costs add -- except congestion, which
    is set by the worst single endpoint.
    """
    flats = []
    trees = []
    for root in roots:
        flat, tree = compare(root)
        flats.append(flat)
        trees.append(tree)
    return _merge(flats), _merge(trees)
