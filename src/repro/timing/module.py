"""Module: the base building block of the timing model.

"The timing model ... is constructed from configurable hierarchical
Modules.  The base Modules consist of structures such as CAMs, FIFOs,
memories, registers and arbiters ... from which are built caches and
load/store queues, from which are built branch predictors ... from which
are built our top-level modules."  (paper section 4)

Modules register named statistics counters; the statistics network
(:mod:`repro.timing.stats`) aggregates them, and the FPGA host model
(:mod:`repro.host.resources`) estimates slice/BRAM usage from the
module tree (Table 2).
"""

from __future__ import annotations

import warnings
from typing import Dict, Iterator, List, Optional, Tuple


class DuplicateModuleNameWarning(UserWarning):
    """Two siblings share a name: their statistics paths collide."""


class Module:
    """Base class: named, hierarchical, with statistics counters.

    Subclasses call :meth:`add_child` for sub-modules and
    :meth:`counter`/:meth:`bump` for statistics.
    """

    def __init__(self, name: str):
        self.name = name
        self._children: List["Module"] = []
        self._counters: Dict[str, int] = {}

    # -- hierarchy -------------------------------------------------------

    def add_child(self, child: "Module") -> "Module":
        # Sibling names must be unique: all_counters() keys by path, so
        # two children named "l1" would silently merge their statistics,
        # and find() would only ever see the first.  FastLint reports
        # this as TG003; the warning catches it at construction time.
        if any(existing.name == child.name for existing in self._children):
            warnings.warn(
                "module %r already has a child named %r; statistics paths "
                "and find() lookups will collide" % (self.name, child.name),
                DuplicateModuleNameWarning,
                stacklevel=2,
            )
        self._children.append(child)
        return child

    @property
    def children(self) -> Tuple["Module", ...]:
        return tuple(self._children)

    def walk(self) -> Iterator["Module"]:
        """Depth-first iteration over this module and all descendants."""
        yield self
        for child in self._children:
            yield from child.walk()

    def walk_paths(self, prefix: str = "") -> Iterator[Tuple[str, "Module"]]:
        """Depth-first ``(slash/separated/path, module)`` pairs."""
        path = prefix + self.name
        yield path, self
        for child in self._children:
            yield from child.walk_paths(path + "/")

    def find(self, name: str) -> Optional["Module"]:
        for module in self.walk():
            if module.name == name:
                return module
        return None

    # -- statistics ---------------------------------------------------------

    def counter(self, name: str) -> int:
        return self._counters.get(name, 0)

    def bump(self, name: str, amount: int = 1) -> None:
        self._counters[name] = self._counters.get(name, 0) + amount

    def counters(self) -> Dict[str, int]:
        return dict(self._counters)

    def all_counters(self, prefix: str = "") -> Dict[str, int]:
        """Flattened ``module.path/counter`` -> value map for the tree."""
        path = prefix + self.name
        out = {path + "/" + key: value for key, value in self._counters.items()}
        for child in self._children:
            out.update(child.all_counters(path + "/"))
        return out

    def reset_counters(self) -> None:
        for module in self.walk():
            module._counters.clear()

    # -- host resource estimation (overridden where meaningful) --------------

    def resource_estimate(self) -> Dict[str, int]:
        """Rough FPGA cost of this module alone: ``{"luts": n, "brams": m}``.

        Subclasses with real storage override this; the default charges a
        small fixed control cost.
        """
        return {"luts": 50, "brams": 0}

    def __repr__(self) -> str:
        return "<%s %r>" % (type(self).__name__, self.name)
