"""Module: the base building block of the timing model.

"The timing model ... is constructed from configurable hierarchical
Modules.  The base Modules consist of structures such as CAMs, FIFOs,
memories, registers and arbiters ... from which are built caches and
load/store queues, from which are built branch predictors ... from which
are built our top-level modules."  (paper section 4)

Modules register named statistics counters; the statistics network
(:mod:`repro.timing.stats`) aggregates them, and the FPGA host model
(:mod:`repro.host.resources`) estimates slice/BRAM usage from the
module tree (Table 2).
"""

from __future__ import annotations

import warnings
from typing import Callable, Dict, Iterator, List, Optional, Tuple


class DuplicateModuleNameWarning(UserWarning):
    """Two siblings share a name: their statistics paths collide."""


class Module:
    """Base class: named, hierarchical, with statistics counters.

    Subclasses call :meth:`add_child` for sub-modules and
    :meth:`counter`/:meth:`bump` for statistics.
    """

    def __init__(self, name: str):
        self.name = name
        self._children: List["Module"] = []
        self._child_names: set = set()
        self._counters: Dict[str, int] = {}

    # -- hierarchy -------------------------------------------------------

    def add_child(self, child: "Module") -> "Module":
        # Sibling names must be unique: all_counters() keys by path, so
        # two children named "l1" would silently merge their statistics,
        # and find() would only ever see the first.  FastLint reports
        # this as TG003; the warning catches it at construction time.
        # The per-parent name set keeps insertion O(1) regardless of how
        # wide the module (a big cache's bank array, say) gets.
        if child.name in self._child_names:
            warnings.warn(
                "module %r already has a child named %r; statistics paths "
                "and find() lookups will collide" % (self.name, child.name),
                DuplicateModuleNameWarning,
                stacklevel=2,
            )
        self._children.append(child)
        self._child_names.add(child.name)
        return child

    @property
    def children(self) -> Tuple["Module", ...]:
        return tuple(self._children)

    def walk(self) -> Iterator["Module"]:
        """Depth-first (preorder) iteration over this module and all
        descendants.  Iterative: deep trees neither recurse per level
        nor chain one generator frame per ancestor."""
        stack: List["Module"] = [self]
        while stack:
            module = stack.pop()
            yield module
            stack.extend(reversed(module._children))

    def walk_paths(self, prefix: str = "") -> Iterator[Tuple[str, "Module"]]:
        """Depth-first ``(slash/separated/path, module)`` pairs, in the
        same preorder as :meth:`walk`."""
        stack: List[Tuple[str, "Module"]] = [(prefix + self.name, self)]
        while stack:
            path, module = stack.pop()
            yield path, module
            child_prefix = path + "/"
            stack.extend(
                (child_prefix + child.name, child)
                for child in reversed(module._children)
            )

    def find(self, name: str) -> Optional["Module"]:
        for module in self.walk():
            if module.name == name:
                return module
        return None

    # -- statistics ---------------------------------------------------------

    def counter(self, name: str) -> int:
        return self._counters.get(name, 0)

    def bump(self, name: str, amount: int = 1) -> None:
        self._counters[name] = self._counters.get(name, 0) + amount

    def counters(self) -> Dict[str, int]:
        return dict(self._counters)

    def all_counters(self, prefix: str = "") -> Dict[str, int]:
        """Flattened ``module.path/counter`` -> value map for the tree."""
        out: Dict[str, int] = {}
        for path, module in self.walk_paths(prefix):
            counter_prefix = path + "/"
            for key, value in module._counters.items():
                out[counter_prefix + key] = value
        return out

    def reset_counters(self) -> None:
        for module in self.walk():
            module._counters.clear()

    # -- static scheduling (repro.timing.schedule) ------------------------

    def bind_tick(self) -> Optional[Callable[[int], None]]:
        """Return this module's per-cycle step as a pre-bound
        ``cycle -> None`` callable, or ``None`` if the module has no
        per-cycle behaviour of its own.

        The compiled tick engine calls this once, at schedule-compile
        time, for every module in the tree; modules that need per-cycle
        evaluation (the pipeline front/back ends, Connectors) override
        it.  A module that overrides ``bind_tick`` but is not reachable
        through the dataflow graph is a scheduling blind spot -- FastLint
        reports it as TG006.
        """
        return None

    # -- host resource estimation (overridden where meaningful) --------------

    def resource_estimate(self) -> Dict[str, int]:
        """Rough FPGA cost of this module alone: ``{"luts": n, "brams": m}``.

        Subclasses with real storage override this; the default charges a
        small fixed control cost.
        """
        return {"luts": 50, "brams": 0}

    def __repr__(self) -> str:
        return "<%s %r>" % (type(self).__name__, self.name)
