"""Module: the base building block of the timing model.

"The timing model ... is constructed from configurable hierarchical
Modules.  The base Modules consist of structures such as CAMs, FIFOs,
memories, registers and arbiters ... from which are built caches and
load/store queues, from which are built branch predictors ... from which
are built our top-level modules."  (paper section 4)

Modules register named statistics counters; the statistics network
(:mod:`repro.timing.stats`) aggregates them, and the FPGA host model
(:mod:`repro.host.resources`) estimates slice/BRAM usage from the
module tree (Table 2).
"""

from __future__ import annotations

import bisect
import warnings
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple


class DuplicateModuleNameWarning(UserWarning):
    """Two siblings share a name: their statistics paths collide."""


class StatRegistrationError(ValueError):
    """A typed statistic was registered twice under one name."""


class InvariantRegistrationError(ValueError):
    """A typed invariant was registered twice under one name."""


class Invariant:
    """A machine-checkable structural property owned by one Module.

    The FastWatch monitor (:mod:`repro.observability.watch`) walks the
    module tree, compiles every registered invariant into a single
    per-cycle probe and evaluates it after each executed target cycle.
    ``check`` is a zero-argument predicate returning True while the
    invariant holds; it must be observation-only (FastLint rule IV002)
    because it runs on the live simulation state.  ``probe``, if given,
    supplies the observed scalar recorded when the invariant fires.

    *hint* mirrors the cycle-listener idle hints consumed by the
    compiled engine: ``"idle-stable"`` declares the invariant cannot
    change state during a quiescent (idle/halted) span, an int bounds
    how many idle cycles may be skipped between evaluations, and a
    zero-arg callable computes that bound lazily.  A hintless invariant
    pins the monitor to single-cycle stepping (FastLint rule IV003).

    *expr*, if given, is the check as a Python expression string over
    the single free name ``m`` (the owning module).  The monitor
    inlines every expr into one fused per-cycle closure -- the same
    move the compiled engine makes for module ticks -- so the always-on
    hot path is a single Python call instead of one per invariant.  An
    expr must be observationally equivalent to ``check`` (the monitor
    cross-validates when armed with ``selfcheck=True``) and, like the
    check, side-effect free.

    Like stats, invariants must be registered at construction time
    (FastLint rule IV001) so every run checks the same lattice.
    """

    __slots__ = ("name", "check", "hint", "probe", "desc", "expr")
    kind = "invariant"

    def __init__(self, name: str, check: Callable[[], bool],
                 hint=None, probe: Optional[Callable[[], float]] = None,
                 desc: str = "", expr: Optional[str] = None):
        self.name = name
        self.check = check
        self.hint = hint
        self.probe = probe
        self.desc = desc
        self.expr = expr

    def holds(self) -> bool:
        return bool(self.check())

    def __repr__(self) -> str:
        return "<Invariant %r>" % (self.name,)


class Stat:
    """A typed, named statistic owned by one :class:`Module`.

    The FastScope fabric (:mod:`repro.observability`) walks the module
    tree, snapshots every registered stat per sampling window and
    aggregates the values hop-by-hop toward the root -- the software
    realization of the paper's tree-based statistics network (§4.7).
    Stats must be registered at construction time (FastLint rule ST002)
    so every sampling window observes the same set of streams.
    """

    __slots__ = ("name", "desc")
    kind = "stat"

    def __init__(self, name: str, desc: str = ""):
        self.name = name
        self.desc = desc

    def value(self) -> float:
        """Current scalar value (counters: cumulative; gauges: level)."""
        raise NotImplementedError

    def reset(self) -> None:
        raise NotImplementedError

    def __repr__(self) -> str:
        return "<%s %r=%r>" % (type(self).__name__, self.name, self.value())


class Counter(Stat):
    """A monotonically-increasing event count."""

    __slots__ = ("count",)
    kind = "counter"

    def __init__(self, name: str, desc: str = ""):
        super().__init__(name, desc)
        self.count = 0

    def add(self, amount: int = 1) -> None:
        self.count += amount

    def value(self) -> float:
        return self.count

    def reset(self) -> None:
        self.count = 0


class Gauge(Stat):
    """A point-in-time level, either set explicitly or probed lazily.

    A probed gauge costs nothing on the simulation hot path: the probe
    runs only when a sampling window closes (dedicated statistics
    hardware is free on an FPGA; on this host, laziness is the
    equivalent).
    """

    __slots__ = ("probe", "_value")
    kind = "gauge"

    def __init__(self, name: str, probe: Optional[Callable[[], float]] = None,
                 desc: str = ""):
        super().__init__(name, desc)
        self.probe = probe
        self._value = 0.0

    def set(self, value: float) -> None:
        self._value = value

    def value(self) -> float:
        if self.probe is not None:
            return self.probe()
        return self._value

    def reset(self) -> None:
        self._value = 0.0


class Histogram(Stat):
    """A bucketed distribution of observed values.

    *bounds* are the inclusive upper edges of the finite buckets; one
    overflow bucket is appended.  ``value()`` reports the observation
    count so histograms aggregate like counters in the fabric; the
    buckets ride along in window snapshots.
    """

    __slots__ = ("bounds", "buckets", "count", "total")
    kind = "histogram"

    def __init__(self, name: str, bounds: Sequence[float], desc: str = ""):
        super().__init__(name, desc)
        if list(bounds) != sorted(bounds):
            raise ValueError("histogram bounds must be sorted")
        self.bounds: Tuple[float, ...] = tuple(bounds)
        self.buckets: List[int] = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0

    def observe(self, value: float) -> None:
        self.buckets[bisect.bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value

    def value(self) -> float:
        return self.count

    def reset(self) -> None:
        self.buckets = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0


class Module:
    """Base class: named, hierarchical, with statistics counters.

    Subclasses call :meth:`add_child` for sub-modules and
    :meth:`counter`/:meth:`bump` for statistics.
    """

    # Declared shard seams: attribute/hook name -> rationale.  The
    # FastPart effect analyzer (repro.analysis.effects) treats every
    # attribute listed here as an *intentional* shared-state seam --
    # accesses to it are recorded but excluded from cross-shard race
    # detection, and stored-callable hooks named here do not trigger
    # rule SH004.  Subclass declarations merge over the MRO; declare
    # only state whose cross-shard ordering is genuinely benign (e.g.
    # observability hooks never consulted for simulation decisions).
    shard_seams: Dict[str, str] = {}

    @classmethod
    def declared_shard_seams(cls) -> Dict[str, str]:
        """The merged ``shard_seams`` declarations of this class and
        every base, most-derived declaration winning."""
        merged: Dict[str, str] = {}
        for klass in reversed(cls.__mro__):
            declared = klass.__dict__.get("shard_seams")
            if declared:
                merged.update(declared)
        return merged

    def __init__(self, name: str):
        self.name = name
        self._children: List["Module"] = []
        self._child_names: set = set()
        self._counters: Dict[str, int] = {}
        # Typed stats (Counter/Gauge/Histogram) registered at
        # construction; the FastScope fabric snapshots these per window.
        self._stats: Dict[str, Stat] = {}
        # Typed invariants registered at construction; the FastWatch
        # monitor compiles these into its per-cycle probe.
        self._invariants: Dict[str, Invariant] = {}

    # -- hierarchy -------------------------------------------------------

    def add_child(self, child: "Module") -> "Module":
        # Sibling names must be unique: all_counters() keys by path, so
        # two children named "l1" would silently merge their statistics,
        # and find() would only ever see the first.  FastLint reports
        # this as TG003; the warning catches it at construction time.
        # The per-parent name set keeps insertion O(1) regardless of how
        # wide the module (a big cache's bank array, say) gets.
        if child.name in self._child_names:
            warnings.warn(
                "module %r already has a child named %r; statistics paths "
                "and find() lookups will collide" % (self.name, child.name),
                DuplicateModuleNameWarning,
                stacklevel=2,
            )
        self._children.append(child)
        self._child_names.add(child.name)
        return child

    @property
    def children(self) -> Tuple["Module", ...]:
        return tuple(self._children)

    def walk(self) -> Iterator["Module"]:
        """Depth-first (preorder) iteration over this module and all
        descendants.  Iterative: deep trees neither recurse per level
        nor chain one generator frame per ancestor."""
        stack: List["Module"] = [self]
        while stack:
            module = stack.pop()
            yield module
            stack.extend(reversed(module._children))

    def walk_paths(self, prefix: str = "") -> Iterator[Tuple[str, "Module"]]:
        """Depth-first ``(slash/separated/path, module)`` pairs, in the
        same preorder as :meth:`walk`."""
        stack: List[Tuple[str, "Module"]] = [(prefix + self.name, self)]
        while stack:
            path, module = stack.pop()
            yield path, module
            child_prefix = path + "/"
            stack.extend(
                (child_prefix + child.name, child)
                for child in reversed(module._children)
            )

    def find(self, name: str) -> Optional["Module"]:
        for module in self.walk():
            if module.name == name:
                return module
        return None

    # -- statistics ---------------------------------------------------------

    def counter(self, name: str) -> int:
        return self._counters.get(name, 0)

    def bump(self, name: str, amount: int = 1) -> None:
        self._counters[name] = self._counters.get(name, 0) + amount

    def counters(self) -> Dict[str, int]:
        return dict(self._counters)

    def all_counters(self, prefix: str = "") -> Dict[str, int]:
        """Flattened ``module.path/counter`` -> value map for the tree."""
        out: Dict[str, int] = {}
        for path, module in self.walk_paths(prefix):
            counter_prefix = path + "/"
            for key, value in module._counters.items():
                out[counter_prefix + key] = value
        return out

    def reset_counters(self) -> None:
        for module in self.walk():
            module._counters.clear()

    # -- typed statistics (the FastScope fabric, §4.7) --------------------

    def register_stat(self, stat: Stat) -> Stat:
        """Register a typed stat on this module.

        Registration must happen during construction (FastLint rule
        ST002): the fabric's first sampling window baselines every
        registered stream, and the statnet routing model prices the
        fabric from the registered set.
        """
        if stat.name in self._stats:
            raise StatRegistrationError(
                "module %r already registers a stat named %r"
                % (self.name, stat.name)
            )
        self._stats[stat.name] = stat
        return stat

    def new_counter(self, name: str, desc: str = "") -> Counter:
        counter = Counter(name, desc)
        self.register_stat(counter)
        return counter

    def new_gauge(self, name: str, probe: Optional[Callable[[], float]] = None,
                  desc: str = "") -> Gauge:
        gauge = Gauge(name, probe, desc)
        self.register_stat(gauge)
        return gauge

    def new_histogram(self, name: str, bounds: Sequence[float],
                      desc: str = "") -> Histogram:
        histogram = Histogram(name, bounds, desc)
        self.register_stat(histogram)
        return histogram

    def stat(self, name: str) -> Optional[Stat]:
        return self._stats.get(name)

    # -- typed invariants (the FastWatch fabric) --------------------------

    def register_invariant(self, invariant: Invariant) -> Invariant:
        """Register a typed invariant on this module.

        Registration must happen during construction (FastLint rule
        IV001): the FastWatch monitor compiles the invariant lattice
        once, when it arms, and every armed run must check the same
        set.
        """
        if invariant.name in self._invariants:
            raise InvariantRegistrationError(
                "module %r already registers an invariant named %r"
                % (self.name, invariant.name)
            )
        self._invariants[invariant.name] = invariant
        return invariant

    def new_invariant(self, name: str, check: Callable[[], bool],
                      hint=None,
                      probe: Optional[Callable[[], float]] = None,
                      desc: str = "",
                      expr: Optional[str] = None) -> Invariant:
        invariant = Invariant(name, check, hint=hint, probe=probe,
                              desc=desc, expr=expr)
        self.register_invariant(invariant)
        return invariant

    def invariant(self, name: str) -> Optional[Invariant]:
        return self._invariants.get(name)

    def invariants_registry(self) -> Dict[str, Invariant]:
        return dict(self._invariants)

    def all_invariants(self, prefix: str = "") -> Dict[str, Invariant]:
        """Flattened ``module.path/invariant`` -> Invariant map."""
        out: Dict[str, Invariant] = {}
        for path, module in self.walk_paths(prefix):
            inv_prefix = path + "/"
            for name, invariant in module._invariants.items():
                out[inv_prefix + name] = invariant
        return out

    def stats_registry(self) -> Dict[str, Stat]:
        return dict(self._stats)

    def all_stats(self, prefix: str = "") -> Dict[str, Stat]:
        """Flattened ``module.path/stat`` -> Stat map for the tree."""
        out: Dict[str, Stat] = {}
        for path, module in self.walk_paths(prefix):
            stat_prefix = path + "/"
            for name, stat in module._stats.items():
                out[stat_prefix + name] = stat
        return out

    # -- static scheduling (repro.timing.schedule) ------------------------

    def bind_tick(self) -> Optional[Callable[[int], None]]:
        """Return this module's per-cycle step as a pre-bound
        ``cycle -> None`` callable, or ``None`` if the module has no
        per-cycle behaviour of its own.

        The compiled tick engine calls this once, at schedule-compile
        time, for every module in the tree; modules that need per-cycle
        evaluation (the pipeline front/back ends, Connectors) override
        it.  A module that overrides ``bind_tick`` but is not reachable
        through the dataflow graph is a scheduling blind spot -- FastLint
        reports it as TG006.
        """
        return None

    # -- host resource estimation (overridden where meaningful) --------------

    def resource_estimate(self) -> Dict[str, int]:
        """Rough FPGA cost of this module alone: ``{"luts": n, "brams": m}``.

        Subclasses with real storage override this; the default charges a
        small fixed control cost.
        """
        return {"luts": 50, "brams": 0}

    def __repr__(self) -> str:
        return "<%s %r>" % (type(self).__name__, self.name)
