"""The instruction-feed interface between functional and timing models.

The timing model consumes trace entries *in fetch order* through this
interface and drives path changes through it.  The two concrete feeds
are the point of the paper:

* :class:`~repro.baselines.timing_directed.LockStepFeed` executes the
  functional model exactly when the timing model fetches (the
  Asim/Timing-First structure: a round trip per fetch), and
* :class:`~repro.fast.trace_buffer.TraceBufferFeed` lets the functional
  model run ahead speculatively through a trace buffer, paying
  round-trips only on mis-speculation and resolution (the FAST
  structure).

Both wrap the same functional model and must deliver identical streams;
the cycle-equivalence tests rely on that.
"""

from __future__ import annotations

from typing import Optional

from repro.functional.trace import TraceEntry


class InstructionFeed:
    """What the timing model needs from the functional side."""

    # Optional FastScope event tracer (repro.observability.events).  A
    # feed that implements seam events emits through this when it is
    # non-None; it must never be consulted for feed decisions, so any
    # feed stays bit-identical with tracing on or off.
    tracer = None

    def peek(self) -> Optional[TraceEntry]:
        """Next fetch-order entry, or None (CPU halted / shut down)."""
        raise NotImplementedError

    def consume(self) -> TraceEntry:
        """Consume the entry last returned by :meth:`peek`."""
        raise NotImplementedError

    def force_wrong_path(self, branch_in_no: int, wrong_pc: int) -> None:
        """The fetched branch was mispredicted: produce wrong-path
        instructions starting at *wrong_pc* (paper: ``set_pc``)."""
        raise NotImplementedError

    def resolve_wrong_path(self, branch_in_no: int, actual_pc: int) -> None:
        """The branch resolved: resume the correct path at *actual_pc*."""
        raise NotImplementedError

    def commit(self, in_no: int) -> None:
        """Instruction *in_no* committed: rollback resources may be
        released."""
        raise NotImplementedError

    def interrupt_delivery(self, after_in: int, line: int):
        """A timing-model-generated interrupt arrives at the commit
        boundary after *after_in* (cycle-driven interrupt mode,
        section 3.4).  Returns ``(taken, replayed)`` from the FM."""
        raise NotImplementedError

    def idle_tick(self) -> None:
        """One target cycle passed with nothing to fetch (HALT): let
        device time advance so an interrupt can eventually arrive."""
        raise NotImplementedError

    # -- idle fast-forward (compiled tick engine) -----------------------

    def idle_horizon(self) -> int:
        """How many *further* idle target cycles are guaranteed to be
        uneventful.

        ``k > 0`` promises that the next ``k`` calls to :meth:`idle_tick`
        would each return nothing to fetch and wake no instruction
        stream, so the compiled engine may batch them into one
        :meth:`idle_ticks` call.  The contract is one-sided: a feed may
        always *under*-estimate (0 disables batching entirely -- the
        default, so feeds that predate the compiled engine stay
        correct), but must never overestimate, or the batched run would
        skip a wake-up the legacy engine sees.
        """
        return 0

    def idle_ticks(self, count: int) -> None:
        """Advance *count* idle cycles at once.  Only called with
        ``count <= idle_horizon()``; the default just loops."""
        for _ in range(count):
            self.idle_tick()

    @property
    def finished(self) -> bool:
        """True once the simulated system has shut down."""
        raise NotImplementedError


class NullFeed(InstructionFeed):
    """A feed with no instructions: the CPU is already shut down.

    Used to instantiate a timing model for structural inspection
    (FastLint's graph extraction, resource estimation) without wiring a
    functional model behind it.
    """

    def peek(self) -> Optional[TraceEntry]:
        return None

    def idle_tick(self) -> None:
        pass

    @property
    def finished(self) -> bool:
        return True
