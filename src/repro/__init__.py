"""FAST reproduction: fast, full-system, cycle-accurate simulators.

This package reproduces "FPGA-Accelerated Simulation Technologies
(FAST): Fast, Full-System, Cycle-Accurate Simulators" (Chiou et al.,
MICRO 2007) in pure Python.  See DESIGN.md for the system inventory and
EXPERIMENTS.md for the reproduced tables and figures.

Most users want::

    from repro import FastSimulator, UserProgram

    sim = FastSimulator.from_programs([UserProgram("app", SOURCE)])
    result = sim.run()
"""

from repro.fast.simulator import FastSimulator, SimulationResult
from repro.kernel.image import UserProgram
from repro.timing.core import TimingConfig, TimingModel, TimingStats

__version__ = "1.0.0"

__all__ = [
    "FastSimulator",
    "SimulationResult",
    "TimingConfig",
    "TimingModel",
    "TimingStats",
    "UserProgram",
    "__version__",
]
