"""The paper's worked analytical examples (sections 3.1 and 4.5).

Each function returns the modeled performance for one of the numbers
quoted in the text, so the benchmark suite can check them digit for
digit:

* naive FPGA L1 iCache on a 10 MIPS software simulator -> 1.8 MIPS
* the same with an infinitely fast software simulator  -> 2.1 MIPS
* FAST partitioning (92 % BP, 20 % branches)            -> 8.7 MIPS
* FAST with 1000 ns rollback overhead                   -> 6.8 MIPS
* section 4.5 prototype arithmetic: 2139 ns per 10 instructions
  -> 4.7 MIPS, matching the measured 4.6 MIPS run
"""

from __future__ import annotations

from repro.analytical.model import (
    PartitionedSimulatorModel,
    fast_round_trip_fraction,
)

NS = 1e-9

# Shared parameters from the text.
SW_SIM_NS = 100.0  # a 10 MIPS software simulator, IPC 1
DRC_READ_NS = 469.0
ROLLBACK_NS = 1000.0  # ~5 instructions/block + 5 re-executed
BP_ACCURACY = 0.92
BRANCH_RATIO = 0.20


def naive_fpga_icache_mips() -> float:
    """FPGA L1 iCache queried every instruction: 1/(100ns+469ns)."""
    model = PartitionedSimulatorModel(
        t_a=SW_SIM_NS * NS, t_b=0.0, f=1.0, l_rt=DRC_READ_NS * NS
    )
    return model.mips()


def naive_fpga_icache_infinite_sw_mips() -> float:
    """Even an infinitely fast simulator caps at 1/469ns = 2.1 MIPS."""
    model = PartitionedSimulatorModel(
        t_a=0.0, t_b=0.0, f=1.0, l_rt=DRC_READ_NS * NS
    )
    return model.mips()


def fast_partitioning_mips() -> float:
    """F = 0.08 * 0.2 * 2 = 0.032: 1/(100ns + 0.032*469ns) = 8.7 MIPS."""
    f = fast_round_trip_fraction(BP_ACCURACY, BRANCH_RATIO)
    model = PartitionedSimulatorModel(
        t_a=SW_SIM_NS * NS, t_b=0.0, f=f, l_rt=DRC_READ_NS * NS
    )
    return model.mips()


def fast_with_rollback_mips() -> float:
    """Adding alpha = 1000 ns of rollback work: 6.8 MIPS."""
    f = fast_round_trip_fraction(BP_ACCURACY, BRANCH_RATIO)
    model = PartitionedSimulatorModel(
        t_a=SW_SIM_NS * NS,
        t_b=0.0,
        f=f,
        l_rt=DRC_READ_NS * NS,
        alpha_aa=ROLLBACK_NS * NS,
    )
    return model.mips()


def prototype_bottleneck_mips(
    fm_ns_per_instr: float = 87.0,
    poll_read_ns: float = DRC_READ_NS,
    trace_write_ns_per_block_pair: float = 800.0,
    instructions_per_block_pair: int = 10,
) -> float:
    """Section 4.5 arithmetic: 10 * 87ns + 469ns + 800ns = 2139 ns per
    ten instructions -> 4.7 MIPS (measured: 4.6 MIPS)."""
    per_pair = (
        instructions_per_block_pair * fm_ns_per_instr
        + poll_read_ns
        + trace_write_ns_per_block_pair
    )
    per_instr = per_pair / instructions_per_block_pair
    return 1e3 / per_instr  # ns/instr -> MIPS


def coherent_projection_mips(
    fm_ns_per_instr: float = 87.0,
    poll_ns_per_instr: float = 1.2,
    bp_accuracy: float = 0.95,
    rollback_ns: float = 4000.0,
    branch_ratio: float = BRANCH_RATIO,
) -> float:
    """The coherent-HyperTransport projection: poll cost collapses to
    ~1.2 ns/instruction, leaving FM speed and rollbacks; the paper says
    this "should achieve performance very similar to the soft timing
    model, 95% BP performance of 5.9 MIPS".  The measured software
    rollback cost (checkpoint restore + re-execution) calibrates to
    ~4 us per mis-speculation event at that data point."""
    f = fast_round_trip_fraction(bp_accuracy, branch_ratio)
    per_instr = fm_ns_per_instr + poll_ns_per_instr + f * rollback_ns
    return 1e3 / per_instr
