"""Section 3.1: the Amdahl-style analytical model of partitioned
simulator performance.

Partition the simulator into components A and B running in parallel,
with T_A and T_B seconds per target cycle (including one-way
communication).  Round trips happen on a fraction F of cycles, cost
L_rt each, plus per-side extra work alpha:

    C_A = 1 / (T_A + F * (L_rt + alpha_AA + alpha_BA))

and the simulator rate is min(C_A, C_B).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PartitionedSimulatorModel:
    """The two-component analytical model, in seconds."""

    t_a: float  # component A seconds/target-cycle (e.g. software FM)
    t_b: float  # component B seconds/target-cycle (e.g. FPGA TM)
    f: float  # round trips per target cycle (fraction)
    l_rt: float  # round-trip latency, seconds
    alpha_aa: float = 0.0  # extra work on A for an A-initiated round trip
    alpha_ba: float = 0.0  # extra work on B for an A-initiated round trip
    alpha_ab: float = 0.0  # extra work on A for a B-initiated round trip
    alpha_bb: float = 0.0  # extra work on B for a B-initiated round trip

    def rate_a(self) -> float:
        """C_A: target cycles per second A can sustain."""
        denom = self.t_a + self.f * (self.l_rt + self.alpha_aa + self.alpha_ba)
        return 1.0 / denom if denom > 0 else float("inf")

    def rate_b(self) -> float:
        denom = self.t_b + self.f * (self.l_rt + self.alpha_bb + self.alpha_ab)
        return 1.0 / denom if denom > 0 else float("inf")

    def cycles_per_second(self) -> float:
        """The simulator rate: min(C_A, C_B)."""
        return min(self.rate_a(), self.rate_b())

    def mips(self, target_ipc: float = 1.0) -> float:
        """Simulated MIPS assuming *target_ipc* instructions per cycle."""
        return self.cycles_per_second() * target_ipc / 1e6


def fast_round_trip_fraction(
    bp_accuracy: float, branch_ratio: float
) -> float:
    """F for a FAST simulator: a round trip for each mis-speculation and
    each resolution (the paper's factor of two):

        F = (1 - accuracy) * branch_ratio * 2
    """
    if not 0.0 <= bp_accuracy <= 1.0:
        raise ValueError("bp_accuracy must be in [0, 1]")
    if not 0.0 <= branch_ratio <= 1.0:
        raise ValueError("branch_ratio must be in [0, 1]")
    return (1.0 - bp_accuracy) * branch_ratio * 2.0
