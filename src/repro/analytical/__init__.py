"""Section 3.1 analytical performance model and worked examples."""

from repro.analytical.model import (
    PartitionedSimulatorModel,
    fast_round_trip_fraction,
)
from repro.analytical import scenarios

__all__ = [
    "PartitionedSimulatorModel",
    "fast_round_trip_fraction",
    "scenarios",
]
