"""Programmable interval timer.

FastOS programs the interval and enables the timer during boot; the
timer raises IRQ 0 each time the interval elapses.  The *unit* of time
is whatever the simulation driver ticks the bus with -- committed
instructions for a standalone functional model, target cycles when a
timing model is attached ("the timing model generates interrupts for
reproducibility", paper section 3.4).
"""

from __future__ import annotations

from repro.system.devices import Device
from repro.system.interrupt_controller import IRQ_TIMER, InterruptController

PORT_CTRL = 0x20  # bit 0: enable
PORT_INTERVAL = 0x21
PORT_COUNT = 0x22  # read-only: units since last fire


class Timer(Device):
    name = "timer"
    irq_line = IRQ_TIMER

    def __init__(self, intctrl: InterruptController, interval: int = 10000,
                 external: bool = False):
        self._intctrl = intctrl
        self.enabled = False
        self.interval = interval
        self.count = 0
        self.fires = 0
        # External mode: the simulation coordinator fires the timer from
        # *target cycles* ("the timing model generates interrupts for
        # reproducibility", paper section 3.4) instead of device ticks.
        self.external = external

    def ports(self):
        return (PORT_CTRL, PORT_INTERVAL, PORT_COUNT)

    def read_port(self, port: int) -> int:
        if port == PORT_CTRL:
            return 1 if self.enabled else 0
        if port == PORT_INTERVAL:
            return self.interval
        if port == PORT_COUNT:
            return self.count
        return 0

    def write_port(self, port: int, value: int) -> None:
        if port == PORT_CTRL:
            self.enabled = bool(value & 1)
        elif port == PORT_INTERVAL:
            self.interval = max(1, value)

    def tick(self, units: int) -> None:
        if not self.enabled or self.external:
            return
        self.count += units
        while self.count >= self.interval:
            self.count -= self.interval
            self.fires += 1
            self._intctrl.raise_irq(IRQ_TIMER)

    def ticks_until_irq(self, enabled_mask: int):
        if not self.enabled or self.external:
            return None
        if not (enabled_mask >> IRQ_TIMER) & 1:
            return None
        return max(1, self.interval - self.count)

    def ticks_until_dma(self):
        return None  # the timer never touches memory

    def snapshot(self):
        return (self.enabled, self.interval, self.count, self.fires,
                self.external)

    def restore(self, state) -> None:
        (self.enabled, self.interval, self.count, self.fires,
         self.external) = state
