"""Disk timing model: rotational position, seek distance, buffering.

"Accurate disk modeling can be achieved by tracking rotational speed,
head position, buffers, and whether the disk is accelerating or
decelerating.  Thus, FAST simulators are capable of system
cycle-accuracy and not just processor cycle-accuracy."  (section 3.4)

This model computes a per-command latency (in device time units) from
the head's track position and the platter's rotational phase, instead
of the fixed delay the simple disk uses.  It is deterministic given the
command sequence, so the FAST/lock-step cycle-equivalence invariant is
preserved.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class RotationalDiskModel:
    """Seek + rotate + transfer latency, in device time units.

    The default calibration makes a sequential read cost about the
    simple disk's fixed 2000 units while a worst-case seek costs
    several times that -- enough spread to matter to workloads.
    """

    sectors_per_track: int = 16
    units_per_rev: int = 4000  # rotational period
    seek_units_per_track: int = 120
    min_seek_units: int = 300  # head settle time
    transfer_units_per_sector: int = 250
    buffer_tracks: int = 1  # track buffer: re-reads are nearly free
    buffer_hit_units: int = 50

    def __post_init__(self):
        self._head_track = 0
        self._phase = 0  # rotational position, in units
        self._buffered_track = -1

    def track_of(self, sector: int) -> int:
        return sector // self.sectors_per_track

    def latency(self, sector: int, now: int) -> int:
        """Latency for a command issued at device time *now*."""
        track = self.track_of(sector)
        if track == self._buffered_track:
            return self.buffer_hit_units
        # Seek.
        distance = abs(track - self._head_track)
        seek = self.min_seek_units + distance * self.seek_units_per_track if (
            distance
        ) else 0
        # Rotation: wait for the target sector to come around.
        sector_angle = (
            (sector % self.sectors_per_track)
            * self.units_per_rev
            // self.sectors_per_track
        )
        arrival = (now + seek) % self.units_per_rev
        rotate = (sector_angle - arrival) % self.units_per_rev
        total = seek + rotate + self.transfer_units_per_sector
        # Update mechanical state deterministically.
        self._head_track = track
        self._buffered_track = track
        self._phase = (arrival + rotate) % self.units_per_rev
        return total

    def snapshot(self):
        return (self._head_track, self._phase, self._buffered_track)

    def restore(self, state) -> None:
        self._head_track, self._phase, self._buffered_track = state
