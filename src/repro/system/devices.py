"""Device model base class.

Devices hang off the :class:`~repro.system.bus.IOBus` and are visible to
software through IN/OUT ports.  Every device must be snapshot-able so
the functional model can roll back "including across I/O operations"
(paper section 3.2), and deterministic so re-execution after a rollback
reproduces identical device responses.
"""

from __future__ import annotations

from typing import Optional


class Device:
    """Base class for all simulated devices."""

    name = "device"
    irq_line: Optional[int] = None  # bit index in the interrupt controller

    def ports(self):
        """Return the iterable of port numbers this device answers."""
        raise NotImplementedError

    def read_port(self, port: int) -> int:
        """Handle an IN instruction; returns a 32-bit value."""
        raise NotImplementedError

    def write_port(self, port: int, value: int) -> None:
        """Handle an OUT instruction."""
        raise NotImplementedError

    def tick(self, units: int) -> None:
        """Advance device time.  The driver defines the unit (committed
        instructions or target cycles); devices only count."""

    def snapshot(self):
        """Immutable state for checkpoint/rollback."""
        return None

    def restore(self, state) -> None:
        pass
