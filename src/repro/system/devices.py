"""Device model base class.

Devices hang off the :class:`~repro.system.bus.IOBus` and are visible to
software through IN/OUT ports.  Every device must be snapshot-able so
the functional model can roll back "including across I/O operations"
(paper section 3.2), and deterministic so re-execution after a rollback
reproduces identical device responses.
"""

from __future__ import annotations

from typing import Optional


class Device:
    """Base class for all simulated devices."""

    name = "device"
    irq_line: Optional[int] = None  # bit index in the interrupt controller

    def ports(self):
        """Return the iterable of port numbers this device answers."""
        raise NotImplementedError

    def read_port(self, port: int) -> int:
        """Handle an IN instruction; returns a 32-bit value."""
        raise NotImplementedError

    def write_port(self, port: int, value: int) -> None:
        """Handle an OUT instruction."""
        raise NotImplementedError

    def tick(self, units: int) -> None:
        """Advance device time.  The driver defines the unit (committed
        instructions or target cycles); devices only count."""

    def ticks_until_irq(self, enabled_mask: int) -> Optional[int]:
        """Lower bound on the time units until this device could next
        raise an interrupt from :meth:`tick`, or ``None`` if it cannot.

        Used by the functional model's idle fast-forward to compute a
        safe wake-up horizon while the CPU is halted.  *enabled_mask*
        is the interrupt controller's enable mask: a device whose line
        is masked cannot wake the CPU even if it fires.  Implementations
        may *under*-estimate (waking early is merely slow) but must
        never overestimate (sleeping through a wake-up diverges from
        single-stepped device time).

        The default is deliberately conservative: a subclass with a
        custom :meth:`tick` that has not declared its wake behaviour
        returns 0, which disables fast-forward rather than risking a
        missed interrupt; a subclass inheriting the no-op base tick can
        never raise one, so it returns ``None``.
        """
        if type(self).tick is Device.tick:
            return None
        return 0

    def ticks_until_dma(self) -> Optional[int]:
        """Lower bound on the time units until :meth:`tick` could next
        write physical memory (DMA), or ``None`` if it cannot.

        Used by the superblock replay loop (``repro.functional.blocks``)
        to bound how many executed instructions may share one deferred
        batched bus tick: a DMA landing mid-span would be observed late
        by the span's loads.  Same conservatism contract as
        :meth:`ticks_until_irq` -- under-estimating is safe, and an
        undeclared custom tick returns 0 (disables batching around this
        device) rather than risking a misplaced DMA.
        """
        if type(self).tick is Device.tick:
            return None
        return 0

    def snapshot(self):
        """Immutable state for checkpoint/rollback."""
        return None

    def restore(self, state) -> None:
        pass
