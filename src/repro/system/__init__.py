"""Full-system substrate: memory, MMU, and peripherals.

The functional model runs FastOS and workloads against these.  Devices
are deterministic and snapshot-able so the FAST rollback protocol works
across I/O operations.
"""

from repro.system.bus import IOBus, PORT_POWER, build_standard_system
from repro.system.console import Console
from repro.system.devices import Device
from repro.system.disk_timing import RotationalDiskModel
from repro.system.disk import Disk
from repro.system.interrupt_controller import (
    IRQ_CONSOLE,
    IRQ_DISK,
    IRQ_TIMER,
    InterruptController,
)
from repro.system.memory import PhysicalMemory
from repro.system.mmu import (
    PAGE_SHIFT,
    PAGE_SIZE,
    PTE_VALID,
    PTE_WRITE,
    ProtectionFault,
    SoftwareTLB,
    TLBEntry,
    TLBMiss,
)
from repro.system.timer import Timer

__all__ = [
    "Console",
    "Device",
    "Disk",
    "IOBus",
    "IRQ_CONSOLE",
    "IRQ_DISK",
    "IRQ_TIMER",
    "InterruptController",
    "PAGE_SHIFT",
    "PAGE_SIZE",
    "PORT_POWER",
    "PTE_VALID",
    "PTE_WRITE",
    "PhysicalMemory",
    "RotationalDiskModel",
    "ProtectionFault",
    "SoftwareTLB",
    "TLBEntry",
    "TLBMiss",
    "Timer",
    "build_standard_system",
]
