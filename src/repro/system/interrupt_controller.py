"""Interrupt controller: collects device IRQ lines into one CPU signal."""

from __future__ import annotations

from repro.system.devices import Device

PORT_PENDING = 0x50  # IN: pending mask; OUT: acknowledge (clear) bits
PORT_ENABLE = 0x51  # IN/OUT: per-line enable mask

IRQ_TIMER = 0
IRQ_DISK = 1
IRQ_CONSOLE = 2


class InterruptController(Device):
    """A tiny PIC: pending/enable masks and level-triggered output."""

    name = "intctrl"

    def __init__(self):
        self.pending = 0
        self.enabled = 0

    def ports(self):
        return (PORT_PENDING, PORT_ENABLE)

    def raise_irq(self, line: int) -> None:
        self.pending |= 1 << line

    def read_port(self, port: int) -> int:
        if port == PORT_PENDING:
            return self.pending
        if port == PORT_ENABLE:
            return self.enabled
        return 0

    def write_port(self, port: int, value: int) -> None:
        if port == PORT_PENDING:
            self.pending &= ~value & 0xFFFFFFFF  # write-1-to-ack
        elif port == PORT_ENABLE:
            self.enabled = value & 0xFFFFFFFF

    @property
    def output(self) -> bool:
        """The CPU-visible interrupt request line."""
        return bool(self.pending & self.enabled)

    def highest_pending(self) -> int:
        """Lowest-numbered enabled pending line (priority order)."""
        active = self.pending & self.enabled
        line = 0
        while active:
            if active & 1:
                return line
            active >>= 1
            line += 1
        return -1

    def snapshot(self):
        return (self.pending, self.enabled)

    def restore(self, state) -> None:
        self.pending, self.enabled = state
