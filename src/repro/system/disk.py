"""Disk device with DMA and a completion interrupt.

Reads/writes one 512-byte sector per command.  A command takes a fixed
number of time units before the DMA happens and IRQ 1 fires, so disk
waits interleave with computation exactly as on a real system -- this is
what makes "full system" interesting for the simulator: device events
arrive asynchronously relative to the instruction stream.
"""

from __future__ import annotations

from typing import Optional

from repro.system.devices import Device
from repro.system.interrupt_controller import IRQ_DISK, InterruptController
from repro.system.memory import PhysicalMemory

PORT_CMD = 0x30  # OUT: 1 = read sector, 2 = write sector
PORT_SECTOR = 0x31
PORT_ADDR = 0x32  # physical DMA address
PORT_STATUS = 0x33  # IN: 0 idle, 1 busy, 2 done (cleared on read)

SECTOR_SIZE = 512

CMD_READ = 1
CMD_WRITE = 2

STATUS_IDLE = 0
STATUS_BUSY = 1
STATUS_DONE = 2


class Disk(Device):
    name = "disk"
    irq_line = IRQ_DISK

    def __init__(
        self,
        intctrl: InterruptController,
        memory: PhysicalMemory,
        num_sectors: int = 1024,
        latency: int = 2000,
        image: Optional[bytes] = None,
        timing_model=None,
    ):
        self._intctrl = intctrl
        self._memory = memory
        self.latency = latency
        # Optional mechanical model (section 3.4): seek + rotational
        # latency instead of the fixed delay.
        self.timing_model = timing_model
        self._time = 0
        self.data = bytearray(num_sectors * SECTOR_SIZE)
        if image:
            self.data[: len(image)] = image
        self.sector = 0
        self.dma_addr = 0
        self.status = STATUS_IDLE
        self._pending_cmd = 0
        self._countdown = 0
        self.commands = 0
        # Sector data changes rarely (only on CMD_WRITE completion), but
        # checkpoints are frequent; cache the data copy by version so a
        # snapshot is O(1) when the disk hasn't been written.
        self._data_version = 0
        self._snap_cache = (0, bytes(self.data))

    def ports(self):
        return (PORT_CMD, PORT_SECTOR, PORT_ADDR, PORT_STATUS)

    def read_port(self, port: int) -> int:
        if port == PORT_STATUS:
            status = self.status
            if status == STATUS_DONE:
                self.status = STATUS_IDLE
            return status
        if port == PORT_SECTOR:
            return self.sector
        if port == PORT_ADDR:
            return self.dma_addr
        return 0

    def write_port(self, port: int, value: int) -> None:
        if port == PORT_SECTOR:
            self.sector = value
        elif port == PORT_ADDR:
            self.dma_addr = value
        elif port == PORT_CMD and self.status != STATUS_BUSY:
            self._pending_cmd = value
            if self.timing_model is not None:
                self._countdown = self.timing_model.latency(
                    self.sector, self._time
                )
            else:
                self._countdown = self.latency
            self.status = STATUS_BUSY
            self.commands += 1

    def tick(self, units: int) -> None:
        self._time += units
        if self.status != STATUS_BUSY:
            return
        self._countdown -= units
        if self._countdown <= 0:
            self._complete()

    def ticks_until_irq(self, enabled_mask: int):
        if self.status != STATUS_BUSY:
            return None
        if not (enabled_mask >> IRQ_DISK) & 1:
            return None
        return max(1, self._countdown)

    def ticks_until_dma(self):
        # A command in flight completes (and DMAs) when the countdown
        # expires, whether or not the IRQ line is enabled.
        if self.status != STATUS_BUSY:
            return None
        return max(1, self._countdown)

    def _complete(self) -> None:
        offset = self.sector * SECTOR_SIZE
        if self._pending_cmd == CMD_READ:
            self._memory.load_blob(
                self.dma_addr, bytes(self.data[offset : offset + SECTOR_SIZE])
            )
        elif self._pending_cmd == CMD_WRITE:
            self.data[offset : offset + SECTOR_SIZE] = self._memory.read_blob(
                self.dma_addr, SECTOR_SIZE
            )
            self._data_version += 1
        self.status = STATUS_DONE
        self._intctrl.raise_irq(IRQ_DISK)

    def snapshot(self):
        version, blob = self._snap_cache
        if version != self._data_version:
            blob = bytes(self.data)
            self._snap_cache = (self._data_version, blob)
        mech = (
            self.timing_model.snapshot() if self.timing_model is not None
            else None
        )
        return (
            self._data_version,
            blob,
            self.sector,
            self.dma_addr,
            self.status,
            self._pending_cmd,
            self._countdown,
            self.commands,
            self._time,
            mech,
        )

    def restore(self, state) -> None:
        (self._data_version, data, self.sector, self.dma_addr, self.status,
         self._pending_cmd, self._countdown, self.commands, self._time,
         mech) = state
        self.data = bytearray(data)
        self._snap_cache = (self._data_version, data)
        if self.timing_model is not None and mech is not None:
            self.timing_model.restore(mech)
