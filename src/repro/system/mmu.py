"""Software-managed TLB / MMU.

FastISA uses a software-filled TLB like the paper's example of
"data written to special registers, such as software-filled TLB
entries" being passed in the instruction trace.  User-mode virtual
addresses are translated through the TLB; a miss raises a TLB-miss
exception and FastOS's refill handler walks the page table in software
and executes ``TLBWR``.

Kernel mode bypasses translation entirely (physical addressing), so the
kernel, the refill handler included, never TLB-misses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

PAGE_SHIFT = 12
PAGE_SIZE = 1 << PAGE_SHIFT
PAGE_MASK = PAGE_SIZE - 1

PTE_VALID = 1 << 0
PTE_WRITE = 1 << 1


class TLBMiss(Exception):
    """Raised on a translation miss; carries the faulting vaddr."""

    def __init__(self, vaddr: int, is_write: bool):
        super().__init__("TLB miss at %#x" % vaddr)
        self.vaddr = vaddr
        self.is_write = is_write


class ProtectionFault(Exception):
    """Raised on a write to a read-only page."""

    def __init__(self, vaddr: int):
        super().__init__("write to read-only page at %#x" % vaddr)
        self.vaddr = vaddr


@dataclass(frozen=True)
class TLBEntry:
    vpn: int
    pfn: int
    flags: int

    @property
    def writable(self) -> bool:
        return bool(self.flags & PTE_WRITE)


class SoftwareTLB:
    """Fully-associative software-managed TLB with FIFO replacement.

    FIFO keeps replacement deterministic, which matters for reproducible
    rollback: re-executing the same instructions must rebuild the same
    TLB state.
    """

    def __init__(self, capacity: int = 64):
        self.capacity = capacity
        self._entries: Dict[int, TLBEntry] = {}  # insertion-ordered
        self.lookups = 0
        self.misses = 0

    def translate(self, vaddr: int, is_write: bool) -> int:
        """Translate a user virtual address to a physical address."""
        self.lookups += 1
        vpn = vaddr >> PAGE_SHIFT
        entry = self._entries.get(vpn)
        if entry is None or not entry.flags & PTE_VALID:
            self.misses += 1
            raise TLBMiss(vaddr, is_write)
        if is_write and not entry.writable:
            raise ProtectionFault(vaddr)
        return (entry.pfn << PAGE_SHIFT) | (vaddr & PAGE_MASK)

    def probe(self, vaddr: int) -> Optional[TLBEntry]:
        """Non-faulting lookup (no statistics side effects)."""
        return self._entries.get(vaddr >> PAGE_SHIFT)

    def write(self, vpn: int, pte: int) -> None:
        """Install a mapping: ``pte`` packs ``pfn << 12 | flags``.

        This is the TLBWR instruction's backing operation.
        """
        pfn = pte >> PAGE_SHIFT
        flags = pte & PAGE_MASK
        if vpn in self._entries:
            del self._entries[vpn]  # re-insert to refresh FIFO order
        elif len(self._entries) >= self.capacity:
            oldest = next(iter(self._entries))
            del self._entries[oldest]
        self._entries[vpn] = TLBEntry(vpn, pfn, flags)

    def flush(self) -> None:
        self._entries.clear()

    def snapshot(self) -> Tuple:
        """Immutable state for checkpointing."""
        return tuple(self._entries.items()), self.lookups, self.misses

    def restore(self, state: Tuple) -> None:
        items, self.lookups, self.misses = state
        self._entries = dict(items)

    def __len__(self) -> int:
        return len(self._entries)
