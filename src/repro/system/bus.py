"""I/O bus: routes IN/OUT port accesses to devices and fans out time.

Also owns the power port: an ``OUT 0x40`` from software requests system
shutdown, which is how FastOS signals "workload finished" to the
simulator harness.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.system.console import Console
from repro.system.devices import Device
from repro.system.disk import Disk
from repro.system.interrupt_controller import InterruptController
from repro.system.memory import PhysicalMemory
from repro.system.timer import Timer

PORT_POWER = 0x40


class IOBus:
    """Port-mapped I/O bus with attached devices."""

    def __init__(self):
        self._ports: Dict[int, Device] = {}
        self.devices: List[Device] = []
        self.shutdown_requested = False
        self.shutdown_code = 0

    def attach(self, device: Device) -> None:
        for port in device.ports():
            if port in self._ports:
                raise ValueError("port %#x already claimed" % port)
            self._ports[port] = device
        self.devices.append(device)

    def read(self, port: int) -> int:
        device = self._ports.get(port)
        if device is None:
            return 0
        return device.read_port(port) & 0xFFFFFFFF

    def write(self, port: int, value: int) -> None:
        if port == PORT_POWER:
            self.shutdown_requested = True
            self.shutdown_code = value & 0xFFFFFFFF
            return
        device = self._ports.get(port)
        if device is not None:
            device.write_port(port, value)

    def tick(self, units: int) -> None:
        """Advance all device clocks by *units* (driver-defined unit)."""
        for device in self.devices:
            device.tick(units)

    def snapshot(self):
        return (
            self.shutdown_requested,
            self.shutdown_code,
            tuple(device.snapshot() for device in self.devices),
        )

    def restore(self, state) -> None:
        self.shutdown_requested, self.shutdown_code, device_states = state
        for device, dev_state in zip(self.devices, device_states):
            device.restore(dev_state)


def build_standard_system(
    memory_size: int = 16 * 1024 * 1024,
    timer_interval: int = 10000,
    disk_image: Optional[bytes] = None,
    console_input: bytes = b"",
    disk_timing_model=None,
):
    """Wire up the standard machine: memory + PIC + timer + console + disk.

    Returns ``(memory, bus, intctrl, timer, console, disk)``.
    """
    memory = PhysicalMemory(memory_size)
    bus = IOBus()
    intctrl = InterruptController()
    timer = Timer(intctrl, interval=timer_interval)
    console = Console(intctrl)
    disk = Disk(intctrl, memory, image=disk_image,
                timing_model=disk_timing_model)
    if console_input:
        console.feed(console_input)
    for device in (intctrl, timer, console, disk):
        bus.attach(device)
    return memory, bus, intctrl, timer, console, disk
