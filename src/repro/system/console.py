"""Console (serial) device: byte output buffer plus scripted input."""

from __future__ import annotations

from typing import Optional

from repro.system.devices import Device
from repro.system.interrupt_controller import IRQ_CONSOLE, InterruptController

PORT_DATA = 0x10  # OUT: write byte; IN: read next input byte (0 if none)
PORT_STATUS = 0x11  # IN: bit 0 = input available


class Console(Device):
    name = "console"
    irq_line = IRQ_CONSOLE

    def __init__(self, intctrl: Optional[InterruptController] = None,
                 input_bytes: bytes = b""):
        self._intctrl = intctrl
        self.output = bytearray()
        self._input = bytearray(input_bytes)
        self._input_pos = 0

    def ports(self):
        return (PORT_DATA, PORT_STATUS)

    def read_port(self, port: int) -> int:
        if port == PORT_DATA:
            if self._input_pos < len(self._input):
                value = self._input[self._input_pos]
                self._input_pos += 1
                return value
            return 0
        if port == PORT_STATUS:
            return 1 if self._input_pos < len(self._input) else 0
        return 0

    def write_port(self, port: int, value: int) -> None:
        if port == PORT_DATA:
            self.output.append(value & 0xFF)

    def text(self) -> str:
        """Console output decoded as latin-1 (never fails)."""
        return self.output.decode("latin-1")

    def feed(self, data: bytes) -> None:
        """Append scripted input (visible to subsequent reads)."""
        self._input += data
        if self._intctrl is not None:
            self._intctrl.raise_irq(IRQ_CONSOLE)

    def snapshot(self):
        # Output and input buffers are append-only (scripted input must
        # be fed before boot for rollback determinism), so a snapshot is
        # just the lengths -- O(1) regardless of how much was printed.
        return (len(self.output), len(self._input), self._input_pos)

    def restore(self, state) -> None:
        output_len, input_len, self._input_pos = state
        del self.output[output_len:]
        del self._input[input_len:]
