"""Network interface: scripted RX packets, loopback TX, completion IRQ.

Completes the paper's "we support a full system, including network,
disk, video, etc." device set.  The NIC is deterministic: received
packets come from a script keyed by arrival time (device units) or from
loopback of transmitted frames, so rollback/replay reproduces identical
traffic.

Port interface::

    OUT NIC_TX_ADDR, paddr     ; frame buffer (physical)
    OUT NIC_TX_LEN, n          ; send n bytes (DMA read, loopback queue)
    IN  NIC_RX_STATUS          ; 1 if a frame is waiting
    OUT NIC_RX_ADDR, paddr     ; where to DMA the next frame
    OUT NIC_RX_CMD, 1          ; receive it (raises IRQ when done)
    IN  NIC_RX_LEN             ; length of the last received frame
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional, Sequence, Tuple

from repro.system.devices import Device
from repro.system.interrupt_controller import InterruptController
from repro.system.memory import PhysicalMemory

PORT_TX_ADDR = 0x60
PORT_TX_LEN = 0x61
PORT_RX_STATUS = 0x62
PORT_RX_ADDR = 0x63
PORT_RX_CMD = 0x64
PORT_RX_LEN = 0x65

IRQ_NIC = 3
MAX_FRAME = 1536


class Nic(Device):
    name = "nic"
    irq_line = IRQ_NIC

    def __init__(
        self,
        intctrl: InterruptController,
        memory: PhysicalMemory,
        scripted_rx: Sequence[Tuple[int, bytes]] = (),
        loopback: bool = True,
        latency: int = 400,
    ):
        self._intctrl = intctrl
        self._memory = memory
        self.loopback = loopback
        self.latency = latency
        self._time = 0
        # Scripted arrivals: (arrival_time, frame), sorted.
        self._script: List[Tuple[int, bytes]] = sorted(
            (t, bytes(frame)) for t, frame in scripted_rx
        )
        self._rx_queue: Deque[bytes] = deque()
        self._tx_addr = 0
        self._rx_addr = 0
        self._rx_len = 0
        self._rx_countdown = 0
        self._rx_inflight: Optional[bytes] = None
        self.frames_sent = 0
        self.frames_received = 0

    def ports(self):
        return (PORT_TX_ADDR, PORT_TX_LEN, PORT_RX_STATUS, PORT_RX_ADDR,
                PORT_RX_CMD, PORT_RX_LEN)

    # -- MMIO -----------------------------------------------------------

    def read_port(self, port: int) -> int:
        if port == PORT_RX_STATUS:
            return 1 if self._rx_queue else 0
        if port == PORT_RX_LEN:
            return self._rx_len
        return 0

    def write_port(self, port: int, value: int) -> None:
        if port == PORT_TX_ADDR:
            self._tx_addr = value
        elif port == PORT_TX_LEN:
            self._transmit(min(value, MAX_FRAME))
        elif port == PORT_RX_ADDR:
            self._rx_addr = value
        elif port == PORT_RX_CMD and value and self._rx_queue:
            self._rx_inflight = self._rx_queue.popleft()
            self._rx_countdown = self.latency

    def _transmit(self, length: int) -> None:
        frame = self._memory.read_blob(self._tx_addr, length)
        self.frames_sent += 1
        if self.loopback:
            self._rx_queue.append(frame)

    # -- time ------------------------------------------------------------

    def tick(self, units: int) -> None:
        self._time += units
        while self._script and self._script[0][0] <= self._time:
            _t, frame = self._script.pop(0)
            self._rx_queue.append(frame)
        if self._rx_inflight is not None:
            self._rx_countdown -= units
            if self._rx_countdown <= 0:
                frame = self._rx_inflight
                self._rx_inflight = None
                self._memory.load_blob(self._rx_addr, frame)
                self._rx_len = len(frame)
                self.frames_received += 1
                self._intctrl.raise_irq(IRQ_NIC)

    def ticks_until_irq(self, enabled_mask: int):
        if not (enabled_mask >> IRQ_NIC) & 1:
            return None
        horizon = None
        if self._rx_inflight is not None:
            horizon = max(1, self._rx_countdown)
        # Scripted arrivals only queue a frame (software must IN/OUT to
        # start the DMA that fires the IRQ), so they cannot themselves
        # wake a halted CPU -- no bound needed for them.
        return horizon

    def ticks_until_dma(self):
        # Only an in-flight receive writes memory from tick(); scripted
        # arrivals merely queue until software starts the DMA via ports.
        if self._rx_inflight is None:
            return None
        return max(1, self._rx_countdown)

    # -- checkpointing ------------------------------------------------------

    def snapshot(self):
        return (
            self._time,
            tuple(self._script),
            tuple(self._rx_queue),
            self._tx_addr,
            self._rx_addr,
            self._rx_len,
            self._rx_countdown,
            self._rx_inflight,
            self.frames_sent,
            self.frames_received,
        )

    def restore(self, state) -> None:
        (self._time, script, rx_queue, self._tx_addr, self._rx_addr,
         self._rx_len, self._rx_countdown, self._rx_inflight,
         self.frames_sent, self.frames_received) = state
        self._script = list(script)
        self._rx_queue = deque(rx_queue)
