"""Physical memory for the simulated system.

A flat little-endian byte array with word/halfword/byte accessors.  The
functional model layers write-logging on top of this for checkpoint
rollback; the memory itself is deliberately dumb.
"""

from __future__ import annotations

from typing import Iterable, Tuple


class MemoryError_(Exception):
    """Raised on out-of-range physical accesses."""


class PhysicalMemory:
    """Flat physical memory of ``size`` bytes."""

    def __init__(self, size: int = 16 * 1024 * 1024):
        self.size = size
        self._data = bytearray(size)

    # -- loads ----------------------------------------------------------

    def read8(self, addr: int) -> int:
        if not 0 <= addr < self.size:
            raise MemoryError_("read8 out of range: %#x" % addr)
        return self._data[addr]

    def read16(self, addr: int) -> int:
        if not 0 <= addr <= self.size - 2:
            raise MemoryError_("read16 out of range: %#x" % addr)
        return int.from_bytes(self._data[addr : addr + 2], "little")

    def read32(self, addr: int) -> int:
        if not 0 <= addr <= self.size - 4:
            raise MemoryError_("read32 out of range: %#x" % addr)
        return int.from_bytes(self._data[addr : addr + 4], "little")

    # -- stores ---------------------------------------------------------

    def write8(self, addr: int, value: int) -> None:
        if not 0 <= addr < self.size:
            raise MemoryError_("write8 out of range: %#x" % addr)
        self._data[addr] = value & 0xFF

    def write16(self, addr: int, value: int) -> None:
        if not 0 <= addr <= self.size - 2:
            raise MemoryError_("write16 out of range: %#x" % addr)
        self._data[addr : addr + 2] = (value & 0xFFFF).to_bytes(2, "little")

    def write32(self, addr: int, value: int) -> None:
        if not 0 <= addr <= self.size - 4:
            raise MemoryError_("write32 out of range: %#x" % addr)
        self._data[addr : addr + 4] = (value & 0xFFFFFFFF).to_bytes(4, "little")

    # -- bulk -----------------------------------------------------------

    def load_blob(self, addr: int, data: bytes) -> None:
        """Copy *data* into memory at *addr* (used by the loader/DMA)."""
        if not 0 <= addr <= self.size - len(data):
            raise MemoryError_(
                "blob of %d bytes at %#x out of range" % (len(data), addr)
            )
        self._data[addr : addr + len(data)] = data

    def read_blob(self, addr: int, length: int) -> bytes:
        if not 0 <= addr <= self.size - length:
            raise MemoryError_("blob read out of range: %#x" % addr)
        return bytes(self._data[addr : addr + length])

    def view(self):
        """Raw memoryview; the fetch/decode path uses this for speed."""
        return memoryview(self._data)

    def apply_undo(self, entries: Iterable[Tuple[int, int]]) -> None:
        """Apply ``(addr, old_word)`` undo entries, newest first.

        Callers pass entries already reversed; each entry restores one
        32-bit word written since a checkpoint.
        """
        for addr, old in entries:
            self._data[addr : addr + 4] = old.to_bytes(4, "little")
