"""Command-line entry point: regenerate the paper's experiments and
drive the engine/observability tooling.

Usage::

    python -m repro                 # generated usage listing
    python -m repro table1          # regenerate one experiment
    python -m repro all             # regenerate everything (slow)
    python -m repro <subcommand>    # lint / bench / stats / trace / report
                                    # / debug / fuzz / top / pulse

Experiment runs invoked here emit FastFlight run artifacts under
``results/runs/`` (suppress with ``REPRO_FLIGHT=0``).
"""

from __future__ import annotations

import sys
from typing import Callable, Dict, List, Tuple

EXPERIMENTS = {
    "fig3": ("Figure 3: the target microarchitecture", "fig3"),
    "table1": ("Table 1: microcode coverage per workload", "table1"),
    "table2": ("Table 2: FPGA resources vs issue width", "table2"),
    "table3": ("Table 3: simulator performance survey", "table3"),
    "fig4": ("Figure 4: simulator MIPS per workload", "fig4"),
    "fig5": ("Figure 5: gshare branch prediction accuracy", "fig5"),
    "fig6": ("Figure 6: Linux boot statistic trace", "fig6"),
    "bottleneck": ("Section 4.5 bottleneck analysis", "bottleneck"),
    "ablations": ("Design-choice ablations", "ablations"),
    "fp-extension": ("Extension: hand-patched FP microcode", "fp_extension"),
}


def _lint_main(argv: List[str]) -> int:
    from repro.analysis.cli import main as lint_main

    return lint_main(argv)


def _bench_main(argv: List[str]) -> int:
    from repro.experiments.bench import main as bench_main

    return bench_main(argv)


def _stats_main(argv: List[str]) -> int:
    from repro.observability.cli import stats_main

    return stats_main(argv)


def _trace_main(argv: List[str]) -> int:
    from repro.observability.cli import trace_main

    return trace_main(argv)


def _report_main(argv: List[str]) -> int:
    from repro.observability.flight.cli import report_main

    return report_main(argv)


def _fuzz_main(argv: List[str]) -> int:
    from repro.fuzz.cli import main as fuzz_main

    return fuzz_main(argv)


def _shardcheck_main(argv: List[str]) -> int:
    from repro.analysis.shardcheck import main as shardcheck_main

    return shardcheck_main(argv)


def _debug_main(argv: List[str]) -> int:
    from repro.observability.flight.debug import debug_main

    return debug_main(argv)


def _top_main(argv: List[str]) -> int:
    from repro.observability.pulse_cli import top_main

    return top_main(argv)


def _pulse_main(argv: List[str]) -> int:
    from repro.observability.pulse_cli import pulse_main

    return pulse_main(argv)


# Every registered subcommand: name -> (description, entry point taking
# the remaining argv).  The usage listing below is generated from this
# table plus EXPERIMENTS, so a new subcommand cannot be forgotten there.
SUBCOMMANDS: Dict[str, Tuple[str, Callable[[List[str]], int]]] = {
    "lint": ("FastLint static verification (exit 0 clean / 1 findings)",
             _lint_main),
    "bench": ("hot-path engine benchmark (writes BENCH_hotpath.json)",
              _bench_main),
    "stats": ("FastScope statistics fabric report", _stats_main),
    "trace": ("FM/TM seam event trace (JSONL)", _trace_main),
    "report": ("FastFlight artifact analytics & cross-run regression "
               "diagnosis", _report_main),
    "fuzz": ("FastFuzz differential conformance fuzzing (FM/TM oracle "
             "matrix)", _fuzz_main),
    "shardcheck": ("FastPart shard-safety analysis and PartitionPlan "
                   "emission", _shardcheck_main),
    "debug": ("FastWatch time-travel debug capsules (capture / list / "
              "show / diff / flame)", _debug_main),
    "top": ("live status of running/finished simulations (tails "
            "pulse.jsonl sidecars)", _top_main),
    "pulse": ("FastPulse live telemetry plane (run / export)",
              _pulse_main),
}


def usage() -> str:
    """The generated usage listing (bare invocation and unknown
    subcommands both print this)."""
    lines = [
        "usage: python -m repro <experiment|subcommand> [args]",
        "",
        "experiments (regenerate the paper's tables and figures):",
    ]
    for key, (title, _module) in EXPERIMENTS.items():
        lines.append("  %-14s %s" % (key, title))
    lines.append("  %-14s %s" % ("all", "regenerate every experiment (slow)"))
    lines.append("")
    lines.append("subcommands:")
    for key in sorted(SUBCOMMANDS):
        lines.append("  %-14s %s" % (key, SUBCOMMANDS[key][0]))
    return "\n".join(lines)


def run_one(key: str) -> None:
    import importlib

    module = importlib.import_module("repro.experiments." + EXPERIMENTS[key][1])
    print(module.main())


def _enable_flight() -> None:
    """Experiment runs from this entry point persist run artifacts
    (library and test use stays opt-in)."""
    from repro.experiments.harness import set_flight

    set_flight(True)


def main(argv) -> int:
    if len(argv) < 2:
        print(usage())
        return 0
    target = argv[1]
    if target in ("-h", "--help", "help"):
        print(usage())
        return 0
    if target in SUBCOMMANDS:
        return SUBCOMMANDS[target][1](argv[2:])
    if target == "all":
        _enable_flight()
        for key in EXPERIMENTS:
            print("=" * 72)
            run_one(key)
            print()
        return 0
    if target not in EXPERIMENTS:
        print("unknown command %r" % target)
        print()
        print(usage())
        return 1
    _enable_flight()
    run_one(target)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
