"""Command-line entry point: regenerate the paper's experiments.

Usage::

    python -m repro                 # list available experiments
    python -m repro table1          # regenerate one
    python -m repro all             # regenerate everything (slow)
    python -m repro lint            # FastLint static verification
                                    # (exit 0 clean / 1 diagnostics)
    python -m repro bench           # hot-path engine benchmark
                                    # (writes BENCH_hotpath.json)
    python -m repro stats           # FastScope statistics fabric report
    python -m repro trace           # FM/TM seam event trace (JSONL)
"""

from __future__ import annotations

import sys

EXPERIMENTS = {
    "fig3": ("Figure 3: the target microarchitecture", "fig3"),
    "table1": ("Table 1: microcode coverage per workload", "table1"),
    "table2": ("Table 2: FPGA resources vs issue width", "table2"),
    "table3": ("Table 3: simulator performance survey", "table3"),
    "fig4": ("Figure 4: simulator MIPS per workload", "fig4"),
    "fig5": ("Figure 5: gshare branch prediction accuracy", "fig5"),
    "fig6": ("Figure 6: Linux boot statistic trace", "fig6"),
    "bottleneck": ("Section 4.5 bottleneck analysis", "bottleneck"),
    "ablations": ("Design-choice ablations", "ablations"),
    "fp-extension": ("Extension: hand-patched FP microcode", "fp_extension"),
}


def run_one(key: str) -> None:
    import importlib

    module = importlib.import_module("repro.experiments." + EXPERIMENTS[key][1])
    print(module.main())


def main(argv) -> int:
    if len(argv) < 2:
        print(__doc__)
        print("experiments:")
        for key, (title, _) in EXPERIMENTS.items():
            print("  %-13s %s" % (key, title))
        print("  %-13s %s" % ("lint", "FastLint static verification"))
        print("  %-13s %s" % ("bench", "hot-path engine benchmark"))
        print("  %-13s %s" % ("stats", "FastScope statistics fabric report"))
        print("  %-13s %s" % ("trace", "FM/TM seam event trace (JSONL)"))
        return 0
    target = argv[1]
    if target == "lint":
        from repro.analysis.cli import main as lint_main

        return lint_main(argv[2:])
    if target == "bench":
        from repro.experiments.bench import main as bench_main

        return bench_main(argv[2:])
    if target == "stats":
        from repro.observability.cli import stats_main

        return stats_main(argv[2:])
    if target == "trace":
        from repro.observability.cli import trace_main

        return trace_main(argv[2:])
    if target == "all":
        for key in EXPERIMENTS:
            print("=" * 72)
            run_one(key)
            print()
        return 0
    if target not in EXPERIMENTS:
        print("unknown experiment %r; run with no arguments for a list" % target)
        return 1
    run_one(target)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
