"""Physical/virtual memory layout constants shared by FastOS and the
image builder."""

from __future__ import annotations

# Physical layout.
RESET_VECTOR = 0x0000  # JMP bios_start
EXC_VECTOR = 0x0040  # JMP kernel handler trampoline
BIOS_BASE = 0x0100  # up to ~28 KB of one-shot BIOS code
DECOMP_BASE = 0x7000  # literal/run decompressor
BOOTINFO = 0x7800  # nproc + per-process descriptors
DISK_BUF = 0x7A00  # kernel bounce buffer for disk DMA
BIOS_STACK = 0x7F00
KERNEL_BASE = 0x8000  # decompressed kernel lands here
MEMTEST_BASE = 0x14000  # BIOS memory-test scratch area
KERNEL_HANDLER_TRAMP = KERNEL_BASE + 3  # JMP kmain is 3 bytes
PT_BASE = 0x18000  # page tables, 256 B stride per process
PAYLOAD_BASE = 0x20000  # RLE-compressed kernel payload
USER_PHYS_BASE = 0x200000  # process i at USER_PHYS_BASE + i*USER_PHYS_STRIDE
USER_PHYS_STRIDE = 0x40000  # 256 KB per process

# Virtual layout (per process; all processes share the same window).
VBASE = 0x400000
NPAGES = 64  # 64 x 4 KB = 256 KB mapped per process
USER_STACK_TOP = VBASE + NPAGES * 4096

MAX_PROCS = 8

# Boot-info block format: word[0] = nproc; then per process 4 words:
# phys_base, size_bytes, entry_offset, reserved.
BI_ENTRIES = BOOTINFO + 4
BI_STRIDE = 16

# Syscall numbers (R0 = number, args in R1..R3, result in R0).
SYS_EXIT = 0
SYS_PUTCHAR = 1
SYS_SLEEP = 2
SYS_TIME = 3
SYS_YIELD = 4
SYS_READ_DISK = 5
SYS_GETPID = 6

# PCB field offsets (64 bytes per PCB).
PCB_R0 = 0  # ..PCB_R7 = 28
PCB_FLAGS = 32
PCB_EPC = 36
PCB_STATE = 40
PCB_WAKE = 44
PCB_PTBASE = 48
PCB_VBASE = 52
PCB_PHYS = 56
PCB_NPAGES = 60
PCB_SIZE = 64

PROC_FREE = 0
PROC_READY = 1
PROC_RUNNING = 2
PROC_BLOCKED = 3
PROC_DEAD = 4
