"""FastOS assembly sources.

Two assembly units:

* the **boot unit** (reset vector, exception-vector stub, BIOS, RLE
  decompressor) assembled at physical 0, and
* the **kernel unit** (handlers, scheduler, syscalls) assembled at
  ``KERNEL_BASE`` and shipped RLE-compressed; the BIOS decompresses it
  at boot, which is the "kernel being decompressed" phase visible in
  the paper's Figure 6 statistic trace.

Both are generated as text so per-variant knobs (BIOS length, device
probes, banner) can be spliced in.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.kernel import layout as L


@dataclass
class KernelConfig:
    """Per-OS-variant boot/kernel parameters.

    The three stock variants model the paper's guests: Linux 2.4,
    Linux 2.6 and Windows XP ("Windows ... uses a wider range of
    instructions and touches more devices than Linux does").
    """

    name: str = "linux-2.4"
    banner: str = "FastOS/linux-2.4\n"
    bios_memtest_words: int = 600
    # One-shot branchy configuration blocks: "the BIOS ... is comprised
    # of many branches that are executed only once", giving Figure 6's
    # poorly-predicted opening phase.
    bios_branch_blocks: int = 400
    probe_ports: List[int] = field(
        default_factory=lambda: [0x10, 0x20, 0x30, 0x50]
    )
    probe_rounds: int = 1
    boot_disk_reads: int = 1
    timer_interval: int = 10000
    decompress_pad: int = 2048  # extra zero bytes to decompress (boot work)


def linux24_config() -> KernelConfig:
    return KernelConfig()


def linux26_config() -> KernelConfig:
    return KernelConfig(
        name="linux-2.6",
        banner="FastOS/linux-2.6\n",
        bios_memtest_words=800,
        bios_branch_blocks=550,
        probe_rounds=2,
        decompress_pad=4096,
    )


def windowsxp_config() -> KernelConfig:
    return KernelConfig(
        name="windows-xp",
        banner="FastOS/windows-xp\n",
        bios_memtest_words=1600,
        bios_branch_blocks=900,
        probe_ports=[0x10, 0x11, 0x20, 0x21, 0x22, 0x30, 0x31, 0x32, 0x33,
                     0x50, 0x51],
        probe_rounds=3,
        boot_disk_reads=4,
        decompress_pad=12288,
    )


def boot_source(config: KernelConfig, payload_end: int) -> str:
    """Assembly for the boot unit (BIOS + decompressor) at base 0."""
    import random
    import zlib

    # Stable seed: hash(str) is randomized per process, which would make
    # boot images (and therefore whole simulations) irreproducible.
    rng = random.Random(zlib.crc32(config.name.encode()) & 0xFFFF)
    branch_blocks = []
    for i in range(config.bios_branch_blocks):
        cc = rng.choice(["JZ", "JNZ", "JC", "JNC", "JL", "JGE"])
        branch_blocks.append(
            """
    ADDI R2, %(add)d
    CMPI R2, %(cmp)d
    %(cc)s bios_blk_%(i)d
    XORI R2, %(xor)d
bios_blk_%(i)d:"""
            % {
                "i": i,
                "add": rng.randrange(1, 1 << 12),
                "cmp": rng.randrange(1 << 16),
                "xor": rng.randrange(1, 1 << 12),
                "cc": cc,
            }
        )
    branch_text = "\n".join(branch_blocks)

    probes = []
    for round_no in range(config.probe_rounds):
        for i, port in enumerate(config.probe_ports):
            skip = "probe_skip_%d_%d" % (round_no, i)
            probes.append(
                """
    IN R2, %#x
    CMPI R2, 0xDEAD
    JZ %s
    INC R3
%s:""" % (port, skip, skip)
            )
    probe_text = "\n".join(probes)

    disk_reads = []
    for i in range(config.boot_disk_reads):
        disk_reads.append(
            """
    MOVI R2, %d
    OUT 0x31, R2          ; sector
    MOVI R2, %#x
    OUT 0x32, R2          ; DMA address
    MOVI R2, 1
    OUT 0x30, R2          ; command: read
bios_disk_poll_%d:
    IN R2, 0x33
    CMPI R2, 2
    JNZ bios_disk_poll_%d""" % (i, L.DISK_BUF, i, i)
        )
    disk_text = "\n".join(disk_reads)

    return """
; ---- FastOS boot unit: reset vector, BIOS and kernel decompressor ----
.org %(reset)#x
    JMP bios_start
.org %(vector)#x
    JMP %(tramp)#x        ; exception/interrupt trampoline into the kernel
.org %(bios)#x
bios_start:
    MOVI SP, %(bios_stack)#x
    MOVI R3, 0            ; devices found
    ; --- memory test: write/read-back a pattern over a scratch region ---
    MOVI R0, %(memtest)#x
    MOVI R1, %(memtest_words)d
bios_mt_loop:
    MOV R2, R1
    SHL R2, 3
    XORI R2, 0x5A5A5A5A
    ST [R0+0], R2
    LD R4, [R0+0]
    CMP R2, R4
    JNZ bios_mt_fail
    ADDI R0, 4
    DEC R1
    JNZ bios_mt_loop
    JMP bios_mt_done
bios_mt_fail:
    MOVI R2, 70           ; 'F'
    OUT 0x10, R2
bios_mt_done:
    ; --- one-shot configuration blocks (cold branches) ---
    MOVI R2, 0x5EED
%(branch_blocks)s
    ; --- device probes: straight-line, one-shot branches ---
%(probes)s
    ; --- boot-sector disk reads (PIO polling) ---
%(disk_reads)s
    JMP decompress
.org %(decomp)#x
decompress:
    ; Decompress the literal/run-encoded kernel payload to KERNEL_BASE.
    ; The long literal-copy inner loop is the flat, predictable phase
    ; visible in the Figure 6 statistic trace.
    MOVI R0, %(payload)#x
    MOVI R1, %(kernel)#x
dc_loop:
    LDB R3, [R0+0]        ; op byte
    CMPI R3, 1
    JZ dc_literal
    CMPI R3, 2
    JZ dc_run
    JMP %(kernel)#x       ; op 0: done, enter the kernel
dc_literal:
    LDB R3, [R0+1]
    LDB R4, [R0+2]
    SHL R4, 8
    ADD R3, R4            ; length
    ADDI R0, 3
dc_copy:
    LDB R4, [R0+0]
    STB [R1+0], R4
    INC R0
    INC R1
    DEC R3
    JNZ dc_copy
    JMP dc_loop
dc_run:
    LDB R3, [R0+1]
    LDB R4, [R0+2]
    SHL R4, 8
    ADD R3, R4            ; length
    LDB R4, [R0+3]        ; fill value
    ADDI R0, 4
dc_fill:
    STB [R1+0], R4
    INC R1
    DEC R3
    JNZ dc_fill
    JMP dc_loop
""" % {
        "reset": L.RESET_VECTOR,
        "vector": L.EXC_VECTOR,
        "tramp": L.KERNEL_HANDLER_TRAMP,
        "bios": L.BIOS_BASE,
        "bios_stack": L.BIOS_STACK,
        "memtest": L.MEMTEST_BASE,
        "memtest_words": config.bios_memtest_words,
        "branch_blocks": branch_text,
        "probes": probe_text,
        "disk_reads": disk_text,
        "decomp": L.DECOMP_BASE,
        "payload": L.PAYLOAD_BASE,
        "payload_end": payload_end,
        "kernel": L.KERNEL_BASE,
    }


def kernel_source(config: KernelConfig) -> str:
    """Assembly for the kernel unit at KERNEL_BASE."""
    banner_bytes = ", ".join(str(b) for b in config.banner.encode("latin-1"))
    return """
; ---- FastOS kernel: handlers, scheduler, syscalls ----
.org %(kernel)#x
kernel_entry:
    JMP kmain
handler_tramp:            ; must sit at KERNEL_BASE+3 (the vector stub
    JMP khandler          ; jumps here)

; =====================================================================
; kmain: kernel initialisation
; =====================================================================
kmain:
    MOVI SP, kstack_top
    ; Mark "no user context yet" so an early interrupt never saves over
    ; a PCB.
    MOVI R0, 1
    MOVI R1, g_in_idle
    ST [R1+0], R0
    MOVI R0, 0
    MOVI R1, g_tick
    ST [R1+0], R0
    MOVI R1, g_current
    ST [R1+0], R0
    ; read boot info
    MOVI R1, %(bootinfo)#x
    LD R2, [R1+0]
    MOVI R1, g_nproc
    ST [R1+0], R2
    MOVI R1, g_alive
    ST [R1+0], R2
    DEC R2                ; curpid = nproc-1 so the first pick is pid 0
    MOVI R1, g_curpid
    ST [R1+0], R2
    ; print banner
    MOVI R5, banner
kmain_banner:
    LDB R2, [R5+0]
    CMPI R2, 0
    JZ kmain_banner_done
    OUT 0x10, R2
    INC R5
    JMP kmain_banner
kmain_banner_done:
    ; ----- per-process init: page tables + PCBs -----
    MOVI R4, 0            ; i
pi_loop:
    MOVI R0, g_nproc
    LD R0, [R0+0]
    CMP R4, R0
    JGE pi_done
    MOV R5, R4
    SHL R5, 4
    ADDI R5, %(bi_entries)#x
    LD R6, [R5+0]         ; phys_base
    LD R5, [R5+8]         ; entry offset
    ; pcb = pcbs + i*64
    MOV R3, R4
    SHL R3, 6
    ADDI R3, pcbs
    MOVI R1, 0
    ST [R3+0], R1
    ST [R3+4], R1
    ST [R3+8], R1
    ST [R3+12], R1
    ST [R3+16], R1
    ST [R3+20], R1
    ST [R3+24], R1
    ST [R3+%(pcb_flags)d], R1
    ST [R3+%(pcb_wake)d], R1
    MOVI R1, %(user_stack_top)#x
    ST [R3+28], R1        ; user SP
    MOVI R1, %(vbase)#x
    ADD R1, R5
    ST [R3+%(pcb_epc)d], R1
    MOVI R1, %(ready)d
    ST [R3+%(pcb_state)d], R1
    MOV R1, R4
    SHL R1, 8
    ADDI R1, %(pt_base)#x
    ST [R3+%(pcb_ptbase)d], R1
    MOVI R2, %(vbase)#x
    ST [R3+%(pcb_vbase)d], R2
    ST [R3+%(pcb_phys)d], R6
    MOVI R2, %(npages)d
    ST [R3+%(pcb_npages)d], R2
    ; build the page table: pte = ((phys>>12 + j) << 12) | VALID|WRITE
    MOVI R2, 0
pi_pt:
    CMPI R2, %(npages)d
    JGE pi_pt_done
    MOV R0, R6
    SHR R0, 12
    ADD R0, R2
    SHL R0, 12
    ORI R0, 3
    MOV R5, R2
    SHL R5, 2
    ADD R5, R1
    ST [R5+0], R0
    INC R2
    JMP pi_pt
pi_pt_done:
    INC R4
    JMP pi_loop
pi_done:
    ; program timer and enable its interrupt line
    MOVI R0, %(timer_interval)d
    OUT 0x21, R0
    MOVI R0, 1
    OUT 0x20, R0
    OUT 0x51, R0
    ; run the first process
    CALL sched_pick
    CMPI R0, 0
    JZ go_idle
    JMP dispatch

; =====================================================================
; khandler: common exception/interrupt entry
; =====================================================================
khandler:
    MOVSR SCRATCH0, R0
    MOVRS R0, FLAGS
    MOVSR SCRATCH1, R0
    MOVI R0, g_in_idle
    LD R0, [R0+0]
    CMPI R0, 0
    JNZ handler_dispatch  ; idle/boot context is disposable: skip save
    MOVI R0, g_current
    LD R0, [R0+0]
    ST [R0+4], R1
    ST [R0+8], R2
    ST [R0+12], R3
    ST [R0+16], R4
    ST [R0+20], R5
    ST [R0+24], R6
    ST [R0+28], R7
    MOVRS R1, SCRATCH0
    ST [R0+0], R1
    MOVRS R1, SCRATCH1
    ST [R0+%(pcb_flags)d], R1
    MOVRS R1, EPC
    ST [R0+%(pcb_epc)d], R1
handler_dispatch:
    MOVI SP, kstack_top
    MOVRS R1, CAUSE
    ANDI R1, 0xFF
    CMPI R1, 4
    JZ h_timer
    CMPI R1, 3
    JZ h_syscall
    CMPI R1, 1
    JZ h_tlbmiss
    CMPI R1, 5
    JZ h_device
    CMPI R1, 2
    JZ h_kill             ; divide by zero: kill process
    CMPI R1, 7
    JZ h_kill             ; protection fault: kill process
    JMP h_fatal

; ----- timer interrupt ------------------------------------------------
h_timer:
    IN R1, 0x50
    OUT 0x50, R1          ; acknowledge everything pending
    MOVI R1, g_tick
    LD R2, [R1+0]
    INC R2
    ST [R1+0], R2
    CALL wake_sleepers
    ; preempt the current process (running -> ready), unless idle
    MOVI R1, g_in_idle
    LD R1, [R1+0]
    CMPI R1, 0
    JNZ h_pick
    MOVI R1, g_current
    LD R1, [R1+0]
    LD R2, [R1+%(pcb_state)d]
    CMPI R2, %(running)d
    JNZ h_pick
    MOVI R2, %(ready)d
    ST [R1+%(pcb_state)d], R2
h_pick:
    CALL sched_pick
    CMPI R0, 0
    JZ go_idle
    JMP dispatch

h_device:
    IN R1, 0x50
    ANDI R1, 0xFFFFFFFE   ; never ack the timer line here
    OUT 0x50, R1          ; ack; disk I/O is polled synchronously
    MOVI R1, g_in_idle
    LD R1, [R1+0]
    CMPI R1, 0
    JNZ go_idle           ; interrupted the idle loop: stay idle
    JMP h_resume_current

; ----- TLB refill -----------------------------------------------------
h_tlbmiss:
    MOVI R0, g_current
    LD R0, [R0+0]
    MOVRS R1, BADVADDR
    SHR R1, 12            ; vpn
    LD R2, [R0+%(pcb_vbase)d]
    SHR R2, 12
    MOV R3, R1
    SUB R3, R2
    JC h_kill             ; below the window
    LD R4, [R0+%(pcb_npages)d]
    CMP R3, R4
    JGE h_kill            ; beyond the window
    SHL R3, 2
    LD R2, [R0+%(pcb_ptbase)d]
    ADD R2, R3
    LD R4, [R2+0]
    CMPI R4, 0
    JZ h_kill
    TLBWR R1, R4
    JMP h_resume_current

; ----- syscalls --------------------------------------------------------
h_syscall:
    MOVI R0, g_current
    LD R0, [R0+0]
    LD R1, [R0+0]         ; syscall number (user R0)
    CMPI R1, %(sys_putchar)d
    JZ sys_putchar
    CMPI R1, %(sys_exit)d
    JZ h_kill_quiet
    CMPI R1, %(sys_sleep)d
    JZ sys_sleep
    CMPI R1, %(sys_time)d
    JZ sys_time
    CMPI R1, %(sys_yield)d
    JZ sys_yield
    CMPI R1, %(sys_read_disk)d
    JZ sys_read_disk
    CMPI R1, %(sys_getpid)d
    JZ sys_getpid
    MOVI R2, 0xFFFFFFFF   ; unknown syscall: return -1
    ST [R0+0], R2
    JMP h_resume_current

sys_putchar:
    LD R2, [R0+4]
    OUT 0x10, R2
    JMP h_resume_current

sys_time:
    MOVI R2, g_tick
    LD R2, [R2+0]
    ST [R0+0], R2
    JMP h_resume_current

sys_getpid:
    MOV R2, R0
    SUBI R2, pcbs
    SHR R2, 6
    ST [R0+0], R2
    JMP h_resume_current

sys_yield:
    MOVI R2, %(ready)d
    ST [R0+%(pcb_state)d], R2
    JMP h_pick

sys_sleep:
    LD R2, [R0+4]         ; ticks to sleep
    MOVI R3, g_tick
    LD R3, [R3+0]
    ADD R3, R2
    ST [R0+%(pcb_wake)d], R3
    MOVI R2, %(blocked)d
    ST [R0+%(pcb_state)d], R2
    JMP h_pick

sys_read_disk:
    LD R2, [R0+4]         ; sector
    OUT 0x31, R2
    MOVI R2, %(disk_buf)#x
    OUT 0x32, R2
    MOVI R2, 1
    OUT 0x30, R2
rd_poll:
    IN R2, 0x33
    CMPI R2, 2
    JNZ rd_poll
    LD R1, [R0+8]         ; user destination vaddr
    CALL virt2phys
    CMPI R1, 0
    JZ h_kill
    ; word-wise copy of the sector (memcpy by words, like real kernels)
    MOVI R3, %(disk_buf)#x
    MOVI R2, 128
rd_copy:
    LD R4, [R3+0]
    ST [R1+0], R4
    ADDI R3, 4
    ADDI R1, 4
    DEC R2
    JNZ rd_copy
    JMP h_resume_current

; ----- process death ---------------------------------------------------
h_kill:
    MOVI R2, 33           ; '!'
    OUT 0x10, R2
h_kill_quiet:
    MOVI R0, g_current
    LD R0, [R0+0]
    MOVI R2, %(dead)d
    ST [R0+%(pcb_state)d], R2
    MOVI R1, g_alive
    LD R2, [R1+0]
    DEC R2
    ST [R1+0], R2
    JNZ h_pick
    MOVI R1, 0
    OUT 0x40, R1          ; all processes done: power off
    HALT

h_fatal:
    MOVI R2, 70           ; 'F'
    OUT 0x10, R2
    MOVI R1, 1
    OUT 0x40, R1
    HALT

; =====================================================================
; dispatch / restore / idle
; =====================================================================
h_resume_current:
    MOVI R0, g_current
    LD R0, [R0+0]
    JMP restore_context

dispatch:                 ; R0 = chosen PCB
    MOVI R1, g_in_idle
    MOVI R2, 0
    ST [R1+0], R2
    MOVI R2, %(running)d
    ST [R0+%(pcb_state)d], R2
    ; update curpid = (pcb - pcbs) >> 6
    MOV R2, R0
    SUBI R2, pcbs
    SHR R2, 6
    MOVI R1, g_curpid
    ST [R1+0], R2
    ; flush the TLB only when actually switching address spaces
    MOVI R1, g_current
    LD R2, [R1+0]
    CMP R2, R0
    JZ dispatch_noflush
    TLBFLUSH
dispatch_noflush:
    ST [R1+0], R0
restore_context:          ; R0 = PCB
    LD R1, [R0+%(pcb_epc)d]
    MOVSR EPC, R1
    MOVI R1, 6            ; PREV_IE=1, PREV_KERNEL=0: IRET drops to user
    MOVSR STATUS, R1
    LD R1, [R0+%(pcb_flags)d]
    MOVSR FLAGS, R1
    LD R1, [R0+4]
    LD R2, [R0+8]
    LD R3, [R0+12]
    LD R4, [R0+16]
    LD R5, [R0+20]
    LD R6, [R0+24]
    LD R7, [R0+28]
    LD R0, [R0+0]
    IRET

go_idle:
    MOVI R0, 1
    MOVI R1, g_in_idle
    ST [R1+0], R0
    STI
idle_halt:
    HALT
    JMP idle_halt

; =====================================================================
; subroutines
; =====================================================================
wake_sleepers:            ; clobbers R0-R3
    MOVI R0, g_nproc
    LD R0, [R0+0]
    MOVI R1, pcbs
    MOVI R2, g_tick
    LD R2, [R2+0]
ws_loop:
    CMPI R0, 0
    JZ ws_done
    LD R3, [R1+%(pcb_state)d]
    CMPI R3, %(blocked)d
    JNZ ws_next
    LD R3, [R1+%(pcb_wake)d]
    CMP R2, R3
    JC ws_next            ; tick < wake: keep sleeping
    MOVI R3, %(ready)d
    ST [R1+%(pcb_state)d], R3
ws_next:
    ADDI R1, %(pcb_size)d
    DEC R0
    JMP ws_loop
ws_done:
    RET

sched_pick:               ; returns R0 = ready PCB or 0; clobbers R1-R4
    MOVI R1, g_nproc
    LD R1, [R1+0]
    MOVI R2, g_curpid
    LD R2, [R2+0]
    MOV R3, R1            ; candidates remaining
sp_loop:
    CMPI R3, 0
    JZ sp_none
    INC R2
    CMP R2, R1
    JL sp_ok
    MOVI R2, 0
sp_ok:
    MOV R4, R2
    SHL R4, 6
    ADDI R4, pcbs
    LD R0, [R4+%(pcb_state)d]
    CMPI R0, %(ready)d
    JZ sp_found
    DEC R3
    JMP sp_loop
sp_found:
    MOV R0, R4
    RET
sp_none:
    MOVI R0, 0
    RET

virt2phys:                ; R1 = user vaddr -> R1 = phys (0 on failure);
    MOV R2, R1            ; preserves R0 (PCB); clobbers R2-R4
    SHR R2, 12
    LD R3, [R0+%(pcb_vbase)d]
    SHR R3, 12
    SUB R2, R3
    JC v2p_fail
    LD R3, [R0+%(pcb_npages)d]
    CMP R2, R3
    JGE v2p_fail
    SHL R2, 2
    LD R3, [R0+%(pcb_ptbase)d]
    ADD R3, R2
    LD R3, [R3+0]
    CMPI R3, 0
    JZ v2p_fail
    SHR R3, 12
    SHL R3, 12
    MOVI R4, 0xFFF
    AND R4, R1
    MOV R1, R3
    ADD R1, R4
    RET
v2p_fail:
    MOVI R1, 0
    RET

; =====================================================================
; kernel data
; =====================================================================
.align 4
g_tick:
    .word 0
g_in_idle:
    .word 1
g_current:
    .word 0
g_curpid:
    .word 0
g_nproc:
    .word 0
g_alive:
    .word 0
banner:
    .byte %(banner_bytes)s, 0
.align 4
pcbs:
    .space %(pcb_space)d
kstack:
    .space 512
kstack_top:
    .word 0
kernel_pad:
    .space %(decompress_pad)d
kernel_end:
""" % {
        "kernel": L.KERNEL_BASE,
        "bootinfo": L.BOOTINFO,
        "bi_entries": L.BI_ENTRIES,
        "vbase": L.VBASE,
        "npages": L.NPAGES,
        "pt_base": L.PT_BASE,
        "user_stack_top": L.USER_STACK_TOP,
        "timer_interval": config.timer_interval,
        "disk_buf": L.DISK_BUF,
        "banner_bytes": banner_bytes,
        "pcb_space": L.PCB_SIZE * L.MAX_PROCS,
        "pcb_flags": L.PCB_FLAGS,
        "pcb_epc": L.PCB_EPC,
        "pcb_state": L.PCB_STATE,
        "pcb_wake": L.PCB_WAKE,
        "pcb_ptbase": L.PCB_PTBASE,
        "pcb_vbase": L.PCB_VBASE,
        "pcb_phys": L.PCB_PHYS,
        "pcb_npages": L.PCB_NPAGES,
        "pcb_size": L.PCB_SIZE,
        "ready": L.PROC_READY,
        "running": L.PROC_RUNNING,
        "blocked": L.PROC_BLOCKED,
        "dead": L.PROC_DEAD,
        "sys_exit": L.SYS_EXIT,
        "sys_putchar": L.SYS_PUTCHAR,
        "sys_sleep": L.SYS_SLEEP,
        "sys_time": L.SYS_TIME,
        "sys_yield": L.SYS_YIELD,
        "sys_read_disk": L.SYS_READ_DISK,
        "sys_getpid": L.SYS_GETPID,
        "decompress_pad": config.decompress_pad,
    }
