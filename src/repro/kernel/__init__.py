"""FastOS: the synthetic bootable operating system (BIOS, kernel,
scheduler, syscalls) the workloads run on."""

from repro.kernel import layout
from repro.kernel.image import (
    ImageError,
    UserProgram,
    boot_system,
    build_os_image,
    rle_compress,
    rle_decompress,
)
from repro.kernel.sources import (
    KernelConfig,
    linux24_config,
    linux26_config,
    windowsxp_config,
)

__all__ = [
    "ImageError",
    "KernelConfig",
    "UserProgram",
    "boot_system",
    "build_os_image",
    "layout",
    "linux24_config",
    "linux26_config",
    "rle_compress",
    "rle_decompress",
    "windowsxp_config",
]
