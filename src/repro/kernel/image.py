"""FastOS bootable-image builder.

Assembles the kernel unit, RLE-compresses it into a payload, assembles
the boot unit (BIOS + decompressor), lays out user programs and the
boot-info block, and returns a single :class:`ProgramImage` the
functional model can load and boot.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.isa.assembler import assemble
from repro.isa.program import ProgramImage
from repro.kernel import layout as L
from repro.kernel.sources import (
    KernelConfig,
    boot_source,
    kernel_source,
    linux24_config,
    linux26_config,
    windowsxp_config,
)


OP_END = 0
OP_LITERAL = 1
OP_RUN = 2
_MIN_RUN = 8
_MAX_LEN = 0xFFFF


def rle_compress(data: bytes) -> bytes:
    """Literal/run encoding of the kernel payload.

    Format: a sequence of ops -- ``01 <len16> <bytes>`` copies a literal
    block, ``02 <len16> <value>`` expands a run, ``00`` terminates.
    Literal blocks keep the boot-time decompressor's inner loop long and
    predictable (the flat middle phase of Figure 6); runs of >= 8 equal
    bytes (the kernel's zeroed data) compress as runs.
    """
    out = bytearray()
    i = 0
    n = len(data)
    lit_start = i
    while i < n:
        value = data[i]
        run = 1
        while run < min(_MAX_LEN, n - i) and data[i + run] == value:
            run += 1
        if run >= _MIN_RUN:
            _flush_literal(out, data, lit_start, i)
            out.append(OP_RUN)
            out += run.to_bytes(2, "little")
            out.append(value)
            i += run
            lit_start = i
        else:
            i += run
    _flush_literal(out, data, lit_start, i)
    out.append(OP_END)
    return bytes(out)


def _flush_literal(out: bytearray, data: bytes, start: int, end: int) -> None:
    while start < end:
        chunk = min(_MAX_LEN, end - start)
        out.append(OP_LITERAL)
        out += chunk.to_bytes(2, "little")
        out += data[start : start + chunk]
        start += chunk


def rle_decompress(data: bytes) -> bytes:
    """Reference decoder (the BIOS does this in FastISA at boot)."""
    out = bytearray()
    i = 0
    while True:
        op = data[i]
        if op == OP_END:
            return bytes(out)
        length = int.from_bytes(data[i + 1 : i + 3], "little")
        if op == OP_LITERAL:
            out += data[i + 3 : i + 3 + length]
            i += 3 + length
        elif op == OP_RUN:
            out += bytes([data[i + 3]]) * length
            i += 4
        else:
            raise ValueError("bad op %d at %d" % (op, i))


@dataclass
class UserProgram:
    """One user-mode workload program.

    ``source`` is FastISA assembly, assembled at the user virtual base.
    Execution starts at ``entry`` (a label; defaults to the first byte).
    """

    name: str
    source: str
    entry: Optional[str] = None

    def assemble(self):
        program = assemble(self.source, base=L.VBASE)
        entry = program.symbols[self.entry] if self.entry else L.VBASE
        return program, entry - L.VBASE


class ImageError(ValueError):
    pass


def build_os_image(
    programs: Sequence[UserProgram],
    config: Optional[KernelConfig] = None,
    disk_image: Optional[bytes] = None,
) -> Tuple[ProgramImage, KernelConfig]:
    """Build a bootable FastOS image running *programs*.

    Returns ``(image, config)``; the image's symbols include the kernel
    symbols (prefixed ``k.``) and boot symbols (prefixed ``b.``).
    """
    config = config or linux24_config()
    if not programs:
        raise ImageError("at least one user program is required")
    if len(programs) > L.MAX_PROCS:
        raise ImageError("at most %d processes supported" % L.MAX_PROCS)

    kernel = assemble(kernel_source(config), base=L.KERNEL_BASE)
    if L.KERNEL_BASE + len(kernel.data) > L.PT_BASE:
        raise ImageError(
            "kernel too large: %d bytes overlaps page tables" % len(kernel.data)
        )
    payload = rle_compress(kernel.data)
    payload_end = L.PAYLOAD_BASE + len(payload)

    boot = assemble(boot_source(config, payload_end), base=0)

    image = ProgramImage(name="fastos-" + config.name, entry=L.RESET_VECTOR)
    image.add_segment(0, boot.data)
    image.add_segment(L.PAYLOAD_BASE, payload)

    # Boot info block.
    info = bytearray(4 + L.BI_STRIDE * len(programs))
    info[0:4] = len(programs).to_bytes(4, "little")
    for i, user in enumerate(programs):
        assembled, entry_off = user.assemble()
        if len(assembled.data) > L.USER_PHYS_STRIDE:
            raise ImageError(
                "program %r too large (%d bytes)" % (user.name, len(assembled.data))
            )
        phys = L.USER_PHYS_BASE + i * L.USER_PHYS_STRIDE
        image.add_segment(phys, assembled.data)
        off = 4 + i * L.BI_STRIDE
        info[off : off + 4] = phys.to_bytes(4, "little")
        info[off + 4 : off + 8] = len(assembled.data).to_bytes(4, "little")
        info[off + 8 : off + 12] = entry_off.to_bytes(4, "little")
    image.add_segment(L.BOOTINFO, bytes(info))

    for name, addr in kernel.symbols.items():
        image.symbols["k." + name] = addr
    for name, addr in boot.symbols.items():
        image.symbols["b." + name] = addr
    return image, config


def boot_system(
    programs: Sequence[UserProgram],
    config: Optional[KernelConfig] = None,
    disk_image: Optional[bytes] = None,
    functional_config=None,
    memory_size: int = 16 * 1024 * 1024,
):
    """Convenience: build an image and a functional model ready to run.

    Returns ``(functional_model, console)``.
    """
    from repro.functional.model import FunctionalModel
    from repro.system.bus import build_standard_system

    memory, bus, _intctrl, _timer, console, _disk = build_standard_system(
        memory_size=memory_size, disk_image=disk_image
    )
    image, _config = build_os_image(programs, config=config)
    model = FunctionalModel(memory=memory, bus=bus, config=functional_config)
    model.load(image)
    return model, console


__all__ = [
    "ImageError",
    "KernelConfig",
    "UserProgram",
    "boot_system",
    "build_os_image",
    "linux24_config",
    "linux26_config",
    "rle_compress",
    "rle_decompress",
    "windowsxp_config",
]
