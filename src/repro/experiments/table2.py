"""Table 2: fraction of a Virtex4 LX200 consumed by the default FAST
timing model at issue widths 1, 2, 4 and 8.

The paper's key observation is the *flatness*: ~32.8 % of user logic
and 50-51.2 % of block RAMs regardless of width, because wider targets
are simulated with more host cycles over the same structures rather
than with wider hardware.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.experiments.harness import finish_experiment, format_table
from repro.host.resources import ResourceReport, estimate_resources
from repro.timing.core import TimingConfig, TimingModel

PAPER_TABLE2 = {
    1: (32.84, 50.0),
    2: (32.76, 51.2),
    4: (32.81, 51.2),
    8: (32.87, 51.2),
}

ISSUE_WIDTHS = (1, 2, 4, 8)


class _NullFeed:
    """Feed stand-in: resource estimation never runs the model."""

    finished = True

    def peek(self):
        return None


@dataclass
class Table2Row:
    issue_width: int
    user_logic_pct: float
    bram_pct: float
    paper_logic_pct: float
    paper_bram_pct: float


def build_timing_model(width: int) -> TimingModel:
    return TimingModel(_NullFeed(), config=TimingConfig.with_issue_width(width))


def compute() -> List[Table2Row]:
    rows = []
    for width in ISSUE_WIDTHS:
        tm = build_timing_model(width)
        report: ResourceReport = estimate_resources(tm)
        paper = PAPER_TABLE2[width]
        rows.append(
            Table2Row(
                issue_width=width,
                user_logic_pct=100 * report.user_logic_fraction,
                bram_pct=100 * report.bram_fraction,
                paper_logic_pct=paper[0],
                paper_bram_pct=paper[1],
            )
        )
    return rows


def main() -> str:
    rows = compute()
    table = format_table(
        ["Issue", "UserLogic%", "BRAM%", "paper Logic%", "paper BRAM%"],
        [
            (
                r.issue_width,
                "%.2f" % r.user_logic_pct,
                "%.1f" % r.bram_pct,
                "%.2f" % r.paper_logic_pct,
                "%.1f" % r.paper_bram_pct,
            )
            for r in rows
        ],
    )
    return finish_experiment(
        "table2", "Table 2: Virtex4 LX200 resources vs issue width\n" + table
    )


if __name__ == "__main__":
    print(main())
