"""Table 3: software simulator performance comparison.

Combines the paper's survey rows (reported industry numbers) with
*live* measurements from our own baseline architectures on the same
workload: the monolithic software simulator, the timing-directed
lock-step simulator (both host mappings), and FAST.  The shape to
check: FAST is orders of magnitude faster than software cycle-accurate
simulation, and the no-speculation FPGA split is capped by round trips.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.baselines.monolithic import MonolithicSimulator
from repro.baselines.survey import TABLE3_SURVEY
from repro.baselines.timing_directed import TimingDirectedSimulator
from repro.experiments.harness import (
    build_fast_simulator,
    finish_experiment,
    format_table,
)
from repro.host.platforms import DRC_PLATFORM
from repro.timing.core import TimingConfig
from repro.workloads import build as build_workload


@dataclass
class Table3Row:
    simulator: str
    isa: str
    microarch: str
    speed_ips: float
    full_system: bool
    source: str  # "reported" or "measured"


def measured_rows(
    workload_name: str = "164.gzip", scale: int = 1, max_cycles: int = 5_000_000
) -> List[Table3Row]:
    """Run our live baselines on one workload."""
    rows: List[Table3Row] = []

    mono = MonolithicSimulator.from_programs(
        build_workload(workload_name, scale).programs,
        timing_config=TimingConfig(predictor="gshare"),
    )
    mono_result = mono.run(max_cycles=max_cycles)
    rows.append(
        Table3Row(
            "monolithic (sim-outorder-like)",
            "FastISA",
            "Fig.3 OOO",
            mono_result.kips * 1e3,
            True,
            "measured",
        )
    )

    td = TimingDirectedSimulator.from_programs(
        build_workload(workload_name, scale).programs,
        timing_config=TimingConfig(predictor="gshare"),
    )
    td_result = td.run(max_cycles=max_cycles)
    rows.append(
        Table3Row(
            "timing-directed (Asim-like, software)",
            "FastISA",
            "Fig.3 OOO",
            td_result.mips_software * 1e6,
            True,
            "measured",
        )
    )
    rows.append(
        Table3Row(
            "timing-directed (FPGA split, no speculation)",
            "FastISA",
            "Fig.3 OOO",
            td_result.mips_split * 1e6,
            True,
            "measured",
        )
    )

    fast = build_fast_simulator(
        build_workload(workload_name, scale),
        predictor="gshare",
        platform=DRC_PLATFORM,
    )
    fast.run(max_cycles=max_cycles)
    breakdown = fast.host_time(protocol_mode="prototype")
    rows.append(
        Table3Row(
            "FAST (measured events, DRC model)",
            "FastISA",
            "Fig.3 OOO",
            breakdown.mips * 1e6,
            True,
            "measured",
        )
    )
    return rows


def compute(
    workload_name: str = "164.gzip", scale: int = 1, live: bool = True
) -> List[Table3Row]:
    rows = [
        Table3Row(r.simulator, r.isa, r.microarchitecture, r.speed_ips,
                  r.full_system, "reported")
        for r in TABLE3_SURVEY
    ]
    if live:
        rows += measured_rows(workload_name, scale)
    return rows


def _speed_text(ips: float) -> str:
    if ips >= 1e6:
        return "%.2f MIPS" % (ips / 1e6)
    return "%.0f KIPS" % (ips / 1e3)


def main() -> str:
    rows = compute()
    table = format_table(
        ["Simulator", "ISA", "uarch", "Speed", "OS", "Source"],
        [
            (
                r.simulator,
                r.isa,
                r.microarch,
                _speed_text(r.speed_ips),
                "Y" if r.full_system else "N",
                r.source,
            )
            for r in rows
        ],
    )
    return finish_experiment("table3", "Table 3: simulator performance\n" + table)


if __name__ == "__main__":
    print(main())
