"""Table 1: fraction of dynamic instructions translated to µops, and
µops per instruction, for every workload.

Functional-only runs (no timing model needed): boot FastOS, reset the
microcode coverage counters at the first user-mode instruction, and
report the workload-phase coverage.  Boot rows (linux/windows) report
the whole run, since the boot *is* the workload there.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.experiments.harness import (
    boot_functional,
    finish_experiment,
    format_table,
)
from repro.kernel.layout import VBASE
from repro.workloads import build as build_workload
from repro.workloads.suite import SUITE_ORDER

# The paper's reported values, for side-by-side comparison.
PAPER_TABLE1 = {
    "linux-2.4": (0.9594, 1.15),
    "164.gzip": (0.9998, 1.34),
    "175.vpr": (0.8462, 1.19),
    "176.gcc": (0.9990, 1.30),
    "181.mcf": (0.9993, 1.17),
    "186.crafty": (0.9896, 1.15),
    "197.parser": (0.9974, 1.27),
    "252.eon": (0.5232, 1.24),
    "253.perlbmk": (0.9864, 1.29),
    "254.gap": (0.9980, 1.31),
    "255.vortex": (0.9991, 1.21),
    "256.bzip2": (0.9998, 1.29),
    "300.twolf": (0.9520, 1.25),
    "linux-2.6": (0.9802, 1.45),
    "sweep3d": (0.4405, 1.19),
    "mysql": (0.9915, 1.51),
}

BOOT_WORKLOADS = frozenset({"linux-2.4", "linux-2.6", "windows-xp"})


@dataclass
class Table1Row:
    workload: str
    fraction_translated: float
    uops_per_instruction: float
    instructions: int
    paper_fraction: float
    paper_uops: float


def measure_workload(name: str, scale: int = 1,
                     max_instructions: int = 3_000_000) -> Table1Row:
    workload = build_workload(name, scale)
    fm = boot_functional(workload)
    state = {"reset_done": name in BOOT_WORKLOADS}

    def on_entry(entry):
        if not state["reset_done"] and entry.pc >= VBASE:
            fm.microcode.reset_coverage()
            state["reset_done"] = True

    executed = fm.run(max_instructions=max_instructions, on_entry=on_entry)
    cov = fm.microcode.coverage
    paper = PAPER_TABLE1.get(name, (float("nan"), float("nan")))
    return Table1Row(
        workload=name,
        fraction_translated=cov.fraction_translated,
        uops_per_instruction=cov.uops_per_instruction,
        instructions=executed,
        paper_fraction=paper[0],
        paper_uops=paper[1],
    )


def compute(scale: int = 1, names=None) -> List[Table1Row]:
    names = names or SUITE_ORDER
    return [measure_workload(name, scale) for name in names]


def main(scale: int = 1) -> str:
    rows = compute(scale)
    table = format_table(
        ["App", "Fraction", "uOps/inst", "paper Frac", "paper uOps", "instrs"],
        [
            (
                r.workload,
                "%.2f%%" % (100 * r.fraction_translated),
                "%.2f" % r.uops_per_instruction,
                "%.2f%%" % (100 * r.paper_fraction),
                "%.2f" % r.paper_uops,
                r.instructions,
            )
            for r in rows
        ],
    )
    return finish_experiment(
        "table1", "Table 1: dynamic instructions translated to uOps\n" + table
    )


if __name__ == "__main__":
    print(main())
