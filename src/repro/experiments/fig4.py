"""Figure 4: simulator performance (target-path MIPS) per workload for
three branch-predictor configurations: gshare, 97 % fixed, perfect.

The paper's shapes to reproduce:

* better branch prediction -> fewer round trips/rollbacks -> more MIPS
  (perfect >= 97 % >= gshare for nearly every workload),
* perlbmk is slow despite decent prediction: its sleep()/HALT periods
  starve the timing model of instructions,
* eon is about average despite poor prediction: its FP microcode is
  untranslated (NOPs), so FP dependencies are not enforced and the
  target runs at higher IPC.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.experiments.harness import (
    finish_experiment,
    format_table,
    run_fast_workload,
)
from repro.host.platforms import DRC_PROTOTYPE_PLATFORM
from repro.workloads.suite import SUITE_ORDER

# Figures 4 and 5 plot Linux, Windows XP and the 12 SPECINT rows.
FIGURE_ORDER = ["linux-2.4", "windows-xp"] + [
    n for n in SUITE_ORDER
    if n[0].isdigit()
]

PREDICTORS = ("gshare", "fixed:0.97", "perfect")


@dataclass
class Fig4Cell:
    workload: str
    predictor: str
    mips: float
    ipc: float
    bp_accuracy: float
    cycles: int
    halted_fraction: float


def measure(
    names: Optional[Sequence[str]] = None,
    predictors: Sequence[str] = PREDICTORS,
    scale: int = 1,
    protocol_mode: str = "prototype",
) -> List[Fig4Cell]:
    names = list(names or FIGURE_ORDER)
    cells = []
    for name in names:
        for predictor in predictors:
            run = run_fast_workload(
                name,
                scale=scale,
                predictor=predictor,
                platform=DRC_PROTOTYPE_PLATFORM,
            )
            timing = run.result.timing
            cells.append(
                Fig4Cell(
                    workload=name,
                    predictor=predictor,
                    # The figure characterizes the workloads themselves:
                    # price the user phase (the boot is common to all).
                    mips=run.user_mips[protocol_mode],
                    ipc=run.user.ipc,
                    bp_accuracy=run.user.bp_accuracy,
                    cycles=run.user.cycles,
                    halted_fraction=run.user_idle_fraction,
                )
            )
    return cells


def as_series(cells: List[Fig4Cell]) -> Dict[str, Dict[str, float]]:
    """{predictor: {workload: MIPS}} plus amean, the Figure 4 series."""
    series: Dict[str, Dict[str, float]] = {}
    for cell in cells:
        series.setdefault(cell.predictor, {})[cell.workload] = cell.mips
    for predictor, values in series.items():
        values["amean"] = sum(values.values()) / len(values)
    return series


def main(scale: int = 1, names: Optional[Sequence[str]] = None) -> str:
    cells = measure(names=names, scale=scale)
    series = as_series(cells)
    workloads = list(dict.fromkeys(c.workload for c in cells)) + ["amean"]
    rows = []
    for workload in workloads:
        rows.append(
            (workload,)
            + tuple(
                "%.2f" % series[p].get(workload, float("nan"))
                for p in PREDICTORS
            )
        )
    table = format_table(("App",) + tuple(PREDICTORS), rows)
    return finish_experiment(
        "fig4", "Figure 4: simulator performance (MIPS)\n" + table
    )


if __name__ == "__main__":
    print(main())
