"""Figure 6: a statistic trace of the Linux boot.

Counter samples every N committed basic blocks, tracking branch
prediction accuracy, I-cache hit rate and pipe-drain percentage.  The
paper's narrative structure should be visible:

* the BIOS phase executes many branches exactly once -> poor BP
  accuracy, but bounded pipe drains,
* the kernel-decompression phase is a tight loop -> flat, high BP and
  I-cache rates,
* the kernel proper then lowers BP and I-cache hit rates and raises
  pipe drains.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.experiments.harness import (
    build_fast_simulator,
    finish_experiment,
    format_table,
)
from repro.timing.stats import StatSample, StatisticTraceSampler
from repro.workloads import build as build_workload


@dataclass
class Fig6Result:
    samples: List[StatSample]
    decompress_start_block: int  # where the flat phase should begin


def measure(
    workload: str = "linux-2.4",
    interval: int = 250,
    scale: int = 1,
    max_cycles: int = 5_000_000,
) -> Fig6Result:
    sim = build_fast_simulator(build_workload(workload, scale))
    sampler = StatisticTraceSampler(sim.tm, interval=interval)
    sim.run(max_cycles=max_cycles)
    # Flush the trailing partial window; otherwise everything after the
    # last interval boundary (including a fast-forwarded final sleep)
    # is dropped from the figure.
    sampler.finalize()
    return Fig6Result(samples=sampler.samples, decompress_start_block=0)


def phases(samples: List[StatSample]):
    """Split samples into rough thirds: BIOS+memtest, decompress, kernel.

    The decompress phase is found as the longest run of samples with
    near-constant, high BP accuracy.
    """
    if len(samples) < 6:
        return samples, [], []
    best_start, best_len = 0, 0
    run_start = 0
    for i in range(1, len(samples)):
        flat = abs(samples[i].bp_accuracy - samples[i - 1].bp_accuracy) < 0.02
        if not flat:
            run_start = i
        if i - run_start > best_len:
            best_start, best_len = run_start, i - run_start
    bios = samples[:best_start]
    decompress = samples[best_start : best_start + best_len + 1]
    kernel = samples[best_start + best_len + 1 :]
    return bios, decompress, kernel


def main(workload: str = "linux-2.4", interval: int = 250) -> str:
    result = measure(workload=workload, interval=interval)
    rows = [
        (
            s.basic_blocks,
            s.cycle,
            "%.1f%%" % (100 * s.bp_accuracy),
            "%.1f%%" % (100 * s.icache_hit_rate),
            "%.1f%%" % (100 * s.pipe_drain_fraction),
            "%.2f" % s.ipc,
        )
        for s in result.samples
    ]
    table = format_table(
        ["BasicBlock", "Cycle", "BPacc", "iL1 hit", "PipeDrain", "IPC"], rows
    )
    return finish_experiment(
        "fig6", "Figure 6: statistic trace (%s boot)\n%s" % (workload, table)
    )


if __name__ == "__main__":
    print(main())
