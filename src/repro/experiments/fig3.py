"""Figure 3: the target microarchitecture, rendered from the live model.

Not an experiment with numbers — Figure 3 is the block diagram of the
simulated target — but rendering it from the actual Module tree keeps
documentation and implementation from drifting apart, and doubles as
the FPGA-build estimate of section 4.7 ("a fresh build ... takes a
total of about two hours").
"""

from __future__ import annotations

from repro.experiments.harness import finish_experiment
from repro.experiments.table2 import _NullFeed
from repro.host.resources import estimate_resources
from repro.timing.core import TimingConfig, TimingModel


def describe_target(config: TimingConfig = None) -> str:
    config = config or TimingConfig()
    tm = TimingModel(_NullFeed(), config=config)
    g = config.caches
    lines = [
        "Figure 3 target microarchitecture (issue width %d):" % config.issue_width,
        "",
        "  Fetch: %s predictor, %d-entry iTLB, %dKB/%d-way iL1"
        % (config.predictor, tm.frontend.itlb.capacity,
           g.l1i_bytes // 1024, g.l1_ways),
        "  Decode -> Rename/ROB(%d) -> RS(%d shared)"
        % (config.rob_entries, config.rs_entries),
        "  Units: %d ALUs, %d branch units, %d LSU (LSQ %d), %d FPUs"
        % (config.num_alus, config.num_brus, config.num_lsus,
           config.lsq_entries, config.num_fpus),
        "  Memory: %dKB/%d-way dL1, %dKB/%d-way shared L2 (+%d cyc), "
        "DRAM (+%d cyc)"
        % (g.l1d_bytes // 1024, g.l1_ways, g.l2_bytes // 1024, g.l2_ways,
           g.l2_latency, g.mem_latency),
        "  Up to %d nested branches; commit width %d; result bus %d"
        % (config.max_nested_branches, config.commit_width,
           config.result_bus_width),
        "",
        "Module tree:",
    ]
    for module in tm.walk():
        depth = _depth_of(tm, module)
        lines.append("  " + "  " * depth + module.name)
    report = estimate_resources(tm)
    lines += [
        "",
        "Estimated FPGA cost: %.1f%% user logic, %.1f%% BRAM of a Virtex4 "
        "LX200" % (100 * report.user_logic_fraction,
                   100 * report.bram_fraction),
        "Estimated build time: %.1f h fresh, %.1f h incremental"
        % build_time_hours(tm),
    ]
    return "\n".join(lines)


def _depth_of(root, target) -> int:
    def walk(module, depth):
        if module is target:
            return depth
        for child in module.children:
            found = walk(child, depth + 1)
            if found is not None:
                return found
        return None

    return walk(root, 0) or 0


def build_time_hours(tm: TimingModel) -> tuple:
    """Section 4.7 build-flow model: compile (Bluespec->Verilog),
    synthesis and place-and-route scale with module count; a fresh
    build of the default target takes ~2 hours, incremental builds
    rebuild only what changed (~1/6 of the design on average)."""
    modules = sum(1 for _ in tm.walk())
    fresh = 0.5 + modules * 0.1  # calibrated: the default target -> ~2h
    incremental = 0.2 + fresh / 6.0
    return fresh, incremental


def main() -> str:
    return finish_experiment("fig3", describe_target())


if __name__ == "__main__":
    print(main())
