"""Ablations of the design choices DESIGN.md calls out.

1. **Partitioning ablation** -- the same simulated run priced under
   every simulator architecture: monolithic software, timing-directed
   software, timing-directed FPGA split (no speculation), the Intel
   FPGA-cache hybrid, and FAST under its three protocol variants.  This
   is the paper's core argument in one table: only speculative
   decoupling (small F) lets the FPGA's speed through.
2. **Checkpoint interval** -- rollback re-execution cost (alpha) versus
   checkpointing overhead.
3. **Trace compression** -- full trace vs basic-block mirroring, priced
   as link time.
4. **Branch predictor quality vs simulator speed** -- the Figure 4
   coupling, swept over fixed accuracies.
5. **Trace-buffer lookahead** -- wasted speculative work per mispredict.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.baselines.fpga_cache import price_fpga_cache_hybrid
from repro.baselines.monolithic import MonolithicSimulator
from repro.baselines.timing_directed import TimingDirectedSimulator
from repro.experiments.harness import (
    build_fast_simulator,
    format_table,
    run_fast_workload,
)
from repro.functional.model import FunctionalConfig
from repro.host.link import DRC_LINK
from repro.host.platforms import DRC_PLATFORM
from repro.workloads import build as build_workload


@dataclass
class ArchitectureRow:
    architecture: str
    mips: float
    note: str = ""


def partitioning_ablation(
    workload: str = "164.gzip", scale: int = 1
) -> List[ArchitectureRow]:
    """Price one workload under every simulator architecture."""
    rows: List[ArchitectureRow] = []
    wl = build_workload(workload, scale)

    mono = MonolithicSimulator.from_programs(wl.programs,
                                             kernel_config=wl.kernel_config)
    mono_result = mono.run()
    rows.append(
        ArchitectureRow("monolithic software", mono_result.mips,
                        "sim-outorder structure")
    )

    td = TimingDirectedSimulator.from_programs(
        build_workload(workload, scale).programs,
        kernel_config=wl.kernel_config,
    )
    td_result = td.run()
    rows.append(
        ArchitectureRow("timing-directed software", td_result.mips_software,
                        "Asim structure")
    )
    rows.append(
        ArchitectureRow(
            "timing-directed FPGA split", td_result.mips_split,
            "round trip per fetch: F~1",
        )
    )
    hybrid = price_fpga_cache_hybrid(td_result.timing, td.fm.stats.executed)
    rows.append(
        ArchitectureRow(
            "FPGA L1 cache hybrid", hybrid.hybrid_mips,
            "slower than pure software (x%.2f)" % hybrid.slowdown,
        )
    )

    fast = build_fast_simulator(build_workload(workload, scale),
                                platform=DRC_PLATFORM)
    fast.run()
    for mode in ("prototype", "mispredict-only", "coherent"):
        rows.append(
            ArchitectureRow(
                "FAST (%s)" % mode,
                fast.host_time(protocol_mode=mode).mips,
                "speculative decoupling",
            )
        )
    return rows


@dataclass
class CheckpointRow:
    interval: int
    replays_per_rollback: float
    checkpoints_taken: int
    cycles: int


def checkpoint_interval_sweep(
    workload: str = "164.gzip",
    intervals=(8, 32, 128, 512),
    scale: int = 1,
) -> List[CheckpointRow]:
    from repro.fast.simulator import FastSimulator

    rows = []
    for interval in intervals:
        wl = build_workload(workload, scale)
        sim = FastSimulator.from_programs(
            wl.programs,
            kernel_config=wl.kernel_config,
            functional_config=FunctionalConfig(checkpoint_interval=interval),
        )
        result = sim.run()
        rollbacks = max(1, result.functional.rollbacks)
        rows.append(
            CheckpointRow(
                interval=interval,
                replays_per_rollback=result.functional.replayed / rollbacks,
                checkpoints_taken=sim.fm.ckpt.stats.taken,
                cycles=result.timing.cycles,
            )
        )
    return rows


@dataclass
class CompressionRow:
    compression: str
    words_per_instruction: float
    trace_seconds_per_minstr: float


def trace_compression_ablation(workload: str = "164.gzip",
                               scale: int = 1) -> List[CompressionRow]:
    """Full trace vs basic-block-mirroring compression (section 3.2)."""
    from repro.fast.simulator import FastSimulator

    rows = []
    for compression in ("full", "bb"):
        wl = build_workload(workload, scale)
        sim = FastSimulator.from_programs(
            wl.programs,
            kernel_config=wl.kernel_config,
            functional_config=FunctionalConfig(trace_compression=compression),
        )
        result = sim.run()
        words = result.functional.trace_words / max(1, result.functional.traced)
        rows.append(
            CompressionRow(
                compression=compression,
                words_per_instruction=words,
                trace_seconds_per_minstr=(
                    words * DRC_LINK.burst_write_ns_per_word * 1e-9 * 1e6
                ),
            )
        )
    return rows


@dataclass
class BpSweepRow:
    predictor: str
    bp_accuracy: float
    mips: float
    rollback_replays: int


def bp_quality_sweep(
    workload: str = "164.gzip",
    predictors=("fixed:0.85", "fixed:0.92", "fixed:0.97", "perfect"),
    scale: int = 1,
) -> List[BpSweepRow]:
    """The paper's core coupling: target BP accuracy drives *simulator*
    speed, because F scales with mispredictions."""
    rows = []
    for predictor in predictors:
        run = run_fast_workload(workload, scale=scale, predictor=predictor)
        rows.append(
            BpSweepRow(
                predictor=predictor,
                bp_accuracy=run.result.timing.bp_accuracy,
                mips=run.host_mips["prototype"],
                rollback_replays=run.result.protocol.rollback_replays,
            )
        )
    return rows


@dataclass
class LookaheadRow:
    lookahead: int
    wasted_instructions: int  # speculative FM work discarded
    cycles: int


def lookahead_sweep(workload: str = "164.gzip",
                    lookaheads=(8, 32, 128), scale: int = 1):
    rows = []
    for lookahead in lookaheads:
        wl = build_workload(workload, scale)
        sim = build_fast_simulator(wl)
        sim.feed.lookahead = lookahead
        result = sim.run()
        wasted = (
            result.functional.executed
            - result.functional.replayed
            - result.timing.instructions
            - result.functional.wrong_path
        )
        rows.append(
            LookaheadRow(
                lookahead=lookahead,
                wasted_instructions=max(0, wasted),
                cycles=result.timing.cycles,
            )
        )
    return rows


def main() -> str:
    parts = []
    arch = partitioning_ablation()
    parts.append(
        "Partitioning ablation (164.gzip)\n"
        + format_table(
            ["Architecture", "MIPS", "note"],
            [(r.architecture, "%.3f" % r.mips, r.note) for r in arch],
        )
    )
    ckpt = checkpoint_interval_sweep()
    parts.append(
        "Checkpoint interval sweep\n"
        + format_table(
            ["interval", "replays/rollback", "checkpoints", "cycles"],
            [(r.interval, "%.1f" % r.replays_per_rollback,
              r.checkpoints_taken, r.cycles) for r in ckpt],
        )
    )
    comp = trace_compression_ablation()
    parts.append(
        "Trace compression\n"
        + format_table(
            ["mode", "words/instr", "s per M instr"],
            [(r.compression, "%.2f" % r.words_per_instruction,
              "%.4f" % r.trace_seconds_per_minstr) for r in comp],
        )
    )
    bp = bp_quality_sweep()
    parts.append(
        "BP quality vs simulator speed\n"
        + format_table(
            ["predictor", "accuracy", "MIPS", "replays"],
            [(r.predictor, "%.3f" % r.bp_accuracy, "%.2f" % r.mips,
              r.rollback_replays) for r in bp],
        )
    )
    return "\n\n".join(parts)


if __name__ == "__main__":
    print(main())
