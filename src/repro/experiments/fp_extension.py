"""Extension experiment: completing the FP microcode by hand.

The paper: "Instructions that we do not yet have automatic translation
for are either inserted into the table by hand or are replaced with a
NOP ... Although it is not difficult to support these instructions, we
have been focusing on the integer benchmarks."

This experiment does what the authors deferred: hand-patches microcode
for every untranslated FP opcode, then re-runs the FP-heavy workloads.
Two effects should appear:

* Table 1 coverage goes to ~100 % for eon/sweep3d/vpr, and
* target IPC *drops* (cycles rise): FP dependencies and latencies are
  now enforced instead of being free NOPs — the flip side of the
  paper's observation that eon's simulator speed was inflated by
  unmapped FP.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.experiments.harness import format_table
from repro.fast.simulator import FastSimulator
from repro.microcode.table import MicrocodeTable
from repro.workloads import build as build_workload

# Hand-written semantics for every FP opcode the compiler skips.
FP_HAND_PATCHES: Dict[str, str] = {
    "FSUB": "fd = fsub(fd, fs)",
    "FMUL": "fd = fmul(fd, fs)",
    "FDIV": "fd = fdiv(fd, fs)",
    "FSQRT": "fd = fsqrt(fd, fs)",
    "FCMP": "fcmp(fd, fs) !",
    "FFTOI": "rd = fftoi(fs)",
    "FLD": """
        t0 = add(rs, imm)
        fd = load(t0, 0)
    """,
    "FST": """
        t0 = add(rs, imm)
        store(t0, 0, fd)
    """,
}


def patched_table() -> MicrocodeTable:
    table = MicrocodeTable()
    for name, source in FP_HAND_PATCHES.items():
        table.hand_patch(name, source)
    return table


@dataclass
class FpExtensionRow:
    workload: str
    coverage_before: float
    coverage_after: float
    cycles_before: int
    cycles_after: int
    ipc_before: float
    ipc_after: float


def _run(workload_name: str, scale: int, patched: bool):
    workload = build_workload(workload_name, scale)
    sim = FastSimulator.from_programs(
        workload.programs, kernel_config=workload.kernel_config
    )
    if patched:
        table = patched_table()
        sim.fm.microcode = table
        sim.tm.microcode = table
        sim.tm.frontend.microcode = table
    return sim.run()


def compute(
    names=("252.eon", "sweep3d", "175.vpr"), scale: int = 1
) -> List[FpExtensionRow]:
    rows = []
    for name in names:
        before = _run(name, scale, patched=False)
        after = _run(name, scale, patched=True)
        rows.append(
            FpExtensionRow(
                workload=name,
                coverage_before=before.microcode_coverage,
                coverage_after=after.microcode_coverage,
                cycles_before=before.timing.cycles,
                cycles_after=after.timing.cycles,
                ipc_before=before.timing.ipc,
                ipc_after=after.timing.ipc,
            )
        )
    return rows


def main(scale: int = 1) -> str:
    rows = compute(scale=scale)
    table = format_table(
        ["App", "cov before", "cov after", "cycles before", "cycles after",
         "IPC before", "IPC after"],
        [
            (
                r.workload,
                "%.1f%%" % (100 * r.coverage_before),
                "%.1f%%" % (100 * r.coverage_after),
                r.cycles_before,
                r.cycles_after,
                "%.3f" % r.ipc_before,
                "%.3f" % r.ipc_after,
            )
            for r in rows
        ],
    )
    return "FP microcode hand-patch extension\n" + table


if __name__ == "__main__":
    print(main())
