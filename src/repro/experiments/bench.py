"""Hot-path benchmark: the fast busy path vs the pre-FastBlock baseline.

``python -m repro bench`` times the FAST-coupled simulator wall-clock
on a linux-boot slice plus SPECINT-like and fuzz-derived busy kernels
and writes ``BENCH_hotpath.json``: per-workload cycles/sec for each
configuration, the speedup, a stats-equivalence bit, and geometric
means overall and per workload class.

The two rows per workload are the *before* and *after* of the busy
path work:

* ``legacy``: the legacy tick engine with the FM superblock cache
  disabled -- the interpreter the fast path replaced;
* ``compiled``: the compiled tick engine with superblock capture and
  replay on -- the full busy-path stack (fused ticks, span-batched
  commit, flat TM tables, FM superblocks).

Both produce bit-identical ``TimingStats`` (the ``cycles_match`` bit).

Workloads fall into two classes:

* **idle-heavy** (``linux-boot``, ``perlbmk-sleep``): HALT-heavy by
  construction -- the phenomena idle fast-forward targets (section
  3.4's timing-model-starving sleeps; boot-phase idling).
* **busy** (``164.gzip``, ``181.mcf``, ``fuzz-alu``, ``fuzz-chase``):
  never idle; they pin the per-cycle busy path.  The ``fuzz-*`` pair
  is generated from the FastFuzz atom machinery with fixed seeds: a
  tight seeded ALU/mem kernel and a pointer-chase over a seeded
  permutation ring.

This file reads the host clock on purpose -- it *measures* the
simulator instead of simulating -- so the DT002 wall-clock rule is
suppressed line by line.
"""

from __future__ import annotations

import argparse
import json
import time
from typing import Dict, List, Optional, Tuple

import os

from repro.experiments.harness import (
    build_fast_simulator,
    flight_enabled,
    flight_root,
    pulse_dir,
)
from repro.fuzz.generator import alu_burst
from repro.kernel.image import UserProgram
from repro.kernel.sources import linux24_config
from repro.timing.core import TimingConfig
from repro.workloads import build as build_workload
from repro.workloads.generator import (
    EXIT_SNIPPET,
    Workload,
    data_bytes,
    data_words,
    seeded,
)

BENCH_PATH = "BENCH_hotpath.json"
OVERHEAD_PATH = "BENCH_observability.json"
MAX_CYCLES = 8_000_000

# Workloads whose wall time the idle fast-forward should dominate; the
# acceptance bar is >= 2.4x on these, >= 1.3x on the busy class.
IDLE_HEAVY = ("linux-boot", "perlbmk-sleep")

_SLEEPER_INIT = """
main:
    MOVI R0, 1
    MOVI R1, 98           ; 'b': boot reached userspace
    SYSCALL
    MOVI R0, 2            ; SYS_SLEEP: park the system in the kernel's
    MOVI R1, %(ticks)d    ; HALT idle loop for this many kernel ticks
    SYSCALL
    MOVI R0, 1
    MOVI R1, 10           ; newline
    SYSCALL
%(exit)s
"""

_PERLBMK_SLEEP = """
main:
    MOVI R7, %(iterations)d
pbs_outer:
    ; interpreter-style hash loop (the busy phase of 253.perlbmk)
    MOVI R4, text
    MOVI R5, %(n)d
    MOVI R6, 5381
pbs_hash:
    LDB R1, [R4+0]
    MOV R2, R6
    SHL R2, 5
    ADD R6, R2
    ADD R6, R1
    XORI R6, 0x1505
    INC R4
    DEC R5
    JNZ pbs_hash
    MOVI R0, 2            ; SYS_SLEEP: the HALT behaviour of Figure 4,
    MOVI R1, %(sleep)d    ; long enough to dominate the busy phase
    SYSCALL
    DEC R7
    JNZ pbs_outer
%(exit)s
.align 4
%(data)s
"""


def _linux_boot(sleep_ticks: int) -> Workload:
    source = _SLEEPER_INIT % {"ticks": sleep_ticks, "exit": EXIT_SNIPPET}
    return Workload(
        name="linux-boot",
        programs=[UserProgram("init", source, entry="main")],
        kernel_config=linux24_config(),
        description="Linux-2.4 boot slice; init sleeps %d kernel ticks"
        % sleep_ticks,
        paper_row="Linux-2.4",
    )


def _perlbmk_sleep(iterations: int, sleep_ticks: int) -> Workload:
    rng = seeded(2530)
    text = bytes(rng.choice(b"abcdefeegh e\n") for _ in range(256))
    source = _PERLBMK_SLEEP % {
        "iterations": iterations,
        "n": len(text),
        "sleep": sleep_ticks,
        "exit": EXIT_SNIPPET,
        "data": data_bytes("text", text),
    }
    return Workload(
        name="perlbmk-sleep",
        programs=[UserProgram("perlbmk-sleep", source, entry="main")],
        kernel_config=linux24_config(),
        description="perlbmk-like hash loop sleeping %d kernel ticks per "
        "iteration x%d" % (sleep_ticks, iterations),
        paper_row="253.perlbmk",
    )


_FUZZ_ALU = """
main:
    MOVI R7, %(outer)d
fa_outer:
    MOVI R6, buf
    MOVI R5, %(inner)d
fa_inner:
    %(burst)s
    ST [R6+0], R1
    LD R2, [R6+4]
    ADDI R6, 8
    DEC R5
    JNZ fa_inner
    DEC R7
    JNZ fa_outer
%(exit)s
.align 4
%(data)s
"""

_FUZZ_CHASE = """
main:
    MOVI R7, %(outer)d
pc_outer:
    MOVI R4, %(steps)d
    MOVI R5, 0
pc_step:
    MOVI R3, ring
    ADD R3, R5
    LD R5, [R3+0]
    DEC R4
    JNZ pc_step
    DEC R7
    JNZ pc_outer
%(exit)s
.align 4
%(ring)s
"""


def _fuzz_alu(outer: int, inner: int, seed: int = 7001) -> Workload:
    """Tight seeded ALU/mem kernel: a FastFuzz ALU burst (registers
    R1..R4; R5-R7 are the loop/pointer registers) inside a counted
    store/load loop -- one hot basic block, superblock catnip."""
    burst = alu_burst(seeded(seed), 10, regs=(1, 2, 3, 4))
    source = _FUZZ_ALU % {
        "outer": outer,
        "inner": inner,
        "burst": "\n    ".join(burst),
        "exit": EXIT_SNIPPET,
        "data": data_bytes("buf", bytes(inner * 8 + 8)),
    }
    return Workload(
        name="fuzz-alu",
        programs=[UserProgram("fuzz-alu", source, entry="main")],
        kernel_config=linux24_config(),
        description="seeded FastFuzz ALU burst x%d in a %d-deep "
        "store/load loop (seed %d)" % (inner, outer, seed),
    )


def _fuzz_chase(outer: int, steps: int, words: int = 512,
                seed: int = 7002) -> Workload:
    """Pointer-chase over a seeded permutation ring: every load's
    address depends on the previous load's value, so the backend
    serializes on the L1 -- the anti-ILP busy workload."""
    rng = seeded(seed)
    order = list(range(1, words))
    rng.shuffle(order)
    cycle = [0] + order
    next_of = [0] * words
    for k, node in enumerate(cycle):
        next_of[node] = cycle[(k + 1) % words] * 4
    source = _FUZZ_CHASE % {
        "outer": outer,
        "steps": steps,
        "exit": EXIT_SNIPPET,
        "ring": data_words("ring", next_of),
    }
    return Workload(
        name="fuzz-chase",
        programs=[UserProgram("fuzz-chase", source, entry="main")],
        kernel_config=linux24_config(),
        description="pointer-chase over a %d-word seeded permutation "
        "ring, %d steps x%d (seed %d)" % (words, steps, outer, seed),
    )


def bench_workloads(smoke: bool) -> List[Workload]:
    """The bench set: one boot slice, one sleeper, four busy kernels."""
    if smoke:
        return [
            _linux_boot(sleep_ticks=20),
            _perlbmk_sleep(iterations=2, sleep_ticks=10),
            build_workload("164.gzip", scale=1),
            build_workload("181.mcf", scale=1),
            _fuzz_alu(outer=12, inner=48),
            _fuzz_chase(outer=6, steps=384),
        ]
    return [
        _linux_boot(sleep_ticks=60),
        _perlbmk_sleep(iterations=4, sleep_ticks=20),
        build_workload("164.gzip", scale=1),
        build_workload("181.mcf", scale=1),
        _fuzz_alu(outer=40, inner=48),
        _fuzz_chase(outer=20, steps=384),
    ]


def _time_run(
    workload: Workload,
    engine: str,
    instrument: bool = False,
    superblocks: bool = True,
) -> Tuple[object, float]:
    sim = build_fast_simulator(
        workload, timing_config=TimingConfig(engine=engine)
    )
    if not superblocks:
        # The pre-FastBlock baseline: interpret every instruction.
        # Post-construction disable so both rows share one build path.
        fm = sim.fm
        fm.config.superblocks = False
        fm.blocks = None
        fm._sb_pages = {}
    scope = None
    if instrument:
        # Full FastScope at default sampling: fabric + tracer + the two
        # canonical trigger queries + the FastPulse telemetry plane (no
        # profiler -- that one is opt-in and deliberately outside the
        # overhead bar).  The pulse sidecar write is part of the gated
        # cost: the 1.10x bar covers the whole armed stack.
        from repro.observability import FastScope
        from repro.observability.triggers import (
            rob_occupancy,
            trace_buffer_occupancy,
        )

        scope = FastScope(
            sim,
            pulse_path=os.path.join(
                pulse_dir(), "bench-%s.jsonl" % workload.name
            ),
        )
        scope.watch_below("tb_low", trace_buffer_occupancy(sim.feed), 4)
        scope.watch_below("rob_empty", rob_occupancy(sim.tm), 1)
    t0 = time.perf_counter()  # fastlint: ignore[DT002]
    result = sim.run(MAX_CYCLES)
    dt = time.perf_counter() - t0  # fastlint: ignore[DT002]
    if scope is not None and scope.pulse is not None:
        # Outside the timed region: one footer write, so the sidecar
        # reads as finished to `repro top`/`pulse export`.
        scope.pulse.finalize()
    return result.timing, dt


def _emit_bench_artifact(
    bench: str,
    workload: Workload,
    timing,
    seconds: float,
    smoke: bool,
    reps: int,
    mode: str,
    host_extra: Optional[Dict] = None,
) -> None:
    """Persist one timed bench run as a FastFlight artifact so the
    regression gate can ``repro report --against BENCH_*.json`` it."""
    if not flight_enabled():
        return
    from repro.observability.flight.artifact import emit_artifact

    host = {
        "mode": mode,
        "seconds": round(seconds, 4),
        "cycles_per_sec": round(timing.cycles / seconds, 1)
        if seconds > 0 else 0.0,
    }
    host.update(host_extra or {})
    emit_artifact(
        experiment=bench,
        workload=workload.name,
        config={
            "smoke": smoke,
            "reps": reps,
            "max_cycles": MAX_CYCLES,
            "mode": mode,
        },
        timing=timing,
        host=host,
        root=flight_root(),
    )


def _geomean(values: List[float]) -> float:
    product = 1.0
    for value in values:
        product *= value
    return product ** (1.0 / len(values)) if values else 1.0


def run_bench(smoke: bool = False, reps: Optional[int] = None) -> Dict:
    """Time every bench workload: pre-FastBlock legacy baseline vs the
    full compiled busy-path stack."""
    if reps is None:
        reps = 1 if smoke else 2
    workloads = bench_workloads(smoke)
    rows: Dict[str, Dict] = {}
    busy: List[float] = []
    idle: List[float] = []
    for workload in workloads:
        stats: Dict[str, object] = {}
        best: Dict[str, float] = {}
        for _rep in range(reps):
            for engine in ("legacy", "compiled", "sharded"):
                # The baseline row is the engine this PR sequence
                # replaced: legacy ticks, no superblock replay.  The
                # sharded row is informational (no ratchet gate yet):
                # the default-core plan has one populated shard, so it
                # prices the sharded engine's compile + dispatch
                # overhead, not parallel speedup.
                timing, dt = _time_run(
                    workload, engine, superblocks=(engine != "legacy")
                )
                stats[engine] = timing
                best[engine] = min(best.get(engine, dt), dt)
        speedup = best["legacy"] / best["compiled"]
        idle_heavy = workload.name in IDLE_HEAVY
        (idle if idle_heavy else busy).append(speedup)
        cycles = stats["compiled"].cycles
        _emit_bench_artifact(
            "bench", workload, stats["compiled"], best["compiled"],
            smoke, reps, mode="compiled",
            host_extra={"speedup": round(speedup, 3)},
        )
        rows[workload.name] = {
            "cycles": cycles,
            "idle_cycles": stats["compiled"].idle_cycles,
            "idle_heavy": idle_heavy,
            "cycles_match": stats["legacy"] == stats["compiled"],
            "legacy": {
                "seconds": round(best["legacy"], 4),
                "cycles_per_sec": round(cycles / best["legacy"], 1),
            },
            "compiled": {
                "seconds": round(best["compiled"], 4),
                "cycles_per_sec": round(cycles / best["compiled"], 1),
            },
            # Informational (no gate): the FastShard engine on the
            # default two-shard auto plan, pinned bit-identical here.
            "sharded": {
                "seconds": round(best["sharded"], 4),
                "cycles_per_sec": round(cycles / best["sharded"], 1),
                "cycles_match": stats["sharded"] == stats["compiled"],
            },
            "speedup": round(speedup, 3),
        }
    return {
        "bench": "hotpath",
        "smoke": smoke,
        "reps": reps,
        "max_cycles": MAX_CYCLES,
        "workloads": rows,
        "geomean_speedup": round(_geomean(busy + idle), 3),
        "geomean_busy": round(_geomean(busy), 3),
        "geomean_idle_heavy": round(_geomean(idle), 3),
    }


def run_overhead_bench(smoke: bool = False, reps: Optional[int] = None) -> Dict:
    """Time every bench workload on the compiled engine, bare vs under
    full FastScope instrumentation (the observability overhead bar)."""
    if reps is None:
        # Best-of-2 even in smoke mode: the overhead bar is a *ratio*
        # gate, and a single sample per mode lets one scheduler blip
        # flip it.  This matches the committed BENCH_observability.json
        # baseline and the regression-gate CI job (--reps 2).
        reps = 2
    workloads = bench_workloads(smoke)
    rows: Dict[str, Dict] = {}
    overheads: List[float] = []
    for workload in workloads:
        stats: Dict[str, object] = {}
        best: Dict[str, float] = {}
        for _rep in range(reps):
            for mode, instrument in (("bare", False), ("scoped", True)):
                timing, dt = _time_run(
                    workload, "compiled", instrument=instrument
                )
                stats[mode] = timing
                best[mode] = min(best.get(mode, dt), dt)
        overhead = best["scoped"] / best["bare"]
        overheads.append(overhead)
        cycles = stats["bare"].cycles
        _emit_bench_artifact(
            "bench-overhead", workload, stats["bare"], best["bare"],
            smoke, reps, mode="bare",
            host_extra={
                "scoped_seconds": round(best["scoped"], 4),
                "overhead": round(overhead, 3),
            },
        )
        rows[workload.name] = {
            "cycles": cycles,
            "idle_cycles": stats["bare"].idle_cycles,
            "stats_match": stats["bare"] == stats["scoped"],
            "bare": {
                "seconds": round(best["bare"], 4),
                "cycles_per_sec": round(cycles / best["bare"], 1),
            },
            "scoped": {
                "seconds": round(best["scoped"], 4),
                "cycles_per_sec": round(cycles / best["scoped"], 1),
            },
            "overhead": round(overhead, 3),
        }
    geomean = 1.0
    for o in overheads:
        geomean *= o
    geomean **= 1.0 / len(overheads)
    return {
        "bench": "observability-overhead",
        "smoke": smoke,
        "reps": reps,
        "max_cycles": MAX_CYCLES,
        "workloads": rows,
        "geomean_overhead": round(geomean, 3),
    }


def render_overhead(report: Dict) -> str:
    lines = [
        "observability overhead (FastScope-instrumented vs bare, "
        "compiled engine)",
        "%-16s %10s %10s %9s %9s %9s %6s"
        % ("workload", "cycles", "idle", "bare", "scoped", "overhead",
           "match"),
    ]
    for name, row in report["workloads"].items():
        lines.append(
            "%-16s %10d %10d %8.2fs %8.2fs %8.2fx %6s"
            % (
                name,
                row["cycles"],
                row["idle_cycles"],
                row["bare"]["seconds"],
                row["scoped"]["seconds"],
                row["overhead"],
                "ok" if row["stats_match"] else "FAIL",
            )
        )
    lines.append("geomean overhead: %.2fx" % report["geomean_overhead"])
    return "\n".join(lines)


def render(report: Dict) -> str:
    lines = [
        "hot-path bench (compiled+FastBlock vs pre-FastBlock legacy)",
        "%-16s %5s %10s %10s %9s %9s %9s %8s %6s"
        % ("workload", "class", "cycles", "idle", "legacy", "compiled",
           "sharded", "speedup", "match"),
    ]
    for name, row in report["workloads"].items():
        sharded = row.get("sharded")
        lines.append(
            "%-16s %5s %10d %10d %8.2fs %8.2fs %9s %7.2fx %6s"
            % (
                name,
                "idle" if row["idle_heavy"] else "busy",
                row["cycles"],
                row["idle_cycles"],
                row["legacy"]["seconds"],
                row["compiled"]["seconds"],
                "%8.2fs" % sharded["seconds"] if sharded else "-",
                row["speedup"],
                "ok" if row["cycles_match"]
                and (sharded is None or sharded["cycles_match"])
                else "FAIL",
            )
        )
    lines.append(
        "geomean speedup: %.2fx overall, %.2fx busy, %.2fx idle-heavy"
        % (
            report["geomean_speedup"],
            report["geomean_busy"],
            report["geomean_idle_heavy"],
        )
    )
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro bench",
        description="time the compiled tick engine against the legacy "
        "engine and write %s" % BENCH_PATH,
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="reduced sleep spans and a single rep (CI smoke test)",
    )
    parser.add_argument("--out", default=None, help="output JSON path")
    parser.add_argument(
        "--reps",
        type=int,
        default=None,
        metavar="N",
        help="repetitions per workload, best-of-N (default: 1 with "
        "--smoke, 2 otherwise)",
    )
    parser.add_argument(
        "--artifacts",
        action="store_true",
        help="persist each timed run as a FastFlight artifact under "
        "results/runs/ (for 'repro report --against')",
    )
    parser.add_argument(
        "--fail-below",
        type=str,
        default=None,
        metavar="SPEC",
        help="exit 1 if a geomean speedup is below its bar; SPEC is a "
        "comma list of X (overall), busy:X or idle:X "
        "(e.g. 'busy:1.15,idle:2.0')",
    )
    parser.add_argument(
        "--instrumented",
        action="store_true",
        help="measure FastScope observability overhead instead of the "
        "engine speedup (writes %s)" % OVERHEAD_PATH,
    )
    parser.add_argument(
        "--fail-overhead-above",
        type=float,
        default=None,
        metavar="X",
        help="with --instrumented: exit 1 if the geomean "
        "instrumented/bare ratio exceeds X",
    )
    args = parser.parse_args(argv)
    if args.artifacts:
        from repro.experiments.harness import set_flight

        set_flight(True)
    if args.instrumented:
        return _overhead_main(args)
    out = args.out or BENCH_PATH
    report = run_bench(smoke=args.smoke, reps=args.reps)
    with open(out, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    print(render(report))
    print("wrote %s" % out)
    failed = not all(
        row["cycles_match"] for row in report["workloads"].values()
    )
    if failed:
        print("FAIL: engines disagree on TimingStats")
        return 1
    for label, key, bar in _parse_fail_below(args.fail_below):
        if report[key] < bar:
            print(
                "FAIL: %s geomean speedup %.2fx below threshold %.2fx"
                % (label, report[key], bar)
            )
            return 1
    return 0


_GEOMEAN_KEYS = {
    "overall": "geomean_speedup",
    "busy": "geomean_busy",
    "idle": "geomean_idle_heavy",
}


def _parse_fail_below(spec: Optional[str]) -> List[Tuple[str, str, float]]:
    """``--fail-below`` spec -> [(label, report key, bar)].

    Each comma-separated part is ``X`` (overall geomean) or
    ``busy:X`` / ``idle:X`` (per-class geomeans).
    """
    out: List[Tuple[str, str, float]] = []
    if not spec:
        return out
    for part in spec.split(","):
        part = part.strip()
        label, _, number = part.rpartition(":")
        label = label.strip() or "overall"
        if label not in _GEOMEAN_KEYS:
            raise SystemExit(
                "--fail-below: unknown class %r (expected one of %s)"
                % (label, ", ".join(sorted(_GEOMEAN_KEYS)))
            )
        out.append((label, _GEOMEAN_KEYS[label], float(number)))
    return out


def _overhead_main(args) -> int:
    out = args.out or OVERHEAD_PATH
    report = run_overhead_bench(smoke=args.smoke, reps=args.reps)
    with open(out, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    print(render_overhead(report))
    print("wrote %s" % out)
    if not all(
        row["stats_match"] for row in report["workloads"].values()
    ):
        print("FAIL: TimingStats differ with observability enabled")
        return 1
    if args.fail_overhead_above is not None and (
        report["geomean_overhead"] > args.fail_overhead_above
    ):
        print(
            "FAIL: geomean overhead %.2fx above threshold %.2fx"
            % (report["geomean_overhead"], args.fail_overhead_above)
        )
        return 1
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main(sys.argv[1:]))
