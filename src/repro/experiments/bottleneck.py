"""Section 4.5 bottleneck analysis: the QEMU configuration ladder, the
DRC latency table, and the per-basic-block-pair arithmetic.

Paper numbers reproduced:

=========================================================  =========
configuration                                              MIPS
=========================================================  =========
unmodified QEMU (Linux boot)                               137
optimizations off                                          45.8
tracing + checkpointing (software verification rig)        11.5
+ software 97 % count-based BP (rollbacks)                 8.6
+ software 95 % BP                                         5.9
+ software 2-bit BP (94.8 %)                               5.1
immediate-commit FPGA dummy timing model                   5.4
real Fetch unit + perfect BP                               4.6
(arithmetic check: 2139 ns / 10 instructions = 4.7 MIPS)
=========================================================  =========
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.analytical import scenarios
from repro.experiments.harness import boot_functional, format_table
from repro.host.cpu import OPTERON_275
from repro.host.link import COHERENT_LINK, DRC_LINK, DRC_LINK_MIN
from repro.workloads import build as build_workload

PAPER_LADDER = {
    "qemu-unmodified": 137.0,
    "qemu-deoptimized": 45.8,
    "tracing+checkpointing": 11.5,
    "sw-bp-97": 8.6,
    "sw-bp-95": 5.9,
    "sw-bp-2bit": 5.1,
    "fpga-dummy-tm": 5.4,
    "fpga-fetch-perfect-bp": 4.6,
}


@dataclass
class LadderRow:
    configuration: str
    modeled_mips: float
    paper_mips: float


def _ladder_mips(
    fm_ns: float,
    bp_accuracy: float = 1.0,
    rollback_ns: float = 4000.0,
    branch_ratio: float = 0.2,
    poll_ns_per_instr: float = 0.0,
    trace_ns_per_instr: float = 0.0,
) -> float:
    """ns/instruction composition used throughout section 4.5."""
    round_trips = (1.0 - bp_accuracy) * branch_ratio * 2.0
    per_instr = (
        fm_ns
        + poll_ns_per_instr
        + trace_ns_per_instr
        + round_trips * rollback_ns
    )
    return 1e3 / per_instr


def compute(measure_live: bool = True) -> List[LadderRow]:
    cpu = OPTERON_275
    rows = [
        LadderRow("qemu-unmodified", 1e3 / cpu.qemu_full_ns, 137.0),
        LadderRow("qemu-deoptimized", 1e3 / cpu.qemu_deopt_ns, 45.8),
        LadderRow(
            "tracing+checkpointing", 1e3 / cpu.qemu_traced_ns, 11.5
        ),
        LadderRow(
            "sw-bp-97", _ladder_mips(cpu.qemu_traced_ns, 0.97, 2500.0), 8.6
        ),
        LadderRow(
            "sw-bp-95", _ladder_mips(cpu.qemu_traced_ns, 0.95, 4000.0), 5.9
        ),
        LadderRow(
            "sw-bp-2bit", _ladder_mips(cpu.qemu_traced_ns, 0.948, 4800.0), 5.1
        ),
        # FPGA dummy TM: immediate commits, perfect BP; cost is polling
        # (469 ns per 2 basic blocks = ~10 instructions) + trace writes.
        LadderRow(
            "fpga-dummy-tm",
            _ladder_mips(
                cpu.qemu_traced_ns,
                poll_ns_per_instr=DRC_LINK.read_ns / 10.0,
                trace_ns_per_instr=2.0 * DRC_LINK.burst_write_ns_per_word * 2,
            ),
            5.4,
        ),
        # Real Fetch unit, perfect BP: the full 2139 ns / 10-instruction
        # arithmetic of the text.
        LadderRow(
            "fpga-fetch-perfect-bp", scenarios.prototype_bottleneck_mips(), 4.6
        ),
        LadderRow(
            "coherent-ht-projection", scenarios.coherent_projection_mips(), 5.9
        ),
    ]
    return rows


@dataclass
class LatencyRow:
    operation: str
    ns: float


def drc_latency_table() -> List[LatencyRow]:
    return [
        LatencyRow("user read (own logic)", DRC_LINK.read_ns),
        LatencyRow("user write (own logic)", DRC_LINK.write_ns),
        LatencyRow("burst write ns/word", DRC_LINK.burst_write_ns_per_word),
        LatencyRow("min read (pin registers)", DRC_LINK_MIN.read_ns),
        LatencyRow("min write (pin registers)", DRC_LINK_MIN.write_ns),
        LatencyRow("min burst ns/word", DRC_LINK_MIN.burst_write_ns_per_word),
        LatencyRow("coherent poll (new data)", COHERENT_LINK.poll_ns),
    ]


def live_fm_measurement(workload: str = "linux-2.4",
                        max_instructions: int = 200_000):
    """Run the real functional model and price its trace stream: the
    live counterpart of the ladder's tracing/checkpointing row."""
    fm = boot_functional(build_workload(workload, 1))
    executed = fm.run(max_instructions=max_instructions)
    stats = fm.stats
    words_per_instr = stats.trace_words / max(1, stats.traced)
    mean_block = stats.mean_basic_block
    # 2 basic blocks' worth of instructions pay one poll + trace writes.
    per_pair_ns = (
        2 * mean_block * OPTERON_275.qemu_traced_ns
        + DRC_LINK.read_ns
        + 2 * mean_block * words_per_instr * DRC_LINK.burst_write_ns_per_word
    )
    mips = 2 * mean_block * 1e3 / per_pair_ns
    return {
        "executed": executed,
        "mean_basic_block": mean_block,
        "trace_words_per_instr": words_per_instr,
        "modeled_mips": mips,
    }


def main() -> str:
    rows = compute()
    ladder = format_table(
        ["Configuration", "modeled MIPS", "paper MIPS"],
        [(r.configuration, "%.1f" % r.modeled_mips, "%.1f" % r.paper_mips)
         for r in rows],
    )
    lat = format_table(
        ["DRC operation", "ns"],
        [(r.operation, "%.1f" % r.ns) for r in drc_latency_table()],
    )
    live = live_fm_measurement()
    live_text = (
        "Live FM measurement (linux boot, %d instructions): "
        "%.1f instr/block, %.1f trace words/instr -> %.1f MIPS modeled"
        % (
            live["executed"],
            live["mean_basic_block"],
            live["trace_words_per_instr"],
            live["modeled_mips"],
        )
    )
    return "Section 4.5 bottleneck analysis\n%s\n\n%s\n\n%s" % (
        ladder,
        lat,
        live_text,
    )


if __name__ == "__main__":
    print(main())
