"""Experiment harnesses regenerating every table and figure of the
paper.  Each module is runnable: ``python -m repro.experiments.fig4``."""

from repro.experiments.harness import (
    PhaseCounters,
    UserPhaseTracker,
    WorkloadRun,
    boot_functional,
    build_fast_simulator,
    format_table,
    run_fast_workload,
)

__all__ = [
    "PhaseCounters",
    "UserPhaseTracker",
    "WorkloadRun",
    "boot_functional",
    "build_fast_simulator",
    "format_table",
    "run_fast_workload",
]
