"""Figure 5: gshare branch prediction accuracy per workload.

The paper's 4-way 8K-BTB gshare lands between ~77 % and ~96 % across
the suite ("our simple gshare branch predictor has fairly low branch
prediction accuracies").  We report the user-phase accuracy (the
workload itself) plus the whole-run number.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.experiments.harness import (
    finish_experiment,
    format_table,
    run_fast_workload,
)
from repro.experiments.fig4 import FIGURE_ORDER


@dataclass
class Fig5Row:
    workload: str
    accuracy: float  # whole run
    user_accuracy: float  # workload phase only
    branches: int


def measure(
    names: Optional[Sequence[str]] = None, scale: int = 1
) -> List[Fig5Row]:
    rows = []
    for name in names or FIGURE_ORDER:
        run = run_fast_workload(name, scale=scale, predictor="gshare")
        rows.append(
            Fig5Row(
                workload=name,
                accuracy=run.result.timing.bp_accuracy,
                user_accuracy=run.user.bp_accuracy,
                branches=run.result.timing.branches,
            )
        )
    return rows


def amean(rows: List[Fig5Row]) -> float:
    return sum(r.accuracy for r in rows) / len(rows)


def main(scale: int = 1, names: Optional[Sequence[str]] = None) -> str:
    rows = measure(names=names, scale=scale)
    table = format_table(
        ["App", "BP acc (run)", "BP acc (user)", "branches"],
        [
            (
                r.workload,
                "%.1f%%" % (100 * r.accuracy),
                "%.1f%%" % (100 * r.user_accuracy),
                r.branches,
            )
            for r in rows
        ]
        + [("amean", "%.1f%%" % (100 * amean(rows)), "", "")],
    )
    return finish_experiment(
        "fig5", "Figure 5: gshare branch prediction accuracy\n" + table
    )


if __name__ == "__main__":
    print(main())
