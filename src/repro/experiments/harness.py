"""Shared machinery for regenerating the paper's tables and figures.

All experiment modules (``repro.experiments.table1`` ...) and the
pytest-benchmark suite use these helpers, so scales and configurations
stay consistent between "python -m repro.experiments.fig4" and the
benchmark suite.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.fast.simulator import FastSimulator, SimulationResult
from repro.functional.model import FunctionalModel
from repro.host.platforms import (
    DRC_PROTOTYPE_PLATFORM,
    Platform,
)
from repro.kernel.image import build_os_image
from repro.kernel.layout import VBASE
from repro.system.bus import build_standard_system
from repro.timing.core import TimingConfig
from repro.workloads import build as build_workload
from repro.workloads import make_disk_image
from repro.workloads.generator import Workload


def _disk_for(workload: Workload) -> Optional[bytes]:
    return make_disk_image() if workload.name == "mysql" else None


# -- FastFlight recording ----------------------------------------------------
#
# When enabled (python -m repro enables it; REPRO_FLIGHT=1/0 overrides
# either way), every run_fast_workload call persists a run artifact
# under results/runs/, and each experiment script wraps its rendered
# output in finish_experiment(), which emits one experiment-level
# artifact referencing the runs it drove.

_FLIGHT: Dict[str, Any] = {"enabled": False, "runs": []}


def set_flight(enabled: bool) -> None:
    """Programmatic switch for artifact emission (env wins if set)."""
    _FLIGHT["enabled"] = enabled


def flight_enabled() -> bool:
    env = os.environ.get("REPRO_FLIGHT")
    if env is not None:
        return env not in ("", "0", "false", "no")
    return bool(_FLIGHT["enabled"])


def flight_root() -> str:
    from repro.observability.flight.artifact import DEFAULT_ROOT

    return os.environ.get("REPRO_FLIGHT_DIR") or DEFAULT_ROOT


def pulse_dir() -> str:
    """Live ``pulse.jsonl`` sidecars go next to the FastFlight run
    store (``results/pulse`` beside ``results/runs``): the run id is
    content-addressed and only known *after* the run, so the live
    stream needs a stable, predictable home for ``repro top`` --
    adoption copies it into the run dir at emit time."""
    return os.path.join(os.path.dirname(flight_root()) or ".", "pulse")


def _record_run(run_id: str, workload: str, cycles: int) -> None:
    runs: List[Dict[str, Any]] = _FLIGHT["runs"]
    runs.append({"run_id": run_id, "workload": workload, "cycles": cycles})


def finish_experiment(experiment: str, output: str) -> str:
    """One-line experiment adoption: wrap the rendered text in this on
    the way out of ``main()``.  Emits an experiment-level artifact
    (output text + references to the per-run artifacts accumulated
    since the last finish) and returns *output* unchanged."""
    runs: List[Dict[str, Any]] = _FLIGHT["runs"]
    drained, runs[:] = list(runs), []
    if not flight_enabled():
        return output
    from repro.observability.flight.artifact import emit_artifact

    emit_artifact(
        experiment=experiment,
        output=output,
        extra={"runs": drained},
        root=flight_root(),
    )
    return output


def boot_functional(workload: Workload) -> FunctionalModel:
    """A standalone functional model booted with *workload*."""
    memory, bus, _i, _t, console, _d = build_standard_system(
        disk_image=_disk_for(workload)
    )
    image, _ = build_os_image(workload.programs, config=workload.kernel_config)
    fm = FunctionalModel(memory=memory, bus=bus)
    fm.load(image)
    fm.console = console  # convenience handle
    return fm


def build_fast_simulator(
    workload: Workload,
    predictor: str = "gshare",
    platform: Platform = DRC_PROTOTYPE_PLATFORM,
    timing_config: Optional[TimingConfig] = None,
) -> FastSimulator:
    config = timing_config or TimingConfig(predictor=predictor)
    return FastSimulator.from_programs(
        workload.programs,
        kernel_config=workload.kernel_config,
        timing_config=config,
        platform=platform,
        disk_image=_disk_for(workload),
    )


@dataclass
class PhaseCounters:
    """Counter snapshot used for boot/user phase splitting."""

    cycles: int = 0
    instructions: int = 0
    branches: int = 0
    mispredicts: int = 0
    translated: int = 0
    untranslated: int = 0
    uops: int = 0

    def delta(self, later: "PhaseCounters") -> "PhaseCounters":
        return PhaseCounters(
            cycles=later.cycles - self.cycles,
            instructions=later.instructions - self.instructions,
            branches=later.branches - self.branches,
            mispredicts=later.mispredicts - self.mispredicts,
            translated=later.translated - self.translated,
            untranslated=later.untranslated - self.untranslated,
            uops=later.uops - self.uops,
        )

    @property
    def bp_accuracy(self) -> float:
        if not self.branches:
            return 1.0
        return 1.0 - self.mispredicts / self.branches

    @property
    def coverage(self) -> float:
        total = self.translated + self.untranslated
        return self.translated / total if total else 1.0

    @property
    def uops_per_instruction(self) -> float:
        total = self.translated + self.untranslated
        return self.uops / total if total else 0.0

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0


class UserPhaseTracker:
    """Splits run statistics at the first user-mode commit.

    Table 1 and Figures 4/5 characterize the benchmarks themselves, so
    the boot phase (identical across workloads) must be separable from
    the workload phase.  Besides the architectural counters, the full
    set of host-model inputs (trace words, round trips, rollbacks,
    idle cycles) is snapshotted so user-phase MIPS can be priced.
    """

    HOST_KEYS = (
        "entries_streamed",
        "mispredict_messages",
        "resolve_messages",
        "rollback_replays",
        "trace_words",
        "basic_blocks",
        "wrong_path",
        "idle_cycles",
    )

    def __init__(self, sim: FastSimulator):
        self.sim = sim
        self.boot_snapshot: Optional[PhaseCounters] = None
        self._boot_host: Optional[Dict[str, int]] = None
        sim.tm.commit_listeners.append(self._on_commit)

    def _counters(self) -> PhaseCounters:
        tm, fm = self.sim.tm, self.sim.fm
        cov = fm.microcode.coverage
        return PhaseCounters(
            cycles=tm.cycle,
            instructions=tm.backend.committed_instructions,
            branches=tm.backend.counter("branches"),
            mispredicts=tm.backend.counter("mispredicts"),
            translated=cov.translated,
            untranslated=cov.untranslated,
            uops=cov.uops,
        )

    def _host_counters(self) -> Dict[str, int]:
        proto = self.sim.feed.protocol
        fm = self.sim.fm.stats
        return {
            "entries_streamed": proto.entries_streamed,
            "mispredict_messages": proto.mispredict_messages,
            "resolve_messages": proto.resolve_messages,
            "rollback_replays": proto.rollback_replays,
            "trace_words": fm.trace_words,
            "basic_blocks": fm.basic_blocks,
            "wrong_path": fm.wrong_path,
            "idle_cycles": self.sim.tm.idle_cycles,
        }

    def _on_commit(self, di, cycle: int) -> None:
        if self.boot_snapshot is None and di.entry.pc >= VBASE:
            self.boot_snapshot = self._counters()
            self._boot_host = self._host_counters()

    def user_phase(self) -> PhaseCounters:
        """Counters attributable to user-phase execution (falls back to
        the whole run if no user instruction ever committed)."""
        final = self._counters()
        if self.boot_snapshot is None:
            return final
        return self.boot_snapshot.delta(final)

    def boot_phase(self) -> Optional[PhaseCounters]:
        return self.boot_snapshot

    def user_host_mips(
        self,
        platform: Optional[Platform] = None,
        protocol_mode: str = "prototype",
    ) -> float:
        """Modeled MIPS over the user phase only: all host-model event
        counts are end-minus-boot deltas, priced like a full run."""
        from repro.fast.parallel import fast_host_time
        from repro.fast.trace_buffer import ProtocolStats
        from repro.functional.model import FunctionalStats
        from repro.timing.core import TimingStats

        counters = self.user_phase()
        final_host = self._host_counters()
        boot_host = self._boot_host or {key: 0 for key in self.HOST_KEYS}
        delta = {key: final_host[key] - boot_host[key] for key in self.HOST_KEYS}

        proto = ProtocolStats(
            entries_streamed=delta["entries_streamed"],
            mispredict_messages=delta["mispredict_messages"],
            resolve_messages=delta["resolve_messages"],
            rollback_replays=delta["rollback_replays"],
        )
        fm_stats = FunctionalStats(
            trace_words=delta["trace_words"],
            basic_blocks=delta["basic_blocks"],
            wrong_path=delta["wrong_path"],
        )
        tm_stats = TimingStats(
            cycles=counters.cycles,
            instructions=counters.instructions,
            idle_cycles=delta["idle_cycles"],
        )
        breakdown = fast_host_time(
            fm_stats, proto, tm_stats, platform or self.sim.platform,
            protocol_mode=protocol_mode,
        )
        return breakdown.mips


@dataclass
class WorkloadRun:
    """One complete FAST run of a workload."""

    workload: str
    predictor: str
    result: SimulationResult
    user: PhaseCounters
    host_mips: Dict[str, float] = field(default_factory=dict)
    user_mips: Dict[str, float] = field(default_factory=dict)
    user_idle_fraction: float = 0.0


def run_fast_workload(
    name: str,
    scale: int = 1,
    predictor: str = "gshare",
    platform: Platform = DRC_PROTOTYPE_PLATFORM,
    timing_config: Optional[TimingConfig] = None,
    max_cycles: int = 20_000_000,
) -> WorkloadRun:
    """Boot + run one workload under the FAST simulator."""
    workload = build_workload(name, scale)
    sim = build_fast_simulator(
        workload,
        predictor=predictor,
        platform=platform,
        timing_config=timing_config,
    )
    tracker = UserPhaseTracker(sim)
    pulse = None
    if flight_enabled():
        # FastPulse rides along with FastFlight: the live sidecar makes
        # the run visible to `repro top` while in flight, and is
        # adopted into the run artifact afterwards.
        from repro.observability.pulse import LivenessWatchdog, PulseEmitter

        pulse = PulseEmitter(
            sim.tm,
            feed=sim.feed,
            path=os.path.join(pulse_dir(), "%s.jsonl" % name),
            workload=name,
            horizon=max_cycles,
            watchdog=LivenessWatchdog(),
        )
    # Host wall time is measured (not modelled): it feeds the run
    # artifact's volatile host section, never a modelled quantity.
    t0 = time.perf_counter()  # fastlint: ignore[DT002]
    result = sim.run(max_cycles=max_cycles)
    wall_seconds = time.perf_counter() - t0  # fastlint: ignore[DT002]
    if flight_enabled():
        from repro.observability.flight.artifact import emit_artifact

        artifact = emit_artifact(
            experiment="workload",
            workload=name,
            config={
                "scale": scale,
                "predictor": predictor,
                "engine": (timing_config.engine
                           if timing_config is not None else "compiled"),
                "max_cycles": max_cycles,
            },
            result=result,
            host={
                "seconds": round(wall_seconds, 4),
                "cycles_per_sec": round(
                    result.timing.cycles / wall_seconds, 1
                ) if wall_seconds > 0 else 0.0,
            },
            pulse=pulse,
            root=flight_root(),
        )
        _record_run(artifact.run_id, name, result.timing.cycles)
    host = {
        mode: breakdown.mips
        for mode, breakdown in sim.host_time_all_modes().items()
    }
    user_mips = {
        mode: tracker.user_host_mips(platform=platform, protocol_mode=mode)
        for mode in ("prototype", "mispredict-only", "coherent")
    }
    user = tracker.user_phase()
    boot_host = tracker._boot_host or {}
    idle_delta = sim.tm.idle_cycles - boot_host.get("idle_cycles", 0)
    return WorkloadRun(
        workload=name,
        predictor=predictor,
        result=result,
        user=user,
        host_mips=host,
        user_mips=user_mips,
        user_idle_fraction=idle_delta / max(1, user.cycles),
    )


def format_table(headers, rows) -> str:
    """Plain-text table used by all experiment CLIs."""
    widths = [len(h) for h in headers]
    text_rows = []
    for row in rows:
        text = [
            "%.4g" % cell if isinstance(cell, float) else str(cell)
            for cell in row
        ]
        text_rows.append(text)
        for i, cell in enumerate(text):
            widths[i] = max(widths[i], len(cell))
    fmt = "  ".join("%%-%ds" % w for w in widths)
    lines = [fmt % tuple(headers), fmt % tuple("-" * w for w in widths)]
    lines += [fmt % tuple(r) for r in text_rows]
    return "\n".join(lines)
