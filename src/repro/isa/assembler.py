"""A small two-pass assembler for FastISA.

Supports labels, numeric and symbolic operands, and data directives.
It exists so FastOS and the synthetic workloads can be written as
readable assembly-generating Python instead of hand-built byte arrays.

Syntax overview::

    ; comment
    .org 0x1000            ; set location counter
    start:
        MOVI R0, 100
        MOVI R1, buffer    ; labels usable as 32-bit immediates
    loop:
        LD   R2, [R1+0]
        ADD  R0, R2
        DEC  R1
        JNZ  loop
        REP MOVSB
        MOVSR EPC, R3      ; special registers by name
        FLD  F0, [R1+4]
        HALT
    buffer:
        .word 1, 2, 3
        .byte 0xFF
        .ascii "hi"
        .space 16
        .align 4
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Tuple, Union

from repro.isa import registers
from repro.isa.encoding import encode, make
from repro.isa.opcodes import OPCODES, lookup


class AssemblerError(ValueError):
    """Raised on a syntax or semantic error, with line information."""


_LABEL_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_.$]*$")
_MEM_RE = re.compile(r"^\[([A-Za-z0-9_]+)\s*(?:([+-])\s*([^\]]+))?\]$")


@dataclass
class _PendingInstr:
    """An instruction parsed in pass one, awaiting label resolution."""

    addr: int
    name: str
    dst: int
    src: int
    imm: Union[int, str]  # str means unresolved label
    rep: bool
    imm_is_rel: bool  # PC-relative (rel16) vs absolute immediate
    line_no: int


@dataclass
class _DataItem:
    addr: int
    data: bytes


@dataclass
class AssembledProgram:
    """Result of assembling a source text."""

    data: bytes
    base: int
    symbols: Dict[str, int] = field(default_factory=dict)
    # Number of instructions assembled (data directives excluded).  The
    # FastFuzz shrinker minimizes against this measure.
    instruction_count: int = 0

    @property
    def end(self) -> int:
        return self.base + len(self.data)

    def symbol(self, name: str) -> int:
        return self.symbols[name]


class Assembler:
    """Two-pass assembler.  Use :func:`assemble` for the common case."""

    def __init__(self, base: int = 0):
        self.base = base
        self._pc = base
        self._symbols: Dict[str, int] = {}
        self._instrs: List[_PendingInstr] = []
        self._data: List[_DataItem] = []
        self._line_no = 0

    # -- pass one -----------------------------------------------------

    def run(self, source: str) -> AssembledProgram:
        for self._line_no, raw in enumerate(source.splitlines(), start=1):
            line = raw.split(";", 1)[0].strip()
            if not line:
                continue
            self._line(line)
        return self._finish()

    def _line(self, line: str) -> None:
        while True:
            match = re.match(r"^([A-Za-z_][A-Za-z0-9_.$]*):\s*(.*)$", line)
            if not match:
                break
            label, line = match.group(1), match.group(2).strip()
            if label in self._symbols:
                self._err("duplicate label %r" % label)
            self._symbols[label] = self._pc
            if not line:
                return
        if line.startswith("."):
            self._directive(line)
        else:
            self._instruction(line)

    def _directive(self, line: str) -> None:
        parts = line.split(None, 1)
        name = parts[0].lower()
        arg = parts[1] if len(parts) > 1 else ""
        if name == ".org":
            target = self._int(arg)
            if target < self._pc:
                self._err(".org cannot move backwards")
            self._pc = target
        elif name == ".word":
            values = [self._int_or_label(v.strip()) for v in arg.split(",")]
            blob = bytearray()
            unresolved = []
            for i, value in enumerate(values):
                if isinstance(value, str):
                    unresolved.append((i, value))
                    blob += b"\x00\x00\x00\x00"
                else:
                    blob += (value & 0xFFFFFFFF).to_bytes(4, "little")
            item = _DataItem(self._pc, bytes(blob))
            self._data.append(item)
            for i, label in unresolved:
                self._instrs.append(
                    _PendingInstr(
                        self._pc + 4 * i, ".wordfix", 0, 0, label, False, False, self._line_no
                    )
                )
            self._pc += len(blob)
        elif name == ".byte":
            values = [self._int(v.strip()) & 0xFF for v in arg.split(",")]
            self._data.append(_DataItem(self._pc, bytes(values)))
            self._pc += len(values)
        elif name == ".ascii":
            text = arg.strip()
            if len(text) < 2 or text[0] != '"' or text[-1] != '"':
                self._err(".ascii needs a double-quoted string")
            blob = text[1:-1].encode("latin-1").decode("unicode_escape").encode("latin-1")
            self._data.append(_DataItem(self._pc, blob))
            self._pc += len(blob)
        elif name == ".space":
            count = self._int(arg)
            self._data.append(_DataItem(self._pc, bytes(count)))
            self._pc += count
        elif name == ".align":
            align = self._int(arg)
            rem = self._pc % align
            if rem:
                pad = align - rem
                self._data.append(_DataItem(self._pc, bytes(pad)))
                self._pc += pad
        else:
            self._err("unknown directive %r" % name)

    def _instruction(self, line: str) -> None:
        rep = False
        parts = line.split(None, 1)
        mnemonic = parts[0].upper()
        if mnemonic == "REP":
            rep = True
            if len(parts) < 2:
                self._err("REP prefix needs an instruction")
            parts = parts[1].split(None, 1)
            mnemonic = parts[0].upper()
        if mnemonic not in OPCODES:
            self._err("unknown mnemonic %r" % mnemonic)
        spec = lookup(mnemonic)
        operands = self._split_operands(parts[1]) if len(parts) > 1 else []
        dst, src, imm, imm_is_rel = self._operands(spec, operands)
        self._instrs.append(
            _PendingInstr(self._pc, mnemonic, dst, src, imm, rep, imm_is_rel, self._line_no)
        )
        self._pc += spec.length + (1 if rep else 0)

    @staticmethod
    def _split_operands(text: str) -> List[str]:
        # Split on commas not inside brackets.
        out, depth, cur = [], 0, []
        for ch in text:
            if ch == "[":
                depth += 1
            elif ch == "]":
                depth -= 1
            if ch == "," and depth == 0:
                out.append("".join(cur).strip())
                cur = []
            else:
                cur.append(ch)
        tail = "".join(cur).strip()
        if tail:
            out.append(tail)
        return out

    def _operands(self, spec, ops) -> Tuple[int, int, Union[int, str], bool]:
        name, fmt = spec.name, spec.fmt
        dst = src = 0
        imm: Union[int, str] = 0
        imm_is_rel = False
        try:
            if fmt == "none":
                self._want(ops, 0)
            elif fmt == "r":
                if name == "MOVSR":  # MOVSR SRNAME, Rs
                    self._want(ops, 2)
                    dst = registers.sr_index(ops[0])
                    src = self._reg(ops[1])
                elif name == "MOVRS":  # MOVRS Rd, SRNAME
                    self._want(ops, 2)
                    dst = self._reg(ops[0])
                    src = registers.sr_index(ops[1])
                elif name in ("JR", "CALLR"):
                    self._want(ops, 1)
                    dst = self._reg(ops[0])
                elif name in ("NOT", "NEG", "INC", "DEC", "PUSH", "POP"):
                    self._want(ops, 1)
                    dst = self._reg(ops[0])
                elif spec.iclass == "fp":
                    self._want(ops, 2)
                    dst = self._anyreg(ops[0])
                    src = self._anyreg(ops[1])
                else:
                    self._want(ops, 2)
                    dst = self._reg(ops[0])
                    src = self._reg(ops[1])
            elif fmt in ("ri8", "ri32"):
                self._want(ops, 2)
                dst = self._reg(ops[0])
                imm = self._int_or_label(ops[1])
            elif fmt == "i8":
                self._want(ops, 1)
                imm = self._int(ops[0])
            elif fmt == "m":
                if name == "LOOP":  # LOOP Rc, label
                    self._want(ops, 2)
                    dst = self._reg(ops[0])
                    imm = self._int_or_label(ops[1])
                    imm_is_rel = True
                elif name in ("ST", "STB", "FST"):  # ST [Rb+d], Rs
                    self._want(ops, 2)
                    src, disp = self._mem(ops[0])
                    dst = self._anyreg(ops[1])
                    imm = disp
                else:  # LD Rd, [Rb+d]
                    self._want(ops, 2)
                    dst = self._anyreg(ops[0])
                    src, imm = self._mem(ops[1])
            elif fmt == "rel16":
                self._want(ops, 1)
                imm = self._int_or_label(ops[0])
                imm_is_rel = True
            elif fmt == "port":
                if name == "OUT":  # OUT port, Rs
                    self._want(ops, 2)
                    imm = self._int(ops[0])
                    dst = self._reg(ops[1])
                else:  # IN Rd, port
                    self._want(ops, 2)
                    dst = self._reg(ops[0])
                    imm = self._int(ops[1])
        except AssemblerError:
            raise
        except ValueError as exc:
            self._err(str(exc))
        return dst, src, imm, imm_is_rel

    def _mem(self, text: str) -> Tuple[int, Union[int, str]]:
        match = _MEM_RE.match(text.strip())
        if not match:
            self._err("bad memory operand %r" % text)
        base = self._reg(match.group(1))
        disp: Union[int, str] = 0
        if match.group(3) is not None:
            disp = self._int(match.group(3))
            if match.group(2) == "-":
                disp = -disp
        return base, disp

    def _reg(self, text: str) -> int:
        return registers.gpr_index(text.strip())

    def _anyreg(self, text: str) -> int:
        text = text.strip().upper()
        if text.startswith("F") and text[1:].isdigit():
            return registers.fpr_index(text)
        return registers.gpr_index(text)

    def _int(self, text) -> int:
        if isinstance(text, int):
            return text
        text = text.strip()
        try:
            return int(text, 0)
        except ValueError:
            self._err("expected integer, got %r" % text)

    def _int_or_label(self, text) -> Union[int, str]:
        if isinstance(text, int):
            return text
        text = text.strip()
        try:
            return int(text, 0)
        except ValueError:
            if _LABEL_RE.match(text):
                return text
            self._err("expected integer or label, got %r" % text)

    def _want(self, ops: List[str], count: int) -> None:
        if len(ops) != count:
            self._err("expected %d operand(s), got %d" % (count, len(ops)))

    def _err(self, message: str) -> None:
        raise AssemblerError("line %d: %s" % (self._line_no, message))

    # -- pass two -----------------------------------------------------

    def _finish(self) -> AssembledProgram:
        size = self._pc - self.base
        image = bytearray(size)
        count = 0
        for item in self._data:
            off = item.addr - self.base
            image[off : off + len(item.data)] = item.data
        for pending in self._instrs:
            if pending.name == ".wordfix":
                value = self._resolve(pending.imm, pending.line_no)
                off = pending.addr - self.base
                image[off : off + 4] = (value & 0xFFFFFFFF).to_bytes(4, "little")
                continue
            imm = pending.imm
            if isinstance(imm, str):
                imm = self._resolve(imm, pending.line_no)
            instr = make(pending.name, pending.dst, pending.src, 0, pending.rep)
            if pending.imm_is_rel:
                imm = imm - (pending.addr + instr.length)
                if not -0x8000 <= imm < 0x8000:
                    raise AssemblerError(
                        "line %d: branch displacement %d out of rel16 range"
                        % (pending.line_no, imm)
                    )
            instr = make(pending.name, pending.dst, pending.src, imm, pending.rep)
            blob = encode(instr)
            off = pending.addr - self.base
            image[off : off + len(blob)] = blob
            count += 1
        return AssembledProgram(
            bytes(image), self.base, dict(self._symbols), count
        )

    def _resolve(self, label: str, line_no: int) -> int:
        if label not in self._symbols:
            raise AssemblerError("line %d: undefined label %r" % (line_no, label))
        return self._symbols[label]


def assemble(source: str, base: int = 0) -> AssembledProgram:
    """Assemble *source* at load address *base*."""
    return Assembler(base=base).run(source)
