"""Program images: loadable segments plus an entry point and symbols."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.isa.assembler import AssembledProgram, assemble


@dataclass
class Segment:
    """One contiguous region of bytes at a load address."""

    base: int
    data: bytes

    @property
    def end(self) -> int:
        return self.base + len(self.data)


@dataclass
class ProgramImage:
    """A loadable program: segments, entry PC and a symbol table.

    Both FastOS kernel images and user workloads are ProgramImages; the
    functional model's loader copies each segment into physical memory
    and sets the PC to ``entry``.
    """

    name: str
    segments: List[Segment] = field(default_factory=list)
    entry: int = 0
    symbols: Dict[str, int] = field(default_factory=dict)

    @classmethod
    def from_assembly(
        cls, name: str, source: str, base: int = 0, entry: Optional[str] = None
    ) -> "ProgramImage":
        """Assemble *source* into a single-segment image.

        *entry* names a label to start at; defaults to the load base.
        """
        assembled: AssembledProgram = assemble(source, base=base)
        entry_addr = assembled.symbols[entry] if entry else base
        return cls(
            name=name,
            segments=[Segment(base, assembled.data)],
            entry=entry_addr,
            symbols=dict(assembled.symbols),
        )

    def add_segment(self, base: int, data: bytes) -> None:
        self.segments.append(Segment(base, data))

    @property
    def total_bytes(self) -> int:
        return sum(len(seg.data) for seg in self.segments)

    def symbol(self, name: str) -> int:
        return self.symbols[name]
