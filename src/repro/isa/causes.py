"""Exception and interrupt cause codes shared by hardware and FastOS."""

from __future__ import annotations

CAUSE_NONE = 0
CAUSE_TLB_MISS = 1
CAUSE_DIV_ZERO = 2
CAUSE_SYSCALL = 3
CAUSE_TIMER_IRQ = 4
CAUSE_DEVICE_IRQ = 5
CAUSE_INVALID_OPCODE = 6
CAUSE_PROTECTION = 7
CAUSE_SOFT_INT = 8  # INT imm8; the immediate is stored in bits 8..15

CAUSE_NAMES = {
    CAUSE_NONE: "none",
    CAUSE_TLB_MISS: "tlb-miss",
    CAUSE_DIV_ZERO: "div-zero",
    CAUSE_SYSCALL: "syscall",
    CAUSE_TIMER_IRQ: "timer-irq",
    CAUSE_DEVICE_IRQ: "device-irq",
    CAUSE_INVALID_OPCODE: "invalid-opcode",
    CAUSE_PROTECTION: "protection",
    CAUSE_SOFT_INT: "soft-int",
}

# Interrupt causes are asynchronous; exceptions are synchronous with a
# particular instruction.  The timing model uses this distinction when it
# decides *when* to signal the functional model (section 3.4 of the paper).
INTERRUPT_CAUSES = frozenset({CAUSE_TIMER_IRQ, CAUSE_DEVICE_IRQ})


def is_interrupt(cause: int) -> bool:
    """True if *cause* is an asynchronous interrupt rather than an exception."""
    return (cause & 0xFF) in INTERRUPT_CAUSES
