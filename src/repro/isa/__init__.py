"""FastISA: the synthetic variable-length CISC ISA used as the x86 stand-in.

Public surface:

* :mod:`repro.isa.registers` -- register names and flag bits.
* :mod:`repro.isa.opcodes` -- the opcode table (:class:`OpSpec`).
* :func:`repro.isa.encoding.encode` / :func:`repro.isa.encoding.decode`.
* :func:`repro.isa.assembler.assemble` -- two-pass assembler.
* :func:`repro.isa.disassembler.disassemble`.
* :class:`repro.isa.program.ProgramImage` -- loadable images.
"""

from repro.isa.assembler import AssemblerError, assemble
from repro.isa.disassembler import disassemble, format_instr
from repro.isa.encoding import EncodingError, decode, encode, make
from repro.isa.instructions import Instr
from repro.isa.opcodes import OPCODES, OpSpec, lookup
from repro.isa.program import ProgramImage, Segment

__all__ = [
    "AssemblerError",
    "EncodingError",
    "Instr",
    "OPCODES",
    "OpSpec",
    "ProgramImage",
    "Segment",
    "assemble",
    "decode",
    "disassemble",
    "encode",
    "format_instr",
    "lookup",
    "make",
]
