"""Disassembler for FastISA: turns Instr objects / byte streams into text."""

from __future__ import annotations

from typing import Iterator, Tuple

from repro.isa import registers
from repro.isa.encoding import decode
from repro.isa.instructions import Instr


def _gpr(index: int) -> str:
    return registers.GPR_NAMES[index & 7]


def _fpr(index: int) -> str:
    return registers.FPR_NAMES[index & 7]


def _sr(index: int) -> str:
    if index < len(registers.SR_NAMES):
        return registers.SR_NAMES[index]
    return "SR%d" % index


def format_instr(instr: Instr, pc: int = None) -> str:
    """Render one instruction.  If *pc* is given, branch targets are
    shown as absolute addresses."""
    spec = instr.spec
    name = spec.name
    prefix = "REP " if instr.rep else ""
    fmt = spec.fmt
    if fmt == "none":
        body = name
    elif fmt == "r":
        if name == "MOVSR":
            body = "%s %s, %s" % (name, _sr(instr.dst), _gpr(instr.src))
        elif name == "MOVRS":
            body = "%s %s, %s" % (name, _gpr(instr.dst), _sr(instr.src))
        elif name in ("JR", "CALLR", "NOT", "NEG", "INC", "DEC", "PUSH", "POP"):
            body = "%s %s" % (name, _gpr(instr.dst))
        elif spec.iclass == "fp":
            body = "%s %s, %s" % (name, _fpr(instr.dst), _fpr(instr.src))
        else:
            body = "%s %s, %s" % (name, _gpr(instr.dst), _gpr(instr.src))
    elif fmt in ("ri8", "ri32"):
        body = "%s %s, %d" % (name, _gpr(instr.dst), instr.imm)
    elif fmt == "i8":
        body = "%s %d" % (name, instr.imm)
    elif fmt == "m":
        if name == "LOOP":
            target = instr.imm if pc is None else instr.branch_target(pc)
            body = "%s %s, %#x" % (name, _gpr(instr.dst), target)
        elif name in ("ST", "STB"):
            body = "%s [%s%+d], %s" % (name, _gpr(instr.src), instr.imm, _gpr(instr.dst))
        elif name == "FST":
            body = "%s [%s%+d], %s" % (name, _gpr(instr.src), instr.imm, _fpr(instr.dst))
        elif name == "FLD":
            body = "%s %s, [%s%+d]" % (name, _fpr(instr.dst), _gpr(instr.src), instr.imm)
        else:
            body = "%s %s, [%s%+d]" % (name, _gpr(instr.dst), _gpr(instr.src), instr.imm)
    elif fmt == "rel16":
        if pc is None:
            body = "%s %+d" % (name, instr.imm)
        else:
            body = "%s %#x" % (name, instr.branch_target(pc))
    elif fmt == "port":
        if name == "OUT":
            body = "%s %#x, %s" % (name, instr.imm, _gpr(instr.dst))
        else:
            body = "%s %s, %#x" % (name, _gpr(instr.dst), instr.imm)
    else:  # pragma: no cover
        body = name
    return prefix + body


def disassemble(data: bytes, base: int = 0) -> Iterator[Tuple[int, Instr, str]]:
    """Yield ``(address, instr, text)`` for each instruction in *data*."""
    offset = 0
    while offset < len(data):
        instr, length = decode(data, offset)
        addr = base + offset
        yield addr, instr, format_instr(instr, pc=addr)
        offset += length


def disassemble_listing(data: bytes, base: int = 0,
                        skip_nop_runs: bool = True) -> str:
    """A human-readable ``addr: text`` listing of *data*.

    FastFuzz repro files embed this next to the assembly source so a
    corpus entry can be triaged without re-running the tools.  Long
    all-zero gaps (``.org`` padding decodes as NOP runs) are elided to
    one marker line when *skip_nop_runs* is set.
    """
    lines = []
    nops = 0
    for addr, instr, text in disassemble(data, base=base):
        if skip_nop_runs and instr.spec.name == "NOP" and not instr.rep:
            nops += 1
            continue
        if nops:
            lines.append("%#06x: ... %d NOP bytes ..." % (addr - nops, nops))
            nops = 0
        lines.append("%#06x: %s" % (addr, text))
    if nops:
        lines.append("%#06x: ... %d NOP bytes ..." % (base + len(data) - nops,
                                                      nops))
    return "\n".join(lines)
