"""Opcode table for FastISA.

Every opcode has a fixed *format* that determines the instruction length
and operand encoding, and a *class* that the microcode compiler and the
timing model use to select functional units and latencies.

Formats (total length in bytes, excluding an optional ``REP`` prefix):

=========  ======  =======================================================
format     length  layout
=========  ======  =======================================================
``none``   1       opcode
``r``      2       opcode, mod (dst << 4 | src)
``ri8``    3       opcode, mod (dst << 4), imm8
``i8``     2       opcode, imm8
``ri32``   6       opcode, mod (dst << 4 | src), imm32 (little endian)
``m``      4       opcode, mod (dst << 4 | base), disp16 (signed)
``rel16``  3       opcode, rel16 (signed, relative to next instruction)
``port``   4       opcode, mod (reg << 4), port16
=========  ======  =======================================================

Variable lengths of 1-6 bytes (7 with a REP prefix) reproduce the
variable-length-CISC decode problem the paper highlights for x86.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Dict, Optional

REP_PREFIX = 0xFF

FORMAT_LENGTHS = {
    "none": 1,
    "r": 2,
    "ri8": 3,
    "i8": 2,
    "ri32": 6,
    "m": 4,
    "rel16": 3,
    "port": 4,
}

# Instruction classes.  These drive microcode cracking and functional-unit
# selection in the timing model.
CLASS_ALU = "alu"
CLASS_MULDIV = "muldiv"
CLASS_FP = "fp"
CLASS_LOAD = "load"
CLASS_STORE = "store"
CLASS_BRANCH = "branch"  # conditional control flow
CLASS_JUMP = "jump"  # unconditional control flow
CLASS_CALL = "call"
CLASS_RET = "ret"
CLASS_SYS = "sys"
CLASS_NOP = "nop"
CLASS_STRING = "string"


@dataclass(frozen=True)
class OpSpec:
    """Static description of one opcode."""

    name: str
    value: int
    fmt: str
    iclass: str
    writes_flags: bool = False
    reads_flags: bool = False
    privileged: bool = False

    # cached_property: specs are frozen and shared, and these two are
    # on the per-instruction hot path of both models -- after the first
    # access they are plain instance-dict lookups.
    @cached_property
    def length(self) -> int:
        return FORMAT_LENGTHS[self.fmt]

    @cached_property
    def is_control(self) -> bool:
        return self.iclass in (
            CLASS_BRANCH,
            CLASS_JUMP,
            CLASS_CALL,
            CLASS_RET,
        )


def _build_table() -> Dict[str, OpSpec]:
    spec_args = [
        # name, value, fmt, class, writes_flags, reads_flags, privileged
        ("NOP", 0x00, "none", CLASS_NOP),
        ("HALT", 0x01, "none", CLASS_SYS, False, False, True),
        ("SYSCALL", 0x02, "none", CLASS_SYS),
        ("IRET", 0x03, "none", CLASS_SYS, False, False, True),
        ("CLI", 0x04, "none", CLASS_SYS, False, False, True),
        ("STI", 0x05, "none", CLASS_SYS, False, False, True),
        ("RET", 0x06, "none", CLASS_RET),
        ("INT", 0x07, "i8", CLASS_SYS),
        # Data movement.
        ("MOV", 0x10, "r", CLASS_ALU),
        ("MOVI", 0x11, "ri32", CLASS_ALU),
        ("LD", 0x12, "m", CLASS_LOAD),
        ("ST", 0x13, "m", CLASS_STORE),
        ("PUSH", 0x14, "r", CLASS_STORE),
        ("POP", 0x15, "r", CLASS_LOAD),
        ("LEA", 0x16, "m", CLASS_ALU),
        ("LDB", 0x17, "m", CLASS_LOAD),
        ("STB", 0x18, "m", CLASS_STORE),
        # Integer ALU, register forms.
        ("ADD", 0x20, "r", CLASS_ALU, True),
        ("SUB", 0x21, "r", CLASS_ALU, True),
        ("AND", 0x22, "r", CLASS_ALU, True),
        ("OR", 0x23, "r", CLASS_ALU, True),
        ("XOR", 0x24, "r", CLASS_ALU, True),
        ("CMP", 0x25, "r", CLASS_ALU, True),
        ("TEST", 0x26, "r", CLASS_ALU, True),
        ("NOT", 0x27, "r", CLASS_ALU, True),
        ("NEG", 0x28, "r", CLASS_ALU, True),
        ("INC", 0x29, "r", CLASS_ALU, True),
        ("DEC", 0x2A, "r", CLASS_ALU, True),
        ("MUL", 0x2B, "r", CLASS_MULDIV, True),
        ("DIV", 0x2C, "r", CLASS_MULDIV, True),
        ("ADC", 0x2D, "r", CLASS_ALU, True, True),
        # Integer ALU, immediate forms.
        ("ADDI", 0x30, "ri32", CLASS_ALU, True),
        ("SUBI", 0x31, "ri32", CLASS_ALU, True),
        ("ANDI", 0x32, "ri32", CLASS_ALU, True),
        ("ORI", 0x33, "ri32", CLASS_ALU, True),
        ("XORI", 0x34, "ri32", CLASS_ALU, True),
        ("CMPI", 0x35, "ri32", CLASS_ALU, True),
        ("SHL", 0x36, "ri8", CLASS_ALU, True),
        ("SHR", 0x37, "ri8", CLASS_ALU, True),
        ("SAR", 0x38, "ri8", CLASS_ALU, True),
        # Control flow.
        ("JMP", 0x40, "rel16", CLASS_JUMP),
        ("JZ", 0x41, "rel16", CLASS_BRANCH, False, True),
        ("JNZ", 0x42, "rel16", CLASS_BRANCH, False, True),
        ("JL", 0x43, "rel16", CLASS_BRANCH, False, True),
        ("JGE", 0x44, "rel16", CLASS_BRANCH, False, True),
        ("JG", 0x45, "rel16", CLASS_BRANCH, False, True),
        ("JLE", 0x46, "rel16", CLASS_BRANCH, False, True),
        ("JC", 0x47, "rel16", CLASS_BRANCH, False, True),
        ("JNC", 0x48, "rel16", CLASS_BRANCH, False, True),
        ("CALL", 0x49, "rel16", CLASS_CALL),
        ("JR", 0x4A, "r", CLASS_JUMP),
        ("CALLR", 0x4B, "r", CLASS_CALL),
        ("LOOP", 0x4C, "m", CLASS_BRANCH),  # dec base-reg, branch if nonzero
        # String / complex CISC operations.  With a REP prefix, MOVSB and
        # STOSB iterate R2 times (R0 = source pointer, R1 = destination).
        ("MOVSB", 0x50, "none", CLASS_STRING),
        ("STOSB", 0x51, "none", CLASS_STRING),
        ("SCASB", 0x52, "none", CLASS_STRING, True),
        # Floating point.
        ("FADD", 0x60, "r", CLASS_FP),
        ("FSUB", 0x61, "r", CLASS_FP),
        ("FMUL", 0x62, "r", CLASS_FP),
        ("FDIV", 0x63, "r", CLASS_FP),
        ("FMOV", 0x64, "r", CLASS_FP),
        ("FLD", 0x65, "m", CLASS_FP),
        ("FST", 0x66, "m", CLASS_FP),
        ("FITOF", 0x67, "r", CLASS_FP),
        ("FFTOI", 0x68, "r", CLASS_FP),
        ("FSQRT", 0x69, "r", CLASS_FP),
        ("FCMP", 0x6A, "r", CLASS_FP, True),
        # Privileged / system interface.
        ("IN", 0x70, "port", CLASS_SYS, False, False, True),
        ("OUT", 0x71, "port", CLASS_SYS, False, False, True),
        ("TLBWR", 0x72, "r", CLASS_SYS, False, False, True),
        ("TLBFLUSH", 0x73, "none", CLASS_SYS, False, False, True),
        ("MOVSR", 0x74, "r", CLASS_SYS, False, False, True),  # SR <- GPR
        ("MOVRS", 0x75, "r", CLASS_SYS, False, False, True),  # GPR <- SR
    ]
    table = {}
    for args in spec_args:
        spec = OpSpec(*args)
        table[spec.name] = spec
    return table


OPCODES: Dict[str, OpSpec] = _build_table()
OPCODES_BY_VALUE: Dict[int, OpSpec] = {s.value: s for s in OPCODES.values()}

# Opcodes grouped by instruction class, in opcode-value order.  Tools
# that enumerate the ISA -- the FastFuzz program generator, coverage
# reports -- key off this table so a newly added opcode is picked up
# automatically instead of silently escaping generation.
OPCODES_BY_CLASS: Dict[str, tuple] = {}
for _spec in sorted(OPCODES.values(), key=lambda s: s.value):
    OPCODES_BY_CLASS.setdefault(_spec.iclass, ())
    OPCODES_BY_CLASS[_spec.iclass] += (_spec,)
del _spec


def by_class(iclass: str) -> tuple:
    """All opcodes of one instruction class, in opcode-value order."""
    return OPCODES_BY_CLASS.get(iclass, ())

# Branch condition -> (flag mask the condition reads, helper).  Used by
# both the functional model and the disassembler.
CONDITIONAL_BRANCHES = frozenset(
    name for name, spec in OPCODES.items() if spec.iclass == CLASS_BRANCH
)


def lookup(name: str) -> OpSpec:
    """Return the OpSpec for *name*, raising ``KeyError`` if unknown."""
    return OPCODES[name.upper()]


def decode_value(value: int) -> Optional[OpSpec]:
    """Return the OpSpec for an opcode byte, or ``None`` if invalid."""
    return OPCODES_BY_VALUE.get(value)
