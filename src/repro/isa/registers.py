"""Architectural register definitions for FastISA.

FastISA is the synthetic, variable-length CISC instruction set this
reproduction uses as its x86 stand-in (see DESIGN.md section 2).  It has
eight 32-bit general-purpose registers, eight floating-point registers,
a flags register with the usual Z/N/C/V condition codes, and a small set
of special (privileged) registers used by the FastOS kernel for
exception handling and software TLB refill.
"""

from __future__ import annotations

# ---------------------------------------------------------------------------
# General-purpose registers.
#
# R6 is used by convention as the frame pointer and R7 as the stack
# pointer (the PUSH/POP/CALL/RET microcode hard-codes R7, mirroring how
# x86 hard-codes ESP).
# ---------------------------------------------------------------------------
NUM_GPRS = 8
GPR_NAMES = tuple("R%d" % i for i in range(NUM_GPRS))
FP = 6
SP = 7

# Floating-point register file (F0..F7).
NUM_FPRS = 8
FPR_NAMES = tuple("F%d" % i for i in range(NUM_FPRS))

# ---------------------------------------------------------------------------
# Flags register bit positions.
# ---------------------------------------------------------------------------
FLAG_Z = 1 << 0  # zero
FLAG_N = 1 << 1  # negative (sign)
FLAG_C = 1 << 2  # carry
FLAG_V = 1 << 3  # overflow

FLAG_NAMES = {FLAG_Z: "Z", FLAG_N: "N", FLAG_C: "C", FLAG_V: "V"}

# ---------------------------------------------------------------------------
# Special registers, accessed with MOVSR/MOVRS.  Indices are encoded in
# the instruction's mod byte.
# ---------------------------------------------------------------------------
SR_STATUS = 0  # bit 0: interrupt enable, bit 1: kernel mode
SR_EPC = 1  # exception return PC
SR_CAUSE = 2  # exception cause code (see repro.isa.causes)
SR_BADVADDR = 3  # faulting virtual address for TLB misses
SR_KSP = 4  # kernel stack pointer save slot
SR_SCRATCH0 = 5
SR_SCRATCH1 = 6
SR_CYCLE = 7  # free-running instruction counter (read-only)
SR_FLAGS = 8  # alias of the flags register, for context save/restore
SR_SCRATCH2 = 9

NUM_SRS = 10
SR_NAMES = (
    "STATUS",
    "EPC",
    "CAUSE",
    "BADVADDR",
    "KSP",
    "SCRATCH0",
    "SCRATCH1",
    "CYCLE",
    "FLAGS",
    "SCRATCH2",
)

STATUS_IE = 1 << 0  # interrupts enabled
STATUS_KERNEL = 1 << 1  # privileged mode


def gpr_index(name: str) -> int:
    """Return the register index for a GPR name such as ``"R3"``.

    Raises ``ValueError`` for unknown names.
    """
    name = name.upper()
    if name == "SP":
        return SP
    if name == "FP":
        return FP
    if name in GPR_NAMES:
        return GPR_NAMES.index(name)
    raise ValueError("unknown GPR name: %r" % (name,))


def fpr_index(name: str) -> int:
    """Return the register index for an FPR name such as ``"F2"``."""
    name = name.upper()
    if name in FPR_NAMES:
        return FPR_NAMES.index(name)
    raise ValueError("unknown FPR name: %r" % (name,))


def sr_index(name: str) -> int:
    """Return the index of a special register by name (e.g. ``"EPC"``)."""
    name = name.upper()
    if name in SR_NAMES:
        return SR_NAMES.index(name)
    raise ValueError("unknown special register: %r" % (name,))
