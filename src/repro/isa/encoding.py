"""Binary encoding and decoding of FastISA instructions.

All multi-byte immediates are little-endian.  Decoding is deliberately
cheap: one table lookup on the opcode byte plus fixed-format operand
extraction, so the functional model's interpreter loop stays fast.
"""

from __future__ import annotations

from typing import Tuple

from repro.isa.instructions import Instr
from repro.isa.opcodes import OPCODES_BY_VALUE, REP_PREFIX


class EncodingError(ValueError):
    """Raised when bytes cannot be decoded or an Instr cannot be encoded."""


def _sign16(value: int) -> int:
    return value - 0x10000 if value >= 0x8000 else value


def _sign8(value: int) -> int:
    return value - 0x100 if value >= 0x80 else value


def encode(instr: Instr) -> bytes:
    """Encode *instr* into its binary form."""
    spec = instr.spec
    out = bytearray()
    if instr.rep:
        out.append(REP_PREFIX)
    out.append(spec.value)
    fmt = spec.fmt
    if fmt == "none":
        pass
    elif fmt == "r":
        _check_reg(instr.dst)
        _check_reg(instr.src)
        out.append((instr.dst << 4) | instr.src)
    elif fmt == "ri8":
        _check_reg(instr.dst)
        out.append(instr.dst << 4)
        out.append(instr.imm & 0xFF)
    elif fmt == "i8":
        out.append(instr.imm & 0xFF)
    elif fmt == "ri32":
        _check_reg(instr.dst)
        _check_reg(instr.src)
        out.append((instr.dst << 4) | instr.src)
        out += (instr.imm & 0xFFFFFFFF).to_bytes(4, "little")
    elif fmt == "m":
        _check_reg(instr.dst)
        _check_reg(instr.src)
        out.append((instr.dst << 4) | instr.src)
        out += (instr.imm & 0xFFFF).to_bytes(2, "little")
    elif fmt == "rel16":
        out += (instr.imm & 0xFFFF).to_bytes(2, "little")
    elif fmt == "port":
        _check_reg(instr.dst)
        out.append(instr.dst << 4)
        out += (instr.imm & 0xFFFF).to_bytes(2, "little")
    else:  # pragma: no cover - table is static
        raise EncodingError("unknown format %r" % (fmt,))
    return bytes(out)


def decode(data, offset: int = 0) -> Tuple[Instr, int]:
    """Decode one instruction from *data* at *offset*.

    Returns ``(instr, length)``.  Raises :class:`EncodingError` on an
    invalid opcode byte or truncated instruction.
    """
    rep = False
    start = offset
    try:
        byte0 = data[offset]
    except IndexError:
        raise EncodingError("truncated instruction at %#x" % (offset,))
    if byte0 == REP_PREFIX:
        rep = True
        offset += 1
        try:
            byte0 = data[offset]
        except IndexError:
            raise EncodingError("REP prefix with no opcode at %#x" % (start,))
    spec = OPCODES_BY_VALUE.get(byte0)
    if spec is None:
        raise EncodingError("invalid opcode byte %#04x at %#x" % (byte0, start))
    end = offset + spec.length
    if end > len(data):
        raise EncodingError("truncated %s at %#x" % (spec.name, start))
    dst = src = imm = 0
    fmt = spec.fmt
    if fmt == "r":
        mod = data[offset + 1]
        dst, src = mod >> 4, mod & 0x0F
    elif fmt == "ri8":
        dst = data[offset + 1] >> 4
        imm = _sign8(data[offset + 2])
    elif fmt == "i8":
        imm = data[offset + 1]
    elif fmt == "ri32":
        mod = data[offset + 1]
        dst, src = mod >> 4, mod & 0x0F
        imm = int.from_bytes(data[offset + 2 : offset + 6], "little")
    elif fmt == "m":
        mod = data[offset + 1]
        dst, src = mod >> 4, mod & 0x0F
        imm = _sign16(int.from_bytes(data[offset + 2 : offset + 4], "little"))
    elif fmt == "rel16":
        imm = _sign16(int.from_bytes(data[offset + 1 : offset + 3], "little"))
    elif fmt == "port":
        dst = data[offset + 1] >> 4
        imm = int.from_bytes(data[offset + 2 : offset + 4], "little")
    instr = Instr(spec=spec, dst=dst, src=src, imm=imm, rep=rep)
    return instr, end - start


def _check_reg(index: int) -> None:
    if not 0 <= index <= 15:
        raise EncodingError("register index %d out of range" % (index,))


def make(name: str, dst: int = 0, src: int = 0, imm: int = 0, rep: bool = False) -> Instr:
    """Convenience constructor: build an Instr from an opcode name."""
    from repro.isa.opcodes import lookup

    return Instr(spec=lookup(name), dst=dst, src=src, imm=imm, rep=rep)
