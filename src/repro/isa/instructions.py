"""Decoded-instruction representation for FastISA.

A :class:`Instr` is the result of decoding raw bytes (or of assembling a
source line).  Operand fields are interpreted according to the opcode
format:

* ``r``      -- ``dst`` and ``src`` are register indices.  For ``MOVSR``
  the destination is a special-register index; for ``MOVRS`` the source
  is.  ``JR``/``CALLR`` take their target in ``dst``.
* ``ri8``/``ri32`` -- ``dst`` is a register, ``imm`` the immediate.
* ``m``      -- ``dst`` is the data register (destination for loads,
  source for stores), ``src`` the base register, ``imm`` the signed
  16-bit displacement.  ``LOOP`` uses ``dst`` as the counter and ``imm``
  as a branch displacement.
* ``rel16``  -- ``imm`` is a signed offset relative to the *next*
  instruction.
* ``port``   -- ``dst`` is the data register, ``imm`` the 16-bit port.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property

from repro.isa.opcodes import OpSpec


@dataclass(frozen=True)
class Instr:
    """One decoded FastISA instruction."""

    spec: OpSpec
    dst: int = 0
    src: int = 0
    imm: int = 0
    rep: bool = False

    @property
    def name(self) -> str:
        return self.spec.name

    @cached_property
    def length(self) -> int:
        """Encoded length in bytes, including the REP prefix if present."""
        return self.spec.length + (1 if self.rep else 0)

    @cached_property
    def is_control(self) -> bool:
        return self.spec.is_control

    def branch_target(self, pc: int) -> int:
        """Target address of a PC-relative control instruction at *pc*."""
        return (pc + self.length + self.imm) & 0xFFFFFFFF

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        from repro.isa.disassembler import format_instr

        return format_instr(self)


@dataclass
class DecodedBlock:
    """A run of instructions decoded from consecutive addresses.

    The functional model's translation cache stores these, mirroring
    QEMU's translated basic blocks.  A block ends at the first control
    instruction or at ``max_len`` instructions.
    """

    start: int
    instrs: list = field(default_factory=list)

    @property
    def size_bytes(self) -> int:
        return sum(i.length for i in self.instrs)

    @property
    def end(self) -> int:
        return self.start + self.size_bytes
