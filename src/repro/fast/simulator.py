"""FastSimulator: the top-level FAST simulator facade.

Wires a full system (memory, devices, FastOS, workloads) to a
speculative functional model, couples it to the cycle-accurate timing
model through a trace buffer, runs to completion and reports both
target metrics (cycles, IPC, branch accuracy) and modeled host
performance (MIPS on the DRC platform).

This is the class most users want::

    from repro.fast import FastSimulator
    from repro.kernel import UserProgram

    sim = FastSimulator.from_programs([UserProgram("app", SOURCE)])
    result = sim.run()
    print(result.timing.ipc, result.host_time().mips)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.fast.parallel import HostTimeBreakdown, fast_host_time
from repro.fast.trace_buffer import ProtocolStats, TraceBufferFeed
from repro.functional.model import (
    FunctionalConfig,
    FunctionalModel,
    FunctionalStats,
)
from repro.host.platforms import DRC_PLATFORM, Platform
from repro.isa.program import ProgramImage
from repro.kernel.image import UserProgram, build_os_image
from repro.kernel.sources import KernelConfig
from repro.system.bus import build_standard_system
from repro.timing.core import TimingConfig, TimingModel, TimingStats


@dataclass
class SimulationResult:
    """Everything one coupled run produced."""

    timing: TimingStats
    functional: FunctionalStats
    protocol: ProtocolStats
    console_text: str
    microcode_coverage: float
    uops_per_instruction: float

    def summary(self) -> str:
        return (
            "cycles=%d instructions=%d ipc=%.3f bp=%.2f%% "
            "icache=%.2f%% coverage=%.2f%% uops/inst=%.2f"
            % (
                self.timing.cycles,
                self.timing.instructions,
                self.timing.ipc,
                100 * self.timing.bp_accuracy,
                100 * self.timing.icache_hit_rate,
                100 * self.microcode_coverage,
                self.uops_per_instruction,
            )
        )


class FastSimulator:
    """A FAST-coupled full-system simulator instance."""

    def __init__(
        self,
        fm: FunctionalModel,
        timing_config: Optional[TimingConfig] = None,
        platform: Platform = DRC_PLATFORM,
        tb_depth: int = 512,
        tb_lookahead: int = 32,
    ):
        self.fm = fm
        self.platform = platform
        self.feed = TraceBufferFeed(fm, depth=tb_depth, lookahead=tb_lookahead)
        self.tm = TimingModel(
            self.feed, microcode=fm.microcode, config=timing_config
        )
        self._result: Optional[SimulationResult] = None

    # -- constructors ------------------------------------------------------

    @classmethod
    def from_programs(
        cls,
        programs: Sequence[UserProgram],
        kernel_config: Optional[KernelConfig] = None,
        timing_config: Optional[TimingConfig] = None,
        functional_config: Optional[FunctionalConfig] = None,
        platform: Platform = DRC_PLATFORM,
        disk_image: Optional[bytes] = None,
        memory_size: int = 16 * 1024 * 1024,
        **kwargs,
    ) -> "FastSimulator":
        """Boot FastOS with *programs* under the FAST simulator."""
        memory, bus, _i, _t, console, _d = build_standard_system(
            memory_size=memory_size, disk_image=disk_image
        )
        image, _cfg = build_os_image(programs, config=kernel_config)
        fm = FunctionalModel(memory=memory, bus=bus, config=functional_config)
        fm.load(image)
        sim = cls(fm, timing_config=timing_config, platform=platform, **kwargs)
        sim._console = console
        return sim

    @classmethod
    def from_image(
        cls,
        image: ProgramImage,
        timing_config: Optional[TimingConfig] = None,
        functional_config: Optional[FunctionalConfig] = None,
        platform: Platform = DRC_PLATFORM,
        **kwargs,
    ) -> "FastSimulator":
        """Run a bare-metal image (no OS) under the FAST simulator."""
        memory, bus, _i, _t, console, _d = build_standard_system()
        fm = FunctionalModel(memory=memory, bus=bus, config=functional_config)
        fm.load(image)
        sim = cls(fm, timing_config=timing_config, platform=platform, **kwargs)
        sim._console = console
        return sim

    # -- running --------------------------------------------------------------

    def run(self, max_cycles: int = 100_000_000) -> SimulationResult:
        timing = self.tm.run(max_cycles=max_cycles)
        coverage = self.fm.microcode.coverage
        self._result = SimulationResult(
            timing=timing,
            functional=self.fm.stats,
            protocol=self.feed.protocol,
            console_text=getattr(self, "_console").text()
            if hasattr(self, "_console")
            else "",
            microcode_coverage=coverage.fraction_translated,
            uops_per_instruction=coverage.uops_per_instruction,
        )
        return self._result

    # -- host performance --------------------------------------------------------

    def host_time(
        self,
        protocol_mode: str = "prototype",
        software_timing: bool = False,
        platform: Optional[Platform] = None,
    ) -> HostTimeBreakdown:
        """Modeled wall-clock breakdown for the completed run."""
        if self._result is None:
            raise RuntimeError("call run() first")
        return fast_host_time(
            self._result.functional,
            self._result.protocol,
            self._result.timing,
            platform or self.platform,
            protocol_mode=protocol_mode,
            software_timing=software_timing,
        )

    def host_time_all_modes(self) -> Dict[str, HostTimeBreakdown]:
        return {
            mode: self.host_time(protocol_mode=mode)
            for mode in ("prototype", "mispredict-only", "coherent")
        }
