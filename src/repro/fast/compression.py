"""Trace-stream encoding: the section 3.2 compression techniques, made
concrete.

"Some of the performance impact of trace generation can be reduced by
compression techniques such as mirroring translation caches (pass just
a basic block number and addresses rather than all of the instructions
in the basic block) and/or TLBs to remove the need to send physical
addresses, compacting opcodes and so on."

Two codecs over the FM->TM link, both lossless for everything the
timing model consumes:

* :class:`FullTraceCodec` -- every entry shipped inline: compacted
  opcode + register fields in one word, PC word, next-PC word, plus
  optional memory-address and TLB-fill words (~4 words/instruction, the
  paper's measured average).
* :class:`BasicBlockCodec` -- mirrors the translation cache: the first
  time a basic block is sent it goes inline and both sides install it;
  afterwards only the block id plus the per-instruction dynamic fields
  (memory addresses, REP counts) cross the link (~2 words/instruction).

The codecs measure real achievable compression on real traces; the host
model's ``trace_words`` size accounting is validated against them.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.functional.trace import TraceEntry
from repro.isa.encoding import encode
from repro.isa.instructions import Instr

MASK32 = 0xFFFFFFFF

# Header-word layout (both codecs): opcode compacted to 11 bits
# (paper: "we have compressed opcodes to 11 bits"), register fields,
# and presence flags for the optional words.
_F_MEM = 1 << 0
_F_TLB = 1 << 1
_F_EXC = 1 << 2
_F_WRONG = 1 << 3
_F_HANDLER = 1 << 4
_F_REP = 1 << 5


def _pack_header(entry: TraceEntry) -> int:
    instr = entry.instr
    flags = 0
    if entry.mem_vaddr >= 0:
        flags |= _F_MEM
    if entry.tlb_vpn >= 0:
        flags |= _F_TLB
    if entry.exception:
        flags |= _F_EXC
    if entry.wrong_path:
        flags |= _F_WRONG
    if entry.handler_entry:
        flags |= _F_HANDLER
    if instr.rep:
        flags |= _F_REP
    opcode11 = (instr.spec.value | (0x400 if instr.rep else 0)) & 0x7FF
    return (
        opcode11
        | (instr.dst & 0xF) << 11
        | (instr.src & 0xF) << 15
        | (flags & 0x3F) << 19
        | (entry.exception & 0x7F) << 25
    )


class FullTraceCodec:
    """Everything inline; per-entry word count matches
    ``TraceEntry.trace_words('full')``."""

    name = "full"

    def __init__(self):
        self.words_sent = 0
        self.entries_sent = 0

    def encode(self, entry: TraceEntry) -> List[int]:
        words = [
            _pack_header(entry),
            entry.pc & MASK32,
            entry.next_pc & MASK32,
            # Immediate/iteration word: REP counts and branch immediates
            # share the fourth word.
            ((entry.iterations & 0xFFFF) << 16 | (entry.instr.imm & 0xFFFF)),
        ]
        if entry.mem_vaddr >= 0:
            words.append(entry.mem_paddr & MASK32)
        if entry.tlb_vpn >= 0:
            words.append(entry.tlb_vpn & MASK32)
            words.append(entry.tlb_pte & MASK32)
        self.words_sent += len(words)
        self.entries_sent += 1
        return words

    @property
    def words_per_entry(self) -> float:
        if not self.entries_sent:
            return 0.0
        return self.words_sent / self.entries_sent


class BasicBlockCodec:
    """Translation-cache mirroring.

    The sender chops the committed path into basic blocks keyed by
    (start pc, byte pattern).  A block seen before costs a single id
    word for the whole block plus one dynamic word per instruction that
    needs one (memory address / REP count / TLB fill).  A new block is
    shipped inline once (its raw instruction bytes) and installed in
    both mirrors.
    """

    name = "bb"

    def __init__(self, capacity: int = 8192):
        self.capacity = capacity
        self._blocks: Dict[Tuple[int, bytes], int] = {}
        self._next_id = 0
        self.words_sent = 0
        self.entries_sent = 0
        self.block_hits = 0
        self.block_misses = 0
        self._open_block: List[TraceEntry] = []

    def encode(self, entry: TraceEntry) -> int:
        """Feed one entry; returns words charged for it (amortized
        accounting happens at block boundaries)."""
        self._open_block.append(entry)
        words = 0
        # Dynamic per-instruction payload always crosses the link.
        if entry.mem_vaddr >= 0:
            words += 1
        if entry.tlb_vpn >= 0:
            words += 2
        if entry.instr.rep:
            words += 1
        if entry.is_control or entry.exception or entry.handler_entry:
            words += self._close_block()
        self.words_sent += words
        self.entries_sent += 1
        return words

    def _close_block(self) -> int:
        block = self._open_block
        self._open_block = []
        if not block:
            return 0
        key = (
            block[0].pc,
            b"".join(encode(e.instr) for e in block),
        )
        if key in self._blocks:
            self.block_hits += 1
            return 2  # block id + next-pc word
        self.block_misses += 1
        if len(self._blocks) >= self.capacity:
            self._blocks.pop(next(iter(self._blocks)))
        self._blocks[key] = self._next_id
        self._next_id += 1
        # Inline install: id word + pc + per-instruction header words.
        return 2 + 2 * len(block)

    @property
    def words_per_entry(self) -> float:
        if not self.entries_sent:
            return 0.0
        return self.words_sent / self.entries_sent


def decode_header(word: int) -> Tuple[Instr, dict]:
    """Inverse of ``_pack_header`` (used by the codec roundtrip tests)."""
    from repro.isa.opcodes import OPCODES_BY_VALUE

    opcode11 = word & 0x7FF
    rep = bool(opcode11 & 0x400)
    spec = OPCODES_BY_VALUE[opcode11 & 0x3FF]
    dst = (word >> 11) & 0xF
    src = (word >> 15) & 0xF
    flags = (word >> 19) & 0x3F
    exception = (word >> 25) & 0x7F
    meta = {
        "has_mem": bool(flags & _F_MEM),
        "has_tlb": bool(flags & _F_TLB),
        "exception": exception if flags & _F_EXC else 0,
        "wrong_path": bool(flags & _F_WRONG),
        "handler_entry": bool(flags & _F_HANDLER),
    }
    # The immediate travels via the decoded block mirror, not the header,
    # so the reconstructed Instr carries structure, not the immediate.
    return Instr(spec=spec, dst=dst, src=src, rep=rep), meta


def measure_compression(entries) -> dict:
    """Run both codecs over a finished trace and report words/instr."""
    full = FullTraceCodec()
    bb = BasicBlockCodec()
    for entry in entries:
        full.encode(entry)
        bb.encode(entry)
    return {
        "full_words_per_entry": full.words_per_entry,
        "bb_words_per_entry": bb.words_per_entry,
        "bb_block_hit_rate": bb.block_hits
        / max(1, bb.block_hits + bb.block_misses),
    }
