"""FAST host-time composition: converting measured simulation events
into wall-clock performance on a modeled host platform.

This is where the paper's *speed* claims are reproduced.  A coupled
simulation run yields event counts (instructions traced, trace words
written, mispredict/resolution round trips, rollback re-executions,
target cycles); this module prices them against a
:class:`~repro.host.platforms.Platform` using the section 3.1 parallel
composition:

    time = max(FM busy, TM busy) + serialized round-trip time

Three protocol variants are modeled, matching section 4.5:

* ``prototype`` -- the measured FAST prototype: the FM polls a blocking
  FPGA queue every other basic block (1 read per commit poll, 2 reads
  per mispredict), so *every* pair of basic blocks pays a round trip.
* ``mispredict-only`` -- the intended FAST protocol: round trips only
  on mis-speculation and resolution.
* ``coherent`` -- the projected cache-coherent HyperTransport
  interface: polls amortize to cached-read cost.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.fast.trace_buffer import ProtocolStats
from repro.functional.model import FunctionalStats
from repro.host.platforms import Platform
from repro.timing.core import TimingStats

PROTOCOL_MODES = ("prototype", "mispredict-only", "coherent")


@dataclass
class HostTimeBreakdown:
    """Where host wall-clock time goes for one simulated run."""

    fm_seconds: float  # functional execution (incl. wrong path)
    trace_seconds: float  # streaming the trace over the link
    tm_seconds: float  # timing model on its host
    poll_seconds: float  # blocking commit/status polls
    roundtrip_seconds: float  # mispredict/resolution messages
    rollback_seconds: float  # set_pc re-execution
    target_instructions: int  # committed + requested wrong path
    target_cycles: int

    @property
    def producer_seconds(self) -> float:
        """FM-side busy time (runs in parallel with the TM)."""
        return self.fm_seconds + self.trace_seconds

    @property
    def serial_seconds(self) -> float:
        """Time on neither side's critical path overlap: round trips,
        polls on blocking links, and rollback re-execution."""
        return self.poll_seconds + self.roundtrip_seconds + self.rollback_seconds

    @property
    def total_seconds(self) -> float:
        return max(self.producer_seconds, self.tm_seconds) + self.serial_seconds

    @property
    def mips(self) -> float:
        """Target-path MIPS, the paper's Figure 4 metric ("include
        requested wrong path instructions, but not incorrect
        instructions")."""
        if self.total_seconds <= 0:
            return 0.0
        return self.target_instructions / self.total_seconds / 1e6

    @property
    def bottleneck(self) -> str:
        return "timing-model" if self.tm_seconds > self.producer_seconds else (
            "functional-model"
        )


def fast_host_time(
    fm_stats: FunctionalStats,
    protocol: ProtocolStats,
    tm_stats: TimingStats,
    platform: Platform,
    protocol_mode: str = "prototype",
    fm_mode: str = "traced",
    software_timing: bool = False,
) -> HostTimeBreakdown:
    """Price one coupled run on *platform*.

    ``software_timing=True`` maps the timing model onto the CPU host
    instead of the FPGA (the paper's software timing-model data points).
    """
    if protocol_mode not in PROTOCOL_MODES:
        raise ValueError("unknown protocol mode %r" % protocol_mode)
    cpu, fpga, link = platform.cpu, platform.fpga, platform.link

    executed = protocol.entries_streamed + protocol.rollback_replays
    fm_seconds = cpu.fm_seconds(protocol.entries_streamed, mode=fm_mode)
    trace_seconds = fm_stats.trace_words * link.burst_write_ns_per_word * 1e-9

    if software_timing:
        tm_seconds = cpu.tm_seconds(tm_stats.cycles)
    else:
        tm_seconds = fpga.timing_model_seconds(tm_stats.cycles)

    mispredict_events = protocol.round_trips
    basic_blocks = max(1, fm_stats.basic_blocks)
    if protocol_mode == "prototype":
        # Poll every other basic block: one blocking read per poll plus
        # an extra read whenever a mispredict is pending.
        polls = basic_blocks / 2.0
        poll_seconds = polls * link.poll_ns * 1e-9
        roundtrip_seconds = mispredict_events * link.read_ns * 1e-9
    elif protocol_mode == "mispredict-only":
        poll_seconds = 0.0
        roundtrip_seconds = mispredict_events * link.round_trip_ns() * 1e-9
    else:  # coherent: polls amortize over ~7x more instructions
        polls = basic_blocks / 14.0
        poll_seconds = polls * link.poll_ns * 1e-9
        roundtrip_seconds = mispredict_events * link.poll_ns * 1e-9

    rollback_seconds = cpu.fm_seconds(protocol.rollback_replays, mode=fm_mode)

    return HostTimeBreakdown(
        fm_seconds=fm_seconds,
        trace_seconds=trace_seconds,
        tm_seconds=tm_seconds,
        poll_seconds=poll_seconds,
        roundtrip_seconds=roundtrip_seconds,
        rollback_seconds=rollback_seconds,
        target_instructions=tm_stats.instructions + fm_stats.wrong_path,
        target_cycles=tm_stats.cycles,
    )
