"""The FAST trace buffer: speculative functional/timing coupling.

"The functional model sequentially executes the program, generating a
functional path instruction trace, and pipes that stream to the timing
model [via the trace buffer].  Each logical TB entry ... is not
deallocated until the instruction is fully committed."  (paper
section 2)

The functional model runs *ahead* of the timing model, up to the trace
buffer capacity, without waiting for feedback -- this is the paper's
key novelty ("parallelizing on the functional/timing boundary,
leveraging functional model speculation").  Round-trip interactions
happen only on:

* **mis-speculation** -- the timing model's fetch-time branch
  prediction disagrees with the functional path: ``set_pc`` forces the
  functional model down the predicted wrong path (Figure 2), and
* **resolution** -- the branch executes: ``set_pc`` resteers the
  functional model back to the architectural path, and
* **commit notifications** -- so rollback resources can be released.

Every such interaction is counted; the host model prices them with DRC
HyperTransport latencies to produce the paper's MIPS numbers.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Optional

from repro.functional.model import FunctionalModel
from repro.functional.trace import TraceEntry
from repro.timing.feed import InstructionFeed
from repro.timing.module import Module


@dataclass
class ProtocolStats:
    """FM<->TM interaction counts (the host model's inputs)."""

    entries_streamed: int = 0  # trace entries delivered to the TM
    mispredict_messages: int = 0  # TM -> FM: go down the wrong path
    resolve_messages: int = 0  # TM -> FM: resume the right path
    commit_messages: int = 0  # TM -> FM: release rollback state
    rollback_replays: int = 0  # instructions re-executed by set_pc
    idle_ticks: int = 0  # target cycles with a halted CPU
    interrupt_deliveries: int = 0  # TM-generated interrupts (cycle mode)
    max_runahead: int = 0  # deepest FM lead over TM commit, in entries

    @property
    def round_trips(self) -> int:
        """One round trip per mispredict and one per resolution."""
        return self.mispredict_messages + self.resolve_messages


class TraceBufferFeed(InstructionFeed, Module):
    """Feed the timing model through a bounded trace buffer."""

    # Boundary-buffer seams for the sharded engine (FastPart/FastShard):
    # the protocol counters and the tracer observe feed traffic but are
    # never consulted for feed decisions, so the effect analyzer records
    # accesses without treating them as cross-shard races.  The buffer
    # itself is *not* a seam -- both pipeline halves consume it, which
    # is exactly the footprint conflict that keeps frontend and backend
    # in one atomic group (the feed boundary can never be a cut edge).
    shard_seams = {
        "protocol": "round-trip/runahead accounting; observability-only",
        "tracer": "FastScope seam-event tracer; write-only from the feed",
        "_span_hist": "refill span histogram; observability-only",
        "_replay_hist": "rollback replay histogram; observability-only",
    }

    def __init__(self, fm: FunctionalModel, depth: int = 512,
                 lookahead: int = 32):
        Module.__init__(self, "trace_buffer")
        if depth < 128:
            raise ValueError(
                "trace buffer depth must exceed the ROB + front-end "
                "capacity (use >= 128)"
            )
        self.fm = fm
        self.depth = depth
        # How far the FM runs ahead of the TM's fetch point.  The trace
        # buffer *capacity* (depth) bounds uncommitted entries; the
        # lookahead bounds speculative work thrown away per mispredict.
        self.lookahead = max(8, lookahead)
        self._buffer: Deque[TraceEntry] = deque()
        self._last_committed = 0
        self.protocol = ProtocolStats()
        # Optional FastScope event tracer (repro.observability.events).
        # Purely observational: never consulted for feed decisions.
        self.tracer = None
        # Typed stats for the FastScope fabric (registered here, at
        # construction -- FastLint rule ST002).  Probed gauges cost
        # nothing until a sampling window closes.
        self.new_gauge("occupancy", probe=self._occupancy_probe,
                       desc="uncommitted trace-buffer entries")
        self.new_gauge("buffered", probe=self._buffered_probe,
                       desc="entries staged ahead of the TM fetch point")
        self._replay_hist = self.new_histogram(
            "rollback_replay", bounds=(0, 1, 2, 4, 8, 16, 32, 64),
            desc="instructions re-executed per set_pc rollback")
        self._span_hist = self.new_histogram(
            "span_batch", bounds=(1, 2, 4, 8, 16, 32, 64),
            desc="trace entries produced per batched refill span")
        self.new_gauge("superblock_hits", probe=self._sb_probe("hits"),
                       desc="cumulative superblock replays in the FM")
        self.new_gauge("superblock_misses",
                       probe=self._sb_probe("misses"),
                       desc="cumulative superblock lookup misses")
        self.new_gauge("superblock_invalidations",
                       probe=self._sb_probe("invalidations"),
                       desc="cumulative superblocks killed by stores/"
                            "rollback/generation bumps")
        # FastWatch structural invariants (registered here, at
        # construction -- FastLint rule IV001).  Armed bounds are
        # observation-only copies of the real capacities/windows, so
        # violation-injection tests can shrink them to force a
        # deterministic firing without perturbing the run.
        self._capacity_limit = depth
        self._ckpt_window = 1
        self.new_invariant(
            "tb_highwater",
            check=lambda: self.fm.in_count - self._last_committed
            <= self._capacity_limit,
            expr="m.fm.in_count - m._last_committed <= m._capacity_limit",
            hint="idle-stable",
            probe=self._occupancy_probe,
            desc="uncommitted trace-buffer entries never exceed the "
                 "configured depth")
        self.new_invariant(
            "fm_tm_lockstep",
            check=lambda: 0 <= self._last_committed <= self.fm.in_count,
            expr="0 <= m._last_committed <= m.fm.in_count",
            hint="idle-stable",
            probe=lambda: float(self._last_committed),
            desc="TM commit notifications never run ahead of the FM's "
                 "instruction count (no leaked trace-buffer credit)")
        self.new_invariant(
            "ckpt_coverage",
            check=self._ckpt_covered,
            expr="(not m.fm.ckpt._checkpoints)"
                 " or (m.fm.ckpt._checkpoints[0].in_no"
                 " <= m.fm.ckpt._checkpoints[-1].in_no"
                 " and m.fm.ckpt._checkpoints[0].in_no"
                 " <= m._last_committed + m._ckpt_window)",
            hint="idle-stable",
            probe=self._ckpt_probe,
            desc="the checkpoint grid stays monotone and the oldest "
                 "live checkpoint covers every uncommitted rollback "
                 "target")

    def _ckpt_covered(self) -> bool:
        # Monotone grid: take() enforces in_no strictly increases, so
        # checking the ends suffices -- and rollback coverage: every
        # uncommitted target (> _last_committed) must have a checkpoint
        # at or before it, i.e. the oldest live checkpoint's in_no must
        # not exceed committed + window.
        ckpts = self.fm.ckpt._checkpoints
        if not ckpts:
            return True
        return (
            ckpts[0].in_no <= ckpts[-1].in_no
            and ckpts[0].in_no <= self._last_committed + self._ckpt_window
        )

    def _ckpt_probe(self) -> float:
        oldest = self.fm.ckpt.oldest_in
        return float(oldest if oldest is not None else -1)

    def _sb_probe(self, field_name: str):
        def probe() -> float:
            blocks = self.fm.blocks
            if blocks is None:
                return 0.0
            return float(getattr(blocks.stats, field_name))
        return probe

    # -- trace-buffer filling -----------------------------------------------

    def _tb_occupancy(self) -> int:
        """Entries between the oldest uncommitted instruction and the
        functional model's current position."""
        return self.fm.in_count - self._last_committed

    @property
    def occupancy(self) -> int:
        """Public alias of the TB occupancy, for probes and triggers.

        Lockstep note: the canonical trigger probe
        (``repro.observability.triggers.trace_buffer_occupancy``)
        inlines this body into its compiled per-cycle listener --
        change the expression here and there together."""
        return self.fm.in_count - self._last_committed

    def _occupancy_probe(self) -> float:
        return float(self.fm.in_count - self._last_committed)

    def _buffered_probe(self) -> float:
        return float(len(self._buffer))

    def _can_produce(self) -> bool:
        # A halted FM is advanced ONLY by idle_tick (one device tick per
        # idle target cycle).  If refills were allowed to poke a halted
        # FM, device time would depend on how often the timing model
        # peeks -- which differs between this feed and the lock-step
        # reference and would break cycle equivalence.
        return not (self.fm.state.halted or self.fm.bus.shutdown_requested)

    def _fill(self) -> None:
        # On a forced wrong path, produce only a small batch: everything
        # generated there is discarded at resolution, so deep runahead
        # is pure waste (the real FAST likewise only needs enough wrong-
        # path instructions to keep fetch busy until the branch
        # resolves).
        if self.fm.on_wrong_path:
            for _ in range(8):
                if not self._can_produce():
                    return
                entry = self.fm.execute_next()
                if entry is None:
                    return
                self._buffer.append(entry)
                self.protocol.entries_streamed += 1
            return
        # Batched refill: hand the FM a span budget bounded by both the
        # lookahead and the remaining trace-buffer capacity, and let it
        # produce the whole span in one call (superblock replay skips
        # per-instruction fetch/decode inside it).  Entry-for-entry
        # identical to the old execute_next loop -- the budget is the
        # same fixpoint the per-entry conditions enforced.
        fm = self.fm
        buffer = self._buffer
        while True:
            budget = self.lookahead - len(buffer)
            room = self.depth - (fm.in_count - self._last_committed)
            if room < budget:
                budget = room
            if budget <= 0 or not self._can_produce():
                break
            produced = fm.execute_into(buffer, budget)
            if produced == 0:
                break
            self.protocol.entries_streamed += produced
            self._span_hist.observe(produced)
        runahead = self._tb_occupancy()
        if runahead > self.protocol.max_runahead:
            self.protocol.max_runahead = runahead
            if self.tracer is not None:
                self.tracer.emit("tb_highwater", runahead=runahead)

    # -- InstructionFeed interface ----------------------------------------------

    def peek(self) -> Optional[TraceEntry]:
        if not self._buffer:
            self._fill()
            if not self._buffer:
                return None
        return self._buffer[0]

    def consume(self) -> TraceEntry:
        return self._buffer.popleft()

    def force_wrong_path(self, branch_in_no: int, wrong_pc: int) -> None:
        # Discard the functional-path entries beyond the branch; the
        # paper overwrites them in the TB (Figure 2, T=1+m).
        while self._buffer and self._buffer[-1].in_no > branch_in_no:
            self._buffer.pop()
        replayed = self.fm.set_pc(branch_in_no + 1, wrong_pc)
        self.fm.enter_wrong_path()
        self.protocol.mispredict_messages += 1
        self.protocol.rollback_replays += replayed
        self.bump("forced_wrong_paths")
        self._replay_hist.observe(replayed)
        if self.tracer is not None:
            self.tracer.emit("tb_mispredict", branch_in_no=branch_in_no,
                             wrong_pc=wrong_pc, replayed=replayed,
                             occupancy=self._tb_occupancy())

    def resolve_wrong_path(self, branch_in_no: int, actual_pc: int) -> None:
        self._buffer.clear()  # everything buffered is wrong-path
        self.fm.exit_wrong_path()
        replayed = self.fm.set_pc(branch_in_no + 1, actual_pc)
        self.protocol.resolve_messages += 1
        self.protocol.rollback_replays += replayed
        self.bump("resolutions")
        self._replay_hist.observe(replayed)
        if self.tracer is not None:
            self.tracer.emit("tb_resolve", branch_in_no=branch_in_no,
                             actual_pc=actual_pc, replayed=replayed,
                             occupancy=self._tb_occupancy())

    def interrupt_delivery(self, after_in: int, line: int):
        self._buffer.clear()  # everything beyond the boundary is stale
        taken, replayed = self.fm.deliver_interrupt(after_in, line)
        self.protocol.interrupt_deliveries += 1
        self.protocol.rollback_replays += replayed
        self._replay_hist.observe(replayed)
        if self.tracer is not None:
            self.tracer.emit("tb_interrupt", after_in=after_in, line=line,
                             taken=taken, replayed=replayed)
        return taken, replayed

    def commit(self, in_no: int) -> None:
        self._last_committed = in_no
        self.fm.commit(in_no)
        self.protocol.commit_messages += 1

    def idle_tick(self) -> None:
        entry = self.fm.execute_next()
        self.protocol.idle_ticks += 1
        if entry is not None:
            self._buffer.append(entry)
            self.protocol.entries_streamed += 1

    def idle_horizon(self) -> int:
        if self._buffer:
            return 0
        return self.fm.idle_horizon()

    def idle_ticks(self, count: int) -> None:
        # Within the horizon each idle_tick is exactly one uneventful
        # halted step (no entry produced); batch them through the FM.
        self.fm.idle_steps(count)
        self.protocol.idle_ticks += count

    @property
    def finished(self) -> bool:
        return self.fm.bus.shutdown_requested and not self._buffer
