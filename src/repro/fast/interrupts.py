"""Cycle-driven (timing-model-generated) interrupts.

"The timing model generates interrupts for reproducibility and passes
those interrupts to the functional model. ... It is, however, the
responsibility of the timing model to signal when an
interrupt/exception occurs.  When the timing model detects an
interrupt ... it freezes, notifies the functional model to start
generating the interrupt/exception handler instructions and waits until
those instructions arrive in the trace buffer."  (section 3.4)

By default this reproduction drives devices from the committed
instruction stream (QEMU icount-style), which is already deterministic.
:class:`CycleInterruptCoordinator` implements the paper's alternative:
the *timing model's target cycle count* schedules timer interrupts.  At
each firing:

1. the pipeline is flushed (everything uncommitted squashed -- the
   "freeze"),
2. the functional model is rolled back to the commit boundary and takes
   the interrupt there (``deliver_interrupt``),
3. fetch resumes following the regenerated stream (handler
   instructions, or the architectural continuation if interrupts were
   masked at the boundary).

Because firings are a pure function of commit cycles, the FAST and
lock-step couplings still agree exactly; the equivalence tests cover
this mode too.
"""

from __future__ import annotations

from typing import Optional

from repro.functional.model import FunctionalModel, VECTOR_BASE
from repro.system.interrupt_controller import IRQ_TIMER
from repro.system.timer import (
    PORT_CTRL as TIMER_PORT_CTRL,
    PORT_INTERVAL as TIMER_PORT_INTERVAL,
    Timer,
)
from repro.timing.core import TimingModel
from repro.timing.pipeline.frontend import DRAIN_INTERRUPT


class CycleInterruptCoordinator:
    """Schedules and delivers timer interrupts by target cycle."""

    def __init__(self, tm: TimingModel, fm: FunctionalModel,
                 interval_cycles: Optional[int] = None):
        self.tm = tm
        self.fm = fm
        self.feed = tm.feed
        self.timer = self._find_timer(fm)
        if self.timer is None:
            raise ValueError("no timer device on the functional model's bus")
        # The coordinator owns timer firing; device ticks must not.
        self.timer.external = True
        self.interval_override = interval_cycles
        self._interval = self.timer.interval
        self._enabled = False
        self.next_fire: Optional[int] = None
        self.deliveries = 0
        tm.commit_listeners.append(self._on_commit)
        # The cycle hook only acts at next_fire with an idle machine, so
        # everything strictly before next_fire is skippable: the idle
        # hint lets the compiled engine batch HALT spans right up to the
        # firing cycle, which then runs through the full per-cycle path.
        tm.add_cycle_listener(self._on_cycle, idle_hint=self._idle_hint)

    def _idle_hint(self, cycle: int) -> int:
        if self.next_fire is None:
            # Not armed: cycle count alone can never make _on_cycle act.
            return 1 << 40
        return self.next_fire - cycle - 1

    @staticmethod
    def _find_timer(fm: FunctionalModel) -> Optional[Timer]:
        for device in fm.bus.devices:
            if isinstance(device, Timer):
                return device
        return None

    @property
    def interval(self) -> int:
        return self.interval_override or self._interval

    # -- scheduling ------------------------------------------------------
    #
    # Arming must depend only on the *committed* instruction stream: the
    # speculative FM enables the timer device earlier (in host time)
    # than the lock-step FM would, so reading device state here would
    # break FAST/lock-step equivalence.  The enabling OUT instruction is
    # visible in the trace entry it commits with.

    def _on_commit(self, di, cycle: int) -> None:
        entry = di.entry
        if entry.io_port == TIMER_PORT_CTRL:
            self._enabled = bool(entry.io_value & 1)
            if self._enabled and self.next_fire is None:
                self.next_fire = cycle + self.interval
            elif not self._enabled:
                self.next_fire = None
        elif entry.io_port == TIMER_PORT_INTERVAL:
            self._interval = max(1, entry.io_value)
        if self.next_fire is not None and cycle >= self.next_fire:
            self._deliver(entry.in_no, entry.next_pc, cycle)

    def _on_cycle(self, cycle: int) -> None:
        # The HALT case: no commits are happening, but target time still
        # passes and the timer must eventually wake the system.  The
        # firing condition must be a pure function of *timing-model*
        # state (the FM's position differs between the speculative and
        # lock-step couplings at any given cycle).
        if (
            self.next_fire is not None
            and cycle >= self.next_fire
            and self.tm.frontend.idle_this_cycle
            and self.tm.backend.rob_empty
            and not self.feed.finished
        ):
            self._deliver(self.fm.in_count, self.fm.state.pc, cycle)

    # -- delivery ----------------------------------------------------------

    def _deliver(self, after_in: int, fallback_pc: int, cycle: int) -> None:
        self.next_fire = cycle + self.interval
        self.timer.fires += 1
        self.deliveries += 1
        # Freeze: squash everything speculative in the pipeline.
        self.tm.backend.squash_all(cycle)
        taken, replayed = self.feed.interrupt_delivery(after_in, IRQ_TIMER)
        resume_pc = VECTOR_BASE if taken else fallback_pc
        self.tm.frontend.begin_drain(resume_pc, DRAIN_INTERRUPT)
        self.tm.frontend.bump("tm_interrupt_deliveries")
        if self.tm.tracer is not None:
            self.tm.tracer.emit("tm_interrupt", after_in=after_in,
                                taken=taken, replayed=replayed,
                                resume_pc=resume_pc)
