"""FAST core: the speculative functional/timing coupled simulator."""

from repro.fast.compression import (
    BasicBlockCodec,
    FullTraceCodec,
    measure_compression,
)
from repro.fast.interrupts import CycleInterruptCoordinator
from repro.fast.parallel import HostTimeBreakdown, fast_host_time
from repro.fast.simulator import FastSimulator, SimulationResult
from repro.fast.trace_buffer import ProtocolStats, TraceBufferFeed

__all__ = [
    "BasicBlockCodec",
    "CycleInterruptCoordinator",
    "FastSimulator",
    "FullTraceCodec",
    "measure_compression",
    "HostTimeBreakdown",
    "ProtocolStats",
    "SimulationResult",
    "TraceBufferFeed",
    "fast_host_time",
]
