"""Baseline simulator architectures FAST is compared against."""

from repro.baselines.fastsim import (
    FastSimResult,
    MemoizationModel,
    price_fastsim,
)
from repro.baselines.fpga_cache import (
    HybridCacheResult,
    price_fpga_cache_hybrid,
)
from repro.baselines.lockstep import LockStepFeed, LockStepStats
from repro.baselines.monolithic import MonolithicResult, MonolithicSimulator
from repro.baselines.survey import (
    TABLE3_SURVEY,
    SimulatorSurveyRow,
    survey_row,
)
from repro.baselines.timing_directed import (
    TimingDirectedResult,
    TimingDirectedSimulator,
)

__all__ = [
    "FastSimResult",
    "HybridCacheResult",
    "LockStepFeed",
    "LockStepStats",
    "MemoizationModel",
    "MonolithicResult",
    "MonolithicSimulator",
    "SimulatorSurveyRow",
    "TABLE3_SURVEY",
    "TimingDirectedResult",
    "TimingDirectedSimulator",
    "price_fastsim",
    "price_fpga_cache_hybrid",
    "survey_row",
]
