"""Timing-directed (Asim / Timing-First style) simulator baselines.

The functional model executes only when the timing model tells it to,
so the two halves run in lock step and "generally must round-trip
communicate every simulated cycle" (paper section 5).  We price two
host mappings of the same lock-step engine:

* **software/software** -- both halves on the CPU host: no link cost,
  but fully sequential (Asim, Timing-First, M5).
* **split across the DRC link** -- the naive "put the timing model in
  the FPGA without speculation" mapping: every fetch is a blocking
  round trip, which is exactly the section 3.1 example showing why
  F ~= 1 caps performance around 2 MIPS no matter how fast each side is.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.baselines.lockstep import LockStepFeed, LockStepStats
from repro.functional.model import FunctionalConfig, FunctionalModel
from repro.host.platforms import DRC_PLATFORM, Platform
from repro.kernel.image import UserProgram, build_os_image
from repro.kernel.sources import KernelConfig
from repro.system.bus import build_standard_system
from repro.timing.core import TimingConfig, TimingModel, TimingStats


@dataclass
class TimingDirectedResult:
    timing: TimingStats
    lockstep: LockStepStats
    console_text: str
    host_seconds_software: float  # both halves on the CPU
    host_seconds_split: float  # TM in the FPGA, round trip per fetch

    @property
    def mips_software(self) -> float:
        if self.host_seconds_software <= 0:
            return 0.0
        return self.timing.instructions / self.host_seconds_software / 1e6

    @property
    def mips_split(self) -> float:
        if self.host_seconds_split <= 0:
            return 0.0
        return self.timing.instructions / self.host_seconds_split / 1e6


class TimingDirectedSimulator:
    """Lock-step coupling with timing-directed host pricing."""

    def __init__(
        self,
        fm: FunctionalModel,
        timing_config: Optional[TimingConfig] = None,
        platform: Platform = DRC_PLATFORM,
    ):
        self.fm = fm
        self.platform = platform
        self.feed = LockStepFeed(fm)
        self.tm = TimingModel(
            self.feed, microcode=fm.microcode, config=timing_config
        )
        self._console = None

    @classmethod
    def from_programs(
        cls,
        programs: Sequence[UserProgram],
        kernel_config: Optional[KernelConfig] = None,
        timing_config: Optional[TimingConfig] = None,
        functional_config: Optional[FunctionalConfig] = None,
        platform: Platform = DRC_PLATFORM,
    ) -> "TimingDirectedSimulator":
        memory, bus, _i, _t, console, _d = build_standard_system()
        image, _cfg = build_os_image(programs, config=kernel_config)
        fm = FunctionalModel(memory=memory, bus=bus, config=functional_config)
        fm.load(image)
        sim = cls(fm, timing_config=timing_config, platform=platform)
        sim._console = console
        return sim

    def run(self, max_cycles: int = 100_000_000) -> TimingDirectedResult:
        timing = self.tm.run(max_cycles=max_cycles)
        cpu, fpga, link = (
            self.platform.cpu,
            self.platform.fpga,
            self.platform.link,
        )
        fm_time = cpu.fm_seconds(self.fm.stats.executed, mode="traced")
        # Software/software: strictly sequential FM + TM work.
        host_sw = fm_time + cpu.tm_seconds(timing.cycles)
        # Split mapping: TM runs in the FPGA, but every fetched
        # instruction requires a blocking round trip before the
        # functional model may proceed (F ~ 1 in the section 3.1 model).
        round_trips = self.feed.stats.fetch_round_trips
        host_split = (
            fm_time
            + fpga.timing_model_seconds(timing.cycles)
            + round_trips * link.read_ns * 1e-9
        )
        return TimingDirectedResult(
            timing=timing,
            lockstep=self.feed.stats,
            console_text=self._console.text() if self._console else "",
            host_seconds_software=host_sw,
            host_seconds_split=host_split,
        )
