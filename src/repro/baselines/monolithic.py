"""Monolithic software cycle-accurate simulator (sim-outorder-like).

Functionality and timing live in one sequential software program: every
instruction is interpreted *and* every target cycle's microarchitectural
work is done on the same CPU host, one after the other.  This is the
classic structure of Simplescalar's sim-outorder and the industrial
simulators of Table 3, and it is the reference our FAST coupling is
compared against -- both use the same underlying timing model, so their
cycle counts must agree exactly while their host speeds differ by
orders of magnitude.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.baselines.lockstep import LockStepFeed, LockStepStats
from repro.functional.model import FunctionalConfig, FunctionalModel
from repro.host.platforms import DRC_PLATFORM, Platform
from repro.kernel.image import UserProgram, build_os_image
from repro.kernel.sources import KernelConfig
from repro.system.bus import build_standard_system
from repro.timing.core import TimingConfig, TimingModel, TimingStats


@dataclass
class MonolithicResult:
    timing: TimingStats
    lockstep: LockStepStats
    console_text: str
    host_seconds: float

    @property
    def kips(self) -> float:
        if self.host_seconds <= 0:
            return 0.0
        return self.timing.instructions / self.host_seconds / 1e3

    @property
    def mips(self) -> float:
        return self.kips / 1e3


class MonolithicSimulator:
    """One sequential software process doing everything."""

    def __init__(
        self,
        fm: FunctionalModel,
        timing_config: Optional[TimingConfig] = None,
        platform: Platform = DRC_PLATFORM,
    ):
        self.fm = fm
        self.platform = platform
        self.feed = LockStepFeed(fm)
        self.tm = TimingModel(
            self.feed, microcode=fm.microcode, config=timing_config
        )
        self._console = None

    @classmethod
    def from_programs(
        cls,
        programs: Sequence[UserProgram],
        kernel_config: Optional[KernelConfig] = None,
        timing_config: Optional[TimingConfig] = None,
        functional_config: Optional[FunctionalConfig] = None,
        platform: Platform = DRC_PLATFORM,
    ) -> "MonolithicSimulator":
        memory, bus, _i, _t, console, _d = build_standard_system()
        image, _cfg = build_os_image(programs, config=kernel_config)
        fm = FunctionalModel(memory=memory, bus=bus, config=functional_config)
        fm.load(image)
        sim = cls(fm, timing_config=timing_config, platform=platform)
        sim._console = console
        return sim

    def run(self, max_cycles: int = 100_000_000) -> MonolithicResult:
        timing = self.tm.run(max_cycles=max_cycles)
        cpu = self.platform.cpu
        # Sequential composition: interpret every instruction, then do
        # every cycle's timing work, on the same host.
        host_seconds = cpu.fm_seconds(
            self.fm.stats.executed, mode="deopt"
        ) + cpu.tm_seconds(timing.cycles)
        return MonolithicResult(
            timing=timing,
            lockstep=self.feed.stats,
            console_text=self._console.text() if self._console else "",
            host_seconds=host_seconds,
        )
