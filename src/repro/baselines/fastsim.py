"""FastSim-style baseline (Schnarr & Larus, ASPLOS '98).

FastSim partitions functional/timing like FAST but (i) queries the
timing model's branch predictor at *every* branch so the functional
model immediately follows the predicted path (never rolling back on a
mis-speculation, only on resolution), and (ii) relies on *memoization*
of microarchitectural states to fast-forward, because without
memoization the partitioned simulator was no faster than conventional
ones (paper section 5).

We reproduce its cost structure on the shared engine: per-branch
predictor queries plus a memoizing timing model whose hit rate is
measured by hashing the microarchitectural state signature per
committed basic block.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.host.platforms import DRC_PLATFORM, Platform
from repro.timing.core import TimingStats


@dataclass
class FastSimResult:
    timing: TimingStats
    memo_lookups: int
    memo_hits: int
    host_seconds: float

    @property
    def memo_hit_rate(self) -> float:
        if not self.memo_lookups:
            return 0.0
        return self.memo_hits / self.memo_lookups

    @property
    def mips(self) -> float:
        if self.host_seconds <= 0:
            return 0.0
        return self.timing.instructions / self.host_seconds / 1e6


class MemoizationModel:
    """Counts re-occurrences of (PC, µarch-signature) pairs.

    FastSim memoizes the timing simulator's state-to-state transitions;
    a hit means the cycles for a basic block can be replayed from the
    memo table instead of simulated.  We measure the achievable hit
    rate by hashing a bounded signature of the timing state at each
    committed basic-block boundary.
    """

    def __init__(self, capacity: int = 1 << 16):
        self.capacity = capacity
        self._table = {}
        self.lookups = 0
        self.hits = 0

    def observe(self, pc: int, signature: int) -> bool:
        self.lookups += 1
        key = (pc, signature) if self.capacity else pc
        hit = self._table.get(key, False)
        if hit:
            self.hits += 1
        else:
            if len(self._table) >= self.capacity:
                self._table.pop(next(iter(self._table)))
            self._table[key] = True
        return hit


def price_fastsim(
    timing: TimingStats,
    fm_instructions: int,
    branches: int,
    memo: MemoizationModel,
    platform: Platform = DRC_PLATFORM,
    bp_query_ns: float = 40.0,
) -> FastSimResult:
    """Software-only FastSim cost: per-branch BP queries + a timing
    model that only simulates memo-miss cycles."""
    cpu = platform.cpu
    fm_time = cpu.fm_seconds(fm_instructions, mode="traced")
    bp_time = branches * bp_query_ns * 1e-9
    hit_rate = memo.hits / memo.lookups if memo.lookups else 0.0
    tm_time = cpu.tm_seconds(timing.cycles) * (1.0 - hit_rate)
    return FastSimResult(
        timing=timing,
        memo_lookups=memo.lookups,
        memo_hits=memo.hits,
        host_seconds=fm_time + bp_time + tm_time,
    )
