"""Table 3 survey data: software simulator performance as reported.

These rows are the paper's survey of industrial and academic
cycle-accurate (or near cycle-accurate) simulators.  The industry
numbers come from personal communications and cannot be re-measured;
they are reproduced as reported.  The sim-outorder/GEMS-class and FAST
rows are *also* produced live by our own baselines
(:mod:`repro.baselines.monolithic`, :class:`repro.fast.FastSimulator`),
which is how the benchmark regenerating Table 3 checks the shape.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple


@dataclass(frozen=True)
class SimulatorSurveyRow:
    simulator: str
    isa: str
    microarchitecture: str
    speed_ips: float  # instructions per second
    full_system: bool
    source: str = "reported"

    @property
    def speed_text(self) -> str:
        ips = self.speed_ips
        if ips >= 1e6:
            return "%.1fMIPS" % (ips / 1e6)
        return "%.0fKIPS" % (ips / 1e3)


# The paper's Table 3.  Intel/AMD report 1-10 KHz cycle rates; at an
# IPC near one that is roughly 1-10 KIPS -- we record the geometric
# middle of the stated range.
TABLE3_SURVEY: Tuple[SimulatorSurveyRow, ...] = (
    SimulatorSurveyRow("Intel", "x86-64", "Core 2", 3_000, True),
    SimulatorSurveyRow("AMD", "x86-64", "Opteron", 3_000, True),
    SimulatorSurveyRow("IBM", "Power", "Power5", 200_000, True),
    SimulatorSurveyRow("Freescale", "PPC", "e500", 80_000, False),
    SimulatorSurveyRow("PTLSim", "x86-64", "Athlon", 270_000, True),
    SimulatorSurveyRow("sim-outorder", "Alpha", "21264", 740_000, False),
    SimulatorSurveyRow("GEMS", "Sparc", "generic", 69_000, True),
    SimulatorSurveyRow("FAST", "x86", "generic", 1_200_000, True),
)


def survey_row(name: str) -> SimulatorSurveyRow:
    for row in TABLE3_SURVEY:
        if row.simulator.lower() == name.lower():
            return row
    raise KeyError(name)
