"""The Intel FPGA-L1-cache co-simulation experiment (section 1).

"An Intel experiment that moved the Simplescalar sim-outorder L1 data
cache into a[n] FPGA sitting on the front-side bus of the host
Pentium III ... produced lower performance than the original,
unmodified Simplescalar."

This baseline reproduces that *negative* result: hoisting a tiny piece
of the timing model into hardware while keeping per-access round trips
makes the simulator slower, because F (the round-trip fraction of the
section 3.1 model) stays near one access per instruction.  It is the
crossover FAST's speculation exists to avoid.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.host.platforms import DRC_PLATFORM, Platform
from repro.timing.core import TimingStats


@dataclass
class HybridCacheResult:
    """Software simulator vs. the same simulator with an FPGA L1D."""

    software_seconds: float
    hybrid_seconds: float
    instructions: int

    @property
    def software_mips(self) -> float:
        return self.instructions / self.software_seconds / 1e6

    @property
    def hybrid_mips(self) -> float:
        return self.instructions / self.hybrid_seconds / 1e6

    @property
    def slowdown(self) -> float:
        """> 1 means the FPGA 'acceleration' made things slower."""
        return self.hybrid_seconds / self.software_seconds


def price_fpga_cache_hybrid(
    timing: TimingStats,
    fm_instructions: int,
    platform: Platform = DRC_PLATFORM,
) -> HybridCacheResult:
    """Price a finished run both ways.

    The software simulator spends ``sw_cache_access_ns`` per data-cache
    access in its cache model; the hybrid replaces that with a blocking
    round trip to the FPGA per access.
    """
    cpu, link = platform.cpu, platform.link
    base = cpu.fm_seconds(fm_instructions, mode="deopt") + cpu.tm_seconds(
        timing.cycles
    )
    cache_sw = timing.dcache_accesses * cpu.sw_cache_access_ns * 1e-9
    cache_fpga = timing.dcache_accesses * link.read_ns * 1e-9
    return HybridCacheResult(
        software_seconds=base,
        hybrid_seconds=base - cache_sw + cache_fpga,
        instructions=timing.instructions,
    )
