"""Lock-step (timing-directed) functional/timing coupling.

This is the Asim / Timing-First structure the paper contrasts with
(section 5): "the functional model does not even fetch an instruction
until instructed by the timing model ... both components must run in
essentially lock-step order with each other and generally must
round-trip communicate every simulated cycle."

Concretely: the functional model executes exactly one instruction per
timing-model fetch request -- a round-trip per instruction -- instead
of streaming ahead through a trace buffer.  It is the cycle-accuracy
*reference* for the FAST coupling: both must produce identical cycle
counts, while their host-communication profiles differ enormously.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Optional

from repro.functional.model import FunctionalModel
from repro.functional.trace import TraceEntry
from repro.timing.feed import InstructionFeed
from repro.timing.module import Module


@dataclass
class LockStepStats:
    fetch_round_trips: int = 0  # one FM<->TM round trip per instruction
    mispredict_messages: int = 0
    resolve_messages: int = 0
    rollback_replays: int = 0
    idle_ticks: int = 0


class LockStepFeed(InstructionFeed, Module):
    """Execute the functional model only when the timing model fetches."""

    def __init__(self, fm: FunctionalModel):
        Module.__init__(self, "lockstep_feed")
        self.fm = fm
        self._pending: Deque[TraceEntry] = deque()
        self.stats = LockStepStats()

    def peek(self) -> Optional[TraceEntry]:
        if not self._pending:
            if self.fm.state.halted or self.fm.bus.shutdown_requested:
                # Only idle_tick may advance a halted FM (one device
                # tick per idle target cycle), matching the trace-buffer
                # feed exactly; see TraceBufferFeed._can_produce.
                return None
            entry = self.fm.execute_next()
            if entry is None:
                return None
            self._pending.append(entry)
            self.stats.fetch_round_trips += 1
        return self._pending[0]

    def consume(self) -> TraceEntry:
        return self._pending.popleft()

    def force_wrong_path(self, branch_in_no: int, wrong_pc: int) -> None:
        self._pending.clear()
        replayed = self.fm.set_pc(branch_in_no + 1, wrong_pc)
        self.fm.enter_wrong_path()
        self.stats.mispredict_messages += 1
        self.stats.rollback_replays += replayed

    def resolve_wrong_path(self, branch_in_no: int, actual_pc: int) -> None:
        self._pending.clear()
        self.fm.exit_wrong_path()
        replayed = self.fm.set_pc(branch_in_no + 1, actual_pc)
        self.stats.resolve_messages += 1
        self.stats.rollback_replays += replayed

    def interrupt_delivery(self, after_in: int, line: int):
        self._pending.clear()
        taken, replayed = self.fm.deliver_interrupt(after_in, line)
        self.stats.rollback_replays += replayed
        return taken, replayed

    def commit(self, in_no: int) -> None:
        self.fm.commit(in_no)

    def idle_tick(self) -> None:
        entry = self.fm.execute_next()
        self.stats.idle_ticks += 1
        if entry is not None:
            self._pending.append(entry)

    def idle_horizon(self) -> int:
        if self._pending:
            return 0
        return self.fm.idle_horizon()

    def idle_ticks(self, count: int) -> None:
        # Within the horizon each idle_tick is exactly one uneventful
        # halted step; batch them through the FM.
        self.fm.idle_steps(count)
        self.stats.idle_ticks += count

    @property
    def finished(self) -> bool:
        return self.fm.bus.shutdown_requested and not self._pending
