"""FPGA host model: how fast the timing model runs in the fabric.

The paper's Bluespec timing model runs at 100 MHz and spends multiple
host (FPGA) cycles per target cycle; the authors consider "approximately
twenty or so host cycles per target cycle" reasonable but measured their
unoptimized prototype well above that, making the timing model the
bottleneck (section 4.5).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class FpgaHost:
    """An FPGA fabric running the timing model."""

    name: str = "virtex4-lx200"
    clock_mhz: float = 100.0
    host_cycles_per_target_cycle: float = 20.0
    slices: int = 89088  # Virtex4 LX200
    brams: int = 336

    @property
    def ns_per_target_cycle(self) -> float:
        return self.host_cycles_per_target_cycle * 1000.0 / self.clock_mhz

    def timing_model_seconds(self, target_cycles: int) -> float:
        return target_cycles * self.ns_per_target_cycle * 1e-9


# The paper's two boards.
VIRTEX4_LX200 = FpgaHost()

# Unoptimized prototype: insufficient attention to host cycles per
# target cycle made the timing model the bottleneck.
VIRTEX4_LX200_PROTOTYPE = FpgaHost(
    name="virtex4-lx200-prototype", host_cycles_per_target_cycle=60.0
)

XUP_VIRTEX2P = FpgaHost(
    name="xup-virtex2pro-30",
    clock_mhz=100.0,
    host_cycles_per_target_cycle=25.0,
    slices=13696,
    brams=136,
)
