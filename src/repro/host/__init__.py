"""Host platform models: CPUs, FPGAs, links and resource estimation."""

from repro.host.cpu import OPTERON_275, PPC405_300, CpuHost
from repro.host.fpga import (
    VIRTEX4_LX200,
    VIRTEX4_LX200_PROTOTYPE,
    XUP_VIRTEX2P,
    FpgaHost,
)
from repro.host.link import (
    COHERENT_LINK,
    DRC_LINK,
    DRC_LINK_MIN,
    ON_FABRIC_LINK,
    LinkModel,
)
from repro.host.platforms import (
    DRC_COHERENT_PLATFORM,
    DRC_PLATFORM,
    DRC_PROTOTYPE_PLATFORM,
    XUP_PLATFORM,
    Platform,
)
from repro.host.resources import ResourceReport, estimate_resources

__all__ = [
    "COHERENT_LINK",
    "CpuHost",
    "DRC_COHERENT_PLATFORM",
    "DRC_LINK",
    "DRC_LINK_MIN",
    "DRC_PLATFORM",
    "DRC_PROTOTYPE_PLATFORM",
    "FpgaHost",
    "LinkModel",
    "ON_FABRIC_LINK",
    "OPTERON_275",
    "PPC405_300",
    "Platform",
    "ResourceReport",
    "VIRTEX4_LX200",
    "VIRTEX4_LX200_PROTOTYPE",
    "XUP_PLATFORM",
    "XUP_VIRTEX2P",
    "estimate_resources",
]
