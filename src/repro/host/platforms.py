"""Execution platforms: bundles of CPU host, FPGA host and link."""

from __future__ import annotations

from dataclasses import dataclass

from repro.host.cpu import OPTERON_275, PPC405_300, CpuHost
from repro.host.fpga import (
    VIRTEX4_LX200,
    VIRTEX4_LX200_PROTOTYPE,
    XUP_VIRTEX2P,
    FpgaHost,
)
from repro.host.link import (
    COHERENT_LINK,
    DRC_LINK,
    ON_FABRIC_LINK,
    LinkModel,
)


@dataclass(frozen=True)
class Platform:
    """One host configuration a simulator can be mapped onto."""

    name: str
    cpu: CpuHost
    fpga: FpgaHost
    link: LinkModel


# The paper's primary platform: dual-socket DRC box, one Opteron 275 and
# one Virtex4 LX200 connected by HyperTransport.
DRC_PLATFORM = Platform("drc", OPTERON_275, VIRTEX4_LX200, DRC_LINK)

# Same box, with the unoptimized prototype timing model (the measured
# bottleneck of section 4.5).
DRC_PROTOTYPE_PLATFORM = Platform(
    "drc-prototype", OPTERON_275, VIRTEX4_LX200_PROTOTYPE, DRC_LINK
)

# Projected cache-coherent HyperTransport version of the DRC box.
DRC_COHERENT_PLATFORM = Platform(
    "drc-coherent", OPTERON_275, VIRTEX4_LX200, COHERENT_LINK
)

# The low-cost Xilinx University Platform board: embedded PowerPC 405
# runs the functional model inside the same fabric as the timing model.
XUP_PLATFORM = Platform("xup", PPC405_300, XUP_VIRTEX2P, ON_FABRIC_LINK)
