"""FPGA resource estimation for the timing model (Table 2).

Walks the timing model's Module tree summing per-module estimates, then
reports the fraction of a target FPGA consumed.  The key *shape* of
Table 2 -- resource usage nearly flat across issue widths 1/2/4/8
(~32.8 % of user logic, 50-51.2 % of block RAMs on a Virtex4 LX200) --
falls out of the methodology itself: wider targets are modeled with
more host cycles per target cycle over the *same* hardware structures
(section 3.3 "a twenty-ported memory can be simulated by cycling a
dual-ported memory ten times"), so only the Connectors grow slightly.

The absolute scale factor is calibrated once against the paper's
reported 2-issue numbers and documented here; the width sweep is then a
genuine model output.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.host.fpga import VIRTEX4_LX200, FpgaHost
from repro.timing.module import Module

# Calibration: raw LUT-estimate units per Virtex4 slice, chosen so the
# default 2-issue Figure 3 target matches the paper's reported 32.76 %
# user logic.  BRAM estimates are structural (one per tag/predictor
# array of the corresponding size) plus the fixed infrastructure BRAMs
# (trace-buffer staging, statistics, microcode table).
LUTS_PER_SLICE = 1.05
INFRA_BRAMS = 158  # TB staging + microcode table + statistics fabric
INFRA_LUTS = 24000  # host interface, sequencing, statistics network


@dataclass
class ResourceReport:
    luts: int
    brams: int
    fpga: FpgaHost

    @property
    def slices_used(self) -> float:
        return self.luts / LUTS_PER_SLICE

    @property
    def user_logic_fraction(self) -> float:
        return self.slices_used / self.fpga.slices

    @property
    def bram_fraction(self) -> float:
        return self.brams / self.fpga.brams

    def as_row(self) -> Dict[str, float]:
        return {
            "user_logic_pct": 100.0 * self.user_logic_fraction,
            "bram_pct": 100.0 * self.bram_fraction,
        }


def estimate_resources(
    root: Module, fpga: FpgaHost = VIRTEX4_LX200
) -> ResourceReport:
    """Estimate FPGA resources for the module tree rooted at *root*."""
    luts = INFRA_LUTS
    brams = INFRA_BRAMS
    for module in root.walk():
        est = module.resource_estimate()
        luts += est.get("luts", 0)
        brams += est.get("brams", 0)
    return ResourceReport(luts=luts, brams=brams, fpga=fpga)
