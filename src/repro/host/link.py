"""Host interconnect (Opteron <-> FPGA) latency models.

All numbers are the paper's own measurements of the DRC HyperTransport
platform (section 4.5):

* user-logic read: 469 ns (378 ns to pin-adjacent registers)
* user-logic write: 307 ns (287 ns minimum)
* burst write: 20 ns per 32-bit word (13.3 ns minimum)
* reads are blocking, turning commit polling into round trips

plus the projected cache-coherent HyperTransport interface where polls
drop to cached-read cost (75-100 ns on a fresh FPGA write, ~1 ns when
nothing new arrived).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class LinkModel:
    """One-way and round-trip costs of the FM<->TM interconnect."""

    name: str
    read_ns: float  # blocking read (a round trip by construction)
    write_ns: float  # single-word write
    burst_write_ns_per_word: float
    blocking_reads: bool = True
    # Cost of polling for commit/mispredict status, per poll event.
    poll_ns: float = 0.0

    def trace_write_ns(self, words: int) -> float:
        """Cost of streaming *words* 32-bit trace words FM -> TM."""
        return words * self.burst_write_ns_per_word

    def round_trip_ns(self) -> float:
        """One request/response interaction (e.g. resteer + ack)."""
        return self.read_ns + self.write_ns


# The DRC development platform as measured (user-logic numbers; the
# paper reports pin-adjacent minimums of 378/287/13.3 as well).
DRC_LINK = LinkModel(
    name="drc-hypertransport",
    read_ns=469.0,
    write_ns=307.0,
    burst_write_ns_per_word=20.0,
    blocking_reads=True,
    poll_ns=469.0,
)

# Pin-adjacent best case on the same platform.
DRC_LINK_MIN = LinkModel(
    name="drc-hypertransport-min",
    read_ns=378.0,
    write_ns=287.0,
    burst_write_ns_per_word=13.3,
    blocking_reads=True,
    poll_ns=378.0,
)

# Projected cache-coherent HyperTransport (section 4.5): trace writes at
# cached-write speed, polls at memory-read speed only when the FPGA
# actually wrote something new (~1.2 ns/instruction amortized; we charge
# 169 ns per poll event against 7x fewer polls).
COHERENT_LINK = LinkModel(
    name="coherent-hypertransport",
    read_ns=100.0,
    write_ns=10.0,
    burst_write_ns_per_word=2.0,
    blocking_reads=False,
    poll_ns=169.0,
)

# An on-die or same-fabric coupling (HASim-style): negligible latency.
ON_FABRIC_LINK = LinkModel(
    name="on-fabric",
    read_ns=10.0,
    write_ns=10.0,
    burst_write_ns_per_word=0.5,
    blocking_reads=False,
    poll_ns=10.0,
)
