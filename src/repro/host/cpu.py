"""Software host cost model, calibrated to the paper's measurements.

Section 4.5's QEMU configuration ladder on the DRC Opteron (2.2 GHz):

=============================================  =========  ===========
configuration                                  MIPS       ns / instr
=============================================  =========  ===========
unmodified QEMU (Linux boot)                   137        7.3
optimizations off (no chaining, softMMU, ...)  45.8       21.8
+ tracing and checkpointing (test rig)         11.5       87.0
=============================================  =========  ===========

The software-timing-model cost is calibrated so a monolithic software
cycle-accurate simulator lands in the sim-outorder/GEMS range of
Table 3 (hundreds of KIPS down to tens of KIPS).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CpuHost:
    """A software host (the DRC Opteron by default)."""

    name: str = "opteron-275"
    clock_ghz: float = 2.2
    # Functional-model cost per instruction, by configuration.
    qemu_full_ns: float = 7.3  # 137 MIPS
    qemu_deopt_ns: float = 21.8  # 45.8 MIPS
    qemu_traced_ns: float = 87.0  # 11.5 MIPS (tracing + checkpointing)
    # Software timing model cost per target cycle (monolithic or
    # timing-directed simulators run the whole pipeline in software).
    sw_timing_ns_per_cycle: float = 1400.0
    # Cost of a software cache model access (for the FPGA-cache hybrid
    # baseline's software-only comparison).
    sw_cache_access_ns: float = 45.0

    def fm_seconds(self, instructions: int, mode: str = "traced") -> float:
        per = {
            "full": self.qemu_full_ns,
            "deopt": self.qemu_deopt_ns,
            "traced": self.qemu_traced_ns,
        }[mode]
        return instructions * per * 1e-9

    def tm_seconds(self, target_cycles: int) -> float:
        return target_cycles * self.sw_timing_ns_per_cycle * 1e-9


OPTERON_275 = CpuHost()

# The XUP board's embedded PowerPC 405 at 300 MHz: roughly an order of
# magnitude slower per instruction than the Opteron.
PPC405_300 = CpuHost(
    name="ppc405-300mhz",
    clock_ghz=0.3,
    qemu_full_ns=60.0,
    qemu_deopt_ns=180.0,
    qemu_traced_ns=700.0,
    sw_timing_ns_per_cycle=11000.0,
    sw_cache_access_ns=400.0,
)
