"""FastPart as a lint pass: shard-safety rules SH001-SH006.

``python -m repro lint --pass shards`` runs the effect analyzer
(:mod:`repro.analysis.effects`) and partition planner
(:mod:`repro.analysis.partition`) over the default core and reports
every shard-safety finding through the shared diagnostic model:

* source-level findings from the analyzer itself -- SH004
  (ordering-sensitive listener / undeclared hook) and SH005
  (unanalyzable dynamic access);
* plan-level findings from validating the planner's own output --
  SH001 (zero-latency cross-shard edge), SH002 (shared mutable
  footprint), SH003 (aliased module reference escaping its shard) and
  SH006 (imbalanced shard).

The planner merges conflicting units into atomic groups, so on a
well-formed tree SH001-SH003 cannot fire here; they exist to catch
hand-written or stale PartitionPlans (see
:func:`repro.analysis.partition.validate_plan`) and regressions where
the analyzer's conflict rule and the planner's merge rule drift apart.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.analysis.diagnostics import Report
from repro.analysis.effects import TreeEffects, analyze_tree
from repro.analysis.partition import plan_partition, validate_plan
from repro.analysis.suppress import SuppressionTracker
from repro.timing.module import Module

DEFAULT_SHARDS = 2
DEFAULT_ISSUE_WIDTH = 2


def check_shards(
    root: Module,
    shards: int = DEFAULT_SHARDS,
    profile: Optional[str] = None,
    tracker: Optional[SuppressionTracker] = None,
) -> Tuple[dict, Report, TreeEffects]:
    """Analyze, plan and validate in one step.

    Returns ``(plan, report, effects)`` where the report merges the
    analyzer's source-level diagnostics (SH004/SH005) with the plan
    validation (SH001-SH003, SH006).  The planner's own SH006 note is
    embedded in the plan artifact; the merged report carries the
    validator's recomputation instead, so nothing is double-counted.
    """
    effects = analyze_tree(root, tracker)
    plan, _planner_report = plan_partition(
        root, shards=shards, profile=profile, effects=effects
    )
    report = Report()
    report.extend(effects.report)
    report.extend(validate_plan(plan, effects))
    return plan, report, effects


def lint_shards(
    root: Optional[Module] = None,
    shards: int = DEFAULT_SHARDS,
    tracker: Optional[SuppressionTracker] = None,
) -> Report:
    """The ``shards`` lint pass over the default 2-issue core."""
    if root is None:
        from repro.timing.core import build_default_core

        root = build_default_core(DEFAULT_ISSUE_WIDTH)
    _plan, report, _effects = check_shards(
        root, shards=shards, tracker=tracker
    )
    return report
