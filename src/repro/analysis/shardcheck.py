"""The ``python -m repro shardcheck`` entry point.

Runs the FastPart effect analyzer and partition planner over the
default core and emits a :mod:`PartitionPlan <repro.analysis.partition>`
artifact -- the contract between the static analysis and the future
sharded tick engine (ROADMAP item 2).

Usage::

    python -m repro shardcheck                       # 2 shards, summary
    python -m repro shardcheck --shards 4 -v
    python -m repro shardcheck --out plan.json       # canonical artifact
    python -m repro shardcheck --profile <flight-run-or-profile.json>
    python -m repro shardcheck --json                # plan + diagnostics

Exit code 0 when no diagnostic reaches WARNING severity, 1 otherwise.
The plan written by ``--out`` is byte-identical across repeated runs on
the same tree and cost model.
"""

from __future__ import annotations

import argparse
import json
from typing import List, Optional

from repro.analysis.diagnostics import Severity
from repro.analysis.partition import render_plan
from repro.analysis.shard_rules import check_shards


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(
            "value must be >= 1 (got %d)" % value
        )
    return value


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro shardcheck",
        description="FastPart: static shard-safety analysis and "
        "partition planning for the parallel tick engine.",
    )
    parser.add_argument(
        "--shards",
        type=_positive_int,
        default=2,
        metavar="K",
        help="number of shards to plan for (default: 2)",
    )
    parser.add_argument(
        "--profile",
        metavar="REF",
        help="cost model: a TickProfiler profile.json path or a "
        "FastFlight run reference (default: uniform unit costs)",
    )
    parser.add_argument(
        "--out",
        metavar="FILE",
        help="write the PartitionPlan artifact (canonical JSON) here",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="print the plan and the diagnostic report as one JSON "
        "document instead of the human summary",
    )
    parser.add_argument(
        "--issue-width",
        type=_positive_int,
        default=2,
        metavar="N",
        help="issue width of the default core to analyze (default: 2)",
    )
    parser.add_argument(
        "-v",
        "--verbose",
        action="store_true",
        help="also print INFO-level notes and per-shard footprints",
    )
    args = parser.parse_args(argv)

    from repro.timing.core import build_default_core

    root = build_default_core(args.issue_width)
    plan, report, _effects = check_shards(
        root, shards=args.shards, profile=args.profile
    )

    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(render_plan(plan))

    min_severity = (
        Severity.INFO if (args.verbose or args.json) else Severity.WARNING
    )
    if args.json:
        document = report.to_document(min_severity)
        document["plan"] = plan
        print(json.dumps(document, sort_keys=True, indent=2))
    else:
        text = report.format(min_severity)
        if text:
            print(text)
        _print_summary(plan, report, args)
    return 0 if report.clean else 1


def _print_summary(plan: dict, report, args) -> None:
    print(
        "fastpart: %d shard(s) over %d atomic group(s), "
        "%d cut edge(s), balance ratio %.2f"
        % (
            plan["shard_count"],
            len(plan["atomic_groups"]),
            len(plan["cut_edges"]),
            plan["balance"]["ratio"],
        )
    )
    for shard in plan["shards"]:
        print(
            "  shard[%d] cost %.3f: %s"
            % (
                shard["index"],
                shard["cost"],
                ", ".join(shard["units"]) or "(empty)",
            )
        )
        if args.verbose:
            footprint = shard["footprint"]
            for kind in ("writes", "reads"):
                for location in footprint[kind]:
                    print("    %s %s" % (kind[:-1], location))
    for edge in plan["cut_edges"]:
        print(
            "  cut %s (latency %d): shard[%d] -> shard[%d]"
            % (
                edge["connector"],
                edge["latency"],
                edge["producer_shard"],
                edge["consumer_shard"],
            )
        )
    if args.out:
        print("plan written to %s" % args.out)
    failing = report.failing
    print(
        "shardcheck: %d error(s), %d warning(s), %d info note(s)"
        % (
            len(report.errors),
            len(failing) - len(report.errors),
            len(report) - len(failing),
        )
    )
