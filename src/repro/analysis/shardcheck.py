"""The ``python -m repro shardcheck`` entry point.

Runs the FastPart effect analyzer and partition planner over the
default core and emits a :mod:`PartitionPlan <repro.analysis.partition>`
artifact -- the contract between the static analysis and the future
sharded tick engine (ROADMAP item 2).

Usage::

    python -m repro shardcheck                       # 2 shards, summary
    python -m repro shardcheck --shards 4 -v
    python -m repro shardcheck --out plan.json       # canonical artifact
    python -m repro shardcheck --profile <flight-run-or-profile.json>
    python -m repro shardcheck --json                # plan + diagnostics
    python -m repro shardcheck --execute             # sharded-vs-compiled
                                                     # smoke run

``--execute`` additionally *runs* the plan: the boot and gzip smoke
workloads execute under both the compiled and the sharded engine with
an EventTracer armed, TimingStats are compared bit-for-bit and the
trace streams byte-for-byte, and the per-run trace JSONL files land in
``--trace-dir`` for external ``cmp`` (the CI shard-equivalence job).

Exit code 0 when no diagnostic reaches WARNING severity (and, with
``--execute``, every smoke run matched), 1 otherwise.  The plan written
by ``--out`` is byte-identical across repeated runs on the same tree
and cost model.
"""

from __future__ import annotations

import argparse
import json
from typing import List, Optional

from repro.analysis.diagnostics import Severity
from repro.analysis.partition import render_plan
from repro.analysis.shard_rules import check_shards


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(
            "value must be >= 1 (got %d)" % value
        )
    return value


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro shardcheck",
        description="FastPart: static shard-safety analysis and "
        "partition planning for the parallel tick engine.",
    )
    parser.add_argument(
        "--shards",
        type=_positive_int,
        default=2,
        metavar="K",
        help="number of shards to plan for (default: 2)",
    )
    parser.add_argument(
        "--profile",
        metavar="REF",
        help="cost model: a TickProfiler profile.json path or a "
        "FastFlight run reference (default: uniform unit costs)",
    )
    parser.add_argument(
        "--out",
        metavar="FILE",
        help="write the PartitionPlan artifact (canonical JSON) here",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="print the plan and the diagnostic report as one JSON "
        "document instead of the human summary",
    )
    parser.add_argument(
        "--issue-width",
        type=_positive_int,
        default=2,
        metavar="N",
        help="issue width of the default core to analyze (default: 2)",
    )
    parser.add_argument(
        "-v",
        "--verbose",
        action="store_true",
        help="also print INFO-level notes and per-shard footprints",
    )
    parser.add_argument(
        "--execute",
        action="store_true",
        help="smoke-run the plan: boot + gzip under compiled and "
        "sharded engines, comparing TimingStats bit-for-bit and trace "
        "streams byte-for-byte",
    )
    parser.add_argument(
        "--trace-dir",
        default="shard-equivalence",
        metavar="DIR",
        help="where --execute writes per-run trace JSONL files "
        "(default: shard-equivalence/)",
    )
    args = parser.parse_args(argv)

    from repro.timing.core import build_default_core

    root = build_default_core(args.issue_width)
    plan, report, _effects = check_shards(
        root, shards=args.shards, profile=args.profile
    )

    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(render_plan(plan))

    min_severity = (
        Severity.INFO if (args.verbose or args.json) else Severity.WARNING
    )
    if args.json:
        document = report.to_document(min_severity)
        document["plan"] = plan
        print(json.dumps(document, sort_keys=True, indent=2))
    else:
        text = report.format(min_severity)
        if text:
            print(text)
        _print_summary(plan, report, args)
    status = 0 if report.clean else 1
    if args.execute:
        status = max(status, _execute_smoke(args))
    return status


def _execute_smoke(args) -> int:
    """Run the boot + gzip smoke workloads under both engines and
    compare: bit-identical TimingStats, byte-identical trace JSONL."""
    import dataclasses
    import os

    from repro.experiments.bench import bench_workloads
    from repro.experiments.harness import build_fast_simulator
    from repro.observability.events import attach_tracer
    from repro.timing.core import TimingConfig

    os.makedirs(args.trace_dir, exist_ok=True)
    failures = 0
    picked = [w for w in bench_workloads(smoke=True)
              if w.name in ("linux-boot", "164.gzip")]
    for workload in picked:
        outputs = {}
        for engine in ("compiled", "sharded"):
            config = TimingConfig(engine=engine, shards=args.shards)
            sim = build_fast_simulator(workload, timing_config=config)
            tracer = attach_tracer(sim)
            result = sim.run(8_000_000)
            path = os.path.join(
                args.trace_dir, "%s-%s.jsonl" % (workload.name, engine)
            )
            tracer.write_jsonl(path, footer=True)
            outputs[engine] = (
                dataclasses.asdict(result.timing),
                tracer.to_jsonl(footer=True),
                path,
            )
        stats_match = outputs["compiled"][0] == outputs["sharded"][0]
        trace_match = outputs["compiled"][1] == outputs["sharded"][1]
        ok = stats_match and trace_match
        failures += 0 if ok else 1
        print(
            "execute %-12s shards=%d: stats %s, trace %s "
            "(%d cycles, traces in %s)"
            % (
                workload.name,
                args.shards,
                "bit-identical" if stats_match else "DIVERGED",
                "byte-identical" if trace_match else "DIVERGED",
                outputs["sharded"][0]["cycles"],
                args.trace_dir,
            )
        )
        if not stats_match:
            compiled, sharded = outputs["compiled"][0], outputs["sharded"][0]
            for key in sorted(compiled):
                if compiled[key] != sharded[key]:
                    print("  stats.%s: compiled=%r sharded=%r"
                          % (key, compiled[key], sharded[key]))
    return 1 if failures else 0


def _print_summary(plan: dict, report, args) -> None:
    print(
        "fastpart: %d shard(s) over %d atomic group(s), "
        "%d cut edge(s), balance ratio %.2f"
        % (
            plan["shard_count"],
            len(plan["atomic_groups"]),
            len(plan["cut_edges"]),
            plan["balance"]["ratio"],
        )
    )
    for shard in plan["shards"]:
        print(
            "  shard[%d] cost %.3f: %s"
            % (
                shard["index"],
                shard["cost"],
                ", ".join(shard["units"]) or "(empty)",
            )
        )
        if args.verbose:
            footprint = shard["footprint"]
            for kind in ("writes", "reads"):
                for location in footprint[kind]:
                    print("    %s %s" % (kind[:-1], location))
    for edge in plan["cut_edges"]:
        print(
            "  cut %s (latency %d): shard[%d] -> shard[%d]"
            % (
                edge["connector"],
                edge["latency"],
                edge["producer_shard"],
                edge["consumer_shard"],
            )
        )
    if args.out:
        print("plan written to %s" % args.out)
    failing = report.failing
    print(
        "shardcheck: %d error(s), %d warning(s), %d info note(s)"
        % (
            len(report.errors),
            len(failing) - len(report.errors),
            len(report) - len(failing),
        )
    )
