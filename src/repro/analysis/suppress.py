"""The fastlint escape hatch, shared by every AST-based pass.

A finding is suppressed by a ``# fastlint: ignore`` comment on the
offending line.  Three forms are honored, uniformly, by every pass
that reports ``file:line`` locations (determinism DT*, statistics
ST*, shard-safety SH*):

* ``# fastlint: ignore`` -- suppress every rule on this line;
* ``# fastlint: ignore[DT002]`` -- suppress exactly one rule;
* ``# fastlint: ignore[DT002,SH005]`` -- suppress a rule list.

Suppression is an audited exception, so an ignore that suppresses
nothing is itself a finding: the CLI collects every comment seen and
every suppression actually exercised across *all* passes (a comment
used by any one pass is used), and reports the leftovers as rule
``IG001``.  Structural rules (TG*, MC*, ST001, SH001-SH003/SH006)
locate findings by module path or opcode, not by source line, and are
deliberately not suppressible -- fix the structure instead.
"""

from __future__ import annotations

import io
import os
import re
import tokenize
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.analysis.diagnostics import Report, Severity

_IGNORE_RE = re.compile(
    r"#\s*fastlint:\s*ignore"
    r"(?:\[([A-Z]{2}\d{3}(?:\s*,\s*[A-Z]{2}\d{3})*)\])?"
)


def parse_ignores(line: str) -> Optional[Set[str]]:
    """Rules suppressed on *line*; empty set means "all rules",
    ``None`` means no ignore comment at all."""
    match = _IGNORE_RE.search(line)
    if not match:
        return None
    rules = match.group(1)
    if not rules:
        return set()
    return {rule.strip() for rule in rules.split(",")}


def _comment_tokens(lines: List[str]) -> Iterable[Tuple[int, str]]:
    """``(line, comment text)`` for every real COMMENT token.

    Tokenizing (rather than regex-scanning raw lines) keeps docstrings
    and string literals that merely *mention* the ignore syntax from
    being mistaken for directives.  Unparseable source falls back to
    the raw line scan -- over-matching beats silently dropping a
    directive.
    """
    source = "".join(
        line if line.endswith("\n") else line + "\n" for line in lines
    )
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        for number, line in enumerate(lines, start=1):
            yield number, line
        return
    for token in tokens:
        if token.type == tokenize.COMMENT:
            yield token.start[0], token.string


class FileSuppressions:
    """Every ignore comment in one source file, with usage marks."""

    def __init__(self, label: str, lines: Iterable[str]):
        self.label = label
        # line number -> declared rule set (empty set = all rules)
        self.declared: Dict[int, Set[str]] = {}
        # line number -> rules actually suppressed there (any pass)
        self.used: Dict[int, Set[str]] = {}
        for number, comment in _comment_tokens(list(lines)):
            rules = parse_ignores(comment)
            if rules is not None:
                self.declared[number] = rules

    def suppresses(self, rule: str, line_no: int) -> bool:
        """True if *rule* is suppressed on *line_no*; marks the ignore
        as exercised."""
        declared = self.declared.get(line_no)
        if declared is None:
            return False
        if declared and rule not in declared:
            return False
        self.used.setdefault(line_no, set()).add(rule)
        return True

    def unused(self) -> List[Tuple[int, Optional[str]]]:
        """``(line, rule-or-None)`` for every declared suppression that
        never fired; ``None`` marks an unqualified (suppress-all)
        comment that suppressed nothing."""
        out: List[Tuple[int, Optional[str]]] = []
        for line_no in sorted(self.declared):
            declared = self.declared[line_no]
            used = self.used.get(line_no, set())
            if not declared:
                if not used:
                    out.append((line_no, None))
                continue
            for rule in sorted(declared):
                if rule not in used:
                    out.append((line_no, rule))
        return out


class SuppressionTracker:
    """Suppression state shared across every pass of one lint run.

    Passes register each file they scan (keyed by absolute path, so
    the determinism pass's relative labels and the effect analyzer's
    ``inspect``-derived paths meet on one record) and route every
    would-be diagnostic through :meth:`suppresses`.  After all passes
    ran, :meth:`report_unused` turns leftover ignores into IG001
    warnings.
    """

    def __init__(self) -> None:
        self._files: Dict[str, FileSuppressions] = {}

    def for_file(self, path: str, label: str,
                 lines: Iterable[str]) -> FileSuppressions:
        key = os.path.abspath(path)
        existing = self._files.get(key)
        if existing is None:
            existing = FileSuppressions(label, lines)
            self._files[key] = existing
        return existing

    def report_unused(self) -> Report:
        report = Report()
        for key in sorted(self._files):
            suppressions = self._files[key]
            for line_no, rule in suppressions.unused():
                what = (
                    "unqualified '# fastlint: ignore'"
                    if rule is None
                    else "'# fastlint: ignore[%s]'" % rule
                )
                report.add(
                    "IG001",
                    Severity.WARNING,
                    "%s:%d" % (suppressions.label, line_no),
                    "%s suppresses nothing: no pass reported a finding "
                    "it covers on this line" % what,
                    hint="remove the stale ignore, or qualify it with "
                    "the rule it is meant to suppress",
                )
        return report


def python_files(root: str) -> Iterable[str]:
    """Every ``*.py`` under *root*, in deterministic walk order."""
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames.sort()
        for filename in sorted(filenames):
            if filename.endswith(".py"):
                yield os.path.join(dirpath, filename)
