"""FastLint pass 4: statistics-fabric rules (the ST family).

The FastScope fabric (:mod:`repro.observability`) makes three standing
assumptions about how statistics are declared; each gets a rule:

=======  =========  ==========================================================
rule id  severity   meaning
=======  =========  ==========================================================
ST001    error      duplicate statistic names within a Module subtree: a
                    typed stat shadowing an ad hoc ``bump()`` counter on the
                    same module, or two modules sharing a flattened path --
                    either way two streams merge silently in
                    ``stats_report()`` and in the fabric
ST002    warning    stat registration (``new_counter``/``new_gauge``/
                    ``new_histogram``/``register_stat``) outside
                    ``__init__``/construction: the fabric baselines the
                    stream set when it attaches, so a stream registered
                    mid-run is missing from earlier windows and skews
                    deltas
ST003    warning    per-cycle listeners registered without an idle hint --
                    a bare ``tm.cycle_listeners.append(...)`` or an
                    ``add_cycle_listener(...)`` call with no ``idle_hint``
                    -- which pins the compiled engine to single-stepping
                    for the whole run
ST004    warning    a ``PulseEmitter(...)`` constructed with a truthy (or
                    dynamic) ``single_step`` argument: the emitter then
                    registers its listener hintless, which is ST003 one
                    constructor-frame removed -- the telemetry plane
                    silently forfeits idle fast-forward
=======  =========  ==========================================================

ST001 is structural (walks a built module tree); ST002/ST003/ST004 parse
the sources (AST only, no execution), reusing the determinism pass's
``# fastlint: ignore[STnnn]`` escape hatch.
"""

from __future__ import annotations

import ast
import os
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.diagnostics import Report, Severity
from repro.analysis.suppress import (
    FileSuppressions,
    SuppressionTracker,
    python_files,
)
from repro.timing.module import Module

# Function names inside which stat registration is construction-time by
# convention: initializers, dataclass post-init, builder helpers and the
# ``new_*`` registration wrappers themselves.
_CONSTRUCTION_PREFIXES: Tuple[str, ...] = ("build", "_build", "new_")
_CONSTRUCTION_NAMES: Set[str] = {"__init__", "__post_init__"}

_REGISTRATION_CALLS: Set[str] = {
    "new_counter",
    "new_gauge",
    "new_histogram",
    "register_stat",
}


# -- ST001: structural duplicate-name lint ----------------------------------


def lint_stat_registry(root: Module) -> Report:
    """Check the flattened statistics namespace of *root*'s subtree."""
    report = Report()
    seen_paths: Dict[str, str] = {}
    for path, module in root.walk_paths():
        if path in seen_paths:
            report.add(
                "ST001",
                Severity.ERROR,
                path,
                "two modules share the statistics path %r (types %s and "
                "%s): their streams merge silently" % (
                    path, seen_paths[path], type(module).__name__,
                ),
                hint="rename one sibling (see also TG003)",
            )
        else:
            seen_paths[path] = type(module).__name__
        overlap = sorted(set(module._counters) & set(module._stats))
        for name in overlap:
            report.add(
                "ST001",
                Severity.ERROR,
                "%s/%s" % (path, name),
                "typed stat %r shadows an ad hoc bump() counter of the "
                "same name on module %r" % (name, module.name),
                hint="rename the typed stat or migrate the counter to it",
            )
    return report


# -- ST002/ST003: AST lint ---------------------------------------------------


class _StatChecker(ast.NodeVisitor):
    def __init__(self, filename: str, source_lines: Sequence[str],
                 suppressions: Optional[FileSuppressions] = None):
        self.filename = filename
        self.lines = source_lines
        self.suppressions = suppressions or FileSuppressions(
            filename, source_lines
        )
        self.report = Report()
        self._function_stack: List[str] = []

    def _add(self, rule: str, severity: Severity, node: ast.AST,
             message: str, hint: str = "") -> None:
        line_no = getattr(node, "lineno", 0)
        if self.suppressions.suppresses(rule, line_no):
            return
        self.report.add(
            rule, severity, "%s:%d" % (self.filename, line_no), message, hint
        )

    def _visit_function(self, node) -> None:
        self._function_stack.append(node.name)
        self.generic_visit(node)
        self._function_stack.pop()

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    def _in_construction(self) -> bool:
        if not self._function_stack:
            # Module level: a stat registered at import time belongs to
            # no module instance under construction.
            return False
        name = self._function_stack[-1]
        if name in _CONSTRUCTION_NAMES:
            return True
        return name.startswith(_CONSTRUCTION_PREFIXES)

    def _check_pulse_emitter(self, node: ast.Call) -> None:
        # ST004: PulseEmitter(single_step=...) with anything but a
        # literal False.  single_step routes registration around the
        # idle-hint path, so it inherits ST003's single-stepping cost
        # without tripping ST003 (the hintless call lives inside the
        # constructor, behind the flag).
        for kw in node.keywords:
            if kw.arg != "single_step":
                continue
            value = kw.value
            if isinstance(value, ast.Constant) and not value.value:
                return
            certain = isinstance(value, ast.Constant)
            self._add(
                "ST004",
                Severity.WARNING,
                node,
                "PulseEmitter constructed with %s single_step: the "
                "emitter registers its cycle listener without an idle "
                "hint, pinning the compiled engine to single-stepping "
                "while telemetry is armed" % (
                    "a truthy" if certain else "a dynamic"
                ),
                hint="drop single_step (the cadence hint samples the "
                "same cycles) or suppress with "
                "# fastlint: ignore[ST004] where the single-stepping "
                "is deliberate diagnostics",
            )

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        callee = None
        if isinstance(func, ast.Name):
            callee = func.id
        elif isinstance(func, ast.Attribute):
            callee = func.attr
        if callee == "PulseEmitter":
            self._check_pulse_emitter(node)
        if isinstance(func, ast.Attribute):
            # ST002: registration outside construction.
            if (
                func.attr in _REGISTRATION_CALLS
                and not self._in_construction()
            ):
                where = (
                    "function %r" % self._function_stack[-1]
                    if self._function_stack
                    else "module level"
                )
                self._add(
                    "ST002",
                    Severity.WARNING,
                    node,
                    "%s() called in %s: stats must be registered during "
                    "construction so every fabric window observes the "
                    "same stream set" % (func.attr, where),
                    hint="move the registration into __init__ (or a "
                    "build*/new_* constructor helper)",
                )
            # ST003: bare cycle_listeners.append(...).
            if (
                func.attr == "append"
                and isinstance(func.value, ast.Attribute)
                and func.value.attr == "cycle_listeners"
            ):
                self._add(
                    "ST003",
                    Severity.WARNING,
                    node,
                    "per-cycle listener registered by appending directly "
                    "to cycle_listeners: no idle hint, so the compiled "
                    "engine single-steps for the whole run",
                    hint="use tm.add_cycle_listener(listener, "
                    "idle_hint=...) (see CompiledTriggerQuery)",
                )
            # ST003: add_cycle_listener without an idle hint.
            if func.attr == "add_cycle_listener":
                keywords = {kw.arg for kw in node.keywords}
                if "idle_hint" not in keywords and len(node.args) < 2:
                    self._add(
                        "ST003",
                        Severity.WARNING,
                        node,
                        "add_cycle_listener() without an idle_hint pins "
                        "the compiled engine to single-stepping while the "
                        "listener is subscribed",
                        hint="declare how many upcoming cycles the "
                        "listener ignores (unbounded is sound for probes "
                        "of module state; see "
                        "repro.observability.triggers)",
                    )
        self.generic_visit(node)


def lint_stat_source(source: str, filename: str = "<string>",
                     suppressions: Optional[FileSuppressions] = None) -> Report:
    """Run ST002/ST003 over one Python source string."""
    report = Report()
    try:
        tree = ast.parse(source, filename=filename)
    except SyntaxError as exc:
        report.add(
            "ST000",
            Severity.ERROR,
            "%s:%d" % (filename, exc.lineno or 0),
            "syntax error: %s" % exc.msg,
        )
        return report
    checker = _StatChecker(filename, source.splitlines(), suppressions)
    checker.visit(tree)
    report.extend(checker.report)
    return report


def lint_stat_sources(
    paths: Optional[Sequence[str]] = None,
    tracker: Optional[SuppressionTracker] = None,
) -> Report:
    """ST002/ST003 over Python files/directories; defaults to the
    installed ``repro`` package sources."""
    if paths is None:
        import repro

        paths = [os.path.dirname(os.path.abspath(repro.__file__))]
    report = Report()
    for path in paths:
        if not os.path.exists(path):
            report.add("ST000", Severity.ERROR, path,
                       "no such file or directory")
            continue
        if os.path.isdir(path):
            base = os.path.dirname(os.path.abspath(path))
            files = list(python_files(path))
        else:
            base = os.path.dirname(os.path.abspath(path)) or "."
            files = [path]
        for file_path in files:
            rel = os.path.relpath(os.path.abspath(file_path), base)
            with open(file_path, "r", encoding="utf-8") as handle:
                source = handle.read()
            suppressions = None
            if tracker is not None:
                suppressions = tracker.for_file(
                    file_path, rel, source.splitlines()
                )
            report.extend(lint_stat_source(source, rel, suppressions))
    return report
