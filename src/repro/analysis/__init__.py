"""FastLint: static verification for the FAST reproduction.

The paper's timing model is written in Bluespec, whose compiler rejects
malformed hardware -- dangling FIFOs, combinational loops -- before
synthesis.  This package is the Python equivalent for our
Module/Connector timing models, plus two checks Bluespec could not
give the paper: a microcode/ISA def-use cross-check (hardening the
Table 1 coverage story) and an AST lint for nondeterminism hazards in
modelled-time code (protecting the cycle-count-equivalence invariant).

Three passes, one diagnostic model:

* :func:`lint_timing_graph` -- structural rules over the extracted
  dataflow graph (:mod:`repro.analysis.graph`), rules ``TG001-TG005``;
* :func:`lint_microcode` -- microcode table vs. ISA opcode table,
  rules ``MC001-MC005``;
* :func:`lint_determinism` -- AST scan of simulator sources, rules
  ``DT001-DT004``.

``python -m repro lint`` runs all three against the default targets.
The extracted :class:`~repro.analysis.graph.TimingGraph` doubles as the
substrate for parallel/sharded ticking: its components and zero-latency
condensation say which modules may be evaluated independently.
"""

from repro.analysis.determinism import lint_determinism, lint_source
from repro.analysis.diagnostics import Diagnostic, Report, Severity
from repro.analysis.graph import Edge, TimingGraph, extract_graph
from repro.analysis.microcode_rules import lint_microcode
from repro.analysis.timing_rules import lint_timing_graph

__all__ = [
    "Diagnostic",
    "Edge",
    "Report",
    "Severity",
    "TimingGraph",
    "extract_graph",
    "lint_determinism",
    "lint_microcode",
    "lint_source",
    "lint_timing_graph",
]
