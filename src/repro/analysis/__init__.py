"""FastLint: static verification for the FAST reproduction.

The paper's timing model is written in Bluespec, whose compiler rejects
malformed hardware -- dangling FIFOs, combinational loops -- before
synthesis.  This package is the Python equivalent for our
Module/Connector timing models, plus checks Bluespec could not give
the paper: a microcode/ISA def-use cross-check (hardening the Table 1
coverage story) and AST lints for nondeterminism hazards and
shard-safety in modelled-time code.

Five passes, one diagnostic model:

* :func:`lint_timing_graph` -- structural rules over the extracted
  dataflow graph (:mod:`repro.analysis.graph`), rules ``TG001-TG005``;
* :func:`lint_microcode` -- microcode table vs. ISA opcode table,
  rules ``MC001-MC005``;
* :func:`lint_determinism` -- AST scan of simulator sources, rules
  ``DT001-DT004``;
* :func:`lint_stat_registry` / stat-source lint -- statistics fabric,
  rules ``ST001-ST003``;
* :func:`lint_shards` -- FastPart effect analysis and partition-plan
  validation, rules ``SH001-SH006`` (plus ``IG001`` for unused
  ``# fastlint: ignore`` escapes when every AST pass runs).

``python -m repro lint`` runs all five against the default targets;
``python -m repro shardcheck`` emits the PartitionPlan artifact.  The
extracted :class:`~repro.analysis.graph.TimingGraph` plus the
per-module effect footprints (:func:`analyze_tree`) are the substrate
for parallel/sharded ticking: :func:`plan_partition` says which modules
may be evaluated independently and on which worker.
"""

from repro.analysis.determinism import lint_determinism, lint_source
from repro.analysis.diagnostics import Diagnostic, Report, Severity
from repro.analysis.effects import (
    TreeEffects,
    UnitEffects,
    analyze_tree,
    conflicts_between,
)
from repro.analysis.graph import Edge, TimingGraph, extract_graph
from repro.analysis.microcode_rules import lint_microcode
from repro.analysis.partition import (
    load_cost_model,
    plan_partition,
    render_plan,
    validate_plan,
)
from repro.analysis.shard_rules import check_shards, lint_shards
from repro.analysis.stat_rules import lint_stat_registry
from repro.analysis.suppress import SuppressionTracker
from repro.analysis.timing_rules import lint_timing_graph

__all__ = [
    "Diagnostic",
    "Edge",
    "Report",
    "Severity",
    "SuppressionTracker",
    "TimingGraph",
    "TreeEffects",
    "UnitEffects",
    "analyze_tree",
    "check_shards",
    "conflicts_between",
    "extract_graph",
    "lint_determinism",
    "lint_microcode",
    "lint_shards",
    "lint_source",
    "lint_stat_registry",
    "lint_timing_graph",
    "load_cost_model",
    "plan_partition",
    "render_plan",
    "validate_plan",
]
