"""The unified diagnostic model shared by every FastLint pass.

Bluespec gives the paper's timing model a compiler that rejects
malformed hardware before it is ever synthesized; FastLint is the
Python equivalent for this reproduction.  Every analysis pass -- the
timing-graph lint, the microcode/ISA cross-check and the determinism
lint -- reports findings through one :class:`Diagnostic` shape so the
CLI, CI and tests can treat them uniformly.

A diagnostic carries a stable *rule id* (``TG001`` ... for the timing
graph, ``MC001`` ... for microcode, ``DT001`` ... for determinism), a
severity, a location (module path, opcode, or ``file:line``), a
human-readable message and a fix hint.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple


class Severity(enum.IntEnum):
    """Diagnostic severity; ordering matters (INFO < WARNING < ERROR)."""

    INFO = 0
    WARNING = 1
    ERROR = 2

    def __str__(self) -> str:  # "error", not "Severity.ERROR"
        return self.name.lower()


@dataclass(frozen=True)
class Diagnostic:
    """One finding from one FastLint rule."""

    rule: str  # stable rule id, e.g. "TG002"
    severity: Severity
    location: str  # module path, opcode name, or file:line
    message: str
    hint: str = ""  # how to fix it

    def format(self) -> str:
        text = "%s [%s] %s: %s" % (self.location, self.rule,
                                   self.severity, self.message)
        if self.hint:
            text += " (hint: %s)" % self.hint
        return text

    def to_dict(self) -> dict:
        """Plain-dict form, the shared machine-readable shape used by
        ``lint --json``, ``shardcheck --json`` and PartitionPlan."""
        return {
            "rule": self.rule,
            "severity": str(self.severity),
            "location": self.location,
            "message": self.message,
            "hint": self.hint,
        }

    def sort_key(self) -> Tuple[str, str, str, str]:
        return (self.rule, self.location, self.message, self.hint)


class Report:
    """An ordered collection of diagnostics with exit-code semantics.

    The lint CLI exits non-zero when any diagnostic is WARNING or worse;
    INFO-level notes (e.g. the paper's deliberately-untranslated FP
    opcodes, Table 1) never fail a build.
    """

    def __init__(self, diagnostics: Iterable[Diagnostic] = ()):
        self.diagnostics: List[Diagnostic] = list(diagnostics)

    def add(
        self,
        rule: str,
        severity: Severity,
        location: str,
        message: str,
        hint: str = "",
    ) -> Diagnostic:
        diag = Diagnostic(rule, severity, location, message, hint)
        self.diagnostics.append(diag)
        return diag

    def extend(self, other: "Report") -> None:
        self.diagnostics.extend(other.diagnostics)

    def by_rule(self, rule: str) -> Tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.rule == rule)

    def at_least(self, severity: Severity) -> Tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.severity >= severity)

    @property
    def errors(self) -> Tuple[Diagnostic, ...]:
        return self.at_least(Severity.ERROR)

    @property
    def failing(self) -> Tuple[Diagnostic, ...]:
        """Diagnostics that make the lint exit non-zero."""
        return self.at_least(Severity.WARNING)

    @property
    def clean(self) -> bool:
        return not self.failing

    def rules(self) -> Sequence[str]:
        return tuple(d.rule for d in self.diagnostics)

    def format(self, min_severity: Severity = Severity.INFO) -> str:
        lines = [
            d.format() for d in self.diagnostics if d.severity >= min_severity
        ]
        return "\n".join(lines)

    def to_dicts(self, min_severity: Severity = Severity.INFO) -> List[dict]:
        """Diagnostics as plain dicts in stable sort order (by rule,
        location, message, hint) -- the byte-stable report format CI
        and shardcheck share."""
        selected = [
            d for d in self.diagnostics if d.severity >= min_severity
        ]
        return [d.to_dict() for d in sorted(selected,
                                            key=Diagnostic.sort_key)]

    def to_document(self, min_severity: Severity = Severity.INFO) -> dict:
        """The shared report document: sorted diagnostics plus a
        summary block.  ``lint --json`` prints exactly this;
        ``shardcheck --json`` embeds it next to the plan."""
        failing = self.failing
        return {
            "diagnostics": self.to_dicts(min_severity),
            "summary": {
                "errors": len(self.errors),
                "warnings": len(failing) - len(self.errors),
                "infos": len(self.diagnostics) - len(failing),
                "clean": self.clean,
            },
        }

    def to_json(self, min_severity: Severity = Severity.INFO) -> str:
        """Sorted-key, stable-order JSON document for the report."""
        import json

        document = self.to_document(min_severity)
        return json.dumps(document, sort_keys=True, indent=2) + "\n"

    def __len__(self) -> int:
        return len(self.diagnostics)

    def __iter__(self):
        return iter(self.diagnostics)

    def __repr__(self) -> str:
        return "<Report %d diagnostics (%d failing)>" % (
            len(self.diagnostics),
            len(self.failing),
        )
