"""FastPart effect analysis: per-module read/write footprints.

The paper's partitioned FM/TM decomposition is safe to parallelize
because every seam between partitions is an explicit latency-carrying
channel (a Connector); Manticore-style bulk-synchronous simulation
rests on proving that property *statically*.  This module is the
proof engine: it walks the AST of every tickable Module's per-cycle
code (``bind_tick`` and everything reachable from it through ``self``
method calls, stored references and closures) and computes a
**footprint** -- the set of ``(object label, attribute)`` locations the
module reads and writes within one target cycle.

Two footprints *conflict* when one writes a location the other touches;
conflicting modules must share a shard (the partition planner in
:mod:`repro.analysis.partition` merges them into one atomic group).
Three access families are deliberately excluded from race detection:

* **channel effects** -- the sanctioned Connector API (``push``/
  ``pop``/``peek``/``can_push``/``can_pop``/``tick``/``occupancy``/
  ``__len__``) used by that Connector's own bound producer or
  consumer.  The connector's ``min_latency`` discipline orders these
  accesses across shards; that is the whole point of the FAST seam.
  Out-of-band mutation (``flush``, ``drop_if``) is *not* sanctioned
  and is charged as a normal write even by an endpoint.
* **declared seams** -- attributes listed in a class's
  ``shard_seams`` declaration (:class:`repro.timing.module.Module`),
  the audited escape hatch for observability-only shared state.
* **navigation** -- reading an attribute that merely resolves to
  another labeled object (``self.hierarchy.l1i``) charges nothing;
  only terminal data accesses are effects.

The analysis is *hybrid*: AST for the code, the live module tree for
object identity.  Every module in the tree is labeled by its tree
path; every mutable object owned by a labeled object is labeled
``owner_label.attr`` (containers are atomic locations); module-level
mutable globals are labeled ``module:NAME``.  Aliases created by
locals (``backend = self.backend``), closures and bound-method values
are tracked by resolving them to the same live objects.

Unanalyzable constructs surface as source-line diagnostics, routed
through the shared ``# fastlint: ignore[...]`` machinery:

=======  =========  ==========================================================
rule id  severity   meaning
=======  =========  ==========================================================
SH004    warning    ordering-sensitive listener: a stored-callable hook
                    invoked on the tick path without a ``shard_seams``
                    declaration on the owning class
SH005    warning    unanalyzable dynamic access: ``getattr``/``setattr``
                    with a non-constant name, ``eval``/``exec``/
                    ``vars``/``globals``/``locals`` or ``__dict__``
                    access on the tick path
=======  =========  ==========================================================

(Rules SH001-SH003 and SH006 are plan-level; see
:mod:`repro.analysis.partition`.)
"""

from __future__ import annotations

import ast
import inspect
import os
import textwrap
import types
from array import array
from collections import deque
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.diagnostics import Report, Severity
from repro.analysis.graph import TimingGraph, extract_graph
from repro.analysis.suppress import FileSuppressions, SuppressionTracker
from repro.timing.connector import Connector
from repro.timing.module import Module

# The wildcard attribute: the whole object (opaque call, truthiness,
# iteration, container mutation).
OPAQUE = "*"

# Sentinels.  UNKNOWN is any value the resolver cannot track.
_MISSING = object()


class _Unknown:
    __slots__ = ()

    def __repr__(self) -> str:
        return "<unknown>"


UNKNOWN = _Unknown()

# The sanctioned Connector channel API (see module docstring).
CHANNEL_API = frozenset(
    {"tick", "can_push", "push", "can_pop", "pop", "peek",
     "occupancy", "__len__"}
)

# The internal state those channel methods operate on.  The compiled
# engine's fused ticks (repro.timing.pipeline.fastpath) inline the
# channel API, so a bound endpoint touching exactly this state is still
# channel discipline, not a shared-state violation.
CHANNEL_STATE = frozenset(
    {"_now", "_pushed_this_cycle", "_popped_this_cycle", "_queue",
     "_counters"}
)

# Purity heuristic for methods whose source is unavailable (builtins,
# C-implemented container methods).  Anything not recognizably pure is
# charged as an opaque write -- soundness over precision.
_PURE_METHOD_NAMES = frozenset(
    {"get", "keys", "values", "items", "copy", "count", "index",
     "__len__", "__contains__", "__iter__", "__getitem__", "peek",
     "value", "union", "intersection", "difference", "issubset",
     "issuperset", "most_common"}
)
_PURE_METHOD_PREFIXES = ("is_", "can_", "has_", "get_")


def _method_is_pure(name: str) -> bool:
    return name in _PURE_METHOD_NAMES or name.startswith(_PURE_METHOD_PREFIXES)


def _is_tickable(module: Module) -> bool:
    return type(module).bind_tick is not Module.bind_tick


def declared_seams(klass: type) -> Dict[str, str]:
    """Merged ``shard_seams`` declarations of *klass* (works for any
    class, not just Module subclasses)."""
    merged: Dict[str, str] = {}
    for base in reversed(klass.__mro__):
        declared = base.__dict__.get("shard_seams")
        if isinstance(declared, dict):
            merged.update(declared)
    return merged


# -- object labeling ---------------------------------------------------------

_ATOMIC_CONTAINERS = (list, dict, set, deque, bytearray, array)


def _mutable_state(value: Any) -> bool:
    """True if *value* is shared mutable state worth labeling."""
    if value is None:
        return False
    if isinstance(value, (bool, int, float, complex, str, bytes, tuple,
                          frozenset, range)):
        return False
    if isinstance(value, (type, types.ModuleType)):
        return False
    if inspect.isroutine(value) or isinstance(value, types.FunctionType):
        return False
    return True


def _owned_attrs(obj: Any) -> List[Tuple[str, Any]]:
    """``(name, value)`` attribute pairs of *obj* in sorted-name order,
    read without triggering descriptors (``__dict__`` first, declared
    ``__slots__`` otherwise)."""
    instance_dict = getattr(obj, "__dict__", None)
    if isinstance(instance_dict, dict):
        return sorted(instance_dict.items())
    out: List[Tuple[str, Any]] = []
    slot_names: List[str] = []
    for klass in type(obj).__mro__:
        slots = klass.__dict__.get("__slots__", ())
        if isinstance(slots, str):
            slots = (slots,)
        slot_names.extend(slots)
    for name in sorted(set(slot_names)):
        value = inspect.getattr_static(obj, name, _MISSING)
        if value is _MISSING or isinstance(value, types.MemberDescriptorType):
            try:
                value = getattr(obj, name)
            except AttributeError:
                continue
        out.append((name, value))
    return out


class ObjectRegistry:
    """Deterministic identity -> label map for the shared-object graph.

    Labels: tree modules by tree path (``timing_model/frontend``);
    owned mutable objects by ``owner_label.attr`` at first sighting in
    a fixed breadth-first walk; module-level globals by
    ``module:NAME``.  Containers are atomic locations -- their contents
    are not labeled.
    """

    # How deep the ownership walk descends below the module tree.
    DEPTH = 3

    def __init__(self, graph: TimingGraph):
        self._labels: Dict[int, str] = {}
        self._owners: Dict[int, Tuple[Any, str]] = {}
        self._keep: List[Any] = []  # pin ids for the registry lifetime
        for path, module in graph.modules:
            self._add(module, path)
        frontier: List[Tuple[str, Any]] = [
            (self._labels[id(module)], module)
            for _path, module in graph.modules
        ]
        for _depth in range(self.DEPTH):
            next_frontier: List[Tuple[str, Any]] = []
            for label, obj in frontier:
                for attr, value in _owned_attrs(obj):
                    if not _mutable_state(value):
                        continue
                    if id(value) in self._labels:
                        continue
                    child_label = "%s.%s" % (label, attr)
                    self._add(value, child_label)
                    self._owners[id(value)] = (obj, attr)
                    if not isinstance(value, _ATOMIC_CONTAINERS):
                        next_frontier.append((child_label, value))
            frontier = next_frontier

    def _add(self, obj: Any, label: str) -> None:
        if id(obj) not in self._labels:
            self._labels[id(obj)] = label
            self._keep.append(obj)

    def label_of(self, obj: Any) -> Optional[str]:
        return self._labels.get(id(obj))

    def owner_of(self, obj: Any) -> Optional[Tuple[Any, str]]:
        """``(owner, attr)`` under which *obj* was first sighted, or
        None for tree modules and globals."""
        return self._owners.get(id(obj))

    def label_global(self, module_name: str, var_name: str,
                     value: Any) -> str:
        existing = self._labels.get(id(value))
        if existing is not None:
            return existing
        label = "%s:%s" % (module_name, var_name)
        self._add(value, label)
        return label


# -- footprints --------------------------------------------------------------


class UnitEffects:
    """The computed effect footprint of one schedulable unit."""

    def __init__(self, path: str, module: Optional[Module]):
        self.path = path
        self.module = module
        self.kind = type(module).__name__ if module is not None else "listener"
        # (target label, attr-or-OPAQUE) -> first location seen
        self.reads: Dict[Tuple[str, str], str] = {}
        self.writes: Dict[Tuple[str, str], str] = {}
        # Connector labels used through the sanctioned channel API.
        self.channels: Set[str] = set()
        # Declared-seam accesses: (owner label, attr).
        self.seams: Set[Tuple[str, str]] = set()

    def footprint(self) -> dict:
        """JSON-ready, deterministically ordered footprint."""
        return {
            "reads": ["%s::%s" % key for key in sorted(self.reads)],
            "writes": ["%s::%s" % key for key in sorted(self.writes)],
            "channels": sorted(self.channels),
            "seams": ["%s::%s" % key for key in sorted(self.seams)],
        }

    def __repr__(self) -> str:
        return "<UnitEffects %s: %d reads, %d writes>" % (
            self.path, len(self.reads), len(self.writes)
        )


def _covers(target: str, attr: str, other: str) -> bool:
    """Does an access to ``(target, attr)`` cover the object labeled
    *other* (an owned container / subtree module of the target)?"""
    if attr == OPAQUE:
        return other.startswith(target + ".") or other.startswith(target + "/")
    return other == "%s.%s" % (target, attr) or other.startswith(
        "%s.%s." % (target, attr)
    )


def locations_overlap(t1: str, a1: str, t2: str, a2: str) -> bool:
    """Can accesses to ``(t1, a1)`` and ``(t2, a2)`` alias?"""
    if t1 == t2:
        return a1 == OPAQUE or a2 == OPAQUE or a1 == a2
    return _covers(t1, a1, t2) or _covers(t2, a2, t1)


def conflicts_between(a: "UnitEffects", b: "UnitEffects") -> List[str]:
    """Deterministically ordered reasons why *a* and *b* must share a
    shard (empty when their footprints are race-free)."""
    reasons: List[str] = []
    for first, second in ((a, b), (b, a)):
        for (wt, wa) in sorted(first.writes):
            for accesses, verb in ((second.writes, "writes"),
                                   (second.reads, "reads")):
                for (ot, oa) in sorted(accesses):
                    if locations_overlap(wt, wa, ot, oa):
                        reasons.append(
                            "%s writes %s::%s while %s %s %s::%s"
                            % (first.path, wt, wa, second.path, verb, ot, oa)
                        )
    # A location pair can match in both directions; dedup, keep order.
    seen: Set[str] = set()
    unique = []
    for reason in reasons:
        if reason not in seen:
            seen.add(reason)
            unique.append(reason)
    return unique


# -- the AST walker ----------------------------------------------------------


class _BoundCallable:
    """A method value resolved to (owner object, class-level function).
    ``func is None`` marks a C-implemented method known only by name."""

    __slots__ = ("owner", "func", "name")

    def __init__(self, owner: Any, func: Optional[Callable], name: str):
        self.owner = owner
        self.func = func
        self.name = name


_SH005_BUILTINS = frozenset({"eval", "exec", "vars", "globals", "locals"})


class _UnitAnalyzer:
    """Analyzes one unit's per-cycle call graph, accumulating effects."""

    def __init__(self, unit: UnitEffects, registry: ObjectRegistry,
                 report: Report, tracker: Optional[SuppressionTracker],
                 src_base: str):
        self.unit = unit
        self.registry = registry
        self.report = report
        self.tracker = tracker
        self.src_base = src_base
        self._visited: Set[Tuple[int, int]] = set()
        self._files: Dict[str, Tuple[str, Optional[FileSuppressions]]] = {}

    # -- entry points ----------------------------------------------------

    def run(self) -> None:
        module = self.unit.module
        if module is None:
            return
        self.analyze_function(type(module).bind_tick, module, [])

    def run_callable(self, listener: Callable) -> None:
        """Analyze a registered listener (commit/cycle hook)."""
        func = listener
        owner = None
        if inspect.ismethod(listener):
            owner = listener.__self__
            func = listener.__func__
        if isinstance(func, types.FunctionType):
            self.analyze_function(func, owner, [])

    # -- plumbing --------------------------------------------------------

    def _file_context(
        self, func: Callable
    ) -> Tuple[str, Optional[FileSuppressions]]:
        source_file = inspect.getsourcefile(func) or "<unknown>"
        cached = self._files.get(source_file)
        if cached is not None:
            return cached
        abspath = os.path.abspath(source_file)
        label = os.path.relpath(abspath, self.src_base)
        if label.startswith(".."):
            label = os.path.basename(abspath)
        suppressions: Optional[FileSuppressions] = None
        try:
            with open(abspath, "r", encoding="utf-8") as handle:
                lines = handle.read().splitlines()
        except OSError:
            lines = []
        if lines:
            if self.tracker is not None:
                suppressions = self.tracker.for_file(abspath, label, lines)
            else:
                suppressions = FileSuppressions(label, lines)
        context = (label, suppressions)
        self._files[source_file] = context
        return context

    def analyze_function(self, func: Callable, self_obj: Any,
                         argvals: Sequence[Any],
                         kwargvals: Optional[Dict[str, Any]] = None) -> None:
        """Walk *func* with ``self`` bound to *self_obj* (may be None)
        and positional/keyword arguments bound where resolvable."""
        key = (id(func), id(self_obj) if self_obj is not None else 0)
        if key in self._visited:
            return
        self._visited.add(key)
        try:
            lines, start = inspect.getsourcelines(func)
        except (OSError, TypeError):
            return
        try:
            tree = ast.parse(textwrap.dedent("".join(lines)))
        except SyntaxError:
            return  # lambdas defined mid-expression, or exotic source
        if not tree.body or not isinstance(
            tree.body[0], (ast.FunctionDef, ast.AsyncFunctionDef)
        ):
            return
        fdef = tree.body[0]
        ast.increment_lineno(fdef, start - 1)
        scope: Dict[str, Any] = {}
        params = [
            a.arg for a in list(fdef.args.posonlyargs) + list(fdef.args.args)
        ]
        bound: List[Any] = []
        if self_obj is not None:
            bound.append(self_obj)
        bound.extend(argvals)
        for index, name in enumerate(params):
            scope[name] = bound[index] if index < len(bound) else UNKNOWN
        for arg in list(fdef.args.kwonlyargs) + (
            [fdef.args.vararg] if fdef.args.vararg else []
        ) + ([fdef.args.kwarg] if fdef.args.kwarg else []):
            scope[arg.arg] = UNKNOWN
        if kwargvals:
            for name, value in kwargvals.items():
                if name in params:
                    scope[name] = value
        label, suppressions = self._file_context(func)
        walker = _FunctionWalker(self, func, scope, label, suppressions)
        walker.exec_block(fdef.body)

    # -- effect recording ------------------------------------------------

    def is_endpoint(self, connector: Connector) -> bool:
        """True when the analyzed unit is the bound producer/consumer
        of *connector* (its own analysis charges self-effects)."""
        module = self.unit.module
        if module is None or connector is module:
            return False
        return connector.producer is module or connector.consumer is module

    def charge(self, kind: str, obj: Any, attr: str, location: str) -> None:
        if obj is UNKNOWN or obj is None or isinstance(obj, _BoundCallable):
            return
        label = self.registry.label_of(obj)
        if label is None:
            return
        if attr != OPAQUE and attr in declared_seams(type(obj)):
            self.unit.seams.add((label, attr))
            return
        # Channel discipline, inlined form: the fused compiled-engine
        # ticks open-code the Connector push/pop/tick protocol, so an
        # endpoint touching exactly the channel-internal state is the
        # same sanctioned dataflow as calling the channel API.
        if (
            isinstance(obj, Connector)
            and attr in CHANNEL_STATE
            and self.is_endpoint(obj)
        ):
            self.channel(obj)
            return
        owner = self.registry.owner_of(obj)
        if owner is not None:
            owner_obj, owner_attr = owner
            if (
                isinstance(owner_obj, Connector)
                and owner_attr in CHANNEL_STATE
                and self.is_endpoint(owner_obj)
            ):
                self.channel(owner_obj)
                return
        store = self.unit.writes if kind == "write" else self.unit.reads
        store.setdefault((label, attr), location)

    def channel(self, connector: Connector) -> None:
        label = self.registry.label_of(connector)
        if label is not None:
            self.unit.channels.add(label)

    def diagnose(self, rule: str, node: ast.AST, file_label: str,
                 suppressions: Optional[FileSuppressions],
                 message: str, hint: str = "") -> None:
        line_no = getattr(node, "lineno", 0)
        if suppressions is not None and suppressions.suppresses(rule, line_no):
            return
        self.report.add(
            rule,
            Severity.WARNING,
            "%s:%d" % (file_label, line_no),
            "%s (unit %s)" % (message, self.unit.path),
            hint,
        )


class _FunctionWalker:
    """Walks one function body, resolving expressions against live
    objects and charging effects to the owning :class:`_UnitAnalyzer`."""

    def __init__(self, analyzer: _UnitAnalyzer, func: Callable,
                 scope: Dict[str, Any], file_label: str,
                 suppressions: Optional[FileSuppressions]):
        self.analyzer = analyzer
        self.func_globals = getattr(func, "__globals__", {})
        self.module_name = self.func_globals.get("__name__", "<module>")
        self.scope = scope
        self.file_label = file_label
        self.suppressions = suppressions

    # -- helpers ---------------------------------------------------------

    def _location(self, node: ast.AST) -> str:
        return "%s:%d" % (self.file_label, getattr(node, "lineno", 0))

    def _charge(self, kind: str, obj: Any, attr: str, node: ast.AST) -> None:
        self.analyzer.charge(kind, obj, attr, self._location(node))

    def _sh005(self, node: ast.AST, what: str) -> None:
        self.analyzer.diagnose(
            "SH005", node, self.file_label, self.suppressions,
            "unanalyzable dynamic access: %s" % what,
            hint="use a static attribute, or suppress with "
            "'# fastlint: ignore[SH005]' after auditing",
        )

    def _sh004(self, node: ast.AST, owner: Any, attr: str) -> None:
        self.analyzer.diagnose(
            "SH004", node, self.file_label, self.suppressions,
            "ordering-sensitive listener: stored callable %r invoked on "
            "the tick path without a shard_seams declaration on %s"
            % (attr, type(owner).__name__),
            hint="declare the hook in the owning class's shard_seams "
            "(observability-only hooks) or replace it with a Connector",
        )

    # -- statements ------------------------------------------------------

    def exec_block(self, stmts: Sequence[ast.stmt]) -> None:
        for stmt in stmts:
            self.exec_stmt(stmt)

    def exec_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            value = self.eval(stmt.value)
            for target in stmt.targets:
                self._assign_target(target, value)
        elif isinstance(stmt, ast.AugAssign):
            self.eval_used(stmt.value)
            self._augment_target(stmt.target)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._assign_target(stmt.target, self.eval(stmt.value))
        elif isinstance(stmt, ast.For):
            iterable = self.eval(stmt.iter)
            if iterable is not UNKNOWN:
                self._charge("read", iterable, OPAQUE, stmt.iter)
            self._assign_target(stmt.target, UNKNOWN)
            self.exec_block(stmt.body)
            self.exec_block(stmt.orelse)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                value = self.eval(stmt.value)
                # bind_tick-style factories return the per-cycle entry
                # point; a returned bound method is itself tick code.
                if isinstance(value, _BoundCallable) and value.func is not None:
                    self.analyzer.analyze_function(value.func, value.owner, [])
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # Nested def: walk its body under the captured scope.
            child = dict(self.scope)
            for arg in stmt.args.args + stmt.args.kwonlyargs:
                child[arg.arg] = UNKNOWN
            nested = _FunctionWalker(
                self.analyzer, types.SimpleNamespace(  # type: ignore[arg-type]
                    __globals__=self.func_globals
                ), child, self.file_label, self.suppressions,
            )
            nested.exec_block(stmt.body)
            self.scope[stmt.name] = UNKNOWN
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Attribute):
                    base = self.eval(target.value)
                    self._charge("write", base, target.attr, target)
                elif isinstance(target, ast.Subscript):
                    base = self.eval(target.value)
                    self.eval_used(target.slice)
                    self._charge("write", base, OPAQUE, target)
        else:
            self._walk_generic(stmt)

    def _walk_generic(self, node: ast.AST) -> None:
        for _field, value in ast.iter_fields(node):
            if isinstance(value, list):
                for item in value:
                    self._walk_generic_item(item)
            else:
                self._walk_generic_item(value)

    def _walk_generic_item(self, item: Any) -> None:
        if isinstance(item, ast.stmt):
            self.exec_stmt(item)
        elif isinstance(item, ast.expr):
            self.eval_used(item)
        elif isinstance(item, ast.excepthandler):
            if item.name:
                self.scope[item.name] = UNKNOWN
            self.exec_block(item.body)
        elif isinstance(item, ast.withitem):
            value = self.eval_used(item.context_expr)
            if item.optional_vars is not None:
                self._assign_target(item.optional_vars, value)

    def _assign_target(self, target: ast.expr, value: Any) -> None:
        if isinstance(target, ast.Name):
            self.scope[target.id] = value
        elif isinstance(target, ast.Attribute):
            base = self.eval(target.value)
            self._charge("write", base, target.attr, target)
        elif isinstance(target, ast.Subscript):
            base = self.eval(target.value)
            self.eval_used(target.slice)
            self._charge("write", base, OPAQUE, target)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._assign_target(element, UNKNOWN)
        elif isinstance(target, ast.Starred):
            self._assign_target(target.value, UNKNOWN)

    def _augment_target(self, target: ast.expr) -> None:
        if isinstance(target, ast.Name):
            self.scope[target.id] = UNKNOWN
        elif isinstance(target, ast.Attribute):
            base = self.eval(target.value)
            self._charge("read", base, target.attr, target)
            self._charge("write", base, target.attr, target)
        elif isinstance(target, ast.Subscript):
            base = self.eval(target.value)
            self.eval_used(target.slice)
            self._charge("read", base, OPAQUE, target)
            self._charge("write", base, OPAQUE, target)

    # -- expressions -----------------------------------------------------

    def eval_used(self, node: Optional[ast.expr]) -> Any:
        """Evaluate *node* in a value-consuming context: a labeled
        object whose value is observed (truthiness, arithmetic,
        comparison, containment in a new container) is an opaque read."""
        if node is None:
            return UNKNOWN
        value = self.eval(node)
        if value is not UNKNOWN and not isinstance(value, _BoundCallable):
            self._charge("read", value, OPAQUE, node)
        return value

    def eval(self, node: ast.expr) -> Any:
        if isinstance(node, ast.Name):
            if node.id in self.scope:
                return self.scope[node.id]
            return self._resolve_global(node.id, node)
        if isinstance(node, ast.Attribute):
            return self._eval_attribute(node)
        if isinstance(node, ast.Call):
            return self._eval_call(node)
        if isinstance(node, ast.Constant):
            return UNKNOWN
        if isinstance(node, ast.Subscript):
            base = self.eval(node.value)
            self.eval_used(node.slice)
            self._charge("read", base, OPAQUE, node)
            return UNKNOWN
        if isinstance(node, ast.Lambda):
            child = dict(self.scope)
            for arg in node.args.args + node.args.kwonlyargs:
                child[arg.arg] = UNKNOWN
            nested = _FunctionWalker(
                self.analyzer, types.SimpleNamespace(  # type: ignore[arg-type]
                    __globals__=self.func_globals
                ), child, self.file_label, self.suppressions,
            )
            nested.eval_used(node.body)
            return UNKNOWN
        if isinstance(node, ast.NamedExpr):
            value = self.eval(node.value)
            if isinstance(node.target, ast.Name):
                self.scope[node.target.id] = value
            return value
        if isinstance(node, ast.Compare) and all(
            isinstance(op, (ast.Is, ast.IsNot)) for op in node.ops
        ):
            # Identity checks (`backend is None`) observe the binding,
            # not the object's state: no read charge.
            self.eval(node.left)
            for comparator in node.comparators:
                self.eval(comparator)
            return UNKNOWN
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                             ast.GeneratorExp)):
            for generator in node.generators:
                iterable = self.eval(generator.iter)
                if iterable is not UNKNOWN:
                    self._charge("read", iterable, OPAQUE, generator.iter)
                self._assign_target(generator.target, UNKNOWN)
                for condition in generator.ifs:
                    self.eval_used(condition)
            if isinstance(node, ast.DictComp):
                self.eval_used(node.key)
                self.eval_used(node.value)
            else:
                self.eval_used(node.elt)
            return UNKNOWN
        # Everything else (BoolOp, BinOp, UnaryOp, Compare, IfExp,
        # containers, f-strings, slices, ...): value-consuming walk of
        # child expressions.
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self.eval_used(child)
        return UNKNOWN

    def _resolve_global(self, name: str, node: ast.expr) -> Any:
        value = self.func_globals.get(name, _MISSING)
        if value is _MISSING:
            return UNKNOWN
        if isinstance(value, types.FunctionType):
            return value
        if not _mutable_state(value):
            return UNKNOWN
        # A module-level mutable global: label it so that two units
        # touching it conflict.
        self.analyzer.registry.label_global(self.module_name, name, value)
        return value

    def _eval_attribute(self, node: ast.Attribute) -> Any:
        if node.attr == "__dict__":
            self._sh005(node, "__dict__ access")
        base = self.eval(node.value)
        if base is UNKNOWN or base is None or isinstance(base, _BoundCallable):
            return UNKNOWN
        # Sanctioned channel reads resolve before attribute dispatch so
        # properties like `occupancy` stay channel effects.
        if (
            isinstance(base, Connector)
            and node.attr in CHANNEL_API
            and self.analyzer.is_endpoint(base)
        ):
            self.analyzer.channel(base)
            return UNKNOWN
        try:
            value = inspect.getattr_static(base, node.attr, _MISSING)
        except (AttributeError, TypeError):
            value = _MISSING
        if isinstance(value, types.MemberDescriptorType):
            # ``__slots__`` storage: getattr_static hands back the slot
            # descriptor, not the stored value.  Resolve to the live
            # instance value so labeled children (flat tables etc.)
            # navigate instead of collapsing to an attr-level charge.
            value = getattr(base, node.attr, _MISSING)
        if isinstance(value, property):
            if value.fget is not None and isinstance(
                value.fget, types.FunctionType
            ):
                self.analyzer.analyze_function(value.fget, base, [])
            else:
                self._charge("read", base, OPAQUE, node)
            return UNKNOWN
        if value is _MISSING:
            self._charge("read", base, node.attr, node)
            return UNKNOWN
        if isinstance(value, types.FunctionType):
            return _BoundCallable(base, value, node.attr)
        if isinstance(value, (staticmethod, classmethod)):
            inner = value.__func__
            if isinstance(inner, types.FunctionType):
                return _BoundCallable(None, inner, node.attr)
            return UNKNOWN
        if isinstance(value, (types.BuiltinFunctionType,
                              types.MethodDescriptorType,
                              types.WrapperDescriptorType,
                              types.ClassMethodDescriptorType)):
            return _BoundCallable(base, None, node.attr)
        label = self.analyzer.registry.label_of(value)
        if label is not None:
            return value  # navigation: no charge
        if _mutable_state(value):
            # Unlabeled mutable object (e.g. created after the registry
            # walk): fall back to attr-level effects on the base.
            self._charge("read", base, node.attr, node)
            return UNKNOWN
        self._charge("read", base, node.attr, node)
        return UNKNOWN

    def _eval_call(self, node: ast.Call) -> Any:
        func = node.func
        if isinstance(func, ast.Name):
            if func.id in _SH005_BUILTINS:
                self._sh005(node, "%s() on the tick path" % func.id)
                for arg in node.args:
                    self.eval_used(arg)
                return UNKNOWN
            if func.id in ("getattr", "setattr", "delattr") and node.args:
                return self._eval_dynattr(node, func.id)
            if func.id == "len" and len(node.args) == 1:
                target = self.eval(node.args[0])
                if (
                    isinstance(target, Connector)
                    and self.analyzer.is_endpoint(target)
                ):
                    self.analyzer.channel(target)
                elif target is not UNKNOWN:
                    self._charge("read", target, OPAQUE, node)
                return UNKNOWN
        target = self.eval(func)
        if isinstance(target, _BoundCallable):
            return self._call_bound(target, node)
        if isinstance(target, types.FunctionType):
            argvals = [self.eval(arg) for arg in node.args]
            kwargvals = {
                kw.arg: self.eval(kw.value)
                for kw in node.keywords if kw.arg is not None
            }
            self.analyzer.analyze_function(target, None, argvals, kwargvals)
            return UNKNOWN
        if target is not UNKNOWN:
            # A labeled object called directly -- opaque.
            self._charge("write", target, OPAQUE, node)
        for arg in node.args:
            self.eval_used(arg)
        for keyword in node.keywords:
            self.eval_used(keyword.value)
        # Stored-callable hook: the attribute resolved to instance data,
        # not class code, and it is being invoked.
        if isinstance(func, ast.Attribute) and target is UNKNOWN:
            self._check_hook(node, func)
        return UNKNOWN

    def _check_hook(self, node: ast.Call, func: ast.Attribute) -> None:
        base = self.eval(func.value)
        if base is UNKNOWN or base is None or isinstance(base, _BoundCallable):
            return
        try:
            value = inspect.getattr_static(base, func.attr, _MISSING)
        except (AttributeError, TypeError):
            value = _MISSING
        if isinstance(value, (types.FunctionType, property, staticmethod,
                              classmethod, types.BuiltinFunctionType,
                              types.MethodDescriptorType,
                              types.WrapperDescriptorType,
                              types.ClassMethodDescriptorType)):
            return  # class code, already handled
        label = self.analyzer.registry.label_of(base)
        if label is None:
            return
        if func.attr in declared_seams(type(base)):
            self.analyzer.unit.seams.add((label, func.attr))
            return
        self._sh004(node, base, func.attr)

    def _eval_dynattr(self, node: ast.Call, builtin: str) -> Any:
        base = self.eval(node.args[0])
        name_arg = node.args[1] if len(node.args) > 1 else None
        for extra in node.args[2:]:
            self.eval_used(extra)
        if (
            isinstance(name_arg, ast.Constant)
            and isinstance(name_arg.value, str)
        ):
            kind = "read" if builtin == "getattr" else "write"
            self._charge(kind, base, name_arg.value, node)
        else:
            if name_arg is not None:
                self.eval_used(name_arg)
            self._sh005(node, "%s() with a non-constant attribute name"
                        % builtin)
        return UNKNOWN

    def _call_bound(self, bound: _BoundCallable, node: ast.Call) -> Any:
        owner, func, name = bound.owner, bound.func, bound.name
        # Sanctioned channel calls by the connector's own endpoints.
        if (
            isinstance(owner, Connector)
            and name in CHANNEL_API
            and self.analyzer.is_endpoint(owner)
        ):
            self.analyzer.channel(owner)
            for arg in node.args:
                self.eval_used(arg)
            return UNKNOWN
        if func is not None:
            argvals = [self.eval(arg) for arg in node.args]
            kwargvals = {
                kw.arg: self.eval(kw.value)
                for kw in node.keywords if kw.arg is not None
            }
            self.analyzer.analyze_function(func, owner, argvals, kwargvals)
            return UNKNOWN
        # C-implemented method (container mutation, builtin): purity by
        # name, defaulting to an opaque write.
        kind = "read" if _method_is_pure(name) else "write"
        self._charge(kind, owner, OPAQUE, node)
        for arg in node.args:
            self.eval_used(arg)
        for keyword in node.keywords:
            self.eval_used(keyword.value)
        return UNKNOWN


# -- tree-level driver -------------------------------------------------------


class TreeEffects:
    """Every unit footprint of one module tree, plus the SH004/SH005
    diagnostics raised while computing them."""

    def __init__(self, root: Module, graph: TimingGraph,
                 registry: ObjectRegistry, units: List[UnitEffects],
                 listeners: List[UnitEffects], report: Report):
        self.root = root
        self.graph = graph
        self.registry = registry
        self.units = units
        self.listeners = listeners
        self.report = report
        self._by_path = {unit.path: unit for unit in units + listeners}

    def unit(self, path: str) -> UnitEffects:
        return self._by_path[path]

    def unit_paths(self) -> List[str]:
        return [unit.path for unit in self.units]

    def conflicts(self, path_a: str, path_b: str) -> List[str]:
        return conflicts_between(self._by_path[path_a], self._by_path[path_b])

    def footprints(self) -> dict:
        """JSON-ready ``path -> footprint`` map, deterministic order."""
        out = {}
        for unit in sorted(self.units + self.listeners,
                           key=lambda u: u.path):
            out[unit.path] = unit.footprint()
        return out


def _source_base() -> str:
    import repro

    return os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))


def analyze_tree(root: Module,
                 tracker: Optional[SuppressionTracker] = None) -> TreeEffects:
    """Compute per-unit effect footprints for the Module tree at *root*.

    Units are the tickable modules (those overriding ``bind_tick``),
    Connectors included; registered commit/cycle listeners on the root
    (when present) are analyzed as pseudo-units named
    ``<commit-listener:...>`` / ``<cycle-listener:...>``.
    """
    graph = extract_graph(root)
    registry = ObjectRegistry(graph)
    report = Report()
    src_base = _source_base()
    units: List[UnitEffects] = []
    for path, module in graph.modules:
        if not _is_tickable(module):
            continue
        unit = UnitEffects(path, module)
        analyzer = _UnitAnalyzer(unit, registry, report, tracker, src_base)
        analyzer.run()
        units.append(unit)
    listeners: List[UnitEffects] = []
    for family, registered in (
        ("commit-listener", list(getattr(root, "commit_listeners", ()) or ())),
        ("cycle-listener", list(getattr(root, "cycle_listeners", ()) or ())),
    ):
        for index, listener in enumerate(registered):
            name = getattr(listener, "__qualname__",
                           type(listener).__name__)
            unit = UnitEffects("<%s:%d:%s>" % (family, index, name), None)
            analyzer = _UnitAnalyzer(unit, registry, report, tracker,
                                     src_base)
            analyzer.run_callable(listener)
            listeners.append(unit)
    return TreeEffects(root, graph, registry, units, listeners, report)
