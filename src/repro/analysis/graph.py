"""Dataflow-graph extraction over a timing-model Module tree.

The paper's Bluespec compiler sees the timing model as a graph of
modules joined by FIFOs and statically rejects malformed structure; our
Python Module/Connector tree has no compiler, so FastLint extracts the
same graph explicitly.  A :class:`TimingGraph` combines

* the *hierarchy* (every module, by slash-separated path), and
* the *dataflow* edges (producer module -> Connector -> consumer
  module) declared via :meth:`repro.timing.connector.Connector.
  bind_endpoints`.

Beyond linting, the graph is the substrate for scheduling work: the
connected components and zero-latency condensation computed here are
exactly what a parallel/sharded ticker needs to know which modules may
be evaluated independently within one target cycle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.timing.connector import Connector
from repro.timing.module import Module


@dataclass(frozen=True)
class Edge:
    """One dataflow edge: *producer* pushes through *connector* to
    *consumer*.  Endpoint fields are ``None`` while unbound."""

    connector: Connector
    producer: Optional[Module]
    consumer: Optional[Module]

    @property
    def latency(self) -> int:
        return self.connector.min_latency

    @property
    def bound(self) -> bool:
        return self.producer is not None and self.consumer is not None


class TimingGraph:
    """The extracted module hierarchy plus dataflow edges."""

    def __init__(self, root: Module):
        self.root = root
        # First path wins for each distinct module object; duplicate
        # *names* are recorded separately for the TG003 rule.
        self.paths: Dict[int, str] = {}
        self.modules: List[Tuple[str, Module]] = []
        self.connectors: List[Tuple[str, Connector]] = []
        for path, module in root.walk_paths():
            self.modules.append((path, module))
            self.paths.setdefault(id(module), path)
            if isinstance(module, Connector):
                self.connectors.append((path, module))
        self.edges: List[Edge] = [
            Edge(conn, conn.producer, conn.consumer)
            for _path, conn in self.connectors
        ]

    # -- lookups ---------------------------------------------------------

    def path_of(self, module: Optional[Module]) -> str:
        """Path of *module* inside the tree, or a marker if external."""
        if module is None:
            return "<unbound>"
        return self.paths.get(id(module), "<not-in-tree:%s>" % module.name)

    def contains(self, module: Module) -> bool:
        return id(module) in self.paths

    def duplicate_paths(self) -> Dict[str, int]:
        """Tree paths used by more than one module (statistics collide)."""
        counts: Dict[str, int] = {}
        for path, _module in self.modules:
            counts[path] = counts.get(path, 0) + 1
        return {path: n for path, n in counts.items() if n > 1}

    def duplicate_names(self) -> Dict[str, List[str]]:
        """Module names used in more than one place (find() is ambiguous)."""
        by_name: Dict[str, List[str]] = {}
        for path, module in self.modules:
            by_name.setdefault(module.name, []).append(path)
        return {name: paths for name, paths in by_name.items() if len(paths) > 1}

    # -- dataflow structure ----------------------------------------------

    def endpoint_modules(self) -> List[Module]:
        """Distinct modules participating in at least one edge, in
        deterministic first-seen order."""
        seen: Dict[int, Module] = {}
        for edge in self.edges:
            for module in (edge.producer, edge.consumer):
                if module is not None:
                    seen.setdefault(id(module), module)
        return list(seen.values())

    def successors(self, min_latency: Optional[int] = None) -> Dict[int, List[Edge]]:
        """Adjacency ``id(producer) -> [edges]``; optionally only edges
        whose connector latency equals *min_latency*."""
        adj: Dict[int, List[Edge]] = {}
        for edge in self.edges:
            if not edge.bound:
                continue
            if min_latency is not None and edge.latency != min_latency:
                continue
            adj.setdefault(id(edge.producer), []).append(edge)
        return adj

    def zero_latency_cycles(self) -> List[List[Edge]]:
        """Cycles in which every connector has ``min_latency == 0``.

        In a cycle-driven schedule such a loop never makes progress: an
        item pushed this cycle is poppable this same cycle, so module
        evaluation order becomes load-bearing (combinational loop /
        livelock).  Returns one representative edge list per cycle.
        """
        adj = self.successors(min_latency=0)
        WHITE, GRAY, BLACK = 0, 1, 2
        color: Dict[int, int] = {}
        cycles: List[List[Edge]] = []

        def visit(node: Module, stack: List[Edge]) -> None:
            color[id(node)] = GRAY
            for edge in adj.get(id(node), ()):
                nxt = edge.consumer
                state = color.get(id(nxt), WHITE)
                if state == GRAY:
                    if nxt is node:  # self-loop
                        cycles.append([edge])
                        continue
                    # Unwind the stack back to where the cycle starts.
                    cycle = [edge]
                    for prior in reversed(stack):
                        cycle.append(prior)
                        if prior.producer is nxt:
                            break
                    cycles.append(list(reversed(cycle)))
                elif state == WHITE:
                    stack.append(edge)
                    visit(nxt, stack)
                    stack.pop()
            color[id(node)] = BLACK

        for module in self.endpoint_modules():
            if color.get(id(module), WHITE) == WHITE:
                visit(module, [])
        return cycles

    def components(self) -> List[List[Module]]:
        """Weakly-connected components of the dataflow graph.

        Modules in different components never exchange data through a
        Connector, so a sharded ticker may clock them on separate
        workers with no intra-cycle synchronization.
        """
        neighbors: Dict[int, List[Module]] = {}
        for edge in self.edges:
            if not edge.bound:
                continue
            neighbors.setdefault(id(edge.producer), []).append(edge.consumer)
            neighbors.setdefault(id(edge.consumer), []).append(edge.producer)
        seen: Dict[int, bool] = {}
        components: List[List[Module]] = []
        for module in self.endpoint_modules():
            if id(module) in seen:
                continue
            component: List[Module] = []
            frontier = [module]
            while frontier:
                current = frontier.pop()
                if id(current) in seen:
                    continue
                seen[id(current)] = True
                component.append(current)
                frontier.extend(neighbors.get(id(current), ()))
            components.append(component)
        return components

    def describe_cycle(self, cycle: List[Edge]) -> str:
        """Human-readable ``a -[conn]-> b -[conn]-> a`` rendering."""
        if not cycle:
            return "<empty cycle>"
        parts = [self.path_of(cycle[0].producer)]
        for edge in cycle:
            parts.append("-[%s]->" % edge.connector.name)
            parts.append(self.path_of(edge.consumer))
        return " ".join(parts)


def extract_graph(root: Module) -> TimingGraph:
    """Extract the dataflow graph of the Module tree rooted at *root*."""
    return TimingGraph(root)
